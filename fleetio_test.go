package fleetio

import (
	"strings"
	"testing"
)

func smallSim() *Simulator {
	cfg := DefaultSimConfig()
	cfg.BlocksPerChip = 32
	cfg.PagesPerBlock = 32
	cfg.DecisionWindow = 200 * Millisecond
	return NewSimulator(cfg)
}

func TestSimulatorQuickstartFlow(t *testing.T) {
	s := smallSim()
	ls := s.AddTenant("ycsb", TenantConfig{
		Workload: "YCSB", Channels: ChannelRange(0, 8), PrefillFrac: 0.4,
		SLO: 2 * Millisecond,
	})
	bi := s.AddTenant("sort", TenantConfig{
		Workload: "TeraSort", Channels: ChannelRange(8, 16), PrefillFrac: 0.4,
	})
	s.UseFleetIO(FleetIOOptions{})
	rep := s.Run(3 * Second)
	if rep.Elapsed != 3*Second {
		t.Fatalf("elapsed = %v", rep.Elapsed)
	}
	if rep.Utilization <= 0 {
		t.Fatal("zero utilization")
	}
	if ls.Completed() == 0 || bi.Completed() == 0 {
		t.Fatal("tenants idle")
	}
	out := rep.String()
	if !strings.Contains(out, "ycsb") || !strings.Contains(out, "sort") {
		t.Fatalf("report missing tenants:\n%s", out)
	}
	// Run is resumable.
	rep2 := s.Run(1 * Second)
	if rep2.Elapsed != 4*Second {
		t.Fatalf("resumed elapsed = %v", rep2.Elapsed)
	}
}

func TestSimulatorCustomDriver(t *testing.T) {
	s := smallSim()
	tn := s.AddTenant("raw", TenantConfig{Channels: ChannelRange(0, 4)})
	s.UseStatic("none")
	done := 0
	for i := 0; i < 10; i++ {
		tn.Submit(true, i*4, 4, func(Time) { done++ })
	}
	s.Run(100 * Millisecond)
	if done != 10 {
		t.Fatalf("completed %d of 10 custom requests", done)
	}
	tn.Submit(false, 0, 4, nil)
	s.Run(100 * Millisecond)
	if tn.Completed() != 11 {
		t.Fatalf("completed = %d", tn.Completed())
	}
	if tn.P99() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestResetMetrics(t *testing.T) {
	s := smallSim()
	tn := s.AddTenant("a", TenantConfig{Workload: "YCSB", Channels: ChannelRange(0, 8)})
	s.UseStatic("none")
	s.Run(500 * Millisecond)
	if tn.Completed() == 0 {
		t.Fatal("no traffic")
	}
	s.ResetMetrics()
	if tn.Completed() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 9 {
		t.Fatalf("workloads = %v", ws)
	}
	found := map[string]bool{}
	for _, w := range ws {
		found[w] = true
	}
	for _, want := range []string{"TeraSort", "YCSB", "VDI-Web"} {
		if !found[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestModelSaveLoad(t *testing.T) {
	m := PretrainedModel()
	if m.Params() < 1000 {
		t.Fatal("model too small")
	}
	path := t.TempDir() + "/m.gob"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Params() != m.Params() {
		t.Fatal("round trip changed model")
	}
	if _, err := LoadModel(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing model must error")
	}
}

func TestExperimentFacade(t *testing.T) {
	opt := DefaultExperimentOptions()
	opt.Warmup = 1 * Second
	opt.Duration = 2 * Second
	opt.BlocksPerChip = 32
	mix := NewMix("smoke", "YCSB", "TeraSort")
	rs := CompareExperiment(mix, []Policy{PolicyHardwareIsolation, PolicySoftwareIsolation}, opt)
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[1].AvgUtil <= rs[0].AvgUtil {
		t.Fatal("software must beat hardware on utilization")
	}
	one := RunExperiment(mix, PolicyAdaptive, opt)
	if one.Policy != "Adaptive" || one.AvgUtil <= 0 {
		t.Fatalf("unexpected result %+v", one)
	}
}

func TestHarvestingVisibleInReport(t *testing.T) {
	s := smallSim()
	s.AddTenant("ls", TenantConfig{Workload: "YCSB", Channels: ChannelRange(0, 8), SLO: 2 * Millisecond})
	s.AddTenant("bi", TenantConfig{Workload: "TeraSort", Channels: ChannelRange(8, 16)})
	s.UseFleetIO(FleetIOOptions{Pretrained: PretrainedModel()})
	rep := s.Run(6 * Second)
	rep.SortTenantsByName()
	// With a pretrained policy the BI tenant should be harvesting within a
	// few seconds on most seeds; at minimum the fields must be populated
	// consistently (no negative counts).
	for _, tr := range rep.Tenants {
		if tr.HarvestedChls < 0 || tr.LentChls < 0 {
			t.Fatalf("negative channel counts: %+v", tr)
		}
	}
}
