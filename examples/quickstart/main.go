// Quickstart: collocate a latency-sensitive YCSB tenant with a
// bandwidth-hungry TeraSort tenant on one simulated SSD, let FleetIO's RL
// agents manage harvesting and priorities, and print the outcome.
package main

import (
	"fmt"
	"log"

	fleetio "repro"
)

func main() {
	log.SetFlags(0)
	cfg := fleetio.DefaultSimConfig()
	s := fleetio.NewSimulator(cfg)

	// Each tenant starts hardware-isolated on half the channels, with a
	// warmed-up FTL so garbage collection is live (as in the paper's
	// experiments).
	ycsb := s.AddTenant("ycsb", fleetio.TenantConfig{
		Workload:    "YCSB",
		Channels:    fleetio.ChannelRange(0, 8),
		SLO:         2 * fleetio.Millisecond,
		PrefillFrac: 0.5,
	})
	sort := s.AddTenant("terasort", fleetio.TenantConfig{
		Workload:    "TeraSort",
		Channels:    fleetio.ChannelRange(8, 16),
		PrefillFrac: 0.5,
	})

	// FleetIO: one RL agent per vSSD, pretrained offline on held-out
	// workloads, fine-tuning online.
	log.Println("pretraining FleetIO agents (once per process)...")
	s.UseFleetIO(fleetio.FleetIOOptions{Pretrained: fleetio.PretrainedModel()})

	log.Println("running 10 virtual seconds of collocated traffic...")
	s.Run(4 * fleetio.Second) // warmup + online adaptation
	s.ResetMetrics()
	report := s.Run(6 * fleetio.Second)

	fmt.Println()
	fmt.Println(report)
	fmt.Printf("ycsb served %d requests; terasort moved %.0f MB/s with %d harvested channel(s)\n",
		ycsb.Completed(), report.Tenants[1].BandwidthMBps, report.Tenants[1].HarvestedChls)
	_ = sort
}
