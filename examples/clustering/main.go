// Clustering: reproduce the §3.4 workload-typing pipeline on live
// simulated traffic — record each tenant's block I/O trace, extract the
// four features per window, and classify the workloads against the
// pretrained cluster model that decides each agent's reward coefficient.
package main

import (
	"fmt"
	"log"

	fleetio "repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println("built-in workload profiles:")
	for _, w := range fleetio.Workloads() {
		fmt.Println("  -", w)
	}
	fmt.Println()

	types := fleetio.ClassifyWorkloads()
	fmt.Printf("%-16s %-10s %-12s\n", "workload", "cluster", "reward alpha")
	for _, w := range fleetio.Workloads() {
		info := types[w]
		fmt.Printf("%-16s %-10d %-12g\n", w, info.Cluster, info.Alpha)
	}
	fmt.Println()
	fmt.Println("Bandwidth-intensive jobs share one cluster (alpha=0: maximize bandwidth),")
	fmt.Println("YCSB's low-entropy traffic forms its own cluster (alpha=5e-3), and the")
	fmt.Println("remaining latency-sensitive services use alpha=2.5e-2 (paper §3.8).")
}
