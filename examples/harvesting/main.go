// Harvesting: drive the ghost-superblock machinery by hand — no RL — to
// see exactly what the paper's Make_Harvestable and Harvest actions do.
// Two identical collocations run over the same virtual interval: one
// isolated, one where the latency tenant lends channels every decision
// window and the batch tenant harvests them (sustained harvesting, the
// way the RL agents do it). The difference is the §3.6 mechanism's effect
// in isolation from learning.
package main

import (
	"fmt"
	"log"

	fleetio "repro"
)

func run(lendChannels int) *fleetio.Report {
	cfg := fleetio.DefaultSimConfig()
	s := fleetio.NewSimulator(cfg)
	s.AddTenant("lender", fleetio.TenantConfig{
		Workload: "VDI-Web", Channels: fleetio.ChannelRange(0, 8),
		SLO: 2 * fleetio.Millisecond, PrefillFrac: 0.5,
	})
	s.AddTenant("harvester", fleetio.TenantConfig{
		Workload: "TeraSort", Channels: fleetio.ChannelRange(8, 16),
		PrefillFrac: 0.5,
	})
	s.UseStatic("manual") // we issue the actions ourselves

	// Reach GC steady state before measuring.
	s.Run(8 * fleetio.Second)
	s.ResetMetrics()

	// Like the RL agents, a manual operator renews its decisions every
	// window: harvested superblocks drain as they fill with data and get
	// recycled by the lender's GC, so sustained sharing means sustained
	// Make_Harvestable/Harvest actions.
	for i := 0; i < 24; i++ {
		if lendChannels > 0 {
			s.MakeHarvestable("lender", lendChannels)
			s.Harvest("harvester", lendChannels)
		}
		s.Run(250 * fleetio.Millisecond)
	}
	return s.Report()
}

func main() {
	log.SetFlags(0)
	log.Println("running the isolated baseline and the harvesting variant (same seed, same interval)...")
	base := run(0)
	harv := run(4)

	fmt.Printf("\n%-24s %10s %16s %14s\n", "configuration", "SSD util", "harvester MB/s", "lender P99 ms")
	fmt.Printf("%-24s %9.1f%% %16.1f %14.2f\n", "hardware-isolated",
		base.Utilization*100, base.Tenants[1].BandwidthMBps, base.Tenants[0].P99Ms)
	fmt.Printf("%-24s %9.1f%% %16.1f %14.2f\n", "harvesting 4 channels",
		harv.Utilization*100, harv.Tenants[1].BandwidthMBps, harv.Tenants[0].P99Ms)
	fmt.Printf("\nharvest gain: %.2fx harvester bandwidth, %.2fx lender P99\n",
		harv.Tenants[1].BandwidthMBps/base.Tenants[1].BandwidthMBps,
		harv.Tenants[0].P99Ms/base.Tenants[0].P99Ms)
	fmt.Println("\nEverything in §3.6/§3.7 runs under the hood: gSB creation from free-floor-")
	fmt.Println("checked channels, the lock-free pool, block lending striped across chips,")
	fmt.Println("the LBA indirection in the harvester, and GC-driven lazy reclamation with")
	fmt.Println("harvested-first victim selection.")
}
