// Multitenant: reproduce the core §4.2 comparison on one workload pair —
// run Hardware Isolation, Software Isolation, and FleetIO on the same mix
// and show the utilization/tail-latency tradeoff each policy lands on.
package main

import (
	"fmt"
	"log"

	fleetio "repro"
)

func main() {
	log.SetFlags(0)
	opt := fleetio.DefaultExperimentOptions()
	opt = withPretrained(opt)
	mix := fleetio.NewMix("VDI-Web+TeraSort", "VDI-Web", "TeraSort")

	log.Println("calibrating SLOs and running three policies on", mix.Label, "...")
	results := fleetio.CompareExperiment(mix, []fleetio.Policy{
		fleetio.PolicyHardwareIsolation,
		fleetio.PolicySoftwareIsolation,
		fleetio.PolicyFleetIO,
	}, opt)

	hw := results[0]
	fmt.Printf("\n%-22s %10s %12s %12s %14s\n", "policy", "util %", "util vs HW", "LS P99 ms", "BI BW MB/s")
	for _, r := range results {
		fmt.Printf("%-22s %10.1f %11.2fx %12.2f %14.1f\n",
			r.Policy, r.AvgUtil*100, r.AvgUtil/hw.AvgUtil,
			r.LatencyTenantP99(), r.BandwidthTenant())
	}
	fmt.Println("\nFleetIO should land between the extremes: most of Software Isolation's")
	fmt.Println("utilization at close to Hardware Isolation's tail latency (paper Fig. 10).")
}

func withPretrained(opt fleetio.ExperimentOptions) fleetio.ExperimentOptions {
	log.Println("pretraining FleetIO agents (once per process)...")
	m := fleetio.PretrainedModel()
	_ = m
	// The harness picks the process-wide pretrained model up through
	// WithPretrained; the facade re-exports it via RunExperiment options.
	return fleetio.WithPretrainedOptions(opt)
}
