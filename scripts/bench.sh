#!/usr/bin/env sh
# bench.sh — run the benchmark suite with -benchmem and append one
# timestamped run to BENCH_fleet.json. The file is the repo's performance
# trajectory: {"runs": [oldest, ..., newest]}, one entry per perf-relevant
# change, each holding ns/op, B/op, and allocs/op for every benchmark.
# Check the file in after a perf-relevant change; comparing two points of
# the trajectory is then just comparing two entries of .runs.
#
# Usage:
#   scripts/bench.sh                 # full pass, appends to BENCH_fleet.json
#   BENCHTIME=100ms scripts/bench.sh # faster micro pass
#   OUT=/tmp/b.json scripts/bench.sh # alternate output path
#   DELTA_PCT=25 scripts/bench.sh    # custom regression threshold
#   DELTA_PCT=off scripts/bench.sh   # record only, skip the gate
#
# After appending, the new run is diffed against the previous one: a delta
# table (ns/op, allocs/op) prints for every benchmark, and the script exits
# non-zero when any benchmark regressed past DELTA_PCT percent (default
# 15). Caveat: ns/op deltas are only meaningful between runs on the same
# machine at the same BENCHTIME — the trajectory spans machines, and
# cross-machine entries differ by 15-30% on the figure benchmarks from
# hardware alone (see docs/PERFORMANCE.md "Reading the trajectory").
#
# Inspecting the trajectory (last two runs of one benchmark):
#   jq '.runs[-2:][] | {at: .timestamp, r: [.results[] | select(.name == "BenchmarkFigure15")]}' BENCH_fleet.json
#
# Two passes keep the wall time sane: the microbenchmarks (simulator core,
# NN kernels, §4.7 overheads) iterate for $BENCHTIME, while the figure
# regeneration benchmarks at the repo root — including BenchmarkFigureFleet
# and BenchmarkFleetScaling, the rack-scale fleet runs reporting aggregate
# simulated IOPS/s (FleetScaling adds speedup-vs-w1 and scale-eff across
# 64/256-device racks at 1/2/4/8 workers) — simulate whole experiments and
# run once each (-benchtime=1x).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_fleet.json}"
tmp=$(mktemp)
run=$(mktemp)
trap 'rm -f "$tmp" "$run"' EXIT

echo "== micro benchmarks (./internal/..., -benchtime=$BENCHTIME)"
go test -run=NONE -bench=. -benchmem -benchtime="$BENCHTIME" ./internal/... | tee -a "$tmp"

echo "== overhead + substrate benchmarks (., -benchtime=$BENCHTIME)"
go test -run=NONE -bench='^Benchmark(Inference|FineTune|GSB|GC|Admission|Simulator)' \
    -benchmem -benchtime="$BENCHTIME" . | tee -a "$tmp"

echo "== figure benchmarks (., -benchtime=1x)"
go test -run=NONE -bench='^Benchmark(Figure|FleetScaling)' -benchmem -benchtime=1x . | tee -a "$tmp"

# One Benchmark line looks like:
#   BenchmarkInference-8   350436   3359 ns/op   0 B/op   0 allocs/op [extra metrics...]
# Emit one run object: {timestamp, commit, benchtime, results: [...]}.
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
commit=$(git describe --always --dirty 2>/dev/null || echo unknown)
awk -v benchtime="$BENCHTIME" -v ts="$timestamp" -v commit="$commit" '
BEGIN {
    printf "{\n  \"timestamp\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"results\": [\n", ts, commit, benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$run"

# Append the run to the trajectory. A pre-trajectory file (top-level
# "results", no "runs") is migrated by becoming the first run.
if [ -f "$OUT" ]; then
    if jq -e '.runs' "$OUT" >/dev/null 2>&1; then
        jq --slurpfile new "$run" '.runs += $new' "$OUT" > "$OUT.tmp"
    else
        jq --slurpfile new "$run" '{runs: ([.] + $new)}' "$OUT" > "$OUT.tmp"
    fi
    mv "$OUT.tmp" "$OUT"
else
    jq -n --slurpfile new "$run" '{runs: $new}' > "$OUT"
fi

echo "bench.sh: appended run $commit ($(grep -c '"name"' "$run") results) to $OUT ($(jq '.runs | length' "$OUT") runs total)"

# Delta gate: compare the appended run against the previous one.
DELTA_PCT="${DELTA_PCT:-15}"
nruns=$(jq '.runs | length' "$OUT")
if [ "$DELTA_PCT" = "off" ]; then
    echo "bench.sh: delta gate skipped (DELTA_PCT=off)"
elif [ "$nruns" -lt 2 ]; then
    echo "bench.sh: delta gate skipped (first recorded run)"
else
    echo "== delta vs previous run ($(jq -r '.runs[-2].commit' "$OUT") -> $commit, threshold ${DELTA_PCT}%)"
    # Rows: name old_ns new_ns old_allocs new_allocs. Missing values are
    # "-" (benchmark added or removed between runs; never gated).
    jq -r '
        (.runs[-2].results | map({(.name): .}) | add) as $old |
        (.runs[-1].results | map({(.name): .}) | add) as $new |
        ( ($old + $new) | keys_unsorted | sort )[] as $k |
        [ $k,
          ($old[$k].ns_per_op // "-"), ($new[$k].ns_per_op // "-"),
          ($old[$k].allocs_per_op // (if $old[$k] then 0 else "-" end)),
          ($new[$k].allocs_per_op // (if $new[$k] then 0 else "-" end)) ] | @tsv
    ' "$OUT" | awk -F'\t' -v thr="$DELTA_PCT" '
    BEGIN {
        printf "%-32s %14s %14s %8s %7s %7s %8s\n", \
            "benchmark", "old ns/op", "new ns/op", "d%", "old a/op", "new a/op", "verdict"
        bad = 0
    }
    {
        name = $1; ons = $2; ns = $3; oal = $4; al = $5
        verdict = "ok"; pct = "-"
        if (ons == "-")      { verdict = "added" }
        else if (ns == "-")  { verdict = "removed" }
        else {
            if (ons + 0 > 0) pct = sprintf("%+.1f", (ns - ons) / ons * 100)
            if (ons + 0 > 0 && (ns - ons) / ons * 100 > thr) { verdict = "SLOWER"; bad++ }
            if (al + 0 > oal + 0 && (oal + 0 == 0 || (al - oal) / oal * 100 > thr)) { verdict = "ALLOCS"; bad++ }
        }
        printf "%-32s %14s %14s %8s %7s %7s %8s\n", name, ons, ns, pct, oal, al, verdict
    }
    END {
        if (bad > 0) {
            printf "bench.sh: %d benchmark(s) regressed past %s%% vs the previous run\n", bad, thr > "/dev/stderr"
            exit 1
        }
    }'
    echo "bench.sh: delta gate green (threshold ${DELTA_PCT}%)"
fi
