#!/usr/bin/env sh
# bench.sh — run the benchmark suite with -benchmem and write one JSON
# document, BENCH_fleet.json, holding ns/op, B/op, and allocs/op for every
# benchmark. The file is the repo's performance trajectory: check it in
# after a perf-relevant change and diff against the previous commit's copy
# to see exactly which hot path moved.
#
# Usage:
#   scripts/bench.sh                 # full pass, writes BENCH_fleet.json
#   BENCHTIME=100ms scripts/bench.sh # faster micro pass
#   OUT=/tmp/b.json scripts/bench.sh # alternate output path
#
# Comparing two runs:
#   git stash && scripts/bench.sh && cp BENCH_fleet.json /tmp/before.json
#   git stash pop && scripts/bench.sh
#   # then eyeball the two files, or join them on .name with any JSON tool.
#
# Two passes keep the wall time sane: the microbenchmarks (simulator core,
# NN kernels, §4.7 overheads) iterate for $BENCHTIME, while the figure
# regeneration benchmarks at the repo root simulate whole experiments and
# run once each (-benchtime=1x).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_fleet.json}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== micro benchmarks (./internal/..., -benchtime=$BENCHTIME)"
go test -run=NONE -bench=. -benchmem -benchtime="$BENCHTIME" ./internal/... | tee -a "$tmp"

echo "== overhead + substrate benchmarks (., -benchtime=$BENCHTIME)"
go test -run=NONE -bench='^Benchmark(Inference|FineTune|GSB|GC|Admission|Simulator)' \
    -benchmem -benchtime="$BENCHTIME" . | tee -a "$tmp"

echo "== figure benchmarks (., -benchtime=1x)"
go test -run=NONE -bench='^BenchmarkFigure' -benchmem -benchtime=1x . | tee -a "$tmp"

# One Benchmark line looks like:
#   BenchmarkInference-8   350436   3359 ns/op   0 B/op   0 allocs/op [extra metrics...]
# Emit {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} per line.
awk -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$OUT"

echo "bench.sh: wrote $(grep -c '"name"' "$OUT") benchmark results to $OUT"
