#!/usr/bin/env sh
# check.sh — the repo's `make check` equivalent: formatting, vet, a doc
# lint on the observability API, build, full test suite, the race
# detector on the concurrency-heavy packages (the trainer's worker pool,
# the gSB pool, admission batching, the obs recorder that both of them
# write into, the event engine, the pooled flash/FTL datapath, and the
# harness's parallel run fan-out, and the NAND fault injector),
# allocation-regression guards on the per-I/O datapath, boxing/dead-import
# grep gates, a fault-enabled determinism gate (same seed => byte-identical
# scenario output at any worker count), a rack-scale fleet gate (64-device
# scenario byte-identical at any worker count, with at least one completed
# migration), a hybrid-rack tier gate (the tiered scenario byte-identical
# at any worker count, with the learned policy completing both promotes
# and demotes), a workload-replay gate (the checked-in CSV trace converts
# and replays byte-identically at 1/2/4 workers, with live traffic
# typing), and a one-iteration benchmark smoke pass that fails on any
# steady-state device allocation. The RL-kernel gates prove the batched
# matrix kernels (internal/nn, internal/rl, core.Decide) byte-identical to
# the scalar path via -scalar-rl figure diffs at 1/2/4 workers, and pin
# batched inference + PPO updates at zero steady-state allocations. The
# fleet-scaling gate covers the persistent shard-worker runtime: the
# barrier stress/shutdown tests run under -race in the fleet package pass
# above, the epoch loop is pinned at zero steady-state allocs/op, and
# BenchmarkFleetScaling's workers 1 vs 4 sub-benchmarks must produce
# byte-identical fleet output (the benchmark fails itself on divergence).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== doc lint (internal/obs exported identifiers)"
# internal/obs is the repo's external-facing surface (its names become
# JSONL fields and /metrics series), so every exported identifier must
# carry a doc comment. Flag exported top-level declarations whose
# preceding line is not a comment.
obs_sources=$(ls internal/obs/*.go | grep -v _test.go)
undocumented=$(awk '
    FNR == 1 { prev = "" }
    /^(func|type|const|var) [A-Z]/ || /^func \([a-zA-Z]+ \*?[A-Z][a-zA-Z]*\) [A-Z]/ {
        if (prev !~ /^\/\//) printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
    { prev = $0 }
' $obs_sources)
if [ -n "$undocumented" ]; then
    echo "undocumented exported identifiers in internal/obs:" >&2
    echo "$undocumented" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== hot-path boxing gates"
# The per-I/O datapath must stay free of interface boxing: container/heap
# (whose Push/Pop box through interface{}) is banned from the simulator
# core and flash layer (tests may use it as an oracle), and so is any
# non-test interface{}/any-typed field or parameter in flash op structs —
# pointer-shaped Ctx slots are the one sanctioned use, marked in place.
if grep -n '"container/heap"' internal/flash/*.go internal/sim/*.go | grep -v _test.go; then
    echo "container/heap is banned in the flash/sim hot path (typed heaps only)" >&2
    exit 1
fi
if grep -n 'interface{}' internal/flash/*.go internal/sim/*.go internal/ftl/*.go internal/vssd/*.go | grep -v _test.go; then
    echo "interface{} found in a hot-path package; use a typed or pointer-shaped any slot" >&2
    exit 1
fi

echo "== go test -race (concurrency-heavy packages)"
go test -race ./internal/trainer/... ./internal/gsb/... ./internal/admission/... ./internal/obs/... ./internal/sim/... ./internal/flash/... ./internal/ftl/... ./internal/fault/... ./internal/fleet/... ./internal/core/... ./internal/trace/... ./internal/workload/... ./internal/nn/... ./internal/rl/...

echo "== go test -race -tags=flashdebug (op pool poison mode)"
# flashdebug poisons every recycled Op on release so a use-after-release
# fails loudly; running the flash suite in this mode under -race is the
# pool-correctness gate.
go test -race -tags=flashdebug ./internal/flash/...

echo "== allocation guards (per-I/O datapath)"
# TestDeviceDatapathZeroAlloc (flash) and the engine's AllocsPerRun guard
# (sim) assert 0 allocs/op in steady state; a regression fails here before
# it shows up in the figure benchmarks.
go test -run 'TestDeviceDatapathZeroAlloc' -count=1 ./internal/flash/
go test -run 'ZeroAlloc' -count=1 ./internal/sim/

echo "== go test -race (parallel harness)"
# The harness fans experiment runs out over a worker pool; the full
# package under -race is prohibitively slow, so race-check the tests that
# actually exercise concurrent runs (including the shared-observer one).
go test -race -run 'TestCompareParallel|TestCompareAll|TestFigure16Parallel|TestForEach' ./internal/harness/

echo "== fault-scenario determinism (same seed, 1 vs 4 workers)"
# The fault injector draws from its own seeded stream on the single-threaded
# engine, so a fault-enabled scenario must be byte-identical for a given
# seed at any worker count. Two full fleetbench runs at different
# parallelism prove both properties at once.
faults1=$(mktemp) && faults4=$(mktemp)
trap 'rm -f "$faults1" "$faults4"' EXIT
go run ./cmd/fleetbench -fig faults -seconds 2 -warmup 1 -parallel 1 > "$faults1"
go run ./cmd/fleetbench -fig faults -seconds 2 -warmup 1 -parallel 4 > "$faults4"
if ! cmp -s "$faults1" "$faults4"; then
    echo "fault scenario output differs between -parallel 1 and -parallel 4:" >&2
    diff "$faults1" "$faults4" >&2 || true
    exit 1
fi

echo "== fleet determinism (64 devices, same seed, 1 vs 4 workers)"
# The rack-scale scenario advances device shards concurrently between
# epoch barriers; a 64-device figure must be byte-identical at any worker
# count, and must demonstrate at least one completed cold migration.
fleet1=$(mktemp) && fleet4=$(mktemp)
trap 'rm -f "$faults1" "$faults4" "$fleet1" "$fleet4"' EXIT
go run ./cmd/fleetbench -fig fleet -fleet 64 -seconds 2 -parallel 1 > "$fleet1"
go run ./cmd/fleetbench -fig fleet -fleet 64 -seconds 2 -parallel 4 > "$fleet4"
if ! cmp -s "$fleet1" "$fleet4"; then
    echo "fleet scenario output differs between -parallel 1 and -parallel 4:" >&2
    diff "$fleet1" "$fleet4" >&2 || true
    exit 1
fi
if ! grep -q 'migrations: started=[1-9][0-9]* completed=[1-9]' "$fleet1"; then
    echo "64-device fleet scenario completed no migrations:" >&2
    cat "$fleet1" >&2
    exit 1
fi

echo "== tier determinism + learned promote/demote smoke (hybrid rack)"
# The hybrid-rack scenario (SLC-like + QLC-like device classes) reuses
# the epoch-barrier runtime, so it must be byte-identical at any worker
# count across every tier policy; and the learned placement head must
# actually move tenants both ways — at the default seed over 4 virtual
# seconds its section must report nonzero promotes AND demotes.
tiers1=$(mktemp) && tiers4=$(mktemp)
trap 'rm -f "$faults1" "$faults4" "$fleet1" "$fleet4" "$tiers1" "$tiers4"' EXIT
go run ./cmd/fleetbench -fig tiers -fleet 8 -seconds 4 -parallel 1 > "$tiers1"
go run ./cmd/fleetbench -fig tiers -fleet 8 -seconds 4 -parallel 4 > "$tiers4"
if ! cmp -s "$tiers1" "$tiers4"; then
    echo "tier scenario output differs between -parallel 1 and -parallel 4:" >&2
    diff "$tiers1" "$tiers4" >&2 || true
    exit 1
fi
learned=$(awk '/^tier-policy=learned/,0' "$tiers1")
if ! echo "$learned" | grep -q 'promotes=[1-9]' || ! echo "$learned" | grep -q ' demotes=[1-9]'; then
    echo "learned tier policy completed no promotes or no demotes:" >&2
    echo "$learned" >&2
    exit 1
fi

echo "== fleet-scaling gate (epoch-loop allocs, workers 1 vs 4 identity)"
# The persistent shard-worker runtime must keep the epoch loop — barrier,
# parallel shard advance + load refresh, sequential control plane —
# allocation-free once the rack settles, and the load-refresh guard must
# never emit Inf/NaN utilization. The barrier stress, pinning, and
# clean-shutdown tests already ran under -race in the fleet package pass
# above; BenchmarkFleetScaling's workers=1 sub-benchmark is the
# byte-identity oracle and the workers=4 run fails itself on divergence.
go test -run 'TestEpochLoopZeroSteadyStateAllocs|TestUtilOverGuards|TestBarrierStress' -count=1 ./internal/fleet/
go test -run=NONE -bench='^BenchmarkFleetScaling$/devices=64/workers=(1|4)$' -benchtime=1x .

echo "== workload-replay determinism (CSV trace, 1 vs 2 vs 4 workers)"
# The checked-in sample CSV must convert to the binary trace format and
# replay byte-identically at any worker count, and the cohort rack must
# classify live traffic (a non-empty types: line).
wlbin=$(mktemp) && wl1=$(mktemp) && wl2=$(mktemp) && wl4=$(mktemp)
trap 'rm -f "$faults1" "$faults4" "$fleet1" "$fleet4" "$tiers1" "$tiers4" "$wlbin" "$wl1" "$wl2" "$wl4"' EXIT
go run ./cmd/fleettrace convert -in internal/trace/testdata/sample_msr.csv -format msr -out "$wlbin"
go run ./cmd/fleetbench -fig workloads -trace "$wlbin" -seconds 2 -warmup 1 -parallel 1 > "$wl1"
go run ./cmd/fleetbench -fig workloads -trace "$wlbin" -seconds 2 -warmup 1 -parallel 2 > "$wl2"
go run ./cmd/fleetbench -fig workloads -trace "$wlbin" -seconds 2 -warmup 1 -parallel 4 > "$wl4"
if ! cmp -s "$wl1" "$wl2" || ! cmp -s "$wl1" "$wl4"; then
    echo "workload scenario output differs across -parallel 1/2/4:" >&2
    diff "$wl1" "$wl4" >&2 || true
    exit 1
fi
if ! grep -q 'types: .*=' "$wl1"; then
    echo "cohort rack classified no live traffic:" >&2
    cat "$wl1" >&2
    exit 1
fi

echo "== RL-kernel bit-identity (batched vs -scalar-rl, 1/2/4 workers)"
# The batched matrix kernels (internal/nn ForwardBatch/BackwardBatch, the
# vectorized PPO update, the one-ActBatch-per-window Decide) must produce
# byte-identical figures to the original scalar path: same FP operation
# order, only restructured loops. A figure run under both kernel modes at
# every worker count proves kernel-identity and parallel-invariance at
# once.
rlb1=$(mktemp) && rlb2=$(mktemp) && rlb4=$(mktemp) && rls1=$(mktemp) && rls2=$(mktemp) && rls4=$(mktemp)
trap 'rm -f "$faults1" "$faults4" "$fleet1" "$fleet4" "$tiers1" "$tiers4" "$wlbin" "$wl1" "$wl2" "$wl4" "$rlb1" "$rlb2" "$rlb4" "$rls1" "$rls2" "$rls4"' EXIT
go run ./cmd/fleetbench -fig 10 -seconds 2 -warmup 1 -parallel 1 > "$rlb1"
go run ./cmd/fleetbench -fig 10 -seconds 2 -warmup 1 -parallel 2 > "$rlb2"
go run ./cmd/fleetbench -fig 10 -seconds 2 -warmup 1 -parallel 4 > "$rlb4"
go run ./cmd/fleetbench -fig 10 -seconds 2 -warmup 1 -parallel 1 -scalar-rl > "$rls1"
go run ./cmd/fleetbench -fig 10 -seconds 2 -warmup 1 -parallel 2 -scalar-rl > "$rls2"
go run ./cmd/fleetbench -fig 10 -seconds 2 -warmup 1 -parallel 4 -scalar-rl > "$rls4"
for f in "$rlb2" "$rlb4" "$rls1" "$rls2" "$rls4"; do
    if ! cmp -s "$rlb1" "$f"; then
        echo "figure output differs between batched and scalar RL kernels (or across workers):" >&2
        diff "$rlb1" "$f" >&2 || true
        exit 1
    fi
done

echo "== batched RL kernel benchmarks (allocs/op == 0)"
# Batched inference and the vectorized PPO update must stay allocation-free
# in steady state — they run every decision window for the lifetime of a
# deployment. One warm iteration sizes the scratch before the measured
# ones.
rlbench=$(go test -run=NONE -bench='^(BenchmarkForwardBatch|BenchmarkTrainBatch)$' \
    -benchmem -benchtime=20x ./internal/nn/ ./internal/rl/ | grep '^Benchmark')
echo "$rlbench"
if echo "$rlbench" | awk '{ for (i = 3; i <= NF; i++) if ($i == "allocs/op" && $(i-1) + 0 > 0) exit 1 }'; then
    :
else
    echo "batched RL kernel benchmark allocates; ForwardBatch/Train must be allocation-free in steady state" >&2
    exit 1
fi

echo "== benchmark smoke (one iteration each)"
# Catches benchmarks that no longer compile or crash; timing numbers come
# from scripts/bench.sh, not from this pass.
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "== device benchmark allocs/op == 0"
# The steady-state device benchmarks must stay allocation-free. They warm
# the op pool and queues before ResetTimer, so even at 100 iterations any
# reported allocation is a genuine steady-state regression.
devbench=$(go test -run=NONE -bench='^Benchmark(SaturatedChannel|MixedDevice)$' \
    -benchmem -benchtime=100x ./internal/flash/ | grep '^Benchmark')
echo "$devbench"
if echo "$devbench" | awk '{ for (i = 3; i <= NF; i++) if ($i == "allocs/op" && $(i-1) + 0 > 0) exit 1 }'; then
    :
else
    echo "steady-state device benchmark allocates; the per-I/O path must be allocation-free" >&2
    exit 1
fi

echo "check.sh: all green"
