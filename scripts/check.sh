#!/usr/bin/env sh
# check.sh — the repo's `make check` equivalent: vet, build, full test
# suite, then the race detector on the concurrency-heavy packages (the
# trainer's worker pool, the lock-free gSB pool, and admission batching).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-heavy packages)"
go test -race ./internal/trainer/... ./internal/gsb/... ./internal/admission/...

echo "check.sh: all green"
