#!/usr/bin/env sh
# check.sh — the repo's `make check` equivalent: formatting, vet, a doc
# lint on the observability API, build, full test suite, the race
# detector on the concurrency-heavy packages (the trainer's worker pool,
# the lock-free gSB pool, admission batching, the obs recorder that both
# of them write into, the event engine, and the harness's parallel run
# fan-out), and a one-iteration benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== doc lint (internal/obs exported identifiers)"
# internal/obs is the repo's external-facing surface (its names become
# JSONL fields and /metrics series), so every exported identifier must
# carry a doc comment. Flag exported top-level declarations whose
# preceding line is not a comment.
obs_sources=$(ls internal/obs/*.go | grep -v _test.go)
undocumented=$(awk '
    FNR == 1 { prev = "" }
    /^(func|type|const|var) [A-Z]/ || /^func \([a-zA-Z]+ \*?[A-Z][a-zA-Z]*\) [A-Z]/ {
        if (prev !~ /^\/\//) printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
    { prev = $0 }
' $obs_sources)
if [ -n "$undocumented" ]; then
    echo "undocumented exported identifiers in internal/obs:" >&2
    echo "$undocumented" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-heavy packages)"
go test -race ./internal/trainer/... ./internal/gsb/... ./internal/admission/... ./internal/obs/... ./internal/sim/...

echo "== go test -race (parallel harness)"
# The harness fans experiment runs out over a worker pool; the full
# package under -race is prohibitively slow, so race-check the tests that
# actually exercise concurrent runs (including the shared-observer one).
go test -race -run 'TestCompareParallel|TestCompareAll|TestFigure16Parallel|TestForEach' ./internal/harness/

echo "== benchmark smoke (one iteration each)"
# Catches benchmarks that no longer compile or crash; timing/allocation
# numbers come from scripts/bench.sh, not from this pass.
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "check.sh: all green"
