package fleetio

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/lockfree"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/vssd"
)

// benchOptions shrinks each figure to a benchmark-sized run while keeping
// the experiment structure intact. Absolute numbers come from
// cmd/fleetbench with full durations.
func benchOptions() harness.Options {
	opt := harness.DefaultOptions()
	opt.Window = 200 * sim.Millisecond
	opt.Warmup = 2 * sim.Second
	opt.Duration = 3 * sim.Second
	opt.BlocksPerChip = 32
	return opt
}

var benchPretrainOnce sync.Once

func benchPretrained(b *testing.B) harness.Options {
	b.Helper()
	benchPretrainOnce.Do(func() { harness.PretrainedModel() })
	return harness.WithPretrained(benchOptions())
}

// BenchmarkFigure2 regenerates the §2.2 utilization study (hardware vs
// software isolation) for one representative pair per iteration.
func BenchmarkFigure2(b *testing.B) {
	opt := benchOptions()
	mix := harness.Pair("YCSB", "TeraSort")
	for i := 0; i < b.N; i++ {
		rs := harness.Compare(mix, []harness.PolicyKind{harness.PolHardware, harness.PolSoftware}, opt)
		b.ReportMetric(rs[1].AvgUtil/rs[0].AvgUtil, "util-ratio-sw/hw")
	}
}

// BenchmarkFigure3 reports the per-tenant §2.2 contrasts.
func BenchmarkFigure3(b *testing.B) {
	opt := benchOptions()
	mix := harness.Pair("VDI-Web", "PageRank")
	for i := 0; i < b.N; i++ {
		rs := harness.Compare(mix, []harness.PolicyKind{harness.PolHardware, harness.PolSoftware}, opt)
		b.ReportMetric(rs[1].BandwidthTenant()/rs[0].BandwidthTenant(), "bi-bw-ratio")
		b.ReportMetric(rs[1].LatencyTenantP99()/rs[0].LatencyTenantP99(), "ls-p99-ratio")
	}
}

// BenchmarkFigure6 regenerates the workload clustering and reports its
// test accuracy (paper: 98.4%).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Figure6(io.Discard)
	}
}

// BenchmarkFigure10 runs the headline tradeoff (HW, SW, FleetIO) on one
// pair and reports FleetIO's utilization gain and normalized P99.
func BenchmarkFigure10(b *testing.B) {
	opt := benchPretrained(b)
	mix := harness.Pair("YCSB", "TeraSort")
	for i := 0; i < b.N; i++ {
		rs := harness.Compare(mix,
			[]harness.PolicyKind{harness.PolHardware, harness.PolSoftware, harness.PolFleetIO}, opt)
		hw, fio := rs[0], rs[2]
		b.ReportMetric(fio.AvgUtil/hw.AvgUtil, "fleetio-util-gain")
		b.ReportMetric(fio.LatencyTenantP99()/hw.LatencyTenantP99(), "fleetio-p99-norm")
	}
}

// BenchmarkFigure11Through13 runs the full five-policy lineup on one pair;
// the same runs back Figures 11, 12, and 13.
func BenchmarkFigure11Through13(b *testing.B) {
	opt := benchPretrained(b)
	mix := harness.Pair("VDI-Web", "TeraSort")
	for i := 0; i < b.N; i++ {
		rs := harness.Compare(mix, harness.AllPolicies(), opt)
		b.ReportMetric(rs[4].AvgUtil*100, "fleetio-util-%")
		b.ReportMetric(rs[4].LatencyTenantP99(), "fleetio-p99-ms")
		b.ReportMetric(rs[4].BandwidthTenant(), "fleetio-bi-MB/s")
	}
}

// BenchmarkFigure14 runs the scalability mix3 (4 vSSDs).
func BenchmarkFigure14(b *testing.B) {
	opt := benchPretrained(b)
	mix := harness.Table5Mixes()[2]
	for i := 0; i < b.N; i++ {
		rs := harness.Compare(mix, []harness.PolicyKind{harness.PolHardware, harness.PolFleetIO}, opt)
		b.ReportMetric(rs[1].AvgUtil/rs[0].AvgUtil, "util-gain-4vssd")
	}
}

// BenchmarkFigure15 runs the reward ablation on one pair.
func BenchmarkFigure15(b *testing.B) {
	opt := benchPretrained(b)
	mix := harness.Pair("YCSB", "MLPrep")
	kinds := []harness.PolicyKind{harness.PolFleetIOCustomizedLocal, harness.PolFleetIOUnifiedGlobal, harness.PolFleetIO}
	for i := 0; i < b.N; i++ {
		rs := harness.Compare(mix, kinds, opt)
		b.ReportMetric(rs[2].AvgUtil/rs[0].AvgUtil, "full-vs-local-util")
	}
}

// BenchmarkFigure16 runs the mixed hardware/software isolation topology.
func BenchmarkFigure16(b *testing.B) {
	opt := benchPretrained(b)
	for i := 0; i < b.N; i++ {
		rows := harness.Figure16(io.Discard, opt)
		b.ReportMetric(rows[2].AvgUtil/rows[0].AvgUtil, "fleetio-vs-mixed-util")
	}
}

// BenchmarkFigure17 runs one robustness transfer case.
func BenchmarkFigure17(b *testing.B) {
	opt := benchPretrained(b)
	for i := 0; i < b.N; i++ {
		res := harness.RunTransfer("TeraSort", "VDI-Web", "YCSB", opt)
		b.ReportMetric(res.BandwidthTenant(), "transfer-bi-MB/s")
	}
}

// BenchmarkFigureFleet runs the rack-scale fleet scenario — 16 device
// shards, least-loaded placement, admission and cold migration live —
// and reports aggregate simulated I/O throughput per wall-second, the
// scaling number of the multi-device layer.
func BenchmarkFigureFleet(b *testing.B) {
	opt := benchOptions()
	opt.FleetDevices = 16
	var completed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := harness.FleetScenario(fleet.PlaceLeastLoaded, opt)
		completed += st.Completed
		if !st.Balanced() {
			b.Fatalf("fleet ledger imbalance: %+v", st)
		}
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "simIOPS/s")
}

// BenchmarkFigureTiers runs the hybrid-rack scenario — an 8-device
// SLC-like/QLC-like rack under all three tier policies (static-pin,
// watermark, learned) per iteration — and reports the learned policy's
// latency-class mean P99, the figure's comparison axis. The learned
// sub-run trains its per-shard agent stacks online, so this also tracks
// the placement-head RL cost.
func BenchmarkFigureTiers(b *testing.B) {
	opt := benchOptions()
	var out strings.Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		harness.FigureTiers(&out, opt)
	}
	st := harness.TierScenario(fleet.TierLearned, opt)
	if !st.Balanced() {
		b.Fatalf("tier ledger imbalance: %+v", st)
	}
	b.ReportMetric(st.LsMeanP99Ms, "learned-lsP99-ms")
}

// fleetFingerprint pins every fleet counter and per-device float for byte
// comparison across worker counts inside BenchmarkFleetScaling.
func fleetFingerprint(st fleet.Stats) string {
	var sb strings.Builder
	st.Render(&sb)
	for _, d := range st.PerDevice {
		fmt.Fprintf(&sb, "dev %d tenants=%d util=%.6f bytes=%d completed=%d\n",
			d.Device, d.Tenants, d.MeanUtil, d.BytesMoved, d.Completed)
	}
	return sb.String()
}

// BenchmarkFleetScaling measures the persistent shard-worker runtime on
// racks of 64 and 256 devices at 1/2/4/8 workers: aggregate simulated
// I/O throughput per wall-second, speedup over the sequential run, and
// per-worker scaling efficiency. The workers=1 sub-benchmark doubles as
// the byte-identity oracle — every other worker count must reproduce its
// output exactly (check.sh smokes the workers 1 vs 4 pair). Scaling
// numbers are only meaningful on multi-core hosts; the structure (static
// contiguous shard ranges, one barrier epoch per quantum) is what is
// under test here.
func BenchmarkFleetScaling(b *testing.B) {
	for _, devices := range []int{64, 256} {
		var baseSecs float64
		var baseOut string
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("devices=%d/workers=%d", devices, workers), func(b *testing.B) {
				cfg := fleet.Config{
					Devices:   devices,
					Seed:      1,
					Duration:  1 * sim.Second,
					Placement: fleet.PlaceLeastLoaded,
					Migration: true,
					Workers:   workers,
				}
				var completed int64
				var out string
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st := fleet.New(cfg).Run()
					completed += st.Completed
					if !st.Balanced() {
						b.Fatalf("fleet ledger imbalance: %+v", st)
					}
					if i == 0 {
						b.StopTimer()
						out = fleetFingerprint(st)
						b.StartTimer()
					}
				}
				secs := b.Elapsed().Seconds() / float64(b.N)
				b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "simIOPS/s")
				if workers == 1 {
					baseSecs, baseOut = secs, out
					return
				}
				if baseOut != "" && out != baseOut {
					b.Fatalf("workers=%d output diverged from workers=1:\n%s\nvs:\n%s", workers, out, baseOut)
				}
				if baseSecs > 0 && secs > 0 {
					speedup := baseSecs / secs
					b.ReportMetric(speedup, "speedup-vs-w1")
					b.ReportMetric(speedup/float64(workers), "scale-eff")
				}
			})
		}
	}
}

// BenchmarkFigureWorkloads runs the temporal-realism ladder — steady,
// diurnal, bursty, and trace replay on one pair under FleetIO, each run
// classified by the workload-type model — and reports simulated request
// throughput per wall-second across the whole ladder.
func BenchmarkFigureWorkloads(b *testing.B) {
	opt := benchPretrained(b)
	mix := harness.Pair("YCSB", "TeraSort")
	harness.TypeModel() // train the clusterer outside the timed loop
	var completed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := harness.WorkloadScenario(mix, opt)
		for _, row := range rows {
			if len(row.TypeLabels) != len(row.Result.Tenants) {
				b.Fatalf("%s: %d labels for %d tenants", row.Level, len(row.TypeLabels), len(row.Result.Tenants))
			}
			for _, t := range row.Result.Tenants {
				completed += t.Completed
			}
		}
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "simIOPS/s")
}

// --- §4.7 overhead microbenchmarks -----------------------------------

func overheadNet() (*rl.PPO, []float64) {
	rng := sim.NewRNG(1)
	dim := core.DefaultHistoryWindows * core.StatesPerWindow
	net := nn.NewActorCritic(dim, 50,
		[]int{len(core.HarvestLevels), len(core.HarvestLevels), len(core.PriorityLevels)}, rng)
	state := make([]float64, dim)
	for i := range state {
		state[i] = rng.Float64()
	}
	return rl.New(net, rl.DefaultConfig(), rng), state
}

// BenchmarkInference measures one per-window policy inference (paper:
// 1.1 ms on their board's host CPU).
func BenchmarkInference(b *testing.B) {
	ppo, state := overheadNet()
	ppo.ActGreedy(state) // size the reusable scratch outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ppo.ActGreedy(state)
	}
}

// BenchmarkFineTune measures one PPO fine-tuning update over 10 windows of
// transitions (paper: 51.2 ms per 10 windows).
func BenchmarkFineTune(b *testing.B) {
	ppo, state := overheadNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var buf rl.Buffer
		for j := 0; j < 32; j++ {
			a, lp, v := ppo.Act(state)
			buf.Add(rl.Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: 0.5})
		}
		b.StartTimer()
		ppo.Train(&buf, 0)
	}
}

func overheadPlatform() *vssd.Platform {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.BlocksPerChip = 128
	pc.Flash.PagesPerBlock = 64
	p := vssd.NewPlatform(eng, pc)
	p.AddVSSD(vssd.Config{Name: "home", Channels: ChannelRange(0, 8)})
	p.AddVSSD(vssd.Config{Name: "harv", Channels: ChannelRange(8, 16)})
	return p
}

// BenchmarkGSBCreate measures ghost-superblock creation + reclamation
// (paper: <1 µs, metadata only).
func BenchmarkGSBCreate(b *testing.B) {
	p := overheadPlatform()
	home := p.VSSD(0).Tenant()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GSB().SetHarvestable(home, 1)
		p.GSB().SetHarvestable(home, 0)
	}
}

// BenchmarkAdmissionBatch measures processing a batch of 1000 actions
// (paper: 0.8 ms).
func BenchmarkAdmissionBatch(b *testing.B) {
	p := overheadPlatform()
	adm := admission.NewController(p, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Harvest targets of 0 make the batch metadata-only, isolating the
		// controller's own cost as §4.7 does.
		for j := 0; j < 1000; j++ {
			adm.Submit(vssd.Action{VSSD: j % 2, Kind: vssd.ActHarvest, BW: 0})
		}
		b.StartTimer()
		adm.Flush()
	}
}

// --- Ablation benchmarks (DESIGN.md design choices) -------------------

// BenchmarkGSBPoolLockFree exercises the lock-free pool under concurrent
// push/pop (the paper's Harris-list design). It is kept as an ablation:
// the production gSB pool switched to the mutex design below after this
// pair showed the lock-free list losing on both latency and allocation
// (node-per-push escape); see internal/gsb/pool.go.
func BenchmarkGSBPoolLockFree(b *testing.B) {
	var l lockfree.List[int]
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				l.PushFront(i)
			} else {
				l.PopFront()
			}
			i++
		}
	})
}

// BenchmarkGSBPoolMutex models the mutex-guarded pool that internal/gsb
// now uses in production (18.5 ns/op and 0 B/op vs 38.4 ns/op and 12 B/op
// for the lock-free variant on the trajectory baseline).
func BenchmarkGSBPoolMutex(b *testing.B) {
	var mu sync.Mutex
	var list []int
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			if i%2 == 0 {
				list = append(list, i)
			} else if len(list) > 0 {
				list = list[:len(list)-1]
			}
			mu.Unlock()
			i++
		}
	})
}

// BenchmarkAdmissionReorderAblation compares harvest success with and
// without the Make_Harvestable-first batch reordering (§3.5).
func BenchmarkAdmissionReorderAblation(b *testing.B) {
	for _, reorder := range []bool{true, false} {
		name := "reorder"
		if !reorder {
			name = "no-reorder"
		}
		b.Run(name, func(b *testing.B) {
			succ := 0
			for i := 0; i < b.N; i++ {
				p := overheadPlatform()
				adm := admission.NewController(p, nil)
				adm.Reorder = reorder
				bw := p.FlashConfig().ChannelBandwidth()
				adm.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
				adm.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
				adm.Flush()
				if p.GSB().HarvestedChannels(1) > 0 {
					succ++
				}
			}
			b.ReportMetric(float64(succ)/float64(b.N), "harvest-success")
		})
	}
}

// BenchmarkGCHarvestedFirstAblation compares write amplification with and
// without the §3.7 harvested-first victim policy under a harvesting churn.
func BenchmarkGCHarvestedFirstAblation(b *testing.B) {
	for _, hf := range []bool{true, false} {
		name := "harvested-first"
		if !hf {
			name = "greedy-only"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				pc := vssd.DefaultPlatformConfig()
				pc.Flash.Channels = 4
				pc.Flash.BlocksPerChip = 32
				pc.Flash.PagesPerBlock = 32
				p := vssd.NewPlatform(eng, pc)
				p.FTL().HarvestedFirst = hf
				home := p.AddVSSD(vssd.Config{Name: "home", Channels: ChannelRange(0, 2)})
				harv := p.AddVSSD(vssd.Config{Name: "harv", Channels: ChannelRange(2, 4)})
				_ = home.Tenant().Prefill(0.5, 0.3, sim.NewRNG(1))
				_ = harv.Tenant().Prefill(0.5, 0.3, sim.NewRNG(2))
				p.Apply(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: p.FlashConfig().ChannelBandwidth()})
				p.Apply(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: p.FlashConfig().ChannelBandwidth()})
				lpn := 0
				var issue func(v *vssd.VSSD)
				issue = func(v *vssd.VSSD) {
					v.Submit(&vssd.Request{Write: true, LPN: lpn % 2000, Pages: 4,
						OnComplete: func(_ *vssd.Request, _ sim.Time) { issue(v) }})
					lpn += 4
				}
				for j := 0; j < 4; j++ {
					issue(home)
					issue(harv)
				}
				eng.RunUntil(2 * sim.Second)
				b.ReportMetric(p.FTL().Stats().WriteAmplification(), "write-amp")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput of the
// simulation substrate.
func BenchmarkSimulatorThroughput(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(100, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(100, tick)
	eng.Run()
}
