package fleetio

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/harness"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
	"repro/internal/workload"
)

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// SimConfig sizes the simulated SSD. The defaults mirror the paper's
// Table 3 device (16 channels, 4 chips/channel, 16 KB pages, queue depth
// 16, 20% overprovisioning) with a scaled-down block count.
type SimConfig struct {
	Channels        int
	ChipsPerChannel int
	BlocksPerChip   int
	PagesPerBlock   int
	PageSizeBytes   int
	// DecisionWindow is the RL window (paper default: 2 s).
	DecisionWindow Time
	Seed           int64
}

// DefaultSimConfig mirrors Table 3 with a fast block count.
func DefaultSimConfig() SimConfig {
	fc := flash.DefaultConfig()
	return SimConfig{
		Channels:        fc.Channels,
		ChipsPerChannel: fc.ChipsPerChannel,
		BlocksPerChip:   64,
		PagesPerBlock:   64,
		PageSizeBytes:   fc.PageSize,
		DecisionWindow:  250 * Millisecond,
		Seed:            1,
	}
}

// TenantConfig describes one vSSD and its workload.
type TenantConfig struct {
	// Workload is one of Workloads() (empty = no traffic generator; drive
	// the tenant yourself via Submit).
	Workload string
	// Channels the tenant owns (hardware isolation) or shares (software).
	Channels []int
	// SoftwareIsolated shares the channels behind a token bucket.
	SoftwareIsolated bool
	// RateLimitBps throttles the tenant (0 = unthrottled).
	RateLimitBps float64
	// SLO is the tail-latency objective (0 = calibrate or none).
	SLO Time
	// LogicalPages overrides the derived logical capacity.
	LogicalPages int
	// PrefillFrac warms the FTL before the run (0 = cold).
	PrefillFrac float64
}

// ChannelRange returns [lo, hi).
func ChannelRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

// Workloads lists the built-in workload profiles (Table 4 plus the
// pretraining set).
func Workloads() []string { return workload.Names() }

// Tenant is one vSSD with an optional traffic generator.
type Tenant struct {
	Name string
	v    *vssd.VSSD
	gen  *workload.Generator
	rec  *trace.Recorder
	sim  *Simulator
}

// Submit issues a host request directly (for custom drivers).
func (t *Tenant) Submit(write bool, lpn, pages int, onComplete func(finished Time)) {
	t.v.Submit(&vssd.Request{Write: write, LPN: lpn, Pages: pages,
		OnComplete: func(_ *vssd.Request, at sim.Time) {
			if onComplete != nil {
				onComplete(at)
			}
		}})
}

// SetSLO installs a latency objective.
func (t *Tenant) SetSLO(slo Time) { t.v.SetSLO(slo) }

// Completed returns finished requests since the last reset.
func (t *Tenant) Completed() int64 { return t.v.Completed() }

// P99 returns the tenant's P99 latency so far.
func (t *Tenant) P99() Time { return t.v.TotalHist().P99() }

// Simulator is the top-level entry point: one shared SSD, its tenants,
// and a management policy, all on a deterministic virtual clock.
type Simulator struct {
	cfg     SimConfig
	eng     *sim.Engine
	plat    *vssd.Platform
	tenants []*Tenant
	runner  *core.Runner
	fleetio *core.FleetIO
	started bool
	resetAt Time
	rng     *sim.RNG
}

// NewSimulator builds an empty platform.
func NewSimulator(cfg SimConfig) *Simulator {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = cfg.Channels
	pc.Flash.ChipsPerChannel = cfg.ChipsPerChannel
	pc.Flash.BlocksPerChip = cfg.BlocksPerChip
	pc.Flash.PagesPerBlock = cfg.PagesPerBlock
	if cfg.PageSizeBytes > 0 {
		pc.Flash.PageSize = cfg.PageSizeBytes
	}
	return &Simulator{
		cfg:  cfg,
		eng:  eng,
		plat: vssd.NewPlatform(eng, pc),
		rng:  sim.NewRNG(cfg.Seed),
	}
}

// AddTenant creates a vSSD (optionally with a workload generator).
func (s *Simulator) AddTenant(name string, cfg TenantConfig) *Tenant {
	vc := vssd.Config{
		Name:         name,
		Channels:     cfg.Channels,
		SLO:          cfg.SLO,
		RateLimitBps: cfg.RateLimitBps,
		LogicalPages: cfg.LogicalPages,
	}
	if cfg.SoftwareIsolated {
		vc.Isolation = vssd.SoftwareIsolated
	}
	var prof workload.Profile
	if cfg.Workload != "" {
		prof = workload.ByName(cfg.Workload)
		vc.MaxInflightPages = prof.MaxInflightPages
	}
	v := s.plat.AddVSSD(vc)
	if cfg.PrefillFrac > 0 {
		if err := v.Tenant().Prefill(cfg.PrefillFrac, 0.3, s.rng.Split(int64(len(s.tenants)+50))); err != nil {
			panic(err)
		}
	}
	t := &Tenant{Name: name, v: v, sim: s}
	if cfg.Workload != "" {
		t.gen = workload.NewGenerator(s.eng, v, prof, s.rng.Split(int64(len(s.tenants))))
		t.rec = trace.NewRecorder(10_000)
		t.gen.Record(t.rec)
	}
	s.tenants = append(s.tenants, t)
	return t
}

// FleetIOOptions configures the RL policy.
type FleetIOOptions struct {
	// Pretrained seeds all agents (see LoadModel / PretrainedModel).
	Pretrained *Model
	// Train keeps PPO fine-tuning online (default true).
	NoTraining bool
	// Beta overrides the Eq. 2 mixing coefficient (0 = paper default 0.6).
	Beta float64
	Seed int64
}

// Model is a trained FleetIO network.
type Model struct{ net *nn.ActorCritic }

// Params returns the trainable parameter count (paper: ~9K).
func (m *Model) Params() int { return m.net.NumParams() }

// Save writes the model to a file.
func (m *Model) Save(path string) error { return m.net.SaveFile(path) }

// LoadModel reads a model produced by cmd/fleettrain or Model.Save.
func LoadModel(path string) (*Model, error) {
	net, err := nn.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{net: net}, nil
}

// PretrainedModel pretrains (once per process) on the paper's held-out
// workloads and returns the shared model.
func PretrainedModel() *Model {
	return &Model{net: harness.PretrainedModel()}
}

// UseFleetIO installs the paper's multi-agent RL policy with admission
// control. Call after all tenants are added and before Run.
func (s *Simulator) UseFleetIO(opts FleetIOOptions) {
	tm, alphas := harness.TypeModel()
	cfg := core.FleetIOConfig{
		Train:          !opts.NoTraining,
		TrainEvery:     10,
		TypeEvery:      5,
		Beta:           opts.Beta,
		Seed:           opts.Seed,
		TypeModel:      tm,
		AlphaByCluster: alphas,
	}
	if opts.Pretrained != nil {
		cfg.Pretrained = opts.Pretrained.net
	}
	f := core.NewFleetIO(s.plat, cfg)
	for i, t := range s.tenants {
		if t.rec != nil {
			f.SetRecorder(i, t.rec)
		}
	}
	s.fleetio = f
	s.runner = &core.Runner{
		Plat:   s.plat,
		Adm:    admission.NewController(s.plat, nil),
		Policy: f,
		Window: s.cfg.DecisionWindow,
	}
}

// UseStatic installs a do-nothing policy (hardware/software isolation are
// then purely a matter of tenant configuration).
func (s *Simulator) UseStatic(name string) {
	s.runner = &core.Runner{
		Plat:   s.plat,
		Policy: core.StaticPolicy{PolicyName: name},
		Window: s.cfg.DecisionWindow,
	}
}

// Run advances virtual time by d, starting workloads and the policy on
// first call, and returns a report over the whole elapsed run.
func (s *Simulator) Run(d Time) *Report {
	if s.runner == nil {
		s.UseStatic("none")
	}
	if !s.started {
		s.started = true
		for _, t := range s.tenants {
			if t.gen != nil {
				t.gen.Start()
			}
		}
		s.runner.Start()
	}
	s.eng.RunUntil(s.eng.Now() + d)
	return s.Report()
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.eng.Now() }

func (s *Simulator) tenantByName(name string) *Tenant {
	for _, t := range s.tenants {
		if t.Name == name {
			return t
		}
	}
	panic("fleetio: unknown tenant " + name)
}

// MakeHarvestable executes a manual Make_Harvestable action: the named
// tenant's harvestable budget becomes `channels` flash channels (0
// reclaims everything, lazily for dirty blocks).
func (s *Simulator) MakeHarvestable(tenant string, channels int) {
	t := s.tenantByName(tenant)
	bw := float64(channels) * s.plat.FlashConfig().ChannelBandwidth()
	s.plat.Apply(vssd.Action{VSSD: t.v.ID(), Kind: vssd.ActMakeHarvestable, BW: bw})
}

// Harvest executes a manual Harvest action: the named tenant targets
// `channels` harvested flash channels.
func (s *Simulator) Harvest(tenant string, channels int) {
	t := s.tenantByName(tenant)
	bw := float64(channels) * s.plat.FlashConfig().ChannelBandwidth()
	s.plat.Apply(vssd.Action{VSSD: t.v.ID(), Kind: vssd.ActHarvest, BW: bw})
}

// SetPriority executes a manual Set_Priority action (1=low, 2=medium,
// 3=high).
func (s *Simulator) SetPriority(tenant string, level int) {
	t := s.tenantByName(tenant)
	s.plat.Apply(vssd.Action{VSSD: t.v.ID(), Kind: vssd.ActSetPriority, Level: level})
}

// ResetMetrics clears per-tenant run counters (e.g. after a warmup phase);
// subsequent reports cover only the interval since this call.
func (s *Simulator) ResetMetrics() {
	s.resetAt = s.eng.Now()
	for _, t := range s.tenants {
		t.v.ResetTotals()
		t.v.Rotate()
	}
}

// Report is a summary of the run so far.
type Report struct {
	Elapsed     Time
	Utilization float64
	Tenants     []TenantReport
}

// TenantReport is one tenant's summary.
type TenantReport struct {
	Name          string
	Completed     int64
	BandwidthMBps float64
	MeanMs        float64
	P95Ms         float64
	P99Ms         float64
	SLOViolations float64
	HarvestedChls int
	LentChls      int
}

// Report builds the current summary without advancing time. Rates cover
// the interval since the last ResetMetrics (or the start of the run).
func (s *Simulator) Report() *Report {
	now := s.eng.Now()
	r := &Report{Elapsed: now - s.resetAt}
	fc := s.plat.FlashConfig()
	peak := fc.ChannelBandwidth() * float64(fc.Channels)
	var total int64
	dur := float64(now-s.resetAt) / 1e9
	if dur <= 0 {
		dur = 1
	}
	for _, t := range s.tenants {
		h := t.v.TotalHist()
		tr := TenantReport{
			Name:          t.Name,
			Completed:     t.v.Completed(),
			BandwidthMBps: float64(t.v.TotalBytesMoved()) / dur / 1e6,
			MeanMs:        h.Mean() / 1e6,
			P95Ms:         float64(h.P95()) / 1e6,
			P99Ms:         float64(h.P99()) / 1e6,
			HarvestedChls: s.plat.GSB().HarvestedChannels(t.v.ID()),
			LentChls:      s.plat.GSB().HarvestableChannels(t.v.ID()),
		}
		if h.Count() > 0 && t.v.SLO() > 0 {
			tr.SLOViolations = float64(h.CountAbove(t.v.SLO())) / float64(h.Count())
		}
		total += t.v.TotalBytesMoved()
		r.Tenants = append(r.Tenants, tr)
	}
	r.Utilization = float64(total) / (peak * dur)
	return r
}

// String renders the report as a table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed %.2fs, SSD utilization %.1f%%\n", float64(r.Elapsed)/1e9, r.Utilization*100)
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %8s %8s %8s %6s %5s\n",
		"tenant", "completed", "BW MB/s", "mean ms", "P95 ms", "P99 ms", "SLO vio", "harv", "lent")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-14s %10d %10.1f %8.2f %8.2f %8.2f %7.2f%% %6d %5d\n",
			t.Name, t.Completed, t.BandwidthMBps, t.MeanMs, t.P95Ms, t.P99Ms,
			t.SLOViolations*100, t.HarvestedChls, t.LentChls)
	}
	return b.String()
}

// Experiment aliases: the full harness used by fleetbench is available to
// library users for custom studies.
type (
	// ExperimentOptions scales a harness experiment.
	ExperimentOptions = harness.Options
	// ExperimentResult is one (mix, policy) outcome.
	ExperimentResult = harness.Result
	// Mix is a set of collocated workloads.
	Mix = harness.MixSpec
	// Policy selects a §4.1 comparison policy.
	Policy = harness.PolicyKind
)

// The comparison policies.
const (
	PolicyHardwareIsolation = harness.PolHardware
	PolicySSDKeeper         = harness.PolSSDKeeper
	PolicyAdaptive          = harness.PolAdaptive
	PolicySoftwareIsolation = harness.PolSoftware
	PolicyFleetIO           = harness.PolFleetIO
)

// DefaultExperimentOptions returns fast deterministic settings.
func DefaultExperimentOptions() ExperimentOptions { return harness.DefaultOptions() }

// WithPretrainedOptions seeds experiment options with the process-wide
// pretrained FleetIO model (training it on first use).
func WithPretrainedOptions(opt ExperimentOptions) ExperimentOptions {
	return harness.WithPretrained(opt)
}

// NewMix pairs workloads into a collocation.
func NewMix(label string, workloads ...string) Mix {
	return harness.MixSpec{Label: label, Workloads: workloads}
}

// RunExperiment calibrates SLOs hardware-isolated, then measures the mix
// under the policy.
func RunExperiment(mix Mix, policy Policy, opt ExperimentOptions) ExperimentResult {
	slos := harness.Calibrate(mix, opt)
	return harness.RunOne(mix, policy, slos, opt)
}

// CompareExperiment runs several policies with one shared calibration.
func CompareExperiment(mix Mix, policies []Policy, opt ExperimentOptions) []ExperimentResult {
	return harness.Compare(mix, policies, opt)
}

// SortTenantsByName orders a report deterministically (helper for tests).
func (r *Report) SortTenantsByName() {
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Name < r.Tenants[j].Name })
}

// WorkloadType describes how the §3.4 classifier types a workload.
type WorkloadType struct {
	// Cluster is the k-means cluster id.
	Cluster int
	// Alpha is the reward coefficient agents of this type use (Eq. 1).
	Alpha float64
}

// ClassifyWorkloads runs the workload-type pipeline on every built-in
// profile and returns each one's cluster and fine-tuned α.
func ClassifyWorkloads() map[string]WorkloadType {
	tm, alphas := harness.TypeModel()
	out := make(map[string]WorkloadType, len(workload.Names()))
	for _, name := range workload.Names() {
		c := tm.WorkloadCluster[name]
		a, ok := alphas[c]
		if !ok {
			a = core.UnifiedAlpha
		}
		out[name] = WorkloadType{Cluster: c, Alpha: a}
	}
	return out
}
