// Package fleetio is an open-source reproduction of "FleetIO: Managing
// Multi-Tenant Cloud Storage with Multi-Agent Reinforcement Learning"
// (ASPLOS 2025). It provides, in pure Go with no dependencies outside the
// standard library:
//
//   - a discrete-event open-channel SSD simulator (channels, chips, NAND
//     timing, per-channel queues) standing in for the paper's programmable
//     SSD board;
//   - a full FTL with out-of-place updates, striped write allocation, and
//     lazy greedy garbage collection that prioritizes harvested blocks;
//   - the ghost superblock (gSB) abstraction with allocation-free pooled
//     metadata, admission control for RL actions, and the vSSD
//     virtualization layer (hardware/software isolation, token buckets,
//     stride scheduling, priority scheduling);
//   - a from-scratch PPO implementation (multi-discrete actor-critic,
//     GAE, Adam) with batched compute kernels bit-identical to the
//     scalar path, and the FleetIO multi-agent policy: Table 1 states,
//     Table 2 actions, the Eq. 1/Eq. 2 rewards, and §3.4 workload-type
//     reward fine-tuning via k-means clustering;
//   - a rack-scale fleet layer (internal/fleet): device shards under one
//     virtual clock advanced by a persistent worker pool between epoch
//     barriers, with placement baselines, slot-based fleet admission,
//     cold vSSD migration, and hybrid SLC-like/QLC-like device classes
//     with learned promote/demote placement — byte-identical at any
//     worker count;
//   - synthetic generators for the paper's nine cloud workloads — with
//     temporal overlays (diurnal harmonics, MMPP bursts) and deterministic
//     replay of recorded block traces (binary or MSR-/Alibaba-style CSV;
//     docs/WORKLOADS.md is the reference) — and an experiment harness
//     that regenerates every measured figure;
//   - an observability layer (internal/obs): per-vSSD decision tracing
//     with JSONL export, virtual-time telemetry sampling, and live
//     Prometheus-format /metrics plus pprof endpoints on every binary
//     (docs/OBSERVABILITY.md is the reference).
//
// # Quick start
//
//	import fleetio "repro"
//
//	sim := fleetio.NewSimulator(fleetio.DefaultSimConfig())
//	ls := sim.AddTenant("ycsb", fleetio.TenantConfig{Workload: "YCSB", Channels: fleetio.ChannelRange(0, 8)})
//	bi := sim.AddTenant("sort", fleetio.TenantConfig{Workload: "TeraSort", Channels: fleetio.ChannelRange(8, 16)})
//	sim.UseFleetIO(fleetio.FleetIOOptions{})
//	report := sim.Run(10 * fleetio.Second)
//	fmt.Println(report)
//	_ = ls
//	_ = bi
//
// # Reproducing the paper
//
// cmd/fleetbench regenerates every figure; cmd/fleettrain pretrains the
// PPO model; cmd/fleetcluster reproduces the workload clustering;
// cmd/fleetsim runs one collocation interactively; and cmd/fleettrace
// converts, inspects, and synthesizes block traces. bench_test.go holds a
// testing.B benchmark per figure plus the §4.7 overhead microbenchmarks.
// The simulator binaries accept -http to serve live /metrics and pprof
// while they run, and -workload/-trace to overlay a temporal arrival
// shape or replay a recorded trace; fleetsim additionally accepts
// -decisions to dump the decision log as JSONL.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// paper-vs-reproduction numbers.
package fleetio
