// Command fleetsim runs a single collocation experiment and prints the
// per-tenant outcome — the quickest way to poke at the simulator.
//
// Usage:
//
//	fleetsim -mix YCSB,TeraSort -policy fleetio -seconds 10
//	fleetsim -http :8080 -decisions decisions.jsonl
//	fleetsim -workload bursty -seconds 10
//	fleetsim -trace trace.bin -seconds 10
//	fleetsim -fleet 64 -placement least-loaded -seconds 4
//
// With -http the run exports live telemetry on /metrics (Prometheus text
// format) and the pprof handlers on /debug/pprof/, and keeps serving after
// the results print until interrupted. -decisions writes every recorded
// decision event as JSONL (see docs/OBSERVABILITY.md for both schemas).
//
// -workload overlays a temporal shape (steady, diurnal, bursty, or replay)
// on every tenant's arrival process; -trace replays a recorded block trace
// (binary or CSV, converted on the fly — see docs/WORKLOADS.md) through
// each tenant instead of the synthetic generators. SLO calibration always
// runs on the steady shape, matching §3.3.1.
//
// -parallel bounds the worker pool: independent harness runs in flight at
// once, or, with -fleet, device shards advanced concurrently per epoch
// (0 = one per CPU, 1 = sequential; output is byte-identical either way).
// -fleet-workers sizes the fleet's persistent shard-worker pool separately
// from -parallel, and -pin locks each shard worker to an OS thread — both
// are scheduling knobs only and never change the simulated output.
//
// -faults injects deterministic NAND failures into the measured run:
// "light", "heavy", or a k=v spec (see internal/fault.ParseSpec).
//
// -fleet N switches to the rack-scale simulation: N devices under one
// virtual clock with fleet admission and cold migration, the placement
// baseline chosen by -placement (least-loaded, round-robin, or hash).
// -mix/-policy/-faults/-trace/-workload/-decisions apply only to
// single-device runs.
//
// -tiers (with -fleet) makes the rack hybrid: a fast SLC-like device
// class plus a dense QLC-like class, with promote/demote driven by
// -tier-policy (static-pin, watermark, or learned). -placement is
// ignored on hybrid racks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetsim: ")
	mixFlag := flag.String("mix", "YCSB,TeraSort", "comma-separated workload names")
	policy := flag.String("policy", "fleetio", "hardware | software | adaptive | ssdkeeper | fleetio")
	seconds := flag.Float64("seconds", 8, "measured virtual seconds")
	seed := flag.Int64("seed", 1, "seed")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof/ on this address (e.g. :8080)")
	decisionsPath := flag.String("decisions", "", "write decision events to this JSONL file")
	workloadFlag := flag.String("workload", "steady", "temporal arrival shape: steady, diurnal, bursty, or replay")
	traceFile := flag.String("trace", "", "replay this block trace (binary or CSV) through every tenant")
	parallel := flag.Int("parallel", 0, "worker pool size: harness runs, or fleet shards per epoch (0 = one per CPU, 1 = sequential)")
	faults := flag.String("faults", "", "NAND fault injection: off, light, heavy, or k=v list (pfail=,efail=,rretry=,tmo=,maxretries=,rstep=,stall=,seed=)")
	fleetN := flag.Int("fleet", 0, "run a rack-scale fleet of N devices instead of a single-device experiment")
	placement := flag.String("placement", "least-loaded", "fleet placement baseline: least-loaded, round-robin, or hash (with -fleet)")
	tiers := flag.Bool("tiers", false, "make the -fleet rack hybrid (SLC-like + QLC-like device classes) with promote/demote placement")
	tierPolicy := flag.String("tier-policy", "learned", "tier promote/demote policy: static-pin, watermark, or learned (with -tiers)")
	fleetWorkers := flag.Int("fleet-workers", 0, "persistent shard-worker pool size for -fleet runs, overriding -parallel (0 = use -parallel, 1 = sequential; output is byte-identical)")
	pin := flag.Bool("pin", false, "lock each fleet shard worker to an OS thread (scheduling hint; output is unchanged)")
	scalarRL := flag.Bool("scalar-rl", false, "use the scalar (per-agent, per-sample) RL kernels instead of the batched ones; output is bit-identical either way")
	flag.Parse()

	faultCfg, err := fault.ParseSpec(*faults)
	if err != nil {
		log.Fatalf("parsing -faults: %v", err)
	}
	shape, err := workload.ParseShape(*workloadFlag)
	if err != nil {
		log.Fatalf("parsing -workload: %v", err)
	}

	if *fleetN > 0 {
		pk, err := fleet.ParsePlacement(*placement)
		if err != nil {
			log.Fatalf("parsing -placement: %v", err)
		}
		opt := harness.DefaultOptions()
		opt.Seed = *seed
		opt.Duration = sim.Time(*seconds * 1e9)
		opt.Workers = *parallel
		opt.FleetDevices = *fleetN
		opt.FleetWorkers = *fleetWorkers
		opt.PinFleetWorkers = *pin
		opt.ScalarRL = *scalarRL
		var srv *obs.Server
		if *httpAddr != "" {
			opt.Obs = obs.NewObserver()
			var err error
			if srv, err = obs.Serve(*httpAddr, opt.Obs.Registry()); err != nil {
				log.Fatalf("serving -http: %v", err)
			}
			log.Printf("observability on http://%s (/metrics, /debug/pprof/)", srv.Addr())
		}
		var st fleet.Stats
		if *tiers {
			tp, err := fleet.ParseTierPolicy(*tierPolicy)
			if err != nil {
				log.Fatalf("parsing -tier-policy: %v", err)
			}
			log.Printf("running %d-device hybrid fleet, %s tier policy...", *fleetN, tp)
			st = harness.TierScenario(tp, opt)
		} else {
			log.Printf("running %d-device fleet, %s placement...", *fleetN, pk)
			st = harness.FleetScenario(pk, opt)
		}
		st.Render(os.Stdout)
		if srv != nil {
			log.Printf("run finished; serving on http://%s until interrupted", srv.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
			_ = srv.Close()
		}
		return
	}

	kinds := map[string]harness.PolicyKind{
		"hardware":  harness.PolHardware,
		"software":  harness.PolSoftware,
		"adaptive":  harness.PolAdaptive,
		"ssdkeeper": harness.PolSSDKeeper,
		"fleetio":   harness.PolFleetIO,
	}
	kind, ok := kinds[strings.ToLower(*policy)]
	if !ok {
		log.Fatalf("unknown policy %q", *policy)
	}

	names := strings.Split(*mixFlag, ",")
	mix := harness.MixSpec{Label: *mixFlag, Workloads: names}
	opt := harness.DefaultOptions()
	opt.Seed = *seed
	opt.Duration = sim.Time(*seconds * 1e9)
	opt.Workers = *parallel
	opt.WorkloadShape = shape
	opt.ScalarRL = *scalarRL
	if *traceFile != "" {
		recs, err := trace.LoadFile(*traceFile, flash.DefaultConfig().PageSize)
		if err != nil {
			log.Fatalf("loading -trace: %v", err)
		}
		opt.ReplayRecords = recs
		opt.WorkloadShape = workload.ShapeReplay
		log.Printf("replaying %d trace records through every tenant", len(recs))
	}
	if faultCfg.Enabled() {
		opt.Faults = &faultCfg
		opt.ErrorRateState = kind == harness.PolFleetIO
		log.Printf("injecting NAND faults: %s", *faults)
	}
	if kind == harness.PolFleetIO {
		opt = harness.WithPretrained(opt)
	}

	var srv *obs.Server
	if *httpAddr != "" || *decisionsPath != "" {
		opt.Obs = obs.NewObserver()
	}
	if *httpAddr != "" {
		var err error
		if srv, err = obs.Serve(*httpAddr, opt.Obs.Registry()); err != nil {
			log.Fatalf("serving -http: %v", err)
		}
		log.Printf("observability on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}

	log.Printf("calibrating SLOs (hardware-isolated run)...")
	slos := harness.Calibrate(mix, opt)
	log.Printf("running %s on %s...", kind, *mixFlag)
	var res harness.Result
	var fst harness.FaultRunStats
	if opt.Faults != nil {
		res, fst = harness.RunOneWithFaults(mix, kind, slos, opt)
	} else {
		res = harness.RunOne(mix, kind, slos, opt)
	}

	fmt.Printf("policy: %s   SSD utilization: %.1f%% (p95 %.1f%%)\n", res.Policy, res.AvgUtil*100, res.P95Util*100)
	fmt.Printf("%-16s %-22s %12s %10s %10s %10s %10s\n",
		"workload", "class", "BW MB/s", "mean ms", "P95 ms", "P99 ms", "SLO vio")
	for _, t := range res.Tenants {
		fmt.Printf("%-16s %-22s %12.1f %10.2f %10.2f %10.2f %9.2f%%\n",
			t.Workload, t.Class.String(), t.BandwidthMBps, t.MeanMs, t.P95Ms, t.P99Ms, t.VioRate*100)
	}
	if opt.Faults != nil {
		fmt.Printf("faults: pfail=%d efail=%d readRetryOps=%d timeouts=%d | retired=%d remapped=%d hostRetries=%d gcRetries=%d gcSkips=%d (balanced=%v)\n",
			fst.Device.ProgramFails, fst.Device.EraseFails, fst.Device.ReadRetryOps, fst.Device.ChipTimeouts,
			fst.Retired, fst.Remapped, fst.WriteRetries, fst.GCRetryPrograms, fst.GCRetrySkips, fst.Balanced())
	}

	if *decisionsPath != "" {
		f, err := os.Create(*decisionsPath)
		if err != nil {
			log.Fatalf("creating -decisions file: %v", err)
		}
		rec := opt.Obs.Recorder()
		if err := rec.WriteJSONL(f); err != nil {
			log.Fatalf("writing -decisions file: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing -decisions file: %v", err)
		}
		log.Printf("wrote %d decision events to %s", rec.Len(), *decisionsPath)
	}
	if srv != nil {
		// Keep the endpoint alive so the final metric values stay
		// scrapeable; interrupt to exit.
		log.Printf("run finished; serving on http://%s until interrupted", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		_ = srv.Close()
	}
}
