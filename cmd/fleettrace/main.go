// Command fleettrace converts, inspects, and synthesizes the block I/O
// traces the simulator replays (see docs/WORKLOADS.md for both formats).
//
// Usage:
//
//	fleettrace convert -in trace.csv -out trace.bin [-format auto|msr|ali|generic] [-page 16384]
//	fleettrace info -in trace.bin
//	fleettrace synth -workload YCSB -out trace.bin [-n 20000] [-seed 1]
//
// convert ingests a CSV block trace (MSR-Cambridge-style, Alibaba-style,
// or the generic at_ns,op,lpn,pages form — auto-sniffed by column count)
// and writes the compact binary format fleetsim/fleetbench replay.
// info prints a summary of any trace file (either format). synth
// generates a trace from one of the built-in workload profiles, for
// self-contained replay experiments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleettrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "convert":
		convert(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "synth":
		synth(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  fleettrace convert -in trace.csv -out trace.bin [-format auto|msr|ali|generic] [-page %d]
  fleettrace info -in trace.bin
  fleettrace synth -workload YCSB -out trace.bin [-n 20000] [-seed 1]
`, flash.DefaultConfig().PageSize)
	os.Exit(2)
}

func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace (CSV or binary)")
	out := fs.String("out", "", "output binary trace")
	format := fs.String("format", "auto", "CSV dialect: auto, msr, ali, or generic")
	page := fs.Int("page", flash.DefaultConfig().PageSize, "page size for byte-addressed CSV dialects")
	_ = fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("convert needs -in and -out")
	}

	var recs []trace.Record
	var err error
	if *format == "auto" {
		recs, err = trace.LoadFile(*in, *page)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		f, ferr := trace.FormatByName(*format)
		if ferr != nil {
			log.Fatal(ferr)
		}
		r, oerr := os.Open(*in)
		if oerr != nil {
			log.Fatal(oerr)
		}
		var clamped int
		recs, clamped, err = trace.ParseCSV(r, f, *page)
		r.Close()
		if err != nil {
			log.Fatal(err)
		}
		if clamped > 0 {
			log.Printf("clamped %d oversized rows to %d pages", clamped, trace.MaxRecordPages)
		}
	}

	w, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(w, recs); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d records to %s", len(recs), *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (CSV or binary)")
	page := fs.Int("page", flash.DefaultConfig().PageSize, "page size for byte-addressed CSV dialects")
	_ = fs.Parse(args)
	if *in == "" {
		log.Fatal("info needs -in")
	}
	recs, err := trace.LoadFile(*in, *page)
	if err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatal("empty trace")
	}
	var writes, pages, maxLPN int64
	for _, r := range recs {
		if r.Write {
			writes++
		}
		pages += int64(r.Pages)
		if end := r.LPN + int64(r.Pages); end > maxLPN {
			maxLPN = end
		}
	}
	span := recs[len(recs)-1].At - recs[0].At
	fmt.Printf("records=%d span=%.3fs writes=%.1f%% avgPages=%.1f maxLPN=%d\n",
		len(recs), float64(span)/1e9,
		100*float64(writes)/float64(len(recs)),
		float64(pages)/float64(len(recs)), maxLPN)
	if span > 0 {
		fmt.Printf("rate=%.0f IOPS bandwidth=%.1f MB/s (at page size %d)\n",
			float64(len(recs))/(float64(span)/1e9),
			float64(pages)*float64(*page)/(float64(span)/1e9)/1e6, *page)
	}
}

func synth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("workload", "YCSB", "profile to synthesize (see internal/workload)")
	out := fs.String("out", "", "output binary trace")
	n := fs.Int("n", 20000, "records to generate")
	seed := fs.Int64("seed", 1, "RNG seed")
	_ = fs.Parse(args)
	if *out == "" {
		log.Fatal("synth needs -out")
	}
	prof := workload.ByName(*name)
	recs := prof.SynthesizeTrace(*n, 1<<20, sim.NewRNG(*seed))
	w, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(w, recs); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d %s records to %s", len(recs), *name, *out)
}
