// Command fleetbench regenerates every measured table and figure of the
// FleetIO paper (§2.2 and §4) on the simulated platform.
//
// Usage:
//
//	fleetbench [-fig all|2|3|6|10|14|15|16|17|faults|fleet|tiers|workloads|overhead]
//	           [-seconds N] [-model file] [-parallel N] [-faults spec] [-fleet N]
//	           [-fleet-workers N] [-pin] [-workload shape] [-trace file]
//
// Figures 10–13 share one set of runs and are printed together.
//
// -parallel bounds the worker pool: independent experiment runs in flight
// at once, or, for -fig fleet, device shards advanced concurrently per
// epoch (0 = one per CPU, 1 = sequential; results are byte-identical at
// any worker count). -fleet-workers sizes the fleet's persistent
// shard-worker pool separately from -parallel, and -pin locks each shard
// worker to an OS thread — scheduling knobs only, never output changes.
//
// -faults injects deterministic NAND failures into the measured runs:
// "light", "heavy", or a k=v spec (see internal/fault.ParseSpec).
//
// -fig fleet runs the rack-scale scenario — -fleet N devices (default 64)
// under one virtual clock, comparing the placement baselines with fleet
// admission and cold migration live.
//
// -fig tiers runs the hybrid-rack scenario — -fleet N devices (default 8)
// split into a fast SLC-like class and a dense QLC-like class, comparing
// static-pin, adaptive-watermark, and learned promote/demote placement on
// latency-class tail latency at matched capacity.
//
// -fig workloads sweeps the temporal-realism ladder (steady, diurnal,
// bursty, trace replay) plus a cohort-churn rack with live traffic typing
// (see docs/WORKLOADS.md). -workload overlays one of those shapes on the
// other figures' runs; -trace substitutes a recorded block trace (binary
// or CSV) for the synthetic replay source.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/harness"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetbench: ")
	fig := flag.String("fig", "all", "figure to regenerate: all, 2, 3, 6, 10, 14, 15, 16, 17, faults, fleet, tiers, workloads, overhead")
	seconds := flag.Float64("seconds", 8, "measured virtual seconds per run")
	warmup := flag.Float64("warmup", 4, "virtual warmup seconds per run")
	windowMs := flag.Int("window", 250, "decision window in milliseconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	model := flag.String("model", "", "pretrained model file (from fleettrain); pretrains in-process when empty")
	httpAddr := flag.String("http", "", "serve live run telemetry on /metrics and pprof on /debug/pprof/")
	parallel := flag.Int("parallel", 0, "worker pool size: experiment runs, or fleet shards per epoch (0 = one per CPU, 1 = sequential)")
	faults := flag.String("faults", "", "NAND fault injection: off, light, heavy, or k=v list (pfail=,efail=,rretry=,tmo=,maxretries=,rstep=,stall=,seed=)")
	fleetN := flag.Int("fleet", 0, "device count for -fig fleet (0 = 64)")
	fleetWorkers := flag.Int("fleet-workers", 0, "persistent shard-worker pool size for -fig fleet, overriding -parallel (0 = use -parallel, 1 = sequential; output is byte-identical)")
	pin := flag.Bool("pin", false, "lock each fleet shard worker to an OS thread (scheduling hint; output is unchanged)")
	workloadFlag := flag.String("workload", "steady", "temporal arrival shape: steady, diurnal, bursty, or replay")
	traceFile := flag.String("trace", "", "block trace (binary or CSV) used as the replay source")
	scalarRL := flag.Bool("scalar-rl", false, "use the scalar (per-agent, per-sample) RL kernels instead of the batched ones; output is bit-identical either way (CI diffs the two)")
	flag.Parse()

	faultCfg, err := fault.ParseSpec(*faults)
	if err != nil {
		log.Fatalf("parsing -faults: %v", err)
	}
	shape, err := workload.ParseShape(*workloadFlag)
	if err != nil {
		log.Fatalf("parsing -workload: %v", err)
	}

	if *model != "" {
		net, err := nn.LoadFile(*model)
		if err != nil {
			log.Fatalf("loading model: %v", err)
		}
		harness.SetInjectedModel(net)
		log.Printf("loaded pretrained model %s (%d params)", *model, net.NumParams())
	}

	opt := harness.DefaultOptions()
	opt.Seed = *seed
	opt.Duration = sim.Time(*seconds * 1e9)
	opt.Warmup = sim.Time(*warmup * 1e9)
	opt.Window = sim.Time(*windowMs) * sim.Millisecond
	opt.Workers = *parallel
	if faultCfg.Enabled() {
		opt.Faults = &faultCfg
		log.Printf("injecting NAND faults: %s", *faults)
	}
	opt.FleetDevices = *fleetN
	opt.FleetWorkers = *fleetWorkers
	opt.PinFleetWorkers = *pin
	opt.WorkloadShape = shape
	opt.ScalarRL = *scalarRL
	if *traceFile != "" {
		recs, err := trace.LoadFile(*traceFile, flash.DefaultConfig().PageSize)
		if err != nil {
			log.Fatalf("loading -trace: %v", err)
		}
		opt.ReplayRecords = recs
		if *fig != "workloads" {
			// The workloads figure sweeps every shape itself; elsewhere a
			// supplied trace implies the replay shape.
			opt.WorkloadShape = workload.ShapeReplay
		}
		log.Printf("replaying %d trace records from %s", len(recs), *traceFile)
	}
	if *fig != "fleet" && *fig != "tiers" {
		// The fleet scenarios have no pretrained RL policy to seed (the
		// tiered rack's learned agents train online from scratch); skip
		// pretraining.
		opt = harness.WithPretrained(opt)
	}

	if *httpAddr != "" {
		// One observer serves every figure run; with parallel runs in
		// flight /metrics shows their merged live gauges.
		opt.Obs = obs.NewObserver()
		srv, err := obs.Serve(*httpAddr, opt.Obs.Registry())
		if err != nil {
			log.Fatalf("serving -http: %v", err)
		}
		defer srv.Close()
		log.Printf("observability on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}

	w := os.Stdout
	needGrid := func() map[string][]harness.Result {
		log.Printf("running %d pairs x %d policies (this simulates %d experiments)...",
			len(harness.EvalPairs()), len(harness.AllPolicies()),
			len(harness.EvalPairs())*(len(harness.AllPolicies())+1))
		return harness.PairGrid(harness.AllPolicies(), opt)
	}

	switch *fig {
	case "all":
		grid := needGrid()
		harness.Figure2(w, grid)
		harness.Figure3(w, grid)
		harness.Figure6(w)
		harness.Figures10to13(w, grid)
		harness.Figure14(w, opt)
		harness.Figure15(w, opt)
		harness.Figure16(w, opt)
		harness.Figure17(w, opt)
		harness.Overheads(w)
	case "2", "3":
		grid := harness.PairGrid([]harness.PolicyKind{harness.PolHardware, harness.PolSoftware}, opt)
		if *fig == "2" {
			harness.Figure2(w, grid)
		} else {
			harness.Figure3(w, grid)
		}
	case "6":
		harness.Figure6(w)
	case "10", "11", "12", "13":
		grid := needGrid()
		harness.Figures10to13(w, grid)
	case "14":
		harness.Figure14(w, opt)
	case "15":
		harness.Figure15(w, opt)
	case "16":
		harness.Figure16(w, opt)
	case "17":
		harness.Figure17(w, opt)
	case "faults":
		harness.FigureFaults(w, harness.EvalPairs()[:2], opt)
	case "fleet":
		harness.FigureFleet(w, opt)
	case "tiers":
		harness.FigureTiers(w, opt)
	case "workloads":
		harness.FigureWorkloads(w, harness.EvalPairs()[:2], opt)
	case "overhead":
		harness.Overheads(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}
