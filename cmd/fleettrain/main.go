// Command fleettrain pretrains the FleetIO PPO model offline on the
// held-out workloads (§3.8) and writes it to a file for fleetbench and the
// examples to load.
//
// Usage:
//
//	fleettrain [-episodes N] [-episode-seconds S] [-out model.gob]
package main

import (
	"flag"
	"log"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleettrain: ")
	episodes := flag.Int("episodes", 12, "pretraining episodes")
	epSeconds := flag.Float64("episode-seconds", 30, "virtual seconds per episode")
	windowMs := flag.Int("window", 100, "decision window in milliseconds")
	lr := flag.Float64("lr", 1e-3, "pretraining learning rate")
	seed := flag.Int64("seed", 11, "seed")
	out := flag.String("out", "fleetio_model.gob", "output model file")
	flag.Parse()

	pc := harness.PretrainConfig{
		Seed:            *seed,
		Episodes:        *episodes,
		EpisodeDuration: sim.Time(*epSeconds * 1e9),
		Window:          sim.Time(*windowMs) * sim.Millisecond,
		LR:              *lr,
	}
	log.Printf("pretraining %d episodes x %.0fs virtual on held-out workloads...", pc.Episodes, *epSeconds)
	net := harness.Pretrain(pc)
	if err := net.SaveFile(*out); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	data, _ := net.Encode()
	log.Printf("wrote %s (%d params, %d bytes)", *out, net.NumParams(), len(data))
}
