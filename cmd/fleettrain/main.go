// Command fleettrain pretrains the FleetIO PPO model offline on the
// held-out workloads (§3.8) and writes it to a file for fleetbench and the
// examples to load. Episode collection fans out across -workers parallel
// simulators; -checkpoint-dir makes the run killable and resumable, and
// -metrics records the training trajectory as JSONL.
//
// Usage:
//
//	fleettrain [-episodes N] [-episode-seconds S] [-workers W]
//	           [-checkpoint-dir DIR] [-resume] [-metrics FILE]
//	           [-out model.gob]
package main

import (
	"flag"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleettrain: ")
	episodes := flag.Int("episodes", 12, "pretraining episodes")
	epSeconds := flag.Float64("episode-seconds", 30, "virtual seconds per episode")
	windowMs := flag.Int("window", 100, "decision window in milliseconds")
	lr := flag.Float64("lr", 1e-3, "pretraining learning rate")
	seed := flag.Int64("seed", 11, "seed")
	workers := flag.Int("workers", 4, "parallel episode-collection workers")
	ckptDir := flag.String("checkpoint-dir", "", "directory for atomic training checkpoints (enables resume)")
	ckptEvery := flag.Int("checkpoint-every", 1, "rounds between checkpoints")
	resume := flag.Bool("resume", false, "resume from the newest readable checkpoint in -checkpoint-dir")
	metrics := flag.String("metrics", "", "append per-round training telemetry to this JSONL file")
	evalEvery := flag.Int("eval-every", 1, "rounds between held-out eval episodes (0 disables best-model gating)")
	out := flag.String("out", "fleetio_model.gob", "output model file")
	httpAddr := flag.String("http", "", "serve live training gauges on /metrics and pprof on /debug/pprof/")
	flag.Parse()

	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			log.Fatalf("serving -http: %v", err)
		}
		defer srv.Close()
		log.Printf("observability on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}

	pc := harness.PretrainConfig{
		Seed:            *seed,
		Episodes:        *episodes,
		EpisodeDuration: sim.Time(*epSeconds * 1e9),
		Window:          sim.Time(*windowMs) * sim.Millisecond,
		LR:              *lr,
		Workers:         *workers,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		MetricsPath:     *metrics,
		EvalEvery:       *evalEvery,
		Logf:            log.Printf,
		Obs:             reg,
	}
	log.Printf("pretraining %d episodes x %.0fs virtual on held-out workloads (%d workers)...",
		pc.Episodes, *epSeconds, *workers)
	res, err := harness.PretrainRun(pc, core.ModeFull)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	net := res.Final
	which := "final"
	if res.Best != nil {
		net = res.Best
		which = "best"
		log.Printf("eval-gated best model: mean held-out reward %.4f", res.BestScore)
	}
	if err := net.SaveFile(*out); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	data, err := net.Encode()
	if err != nil {
		log.Fatalf("encoding model for size report: %v", err)
	}
	log.Printf("wrote %s model to %s (%d params, %d bytes)", which, *out, net.NumParams(), len(data))
}
