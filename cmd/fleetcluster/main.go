// Command fleetcluster reproduces Figure 6: it synthesizes traces for the
// nine cloud workloads, extracts the §3.4 features per 10K-request window,
// clusters them with k-means, and prints the PCA projection, cluster
// membership, and test accuracy.
//
// Usage:
//
//	fleetcluster [-windows N] [-per-window REQS]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	windows := flag.Int("windows", 8, "trace windows per workload")
	perWindow := flag.Int("per-window", 2000, "requests per window (paper: 10000)")
	verbose := flag.Bool("v", false, "print every window's PCA point")
	httpAddr := flag.String("http", "", "serve /debug/pprof/ (and an empty /metrics) while clustering")
	flag.Parse()

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, nil)
		if err != nil {
			log.Fatalf("serving -http: %v", err)
		}
		defer srv.Close()
		log.Printf("observability on http://%s (/debug/pprof/)", srv.Addr())
	}

	harness.Figure6(os.Stdout)

	if *verbose {
		ds := cluster.BuildDataset(workload.Names(), *windows, *perWindow, 16<<10, 42)
		raw := make([][]float64, len(ds.Samples))
		for i, s := range ds.Samples {
			raw[i] = s.Features
		}
		scaled, _, _ := cluster.Standardize(raw)
		proj, _ := cluster.PCA2(scaled, sim.NewRNG(5))
		fmt.Println("per-window PCA points:")
		for i, p := range proj {
			fmt.Printf("%-16s %8.3f %8.3f\n", ds.Samples[i].Workload, p[0], p[1])
		}
	}
}
