package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustFormat(t *testing.T, name string) CSVFormat {
	t.Helper()
	f, err := FormatByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseCSVMSR(t *testing.T) {
	in := "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n" +
		"128166372003061629,src1,0,Read,16384,16384,123\n" +
		"128166372003061729,src1,0,Write,32768,20000,88\n" +
		"128166372003061629,src1,0,Write,0,1,5\n"
	recs, clamped, err := ParseCSV(strings.NewReader(in), mustFormat(t, "msr"), 16384)
	if err != nil {
		t.Fatal(err)
	}
	if clamped != 0 || len(recs) != 3 {
		t.Fatalf("got %d records, %d clamped", len(recs), clamped)
	}
	// Stable sort by normalized time: the two t=0 rows keep input order.
	if recs[0].At != 0 || recs[0].Write || recs[0].LPN != 1 || recs[0].Pages != 1 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].At != 0 || !recs[1].Write || recs[1].LPN != 0 || recs[1].Pages != 1 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	// 100 filetime ticks = 10 µs; 20000 bytes from offset 32768 spans 2 pages.
	if recs[2].At != 10_000 || !recs[2].Write || recs[2].LPN != 2 || recs[2].Pages != 2 {
		t.Fatalf("rec2 = %+v", recs[2])
	}
}

func TestParseCSVAli(t *testing.T) {
	in := "3,R,0,32768,1000\n" +
		"3,W,16384,16384,1500\n"
	recs, _, err := ParseCSV(strings.NewReader(in), mustFormat(t, "ali"), 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].At != 0 || recs[0].Write || recs[0].Pages != 2 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	// 500 µs later.
	if recs[1].At != 500_000 || !recs[1].Write || recs[1].LPN != 1 || recs[1].Pages != 1 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestParseCSVGeneric(t *testing.T) {
	in := "at_ns,op,lpn,pages\n500,w,7,3\n100,r,1,1\n"
	recs, _, err := ParseCSV(strings.NewReader(in), mustFormat(t, "generic"), 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// Sorted by normalized time; generic offsets are LPN/pages directly.
	if recs[0].At != 0 || recs[0].Write || recs[0].LPN != 1 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].At != 400 || !recs[1].Write || recs[1].LPN != 7 || recs[1].Pages != 3 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestParseCSVClampsOversizedRows(t *testing.T) {
	in := "1,src1,0,Write,0,100000000,1\n"
	recs, clamped, err := ParseCSV(strings.NewReader(in), mustFormat(t, "msr"), 16384)
	if err != nil {
		t.Fatal(err)
	}
	if clamped != 1 || recs[0].Pages != MaxRecordPages {
		t.Fatalf("clamped=%d pages=%d", clamped, recs[0].Pages)
	}
}

func TestParseCSVRowErrors(t *testing.T) {
	msr := mustFormat(t, "msr")
	cases := []struct {
		name, in, want string
	}{
		{"bad op", "1,h,0,Frob,0,1,1\n", "row 1"},
		{"negative offset", "1,h,0,Read,-5,1,1\n2,h,0,Read,0,1,1\n", "offset"},
		{"bad size", "1,h,0,Read,0,x,1\n", "size"},
		{"wrong columns mid-file", "1,h,0,Read,0,1,1\n2,h,0,Read,0,1\n", "row 2"},
		{"bad timestamp mid-file", "1,h,0,Read,0,1,1\nnope,h,0,Read,0,1,1\n", "timestamp"},
		{"empty", "", "no data rows"},
		{"header only", "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n", "no data rows"},
	}
	for _, tc := range cases {
		_, _, err := ParseCSV(strings.NewReader(tc.in), msr, 16384)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFormatByNameUnknown(t *testing.T) {
	if _, err := FormatByName("nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if got := FormatNames(); len(got) != 3 || got[0] != "ali" {
		t.Fatalf("FormatNames = %v", got)
	}
}

func TestLoadFileAutoDetect(t *testing.T) {
	dir := t.TempDir()

	// Binary.
	recs := []Record{{At: 5, Write: true, LPN: 2, Pages: 1}, {At: 9, LPN: 0, Pages: 4}}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "t.bin")
	if err := os.WriteFile(bin, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(bin, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != recs[0] {
		t.Fatalf("binary load = %+v", back)
	}

	// CSV, dialect sniffed from the column count (5 → ali).
	csvPath := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csvPath, []byte("0,W,0,16384,100\n0,R,16384,16384,200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err = LoadFile(csvPath, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back[0].Write {
		t.Fatalf("csv load = %+v", back)
	}

	// Unrecognizable.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(junk, 16384); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestSampleTrace keeps the checked-in sample honest: it must parse under
// the msr dialect, convert to the binary format, and round-trip.
func TestSampleTrace(t *testing.T) {
	recs, err := LoadFile("testdata/sample_msr.csv", 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1200 {
		t.Fatalf("sample has %d records", len(recs))
	}
	var reads, writes int
	for i, r := range recs {
		if i > 0 && r.At < recs[i-1].At {
			t.Fatalf("record %d out of order", i)
		}
		if r.Pages < 1 || r.LPN < 0 {
			t.Fatalf("record %d invalid: %+v", i, r)
		}
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("sample mix degenerate: %d reads, %d writes", reads, writes)
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil || len(back) != len(recs) {
		t.Fatalf("binary round-trip: %v (%d records)", err, len(back))
	}
}
