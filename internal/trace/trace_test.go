package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 100, Write: true, LPN: 42, Pages: 8},
		{At: 200, Write: false, LPN: 7, Pages: 1},
		{At: 300, Write: false, LPN: 1 << 40, Pages: 64},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file..."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{{At: 1, LPN: 2, Pages: 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ats []int64, lpns []int64, pages []uint16) bool {
		n := len(ats)
		if len(lpns) < n {
			n = len(lpns)
		}
		if len(pages) < n {
			n = len(pages)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				At:    abs64(ats[i]),
				Write: ats[i]%2 == 0,
				LPN:   abs64(lpns[i]),
				Pages: int32(pages[i]),
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil || len(back) != n {
			return false
		}
		for i := range recs {
			if back[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 0
		}
		return -v
	}
	return v
}

func TestRecordBytes(t *testing.T) {
	r := Record{Pages: 4}
	if r.Bytes(16384) != 65536 {
		t.Fatalf("bytes = %d", r.Bytes(16384))
	}
}

func TestRecorderUnbounded(t *testing.T) {
	rc := NewRecorder(0)
	for i := 0; i < 100; i++ {
		rc.Add(Record{At: int64(i)})
	}
	recs := rc.Records()
	if len(recs) != 100 || recs[0].At != 0 || recs[99].At != 99 {
		t.Fatalf("unbounded recorder wrong: %d records", len(recs))
	}
}

func TestRecorderRing(t *testing.T) {
	rc := NewRecorder(10)
	for i := 0; i < 25; i++ {
		rc.Add(Record{At: int64(i)})
	}
	recs := rc.Records()
	if len(recs) != 10 {
		t.Fatalf("ring holds %d", len(recs))
	}
	for i, r := range recs {
		if r.At != int64(15+i) {
			t.Fatalf("ring order wrong at %d: %d", i, r.At)
		}
	}
	if rc.Len() != 10 {
		t.Fatalf("len = %d", rc.Len())
	}
}

func TestReadErrorDetail(t *testing.T) {
	// Bad magic: the error must name both the bytes found and the bytes
	// expected, so a mis-pointed file is diagnosable from the message.
	bad := make([]byte, 12)
	bad[0], bad[1], bad[2], bad[3] = 0xde, 0xad, 0xbe, 0xef
	_, err := Read(bytes.NewReader(bad))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, want := range []string{"0xefbeadde", "0x00f1ee70"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("bad-magic error %q does not mention %s", err, want)
		}
	}

	// Truncated record stream: the error must carry the record index and
	// the header's total count.
	var buf bytes.Buffer
	if err := Write(&buf, []Record{{At: 1}, {At: 2}, {At: 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	_, err = Read(bytes.NewReader(data[:12+21+5])) // header + 1 record + a stub
	if err == nil {
		t.Fatal("truncated record stream accepted")
	}
	if !strings.Contains(err.Error(), "record 1 of 3") {
		t.Fatalf("truncation error %q does not locate the record", err)
	}

	// Truncated header.
	for _, n := range []int{0, 5, 11} {
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("%d-byte header accepted", n)
		} else if !strings.Contains(err.Error(), "header") {
			t.Fatalf("header error %q does not say header", err)
		}
	}
}

func TestReadBogusCountNoBlowup(t *testing.T) {
	// A corrupt header claiming 2^60 records must fail on the first
	// missing record, not try to preallocate for the claimed count.
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint64(hdr[4:12], 1<<60)
	_, err := Read(bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("bogus count accepted")
	}
	if !strings.Contains(err.Error(), "record 0 of") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// FuzzRead drives Read over corrupted headers and record streams: it must
// either return an error or records that round-trip, never panic.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, []Record{{At: 7, Write: true, LPN: 9, Pages: 2}, {At: 11, LPN: 3, Pages: 1}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:13])
	f.Add(valid.Bytes()[:11])
	f.Add([]byte("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[6] = 0xff // header count
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil || len(back) != len(recs) {
			t.Fatalf("accepted trace does not round-trip: %v", err)
		}
	})
}
