package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 100, Write: true, LPN: 42, Pages: 8},
		{At: 200, Write: false, LPN: 7, Pages: 1},
		{At: 300, Write: false, LPN: 1 << 40, Pages: 64},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file..."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{{At: 1, LPN: 2, Pages: 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ats []int64, lpns []int64, pages []uint16) bool {
		n := len(ats)
		if len(lpns) < n {
			n = len(lpns)
		}
		if len(pages) < n {
			n = len(pages)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				At:    abs64(ats[i]),
				Write: ats[i]%2 == 0,
				LPN:   abs64(lpns[i]),
				Pages: int32(pages[i]),
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil || len(back) != n {
			return false
		}
		for i := range recs {
			if back[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 0
		}
		return -v
	}
	return v
}

func TestRecordBytes(t *testing.T) {
	r := Record{Pages: 4}
	if r.Bytes(16384) != 65536 {
		t.Fatalf("bytes = %d", r.Bytes(16384))
	}
}

func TestRecorderUnbounded(t *testing.T) {
	rc := NewRecorder(0)
	for i := 0; i < 100; i++ {
		rc.Add(Record{At: int64(i)})
	}
	recs := rc.Records()
	if len(recs) != 100 || recs[0].At != 0 || recs[99].At != 99 {
		t.Fatalf("unbounded recorder wrong: %d records", len(recs))
	}
}

func TestRecorderRing(t *testing.T) {
	rc := NewRecorder(10)
	for i := 0; i < 25; i++ {
		rc.Add(Record{At: int64(i)})
	}
	recs := rc.Records()
	if len(recs) != 10 {
		t.Fatalf("ring holds %d", len(recs))
	}
	for i, r := range recs {
		if r.At != int64(15+i) {
			t.Fatalf("ring order wrong at %d: %d", i, r.At)
		}
	}
	if rc.Len() != 10 {
		t.Fatalf("len = %d", rc.Len())
	}
}
