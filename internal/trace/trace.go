// Package trace defines the block-level I/O trace records FleetIO collects
// from each vSSD (used for workload-type clustering, §3.4) and a compact
// binary encoding for storing and replaying them.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Record is one block I/O: timestamp, direction, starting logical page,
// and length in pages.
type Record struct {
	At    sim.Time
	Write bool
	LPN   int64
	Pages int32
}

// Bytes returns the payload size given the page size.
func (r Record) Bytes(pageSize int) int64 { return int64(r.Pages) * int64(pageSize) }

const magic = uint32(0xF1EE70)

// Write encodes records to w in the compact binary format.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(recs)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 21)
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(r.At))
		if r.Write {
			buf[8] = 1
		} else {
			buf[8] = 0
		}
		binary.LittleEndian.PutUint64(buf[9:17], uint64(r.LPN))
		binary.LittleEndian.PutUint32(buf[17:21], uint32(r.Pages))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != magic {
		return nil, fmt.Errorf("trace: bad magic %#08x (want %#08x)", got, magic)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	// The record count comes from the (possibly corrupt) header; cap the
	// preallocation so a bogus count cannot balloon memory before the
	// truncated-read error below surfaces.
	pre := n
	if pre > 1<<20 {
		pre = 1 << 20
	}
	recs := make([]Record, 0, pre)
	buf := make([]byte, 21)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("trace: record %d of %d: %w", i, n, err)
		}
		recs = append(recs, Record{
			At:    sim.Time(binary.LittleEndian.Uint64(buf[0:8])),
			Write: buf[8] == 1,
			LPN:   int64(binary.LittleEndian.Uint64(buf[9:17])),
			Pages: int32(binary.LittleEndian.Uint32(buf[17:21])),
		})
	}
	return recs, nil
}

// Recorder accumulates records in memory (bounded by cap if >0, keeping
// the most recent ones in a ring).
type Recorder struct {
	recs  []Record
	limit int
	next  int
	full  bool
}

// NewRecorder returns a recorder keeping at most limit records (0 =
// unbounded).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Add appends a record.
func (rc *Recorder) Add(r Record) {
	if rc.limit <= 0 {
		rc.recs = append(rc.recs, r)
		return
	}
	if len(rc.recs) < rc.limit {
		rc.recs = append(rc.recs, r)
		return
	}
	rc.recs[rc.next] = r
	rc.next = (rc.next + 1) % rc.limit
	rc.full = true
}

// Records returns the recorded entries in arrival order.
func (rc *Recorder) Records() []Record {
	if !rc.full {
		return append([]Record(nil), rc.recs...)
	}
	out := make([]Record, 0, len(rc.recs))
	out = append(out, rc.recs[rc.next:]...)
	out = append(out, rc.recs[:rc.next]...)
	return out
}

// Len returns the number of records held.
func (rc *Recorder) Len() int { return len(rc.recs) }
