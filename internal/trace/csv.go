package trace

import (
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// MaxRecordPages caps one ingested request's size in pages. Block traces
// occasionally carry multi-megabyte transfers; replaying one as a single
// request would blow past every inflight cap, so oversized rows are
// clamped here (the clamp count is reported by ParseCSV).
const MaxRecordPages = 512

// CSVFormat describes how one CSV trace dialect maps onto Record fields.
// The built-in dialects (see FormatByName) cover MSR-Cambridge-style and
// Alibaba-block-style traces plus a direct "generic" record form; custom
// layouts can fill the struct by hand.
type CSVFormat struct {
	// Name identifies the dialect in CLI flags and error messages.
	Name string
	// Columns is the exact field count of a data row (0 = unchecked).
	Columns int
	// TimeCol, OpCol, OffsetCol, SizeCol are 0-based field indices.
	TimeCol, OpCol, OffsetCol, SizeCol int
	// TimeScale converts one timestamp unit to nanoseconds (e.g. an
	// MSR Windows-filetime tick is 100 ns, an Ali microsecond is 1000).
	TimeScale float64
	// ByteAddressed marks Offset/Size columns as byte quantities to be
	// converted to page-aligned LPN/length; otherwise they are taken as
	// LPN and pages directly.
	ByteAddressed bool
}

// Built-in CSV dialects.
var csvFormats = map[string]CSVFormat{
	// MSR Cambridge block traces:
	//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
	// with Timestamp in Windows filetime ticks (100 ns) and byte offsets.
	"msr": {
		Name: "msr", Columns: 7,
		TimeCol: 0, OpCol: 3, OffsetCol: 4, SizeCol: 5,
		TimeScale: 100, ByteAddressed: true,
	},
	// Alibaba-style block traces:
	//   device_id,opcode,offset,length,timestamp
	// with timestamp in microseconds and byte offsets.
	"ali": {
		Name: "ali", Columns: 5,
		TimeCol: 4, OpCol: 1, OffsetCol: 2, SizeCol: 3,
		TimeScale: 1000, ByteAddressed: true,
	},
	// The direct record form used by fleettrace:
	//   at_ns,op,lpn,pages
	"generic": {
		Name: "generic", Columns: 4,
		TimeCol: 0, OpCol: 1, OffsetCol: 2, SizeCol: 3,
		TimeScale: 1, ByteAddressed: false,
	},
}

// FormatByName returns a built-in CSV dialect ("msr", "ali", "generic").
func FormatByName(name string) (CSVFormat, error) {
	f, ok := csvFormats[strings.ToLower(name)]
	if !ok {
		return CSVFormat{}, fmt.Errorf("trace: unknown CSV format %q (have %s)",
			name, strings.Join(FormatNames(), ", "))
	}
	return f, nil
}

// FormatNames lists the built-in CSV dialect names, sorted.
func FormatNames() []string {
	names := make([]string, 0, len(csvFormats))
	for n := range csvFormats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseCSV ingests a CSV trace under the given dialect into records ready
// for Write or replay: timestamps are normalized to start at zero,
// byte-addressed offsets become page-aligned LPN/length pairs over
// pageSize-byte pages, rows are validated (with the 1-based data-row
// number in every error), and the result is stably sorted by timestamp.
// clamped reports how many oversized rows were cut to MaxRecordPages.
func ParseCSV(r io.Reader, f CSVFormat, pageSize int) (recs []Record, clamped int, err error) {
	if pageSize <= 0 {
		return nil, 0, fmt.Errorf("trace: page size %d", pageSize)
	}
	need := f.TimeCol
	for _, c := range []int{f.OpCol, f.OffsetCol, f.SizeCol} {
		if c > need {
			need = c
		}
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field counts are checked here, with row numbers
	cr.ReuseRecord = true
	var raw []rawRow
	row := 0
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("trace: csv row %d: %w", row+1, err)
		}
		row++
		if f.Columns > 0 && len(fields) != f.Columns {
			if row == 1 {
				continue // tolerate a stray header/banner line
			}
			return nil, 0, fmt.Errorf("trace: csv row %d: %d fields (format %s wants %d)",
				row, len(fields), f.Name, f.Columns)
		}
		if len(fields) <= need {
			return nil, 0, fmt.Errorf("trace: csv row %d: %d fields, need at least %d",
				row, len(fields), need+1)
		}
		at, err := strconv.ParseInt(strings.TrimSpace(fields[f.TimeCol]), 10, 64)
		if err != nil {
			if row == 1 {
				continue // header row: column names where numbers belong
			}
			return nil, 0, fmt.Errorf("trace: csv row %d: timestamp %q", row, fields[f.TimeCol])
		}
		write, err := parseOp(fields[f.OpCol])
		if err != nil {
			return nil, 0, fmt.Errorf("trace: csv row %d: %w", row, err)
		}
		off, err := strconv.ParseInt(strings.TrimSpace(fields[f.OffsetCol]), 10, 64)
		if err != nil || off < 0 {
			return nil, 0, fmt.Errorf("trace: csv row %d: offset %q", row, fields[f.OffsetCol])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(fields[f.SizeCol]), 10, 64)
		if err != nil || size < 0 {
			return nil, 0, fmt.Errorf("trace: csv row %d: size %q", row, fields[f.SizeCol])
		}
		raw = append(raw, rawRow{at: at, write: write, off: off, size: size})
	}
	if len(raw) == 0 {
		return nil, 0, fmt.Errorf("trace: csv: no data rows")
	}
	// Normalize timestamps against the earliest raw tick before scaling,
	// so huge absolute epochs (MSR filetimes) never hit float precision.
	min := raw[0].at
	for _, rr := range raw {
		if rr.at < min {
			min = rr.at
		}
	}
	recs = make([]Record, 0, len(raw))
	for _, rr := range raw {
		var lpn, pages int64
		if f.ByteAddressed {
			lpn = rr.off / int64(pageSize)
			end := (rr.off + rr.size + int64(pageSize) - 1) / int64(pageSize)
			pages = end - lpn
		} else {
			lpn, pages = rr.off, rr.size
		}
		if pages < 1 {
			pages = 1 // zero-length rows still touch their page
		}
		if pages > MaxRecordPages {
			pages = MaxRecordPages
			clamped++
		}
		recs = append(recs, Record{
			At:    sim.Time(float64(rr.at-min) * f.TimeScale),
			Write: rr.write,
			LPN:   lpn,
			Pages: int32(pages),
		})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	return recs, clamped, nil
}

type rawRow struct {
	at        int64
	write     bool
	off, size int64
}

// parseOp maps an op-column value to its direction: Write/W/w/1 are
// writes, Read/R/r/0 are reads.
func parseOp(s string) (write bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "w", "write", "1":
		return true, nil
	case "r", "read", "0":
		return false, nil
	}
	return false, fmt.Errorf("op %q (want Read/Write, R/W, or 0/1)", s)
}

// LoadFile reads a trace file of either kind: the compact binary format
// (detected by its magic) or CSV, whose dialect is sniffed from the first
// row's field count (7 → msr, 5 → ali, 4 → generic). pageSize converts
// byte-addressed CSV dialects; the binary format ignores it.
func LoadFile(path string, pageSize int) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [4]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == 4 && binary.LittleEndian.Uint32(hdr[:]) == magic {
		recs, err := Read(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return recs, nil
	}
	format, err := sniffCSV(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	recs, _, err := ParseCSV(f, format, pageSize)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// sniffCSV picks a built-in dialect from the first row's field count.
func sniffCSV(r io.Reader) (CSVFormat, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	fields, err := cr.Read()
	if err != nil {
		return CSVFormat{}, fmt.Errorf("not a binary trace and not CSV: %w", err)
	}
	for _, f := range csvFormats {
		if f.Columns == len(fields) {
			return f, nil
		}
	}
	return CSVFormat{}, fmt.Errorf("no CSV dialect has %d columns (have %s)",
		len(fields), strings.Join(FormatNames(), ", "))
}
