package fault

import (
	"testing"

	"repro/internal/sim"
)

// TestInjectorDeterministic pins the seed contract: two injectors with
// the same config produce the same decision sequence, and a different
// seed produces a different one.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Heavy()
	cfg.Seed = 42
	type draw struct {
		p, e  bool
		r     int
		stall sim.Time
	}
	run := func(c Config) []draw {
		in := NewInjector(c)
		out := make([]draw, 0, 256)
		for i := 0; i < 256; i++ {
			out = append(out, draw{in.ProgramFails(), in.EraseFails(), in.ReadRetries(), in.ChipStall()})
		}
		return out
	}
	a, b := run(cfg), run(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between same-seed injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := cfg
	other.Seed = 43
	c := run(other)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

// TestInjectorRates sanity-checks that observed fault frequencies track
// the configured probabilities over a long sequence.
func TestInjectorRates(t *testing.T) {
	cfg := Config{ProgramFailProb: 0.1, ReadRetryProb: 0.2, Seed: 7}
	in := NewInjector(cfg)
	const n = 100_000
	fails, retries := 0, 0
	for i := 0; i < n; i++ {
		if in.ProgramFails() {
			fails++
		}
		if in.ReadRetries() > 0 {
			retries++
		}
	}
	if got := float64(fails) / n; got < 0.08 || got > 0.12 {
		t.Fatalf("program-fail rate %.4f, want ~0.1", got)
	}
	if got := float64(retries) / n; got < 0.17 || got > 0.23 {
		t.Fatalf("read-retry rate %.4f, want ~0.2", got)
	}
}

// TestInjectorDisabledClasses: zero-probability classes never fire and
// draw nothing from the stream (so enabling one class does not perturb
// another's sequence).
func TestInjectorDisabledClasses(t *testing.T) {
	in := NewInjector(Config{ProgramFailProb: 0.5, Seed: 1})
	for i := 0; i < 1000; i++ {
		if in.EraseFails() || in.ReadRetries() != 0 || in.ChipStall() != 0 {
			t.Fatal("disabled fault class fired")
		}
	}
}

// TestInjectorDefaults: zero timing knobs take the package defaults.
func TestInjectorDefaults(t *testing.T) {
	in := NewInjector(Config{ReadRetryProb: 1, TimeoutProb: 1, Seed: 1})
	cfg := in.Config()
	if cfg.MaxReadRetries != DefaultMaxReadRetries || cfg.ReadRetryStep != DefaultReadRetryStep || cfg.TimeoutStall != DefaultTimeoutStall {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if r := in.ReadRetries(); r < 1 || r > DefaultMaxReadRetries {
		t.Fatalf("retry rounds %d out of [1,%d]", r, DefaultMaxReadRetries)
	}
	if in.ChipStall() != DefaultTimeoutStall {
		t.Fatal("ChipStall must return the default stall when TimeoutProb=1")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    Config
		enabled bool
	}{
		{"", Config{}, false},
		{"off", Config{}, false},
		{"none", Config{}, false},
		{"light", Light(), true},
		{"heavy", Heavy(), true},
		{"pfail=0.01", Config{ProgramFailProb: 0.01}, true},
		{"pfail=0.01,efail=0.02,rretry=0.03,tmo=0.04",
			Config{ProgramFailProb: 0.01, EraseFailProb: 0.02, ReadRetryProb: 0.03, TimeoutProb: 0.04}, true},
		{"light,pfail=1e-3", func() Config { c := Light(); c.ProgramFailProb = 1e-3; return c }(), true},
		{"maxretries=5,rstep=1000,stall=2000,seed=9",
			Config{MaxReadRetries: 5, ReadRetryStep: 1000, TimeoutStall: 2000, Seed: 9}, false},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		if got.Enabled() != tc.enabled {
			t.Fatalf("ParseSpec(%q).Enabled() = %v, want %v", tc.spec, got.Enabled(), tc.enabled)
		}
	}
	for _, bad := range []string{"bogus", "pfail", "pfail=x", "pfail=2", "seed=x", "what=1", "light,heavy"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{ProgramFailProb: -0.1},
		{EraseFailProb: 1.5},
		{MaxReadRetries: -1},
		{ReadRetryStep: -1},
		{TimeoutStall: -1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %+v must be invalid", c)
		}
	}
}
