// Package fault implements a deterministic, seed-driven NAND fault
// injector for the flash device model: program and erase failures (which
// the FTL answers with remapping and bad-block retirement), read-retry
// latency tails, and transient chip timeouts. The injector draws every
// decision from its own sim.RNG stream, so a fault scenario is a pure
// function of its seed — two runs with the same seed inject the same
// faults at the same ops regardless of harness worker count.
//
// A nil *Injector (or a zero Config) disables injection entirely; the
// flash device guards every draw behind one pointer check so the
// zero-fault configuration stays byte-identical and allocation-free.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Defaults applied by Config.withDefaults when a knob is zero but the
// corresponding probability is set.
const (
	DefaultMaxReadRetries = 3
	DefaultReadRetryStep  = 40 * sim.Microsecond
	DefaultTimeoutStall   = 2 * sim.Millisecond
)

// Config describes a fault model. All probabilities are per-operation;
// zero disables that fault class. The zero Config injects nothing.
type Config struct {
	// ProgramFailProb is the probability a page program reports a
	// program-fail status (the FTL remaps the page and retires the block).
	ProgramFailProb float64
	// EraseFailProb is the probability a block erase reports an
	// erase-fail status (the FTL retires the block).
	EraseFailProb float64
	// ReadRetryProb is the probability a page read needs read-retry
	// rounds; each round adds ReadRetryStep to the cell sense time.
	ReadRetryProb float64
	// MaxReadRetries bounds the retry rounds of one faulted read
	// (uniform in [1, MaxReadRetries]); 0 defaults to 3.
	MaxReadRetries int
	// ReadRetryStep is the extra sense latency per retry round; 0
	// defaults to 40µs.
	ReadRetryStep sim.Time
	// TimeoutProb is the probability an op's chip stalls transiently
	// before its cell phase starts.
	TimeoutProb float64
	// TimeoutStall is the stall duration; 0 defaults to 2ms.
	TimeoutStall sim.Time
	// Seed seeds the injector's private RNG stream. Harnesses that leave
	// it 0 derive it from the experiment seed.
	Seed int64
}

// Enabled reports whether any fault class has a non-zero probability.
func (c Config) Enabled() bool {
	return c.ProgramFailProb > 0 || c.EraseFailProb > 0 ||
		c.ReadRetryProb > 0 || c.TimeoutProb > 0
}

// Validate reports configuration errors (probabilities outside [0,1],
// negative timings).
func (c Config) Validate() error {
	probs := [...]struct {
		name string
		v    float64
	}{
		{"ProgramFailProb", c.ProgramFailProb},
		{"EraseFailProb", c.EraseFailProb},
		{"ReadRetryProb", c.ReadRetryProb},
		{"TimeoutProb", c.TimeoutProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %g out of [0,1]", p.name, p.v)
		}
	}
	if c.MaxReadRetries < 0 {
		return fmt.Errorf("fault: MaxReadRetries = %d", c.MaxReadRetries)
	}
	if c.ReadRetryStep < 0 || c.TimeoutStall < 0 {
		return fmt.Errorf("fault: negative fault timing")
	}
	return nil
}

// withDefaults fills zero-valued timing knobs with the package defaults.
func (c Config) withDefaults() Config {
	if c.MaxReadRetries == 0 {
		c.MaxReadRetries = DefaultMaxReadRetries
	}
	if c.ReadRetryStep == 0 {
		c.ReadRetryStep = DefaultReadRetryStep
	}
	if c.TimeoutStall == 0 {
		c.TimeoutStall = DefaultTimeoutStall
	}
	return c
}

// Light returns the mild fault profile used by the "light" scenario:
// rare program/erase fails and an occasional read-retry tail, roughly a
// healthy drive late in life.
func Light() Config {
	return Config{
		ProgramFailProb: 5e-4,
		EraseFailProb:   5e-4,
		ReadRetryProb:   2e-3,
		TimeoutProb:     1e-4,
	}
}

// Heavy returns the aggressive fault profile used by the "heavy"
// scenario: an order of magnitude more failures, the regime where
// retirement and retry traffic visibly pressure the SLOs.
func Heavy() Config {
	return Config{
		ProgramFailProb: 5e-3,
		EraseFailProb:   5e-3,
		ReadRetryProb:   2e-2,
		TimeoutProb:     1e-3,
	}
}

// ParseSpec parses a -faults flag value: "off" (or empty) disables
// injection; "light" and "heavy" select the built-in profiles; and a
// comma-separated key=value list tunes individual knobs, optionally
// starting from a profile ("light,pfail=1e-3"). Keys: pfail, efail,
// rretry, maxretries, rstep (ns), tmo, stall (ns), seed.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return c, nil
	}
	parts := strings.Split(spec, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i == 0 {
			switch part {
			case "light":
				c = Light()
				continue
			case "heavy":
				c = Heavy()
				continue
			}
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: bad spec token %q (want profile or key=value)", part)
		}
		if err := c.set(key, val); err != nil {
			return Config{}, err
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// set applies one key=value pair from a spec string.
func (c *Config) set(key, val string) error {
	switch key {
	case "pfail", "efail", "rretry", "tmo":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("fault: %s=%q: %v", key, val, err)
		}
		switch key {
		case "pfail":
			c.ProgramFailProb = f
		case "efail":
			c.EraseFailProb = f
		case "rretry":
			c.ReadRetryProb = f
		case "tmo":
			c.TimeoutProb = f
		}
	case "maxretries", "rstep", "stall", "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: %s=%q: %v", key, val, err)
		}
		switch key {
		case "maxretries":
			c.MaxReadRetries = int(n)
		case "rstep":
			c.ReadRetryStep = sim.Time(n)
		case "stall":
			c.TimeoutStall = sim.Time(n)
		case "seed":
			c.Seed = n
		}
	default:
		return fmt.Errorf("fault: unknown spec key %q", key)
	}
	return nil
}

// Injector draws fault decisions for one device from a private RNG
// stream. It is single-threaded model code like everything else driven
// by the sim engine; build one injector per device/engine.
type Injector struct {
	cfg Config
	rng *sim.RNG
}

// NewInjector builds an injector for cfg (panicking on an invalid
// config — construction happens at setup time). Zero timing knobs take
// the package defaults.
func NewInjector(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
}

// Config returns the (defaults-filled) configuration the injector runs.
func (in *Injector) Config() Config { return in.cfg }

// ProgramFails decides whether the next page program fails.
func (in *Injector) ProgramFails() bool {
	return in.cfg.ProgramFailProb > 0 && in.rng.Float64() < in.cfg.ProgramFailProb
}

// EraseFails decides whether the next block erase fails.
func (in *Injector) EraseFails() bool {
	return in.cfg.EraseFailProb > 0 && in.rng.Float64() < in.cfg.EraseFailProb
}

// ReadRetries decides how many retry rounds the next page read needs
// (0 for a clean read).
func (in *Injector) ReadRetries() int {
	if in.cfg.ReadRetryProb <= 0 || in.rng.Float64() >= in.cfg.ReadRetryProb {
		return 0
	}
	return 1 + in.rng.Intn(in.cfg.MaxReadRetries)
}

// RetryStep returns the extra sense latency per retry round.
func (in *Injector) RetryStep() sim.Time { return in.cfg.ReadRetryStep }

// ChipStall decides the transient chip-timeout stall for the next op
// (0 for no stall).
func (in *Injector) ChipStall() sim.Time {
	if in.cfg.TimeoutProb <= 0 || in.rng.Float64() >= in.cfg.TimeoutProb {
		return 0
	}
	return in.cfg.TimeoutStall
}
