package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WindowSize is the paper's trace window: 10K requests (§3.4).
const WindowSize = 10_000

// SynthLogicalPages is the logical-space size used when synthesizing
// traces for offline clustering.
const SynthLogicalPages = 1_000_000

// Sample is one feature window with its ground-truth workload.
type Sample struct {
	Workload string
	Features []float64
}

// Dataset is a labeled collection of feature windows.
type Dataset struct {
	Samples []Sample
}

// BuildDataset synthesizes traces for the given workloads and reduces them
// to feature windows (windowsPer windows of perWindow requests each).
func BuildDataset(names []string, windowsPer, perWindow, pageSize int, seed int64) Dataset {
	rng := sim.NewRNG(seed)
	var ds Dataset
	for _, name := range names {
		prof := workload.ByName(name)
		wr := rng.Split(int64(len(name)) + int64(name[0])*31)
		recs := prof.SynthesizeTrace(windowsPer*perWindow, SynthLogicalPages, wr)
		for _, win := range Windowize(recs, perWindow) {
			f := Features(win, pageSize, SynthLogicalPages)
			ds.Samples = append(ds.Samples, Sample{Workload: name, Features: f[:]})
		}
	}
	return ds
}

// Split partitions the dataset into train/test with the given train
// fraction, interleaving per workload so both halves see every workload.
func (ds Dataset) Split(trainFrac float64) (train, test Dataset) {
	byWl := map[string][]Sample{}
	var order []string
	for _, s := range ds.Samples {
		if _, ok := byWl[s.Workload]; !ok {
			order = append(order, s.Workload)
		}
		byWl[s.Workload] = append(byWl[s.Workload], s)
	}
	sort.Strings(order)
	for _, wl := range order {
		ss := byWl[wl]
		cut := int(float64(len(ss)) * trainFrac)
		train.Samples = append(train.Samples, ss[:cut]...)
		test.Samples = append(test.Samples, ss[cut:]...)
	}
	return train, test
}

// Model is the trained workload-type classifier: standardization
// parameters, k-means centroids, the majority workload set per cluster,
// and a distance threshold for "unknown" detection.
type Model struct {
	KM        *KMeans
	Mean, Std []float64
	// ClusterWorkloads[c] lists the workloads whose windows predominantly
	// landed in cluster c.
	ClusterWorkloads [][]string
	// WorkloadCluster maps each training workload to its majority cluster.
	WorkloadCluster map[string]int
	// MaxDist[c] is the maximum training distance to centroid c; points
	// beyond a slack factor of it are "unknown" (→ unified reward, §3.4).
	MaxDist []float64
}

// Train fits the classifier with k clusters.
func Train(ds Dataset, k int, seed int64) *Model {
	rng := sim.NewRNG(seed)
	raw := make([][]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		raw[i] = s.Features
	}
	scaled, mean, std := Standardize(raw)
	km := FitKMeans(scaled, k, 100, rng)

	votes := make([]map[string]int, k)
	for i := range votes {
		votes[i] = map[string]int{}
	}
	maxDist := make([]float64, k)
	for i, p := range scaled {
		c := km.Assign(p)
		votes[c][ds.Samples[i].Workload]++
		if d := math.Sqrt(sqDist(p, km.Centroids[c])); d > maxDist[c] {
			maxDist[c] = d
		}
	}
	m := &Model{
		KM: km, Mean: mean, Std: std,
		ClusterWorkloads: make([][]string, k),
		WorkloadCluster:  map[string]int{},
		MaxDist:          maxDist,
	}
	// Majority cluster per workload.
	perWl := map[string]map[int]int{}
	for i, p := range scaled {
		wl := ds.Samples[i].Workload
		if perWl[wl] == nil {
			perWl[wl] = map[int]int{}
		}
		perWl[wl][km.Assign(p)]++
	}
	for wl, counts := range perWl {
		best, bestN := 0, -1
		for c, n := range counts {
			if n > bestN {
				best, bestN = c, n
			}
		}
		m.WorkloadCluster[wl] = best
		m.ClusterWorkloads[best] = append(m.ClusterWorkloads[best], wl)
	}
	for c := range m.ClusterWorkloads {
		sort.Strings(m.ClusterWorkloads[c])
	}
	return m
}

// Classify returns the cluster of a raw feature vector and whether it is
// within the known region (false → use the unified reward function).
func (m *Model) Classify(features []float64) (cluster int, known bool) {
	p := Apply(features, m.Mean, m.Std)
	c := m.KM.Assign(p)
	d := math.Sqrt(sqDist(p, m.KM.Centroids[c]))
	return c, d <= m.MaxDist[c]*1.5
}

// Label names a cluster for deterministic human-readable reporting:
// "C<idx>:<anchor>", where anchor is the alphabetically first training
// workload that landed in the cluster ("empty" if none did), with a "?"
// suffix when the classified point fell outside the known region.
func (m *Model) Label(cluster int, known bool) string {
	anchor := "empty"
	if cluster >= 0 && cluster < len(m.ClusterWorkloads) && len(m.ClusterWorkloads[cluster]) > 0 {
		anchor = m.ClusterWorkloads[cluster][0]
	}
	s := fmt.Sprintf("C%d:%s", cluster, anchor)
	if !known {
		s += "?"
	}
	return s
}

// ClassifyTrace classifies a window of records against a logical space of
// logicalPages pages.
func (m *Model) ClassifyTrace(recs []trace.Record, pageSize int, logicalPages int64) (cluster int, known bool) {
	f := Features(recs, pageSize, logicalPages)
	return m.Classify(f[:])
}

// Accuracy evaluates the model on labeled samples: a sample is correct
// when it lands in its workload's majority cluster.
func (m *Model) Accuracy(ds Dataset) float64 {
	if len(ds.Samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range ds.Samples {
		c, _ := m.Classify(s.Features)
		if c == m.WorkloadCluster[s.Workload] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Samples))
}
