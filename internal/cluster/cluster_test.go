package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestFeaturesEmpty(t *testing.T) {
	f := Features(nil, 16384, 1_000_000)
	for _, v := range f {
		if v != 0 {
			t.Fatal("empty window must give zero features")
		}
	}
}

func TestFeaturesBasic(t *testing.T) {
	// 10 requests over 1 second: 5 reads of 1 page, 5 writes of 3 pages.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Record{
			At:    sim.Time(i) * (sim.Second / 9),
			Write: i%2 == 1,
			LPN:   int64(i * 100),
			Pages: int32(1 + 2*(i%2)),
		})
	}
	const page = 16384
	f := Features(recs, page, 1_000_000)
	if f[0] <= 0 || f[1] <= 0 {
		t.Fatalf("bandwidth features %v", f)
	}
	if f[1] <= f[0] {
		t.Fatal("writes are 3x larger; write BW must exceed read BW")
	}
	wantAvg := math.Log1p(float64(5*1+5*3) / 10 * page / 1024)
	if math.Abs(f[3]-wantAvg) > 1e-9 {
		t.Fatalf("avg size = %v (log KB), want %v", f[3], wantAvg)
	}
	if f[2] < 0 || f[2] > 1 {
		t.Fatalf("normalized entropy = %v", f[2])
	}
}

func TestEntropyOrdering(t *testing.T) {
	// A sequential scan concentrated in a window has lower entropy than
	// uniform random addresses.
	rng := sim.NewRNG(1)
	var seqRecs, rndRecs []trace.Record
	for i := 0; i < 10000; i++ {
		seqRecs = append(seqRecs, trace.Record{At: int64(i), LPN: int64(i % 500), Pages: 1})
		rndRecs = append(rndRecs, trace.Record{At: int64(i), LPN: int64(rng.Intn(1_000_000)), Pages: 1})
	}
	seq := Features(seqRecs, 16384, 1_000_000)
	rnd := Features(rndRecs, 16384, 1_000_000)
	if seq[2] >= rnd[2] {
		t.Fatalf("entropy ordering wrong: seq %v >= rnd %v", seq[2], rnd[2])
	}
}

func TestWindowize(t *testing.T) {
	recs := make([]trace.Record, 25)
	w := Windowize(recs, 10)
	if len(w) != 2 {
		t.Fatalf("windows = %d, want 2 (partial dropped)", len(w))
	}
	if len(w[0]) != 10 || len(w[1]) != 10 {
		t.Fatal("window sizes wrong")
	}
}

func TestStandardize(t *testing.T) {
	points := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	scaled, mean, std := Standardize(points)
	if mean[0] != 3 || mean[1] != 30 {
		t.Fatalf("mean = %v", mean)
	}
	for d := 0; d < 2; d++ {
		var s, ss float64
		for _, p := range scaled {
			s += p[d]
			ss += p[d] * p[d]
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("scaled mean dim %d = %v", d, s/3)
		}
		if math.Abs(ss/3-1) > 1e-9 {
			t.Fatalf("scaled var dim %d = %v", d, ss/3)
		}
	}
	// Apply matches Standardize.
	ap := Apply(points[0], mean, std)
	if math.Abs(ap[0]-scaled[0][0]) > 1e-12 {
		t.Fatal("Apply mismatch")
	}
}

func TestStandardizeConstantDim(t *testing.T) {
	points := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	scaled, _, _ := Standardize(points)
	for _, p := range scaled {
		if math.IsNaN(p[0]) || math.IsInf(p[0], 0) {
			t.Fatal("constant dimension produced NaN/Inf")
		}
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := sim.NewRNG(2)
	var points [][]float64
	var labels []int
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for c, cen := range centers {
		for i := 0; i < 100; i++ {
			points = append(points, []float64{
				cen[0] + rng.NormFloat64(), cen[1] + rng.NormFloat64()})
			labels = append(labels, c)
		}
	}
	km := FitKMeans(points, 3, 50, rng)
	// Every blob must map to a single cluster and blobs to distinct ones.
	blobCluster := map[int]int{}
	for i, p := range points {
		c := km.Assign(p)
		if prev, ok := blobCluster[labels[i]]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters", labels[i])
			}
		} else {
			blobCluster[labels[i]] = c
		}
	}
	seen := map[int]bool{}
	for _, c := range blobCluster {
		if seen[c] {
			t.Fatal("two blobs merged into one cluster")
		}
		seen[c] = true
	}
}

func TestKMeansPanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic with fewer points than clusters")
		}
	}()
	FitKMeans([][]float64{{1}}, 2, 10, sim.NewRNG(1))
}

func TestPCA2RecoversVariance(t *testing.T) {
	// Points on a line y=2x with small noise: first component should align
	// with (1,2)/√5.
	rng := sim.NewRNG(3)
	var points [][]float64
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64() * 5
		points = append(points, []float64{x, 2*x + rng.NormFloat64()*0.1})
	}
	// Center them (PCA2 assumes centered input).
	scaled, _, _ := Standardize(points)
	proj, comps := PCA2(scaled, rng)
	if len(proj) != len(points) {
		t.Fatal("projection length wrong")
	}
	// After standardization the dominant direction is (±1,±1)/√2.
	c := comps[0]
	if math.Abs(math.Abs(c[0])-math.Abs(c[1])) > 0.05 {
		t.Fatalf("first component %v not diagonal", c)
	}
	// Components are orthonormal.
	dot := c[0]*comps[1][0] + c[1]*comps[1][1]
	if math.Abs(dot) > 0.05 {
		t.Fatalf("components not orthogonal: dot = %v", dot)
	}
}

// The Figure 6 headline: the nine workloads cluster into
// bandwidth-intensive, YCSB-like (low entropy), and other
// latency-sensitive groups, with high test accuracy (paper: 98.4%).
func TestWorkloadClusteringFigure6(t *testing.T) {
	ds := BuildDataset(workload.Names(), 8, 2000, 16384, 42)
	train, test := ds.Split(0.7)
	m := Train(train, 3, 7)

	// TeraSort/MLPrep/PageRank must share a cluster (BI).
	bi := m.WorkloadCluster["TeraSort"]
	for _, wl := range []string{"MLPrep", "PageRank"} {
		if m.WorkloadCluster[wl] != bi {
			t.Fatalf("%s not in the BI cluster (got %d, want %d)",
				wl, m.WorkloadCluster[wl], bi)
		}
	}
	// YCSB must not share the BI cluster, and must differ from the broad
	// latency cluster (its own low-entropy cluster — Figure 6's LC-2).
	ycsb := m.WorkloadCluster["YCSB"]
	if ycsb == bi {
		t.Fatal("YCSB landed in the BI cluster")
	}
	vdi := m.WorkloadCluster["VDI-Web"]
	if vdi == bi {
		t.Fatal("VDI-Web landed in the BI cluster")
	}
	if ycsb == vdi {
		t.Fatal("YCSB should form its own cluster apart from VDI-Web (Figure 6)")
	}
	// Test accuracy near the paper's 98.4%.
	acc := m.Accuracy(test)
	if acc < 0.90 {
		t.Fatalf("test accuracy %.3f, want ≥ 0.90 (paper: 0.984)", acc)
	}
}

func TestModelClassifyKnownVsUnknown(t *testing.T) {
	ds := BuildDataset([]string{"TeraSort", "YCSB", "VDI-Web"}, 6, 2000, 16384, 1)
	m := Train(ds, 3, 2)
	// A feature vector far outside anything seen must be unknown.
	_, known := m.Classify([]float64{1e9, 1e9, 0.5, 1e9})
	if known {
		t.Fatal("absurd features classified as known")
	}
	// A training sample must be known.
	_, known = m.Classify(ds.Samples[0].Features)
	if !known {
		t.Fatal("training sample classified as unknown")
	}
}

func TestClassifyTrace(t *testing.T) {
	ds := BuildDataset([]string{"TeraSort", "YCSB", "VDI-Web"}, 6, 2000, 16384, 1)
	m := Train(ds, 3, 2)
	recs := workload.ByName("TeraSort").SynthesizeTrace(2000, 1_000_000, sim.NewRNG(9))
	c, known := m.ClassifyTrace(recs, 16384, SynthLogicalPages)
	if !known {
		t.Fatal("fresh TeraSort trace unknown")
	}
	if c != m.WorkloadCluster["TeraSort"] {
		t.Fatalf("TeraSort trace classified into cluster %d, want %d", c, m.WorkloadCluster["TeraSort"])
	}
}
