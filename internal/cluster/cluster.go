// Package cluster implements FleetIO's workload-type learning (§3.4):
// block I/O traces are cut into windows (10K requests each), reduced to
// four features — read bandwidth, write bandwidth, LPA entropy, and
// average I/O size — standardized, and clustered with k-means(++). A PCA
// projection to two dimensions reproduces Figure 6, and the trained model
// classifies live vSSD traffic so each agent gets the reward coefficient
// tuned for its workload type.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/trace"
)

// FeatureDim is the number of features per window.
const FeatureDim = 4

// entropyBuckets is the LPA histogram resolution for the entropy feature.
const entropyBuckets = 64

// Features reduces one window of trace records to the §3.4 feature vector:
// [log read MB/s, log write MB/s, normalized LPA entropy, log avg I/O size
// KB]. Bandwidths and sizes are log-scaled (log1p) so the huge dynamic
// range of bandwidth-intensive jobs does not drown the latency-sensitive
// structure; entropy buckets span the vSSD's whole logical space
// (logicalPages), so a sequential window — however wide its own span —
// reads as concentrated.
func Features(recs []trace.Record, pageSize int, logicalPages int64) [FeatureDim]float64 {
	var f [FeatureDim]float64
	if len(recs) == 0 {
		return f
	}
	if logicalPages <= 0 {
		logicalPages = 1
	}
	var readBytes, writeBytes, totalBytes int64
	var hist [entropyBuckets]float64
	for _, r := range recs {
		b := r.Bytes(pageSize)
		totalBytes += b
		if r.Write {
			writeBytes += b
		} else {
			readBytes += b
		}
		bucket := int(r.LPN * entropyBuckets / logicalPages)
		if bucket < 0 {
			bucket = 0
		}
		if bucket >= entropyBuckets {
			bucket = entropyBuckets - 1
		}
		hist[bucket]++
	}
	dur := float64(recs[len(recs)-1].At-recs[0].At) / 1e9
	if dur <= 0 {
		dur = 1e-6
	}
	f[0] = math.Log1p(float64(readBytes) / dur / 1e6)
	f[1] = math.Log1p(float64(writeBytes) / dur / 1e6)

	h := 0.0
	n := float64(len(recs))
	for _, c := range hist {
		if c > 0 {
			p := c / n
			h -= p * math.Log(p)
		}
	}
	f[2] = h / math.Log(entropyBuckets) // normalized to [0,1]
	f[3] = math.Log1p(float64(totalBytes) / n / 1024)
	return f
}

// Windowize splits records into consecutive windows of perWindow records,
// dropping a final partial window.
func Windowize(recs []trace.Record, perWindow int) [][]trace.Record {
	if perWindow <= 0 {
		panic("cluster: non-positive window")
	}
	var out [][]trace.Record
	for start := 0; start+perWindow <= len(recs); start += perWindow {
		out = append(out, recs[start:start+perWindow])
	}
	return out
}

// Standardize z-scores each dimension in place-safe copies, returning the
// scaled points and the (mean, std) used — std floors at 1e-9 so constant
// dimensions do not blow up.
func Standardize(points [][]float64) (scaled [][]float64, mean, std []float64) {
	if len(points) == 0 {
		return nil, nil, nil
	}
	dim := len(points[0])
	mean = make([]float64, dim)
	std = make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(len(points))
	}
	for _, p := range points {
		for d, v := range p {
			diff := v - mean[d]
			std[d] += diff * diff
		}
	}
	for d := range std {
		std[d] = math.Sqrt(std[d] / float64(len(points)))
		if std[d] < 1e-9 {
			std[d] = 1e-9
		}
	}
	scaled = make([][]float64, len(points))
	for i, p := range points {
		s := make([]float64, dim)
		for d, v := range p {
			s[d] = (v - mean[d]) / std[d]
		}
		scaled[i] = s
	}
	return scaled, mean, std
}

// Apply standardizes one point with a previously computed mean/std.
func Apply(p, mean, std []float64) []float64 {
	out := make([]float64, len(p))
	for d, v := range p {
		out[d] = (v - mean[d]) / std[d]
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans is a fitted k-means model.
type KMeans struct {
	K         int
	Centroids [][]float64
}

// FitKMeans clusters standardized points with k-means++ initialization and
// Lloyd iterations.
func FitKMeans(points [][]float64, k, iters int, rng *sim.RNG) *KMeans {
	if len(points) < k {
		panic(fmt.Sprintf("cluster: %d points for k=%d", len(points), k))
	}
	dim := len(points[0])
	centroids := make([][]float64, 0, k)
	// k-means++ seeding.
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		target := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	assign := make([]int, len(points))
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	return &KMeans{K: k, Centroids: centroids}
}

// Assign returns the nearest centroid index for a standardized point.
func (km *KMeans) Assign(p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range km.Centroids {
		if d := sqDist(p, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// PCA2 projects standardized points onto their top two principal
// components (power iteration with deflation). It returns the projections
// and the two component vectors.
func PCA2(points [][]float64, rng *sim.RNG) (proj [][2]float64, comps [2][]float64) {
	if len(points) == 0 {
		return nil, comps
	}
	dim := len(points[0])
	// Covariance (points assumed centered by Standardize).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, p := range points {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] += p[i] * p[j]
			}
		}
	}
	n := float64(len(points))
	for i := range cov {
		for j := range cov[i] {
			cov[i][j] /= n
		}
	}
	power := func(deflate []float64) []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for iter := 0; iter < 200; iter++ {
			if deflate != nil {
				dot := 0.0
				for i := range v {
					dot += v[i] * deflate[i]
				}
				for i := range v {
					v[i] -= dot * deflate[i]
				}
			}
			next := make([]float64, dim)
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					next[i] += cov[i][j] * v[j]
				}
			}
			norm := 0.0
			for _, x := range next {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				return v
			}
			for i := range next {
				next[i] /= norm
			}
			v = next
		}
		return v
	}
	comps[0] = power(nil)
	comps[1] = power(comps[0])
	proj = make([][2]float64, len(points))
	for i, p := range points {
		for c := 0; c < 2; c++ {
			dot := 0.0
			for d := range p {
				dot += p[d] * comps[c][d]
			}
			proj[i][c] = dot
		}
	}
	return proj, comps
}
