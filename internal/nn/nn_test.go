package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLinearForward(t *testing.T) {
	l := &Linear{In: 2, Out: 2,
		W:  []float64{1, 2, 3, 4}, // [[1,2],[3,4]]
		B:  []float64{0.5, -0.5},
		GW: make([]float64, 4), GB: make([]float64, 2),
	}
	y := make([]float64, 2)
	l.Forward([]float64{1, 1}, y)
	if y[0] != 3.5 || y[1] != 6.5 {
		t.Fatalf("y = %v", y)
	}
}

func TestLinearBackwardMatchesFiniteDifference(t *testing.T) {
	rng := sim.NewRNG(1)
	l := NewLinear(3, 2, rng)
	x := []float64{0.3, -0.7, 1.2}
	// Loss = sum(y); dL/dy = ones.
	loss := func() float64 {
		y := make([]float64, 2)
		l.Forward(x, y)
		return y[0] + y[1]
	}
	l.ZeroGrad()
	dx := make([]float64, 3)
	l.Backward(x, []float64{1, 1}, dx)
	const eps = 1e-6
	for i := range l.W {
		orig := l.W[i]
		l.W[i] = orig + eps
		up := loss()
		l.W[i] = orig - eps
		down := loss()
		l.W[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-l.GW[i]) > 1e-5 {
			t.Fatalf("dW[%d]: analytic %v numeric %v", i, l.GW[i], num)
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

func TestActorCriticGradCheck(t *testing.T) {
	rng := sim.NewRNG(7)
	ac := NewActorCritic(4, 8, []int{3, 2}, rng)
	x := []float64{0.1, -0.5, 0.9, 0.2}
	// Scalar loss: sum of all logits of head 0 weighted + 2*value.
	w0 := []float64{0.3, -0.8, 0.5}
	loss := func() float64 {
		logits, v, _ := ac.Forward(x)
		s := 2 * v
		for i, l := range logits[0] {
			s += w0[i] * l
		}
		return s
	}
	ac.ZeroGrad()
	_, _, cache := ac.Forward(x)
	ac.Backward(cache, [][]float64{w0, nil}, 2)
	const eps = 1e-6
	check := func(name string, w, g []float64) {
		for i := range w {
			orig := w[i]
			w[i] = orig + eps
			up := loss()
			w[i] = orig - eps
			down := loss()
			w[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-g[i]) > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v numeric %v", name, i, g[i], num)
			}
		}
	}
	check("L1.W", ac.L1.W, ac.L1.GW)
	check("L1.B", ac.L1.B, ac.L1.GB)
	check("L2.W", ac.L2.W, ac.L2.GW)
	check("Value.W", ac.Value.W, ac.Value.GW)
	check("Head0.W", ac.Heads[0].W, ac.Heads[0].GW)
	// Head 1 received no upstream gradient.
	for i, g := range ac.Heads[1].GW {
		if g != 0 {
			t.Fatalf("head1 grad[%d] = %v, want 0", i, g)
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Regression: fit y = 2x1 - x2 with a tiny network.
	rng := sim.NewRNG(3)
	ac := NewActorCritic(2, 8, []int{1}, rng)
	opt := NewAdam(0.01)
	sample := func() ([]float64, float64) {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		return x, 2*x[0] - x[1]
	}
	mse := func(n int) float64 {
		s := 0.0
		r2 := sim.NewRNG(99)
		for i := 0; i < n; i++ {
			x := []float64{r2.NormFloat64(), r2.NormFloat64()}
			y := 2*x[0] - x[1]
			_, v, _ := ac.Forward(x)
			s += (v - y) * (v - y)
		}
		return s / float64(n)
	}
	before := mse(100)
	for step := 0; step < 800; step++ {
		ac.ZeroGrad()
		for b := 0; b < 8; b++ {
			x, y := sample()
			_, v, cache := ac.Forward(x)
			ac.Backward(cache, [][]float64{nil}, 2*(v-y))
		}
		opt.Step(ac.Layers(), 8)
	}
	after := mse(100)
	if after > before/10 {
		t.Fatalf("Adam failed to fit: mse %v -> %v", before, after)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp to avoid quick feeding infinities.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			logits[i] = math.Mod(v, 50)
		}
		probs := make([]float64, len(logits))
		Softmax(logits, probs)
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	probs := make([]float64, 3)
	Softmax([]float64{1000, 1001, 999}, probs)
	if math.IsNaN(probs[0]) || probs[1] < probs[0] || probs[0] < probs[2] {
		t.Fatalf("unstable softmax: %v", probs)
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := sim.NewRNG(11)
	probs := []float64{0.7, 0.2, 0.1}
	counts := make([]int, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(rng, probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("class %d frequency %v, want %v", i, got, p)
		}
	}
}

func TestArgmaxAndEntropy(t *testing.T) {
	if Argmax([]float64{1, 5, 3}) != 1 {
		t.Fatal("argmax wrong")
	}
	if Argmax([]float64{7}) != 0 {
		t.Fatal("singleton argmax wrong")
	}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if math.Abs(Entropy(uniform)-math.Log(4)) > 1e-9 {
		t.Fatal("uniform entropy wrong")
	}
	if Entropy([]float64{1, 0, 0}) > 1e-9 {
		t.Fatal("deterministic entropy must be ~0")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := sim.NewRNG(5)
	ac := NewActorCritic(3, 4, []int{2}, rng)
	cl := ac.Clone()
	x := []float64{1, 2, 3}
	_, v1, _ := ac.Forward(x)
	_, v2, _ := cl.Forward(x)
	if v1 != v2 {
		t.Fatal("clone differs")
	}
	ac.L1.W[0] += 1
	_, v3, _ := cl.Forward(x)
	if v3 != v2 {
		t.Fatal("clone shares storage with original")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(9)
	ac := NewActorCritic(5, 6, []int{4, 3, 2}, rng)
	data, err := ac.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeActorCritic(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	l1, v1, _ := ac.Forward(x)
	l2, v2, _ := back.Forward(x)
	if v1 != v2 {
		t.Fatal("value differs after round trip")
	}
	for k := range l1 {
		for i := range l1[k] {
			if l1[k][i] != l2[k][i] {
				t.Fatal("logits differ after round trip")
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := sim.NewRNG(13)
	ac := NewActorCritic(3, 4, []int{2}, rng)
	path := t.TempDir() + "/model.gob"
	if err := ac.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != ac.NumParams() {
		t.Fatal("param count differs")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.gob"); err == nil {
		t.Fatal("loading missing file must error")
	}
}

func TestParamsSetParamsRoundTrip(t *testing.T) {
	rng := sim.NewRNG(5)
	src := NewActorCritic(6, 10, []int{4, 3}, rng)
	dst := NewActorCritic(6, 10, []int{4, 3}, rng) // different init
	p := src.Params()
	if len(p) != src.NumParams() {
		t.Fatalf("Params returned %d values for %d params", len(p), src.NumParams())
	}
	if err := dst.SetParams(p); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, 0.4, -0.5, 0.6}
	l1, v1, _ := src.Forward(x)
	l2, v2, _ := dst.Forward(x)
	if v1 != v2 {
		t.Fatal("value differs after params broadcast")
	}
	for k := range l1 {
		for i := range l1[k] {
			if l1[k][i] != l2[k][i] {
				t.Fatal("logits differ after params broadcast")
			}
		}
	}
	// Params must be a copy: mutating it must not touch the network.
	before := src.L1.W[0]
	p[0] += 100
	if src.L1.W[0] != before {
		t.Fatal("Params aliases network weights")
	}
	if err := dst.SetParams(p[:len(p)-1]); err == nil {
		t.Fatal("SetParams accepted a short slice")
	}
}

func TestNumParamsPaperScale(t *testing.T) {
	// The paper's model: 33 inputs (11 states × 3 windows), [50,50] hidden,
	// three heads and a value head — parameter count should be O(9K).
	rng := sim.NewRNG(1)
	ac := NewActorCritic(33, 50, []int{5, 5, 3}, rng)
	n := ac.NumParams()
	if n < 4000 || n > 12000 {
		t.Fatalf("params = %d, expected in the paper's ~9K regime", n)
	}
}
