package nn

import "math"

// accumRows is the one compute primitive behind every batched kernel:
//
//	dst[j] += Σ_k coeffs[k*cs] * rows[k*ld+j]   for j in [0, len(dst))
//
// with the k-sum accumulated SERIALLY in ascending k for every j — each
// dst element is its own accumulator chain, updated with a separate
// multiply then add per k (never a fused multiply-add, never a split
// partial sum). That makes the result bit-identical to the scalar training
// loops regardless of how many j lanes a SIMD implementation processes at
// once: vector lanes map to independent dst elements, and reductions are
// never reassociated. IEEE-754 multiplication and addition are commutative
// at the bit level for the finite values these kernels see, so
// coeff*row == row*coeff exactly even where the scalar code wrote the
// operands in the other order.
//
// It expresses, in one shape, all three batched matrix products:
//
//	forward   y_r  += x_r[i]  * Wᵀ[i][:]   (rows = transposed weights)
//	grad-W    GW_o += dy_r[o] * x_r[:]     (rows = batch inputs)
//	grad-x    dx_r += dy_r[o] * W[o][:]    (rows = weights)
//
// On amd64 with AVX-512 an assembly implementation (kernel_amd64.s)
// processes 32 dst lanes per step; everywhere else the portable Go loop
// below runs. Both orderings are identical by construction, pinned by
// TestAccumRowsImplsMatch and the batched-vs-scalar oracle test.
func accumRows(dst, rows, coeffs []float64, n, ld, cs int) {
	if len(dst) == 0 || n <= 0 {
		return
	}
	if useAVX512 {
		accumRowsAVX512(dst, rows, coeffs, n, ld, cs)
		return
	}
	accumRowsGeneric(dst, rows, coeffs, n, ld, cs)
}

// accumRowsGeneric is the portable reference implementation.
func accumRowsGeneric(dst, rows, coeffs []float64, n, ld, cs int) {
	for k := 0; k < n; k++ {
		c := coeffs[k*cs]
		row := rows[k*ld : k*ld+len(dst)]
		for j, rj := range row {
			dst[j] += c * rj
		}
	}
}

// tanhSlice writes dst[i] = math.Tanh(src[i]), bit-identical to the scalar
// loop. On AVX-512 the bulk of the slice goes through tanhVecAVX512, which
// reproduces math.Tanh's exact operation sequence per lane; it cannot
// replicate NaN propagation through archExp's early-out branches, so if any
// NaN lane was seen the whole slice is redone with the scalar function
// (NaN inputs mean the run is already lost — only identical garbage
// matters, not speed).
func tanhSlice(dst, src []float64) {
	if useAVX512 && len(dst) >= 8 {
		n := len(dst) &^ 7
		if tanhVecAVX512(dst[:n], src[:n]) {
			for i, v := range src {
				dst[i] = math.Tanh(v)
			}
			return
		}
		for i := n; i < len(dst); i++ {
			dst[i] = math.Tanh(src[i])
		}
		return
	}
	for i, v := range src {
		dst[i] = math.Tanh(v)
	}
}
