package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// randNet builds a network with random dims drawn from rng (paper-scale
// ranges) plus a batch of random input rows.
func randNet(rng *sim.RNG) (*ActorCritic, int, int) {
	in := 4 + rng.Intn(40)
	hidden := 4 + rng.Intn(60)
	heads := make([]int, 1+rng.Intn(4))
	for i := range heads {
		heads[i] = 2 + rng.Intn(6)
	}
	return NewActorCritic(in, hidden, heads, rng), in, len(heads)
}

// TestBatchMatchesScalarOracle is the bit-identity oracle: for random
// network shapes and batch sizes 1..64, ForwardBatch/BackwardBatch must
// produce exactly (==, not approximately) the outputs and gradient
// accumulators that looping the scalar Forward/Backward over the rows
// does. This is the property that lets batched call sites replace scalar
// loops without perturbing any golden figure.
func TestBatchMatchesScalarOracle(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 40; trial++ {
		scalar, in, nHeads := randNet(rng)
		batched := scalar.Clone()
		b := 1 + rng.Intn(64)
		xs := make([]float64, b*in)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		// Upstream gradients: random per head, with occasional nil heads
		// and zero value-gradient rows to exercise the skip paths.
		dls := make([][]float64, nHeads)
		for k := 0; k < nHeads; k++ {
			if rng.Intn(5) == 0 {
				continue
			}
			dls[k] = make([]float64, b*scalar.Heads[k].Out)
			for i := range dls[k] {
				dls[k][i] = rng.NormFloat64()
			}
		}
		dVals := make([]float64, b)
		for i := range dVals {
			if rng.Intn(3) != 0 {
				dVals[i] = rng.NormFloat64()
			}
		}

		blg, bval, bc := batched.ForwardBatch(xs, b)
		// Scalar reference pass, row by row, with backward interleaved the
		// way the scalar training loop runs it.
		rowDL := make([][]float64, nHeads)
		for r := 0; r < b; r++ {
			lg, v, cache := scalar.Forward(xs[r*in : (r+1)*in])
			if v != bval[r] {
				t.Fatalf("trial %d row %d: value %v != scalar %v", trial, r, bval[r], v)
			}
			for k := range lg {
				w := scalar.Heads[k].Out
				for j, want := range lg[k] {
					if got := blg[k][r*w+j]; got != want {
						t.Fatalf("trial %d row %d head %d logit %d: %v != %v", trial, r, k, j, got, want)
					}
				}
				if dls[k] == nil {
					rowDL[k] = nil
				} else {
					rowDL[k] = dls[k][r*w : (r+1)*w]
				}
			}
			scalar.Backward(cache, rowDL, dVals[r])
		}
		batched.BackwardBatch(bc, dls, dVals)

		sl, bl := scalar.Layers(), batched.Layers()
		for li := range sl {
			for i, want := range sl[li].GW {
				if got := bl[li].GW[i]; got != want {
					t.Fatalf("trial %d (b=%d) layer %d GW[%d]: %v != %v", trial, b, li, i, got, want)
				}
			}
			for i, want := range sl[li].GB {
				if got := bl[li].GB[i]; got != want {
					t.Fatalf("trial %d (b=%d) layer %d GB[%d]: %v != %v", trial, b, li, i, got, want)
				}
			}
		}
	}
}

// TestSoftmaxBatchMatchesScalar pins the row-wise softmax against the
// scalar kernel.
func TestSoftmaxBatchMatchesScalar(t *testing.T) {
	rng := sim.NewRNG(3)
	const b, w = 17, 5
	logits := make([]float64, b*w)
	for i := range logits {
		logits[i] = rng.NormFloat64() * 3
	}
	probs := make([]float64, b*w)
	SoftmaxBatch(logits, probs, b, w)
	ref := make([]float64, w)
	for r := 0; r < b; r++ {
		Softmax(logits[r*w:(r+1)*w], ref)
		for j, want := range ref {
			if got := probs[r*w+j]; got != want {
				t.Fatalf("row %d col %d: %v != %v", r, j, got, want)
			}
		}
	}
}

// TestForwardBatchZeroAlloc proves steady-state batched inference performs
// zero allocations once the scratch has grown to the largest batch seen.
func TestForwardBatchZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(5)
	net := NewActorCritic(33, 50, []int{5, 5, 3}, rng)
	const b = 32
	xs := make([]float64, b*33)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	dls := make([][]float64, 3)
	for k, hd := range net.Heads {
		dls[k] = make([]float64, b*hd.Out)
	}
	dVals := make([]float64, b)
	for i := range dVals {
		dVals[i] = 0.1
	}
	net.ForwardBatch(xs, b) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		net.ForwardBatch(xs, b)
	}); allocs != 0 {
		t.Fatalf("ForwardBatch allocates %v/op in steady state", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_, _, c := net.ForwardBatch(xs, b)
		net.BackwardBatch(c, dls, dVals)
	}); allocs != 0 {
		t.Fatalf("ForwardBatch+BackwardBatch allocates %v/op in steady state", allocs)
	}
	// Shrinking the batch must reuse the high-water scratch, not reallocate.
	if allocs := testing.AllocsPerRun(100, func() {
		net.ForwardBatch(xs, 8)
	}); allocs != 0 {
		t.Fatalf("smaller-batch ForwardBatch allocates %v/op", allocs)
	}
}

// BenchmarkForwardBatch measures batched inference throughput per state at
// B=32 on the paper-sized network; compare ns/op ÷ 32 against
// BenchmarkForward (the acceptance bar is ≥3x per-state at B≥8).
func BenchmarkForwardBatch(b *testing.B) {
	rng := sim.NewRNG(1)
	net := NewActorCritic(33, 50, []int{5, 5, 3}, rng)
	const batch = 32
	xs := make([]float64, batch*33)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	net.ForwardBatch(xs, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(xs, batch)
	}
}

// BenchmarkForwardBatch8 is the acceptance-criterion batch size.
func BenchmarkForwardBatch8(b *testing.B) {
	rng := sim.NewRNG(1)
	net := NewActorCritic(33, 50, []int{5, 5, 3}, rng)
	const batch = 8
	xs := make([]float64, batch*33)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	net.ForwardBatch(xs, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(xs, batch)
	}
}

// BenchmarkBackwardBatch measures one batched gradient step (forward +
// backward) at B=32; compare against 32× BenchmarkForwardBackward.
func BenchmarkBackwardBatch(b *testing.B) {
	rng := sim.NewRNG(1)
	net := NewActorCritic(33, 50, []int{5, 5, 3}, rng)
	const batch = 32
	xs := make([]float64, batch*33)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	dls := make([][]float64, 3)
	for k, hd := range net.Heads {
		dls[k] = make([]float64, batch*hd.Out)
		for i := range dls[k] {
			dls[k][i] = 0.1
		}
	}
	dVals := make([]float64, batch)
	for i := range dVals {
		dVals[i] = 1.0
	}
	net.ForwardBatch(xs, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, c := net.ForwardBatch(xs, batch)
		net.BackwardBatch(c, dls, dVals)
	}
}

// TestAccumRowsImplsMatch pins the assembly accumRows kernel against the
// portable Go implementation bit for bit, across edge-case lane counts
// (partial masks in every position) and strides.
func TestAccumRowsImplsMatch(t *testing.T) {
	if !useAVX512 {
		t.Skip("no AVX-512 kernel on this CPU")
	}
	rng := sim.NewRNG(11)
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(70)
		n := rng.Intn(40)
		cs := 1 + rng.Intn(3)
		ld := m + rng.Intn(8)
		rows := make([]float64, n*ld+m)
		for i := range rows {
			rows[i] = rng.NormFloat64()
		}
		coeffs := make([]float64, n*cs+1)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64()
		}
		want := make([]float64, m)
		got := make([]float64, m)
		for i := range want {
			v := rng.NormFloat64()
			want[i], got[i] = v, v
		}
		accumRowsGeneric(want, rows, coeffs, n, ld, cs)
		accumRowsAVX512(got, rows, coeffs, n, ld, cs)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d (m=%d n=%d ld=%d cs=%d): dst[%d] = %v, generic %v",
					trial, m, n, ld, cs, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkAccumRows microbenchmarks the core kernel at the trunk-layer
// shape (50 outputs × 50 inputs, one state row): 2500 multiply-adds/op.
func BenchmarkAccumRows(b *testing.B) {
	rng := sim.NewRNG(1)
	const m, n = 50, 50
	dst := make([]float64, m)
	rows := make([]float64, n*m)
	coeffs := make([]float64, n)
	for i := range rows {
		rows[i] = rng.Float64()
	}
	for i := range coeffs {
		coeffs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accumRows(dst, rows, coeffs, n, m, 1)
	}
}

// TestTanhSliceMatchesMath pins the vectorized tanh against math.Tanh
// bit for bit: random draws across every branch of the scalar algorithm
// (rational |x|<0.625, exp branch, ±1 saturation), dense sweeps around the
// branch points, and the special values (±0, ±Inf, NaN, denormals, huge).
func TestTanhSliceMatchesMath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs []float64
	// Branch-point neighborhoods at ulp resolution.
	for _, pivot := range []float64{0.625, 0.5 * 8.8029691931113054295988e+01} {
		for d := -64; d <= 64; d++ {
			v := pivot
			if d < 0 {
				for i := 0; i > d; i-- {
					v = math.Nextafter(v, math.Inf(-1))
				}
			} else {
				for i := 0; i < d; i++ {
					v = math.Nextafter(v, math.Inf(1))
				}
			}
			xs = append(xs, v, -v)
		}
	}
	xs = append(xs,
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		5e-324, -5e-324, 1e-310, -1e-310, math.MaxFloat64, -math.MaxFloat64,
		1e300, -1e300, 44.014, -44.014, 44.015, -44.015,
	)
	// Random draws spanning all branches and the typical activation range.
	// The volume matters: a 1-ulp divergence in one operation-ordering
	// mistake shows up in well under 1 in 10⁴ draws.
	for i := 0; i < 200_000; i++ {
		xs = append(xs, rng.NormFloat64()*3)
	}
	for i := 0; i < 100_000; i++ {
		xs = append(xs, (rng.Float64()*2-1)*50)
	}
	for i := 0; i < 50_000; i++ {
		v := math.Float64frombits(rng.Uint64())
		if math.IsNaN(v) {
			continue
		}
		xs = append(xs, v)
	}

	check := func(in []float64) {
		t.Helper()
		got := make([]float64, len(in))
		tanhSlice(got, in)
		for i, v := range in {
			want := math.Tanh(v)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("tanhSlice(%g) [%d of %d] = %x, math.Tanh = %x",
					v, i, len(in), math.Float64bits(got[i]), math.Float64bits(want))
			}
		}
	}
	// The main sweep deliberately has no NaN: one NaN lane makes tanhSlice
	// redo the whole slice scalar, which would stop the vector results from
	// ever being compared.
	check(xs)
	// Odd lengths exercise the scalar tail; sub-8 stays fully scalar.
	check(xs[:len(xs)-3])
	check(xs[:5])
	// NaN inside a vector block forces the scalar-redo path; the rest of
	// the slice must still come out identical (and NaN stays NaN).
	withNaN := append([]float64{1.5, -0.25, math.NaN(), 0.1}, xs[:28]...)
	got := make([]float64, len(withNaN))
	tanhSlice(got, withNaN)
	for i, v := range withNaN {
		if math.IsNaN(v) {
			if !math.IsNaN(got[i]) {
				t.Fatalf("NaN input produced %g", got[i])
			}
			continue
		}
		if math.Float64bits(got[i]) != math.Float64bits(math.Tanh(v)) {
			t.Fatalf("redo path: tanhSlice(%g) = %x, want %x", v,
				math.Float64bits(got[i]), math.Float64bits(math.Tanh(v)))
		}
	}
}

func BenchmarkTanhSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	src := make([]float64, 1600)
	dst := make([]float64, len(src))
	for i := range src {
		src[i] = rng.NormFloat64() * 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tanhSlice(dst, src)
	}
}
