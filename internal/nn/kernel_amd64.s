#include "textflag.h"

// func accumRowsAVX512(dst, rows, coeffs []float64, n, ld, cs int)
//
// dst[j] += Σ_k coeffs[k*cs] * rows[k*ld+j] with the k-sum kept SERIAL:
// each dst lane is one accumulator chain updated with a separate multiply
// then add per k, so every lane reproduces the scalar kernel's rounding
// exactly. VFMADD is deliberately never used — fusing would skip the
// intermediate round and change results. Vectorization is across j only.
//
// Two tile shapes keep enough independent add chains in flight to cover
// the VADDPD latency: a 64-lane tile (eight ZMM accumulators — the first
// four unmasked, the last four under opmasks K1..K4) taken while more
// than 32 lanes remain, and a 32-lane fully-masked tile for the tail.
// Masked-off lanes neither fault nor store, so any dst length runs
// through the same code.
//
// Register plan (R14/R15 avoided — R14 is the goroutine register in the
// internal ABI):
//   DI dst tile ptr   SI rows tile ptr   DX coeffs base
//   R8 lanes left     R9 ld*8            R10 cs*8         R13 n
//   CX lanes in tile  AX mask scratch    R11 row ptr      R12 coeff ptr
//   BX k countdown    Z0..Z7 accumulators, Z8 broadcast, Z9..Z16 products
TEXT ·accumRowsAVX512(SB), NOSPLIT, $0-96
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R8
	MOVQ rows_base+24(FP), SI
	MOVQ coeffs_base+48(FP), DX
	MOVQ n+72(FP), R13
	MOVQ ld+80(FP), R9
	MOVQ cs+88(FP), R10
	SHLQ $3, R9
	SHLQ $3, R10

tile:
	TESTQ R8, R8
	JLE   done
	CMPQ  R8, $32
	JG    big

	// ---- small tile: ≤32 lanes, four masked accumulators ----
	// K1..K4 are the bytes of (1<<lanes)-1.
	MOVQ  R8, CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX
	KMOVB AX, K1
	SHRQ  $8, AX
	KMOVB AX, K2
	SHRQ  $8, AX
	KMOVB AX, K3
	SHRQ  $8, AX
	KMOVB AX, K4

	VMOVUPD.Z (DI), K1, Z0
	VMOVUPD.Z 64(DI), K2, Z1
	VMOVUPD.Z 128(DI), K3, Z2
	VMOVUPD.Z 192(DI), K4, Z3

	MOVQ  SI, R11
	MOVQ  DX, R12
	MOVQ  R13, BX
	TESTQ BX, BX
	JLE   smallstore

smallk:
	VBROADCASTSD (R12), Z8
	VMULPD.Z     (R11), Z8, K1, Z9
	VMULPD.Z     64(R11), Z8, K2, Z10
	VMULPD.Z     128(R11), Z8, K3, Z11
	VMULPD.Z     192(R11), Z8, K4, Z12
	VADDPD       Z9, Z0, Z0
	VADDPD       Z10, Z1, Z1
	VADDPD       Z11, Z2, Z2
	VADDPD       Z12, Z3, Z3
	ADDQ         R9, R11
	ADDQ         R10, R12
	DECQ         BX
	JNZ          smallk

smallstore:
	VMOVUPD Z0, K1, (DI)
	VMOVUPD Z1, K2, 64(DI)
	VMOVUPD Z2, K3, 128(DI)
	VMOVUPD Z3, K4, 192(DI)

	LEAQ (DI)(CX*8), DI
	LEAQ (SI)(CX*8), SI
	SUBQ CX, R8
	JMP  tile

	// ---- big tile: >32 lanes — 32 unmasked + ≤32 masked, 8 chains ----
big:
	MOVQ $64, CX
	CMPQ R8, CX
	JGE  bigmask
	MOVQ R8, CX
bigmask:
	MOVQ  CX, R11
	LEAQ  -32(CX), CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX
	KMOVB AX, K1
	SHRQ  $8, AX
	KMOVB AX, K2
	SHRQ  $8, AX
	KMOVB AX, K3
	SHRQ  $8, AX
	KMOVB AX, K4
	MOVQ  R11, CX

	VMOVUPD   (DI), Z0
	VMOVUPD   64(DI), Z1
	VMOVUPD   128(DI), Z2
	VMOVUPD   192(DI), Z3
	VMOVUPD.Z 256(DI), K1, Z4
	VMOVUPD.Z 320(DI), K2, Z5
	VMOVUPD.Z 384(DI), K3, Z6
	VMOVUPD.Z 448(DI), K4, Z7

	MOVQ  SI, R11
	MOVQ  DX, R12
	MOVQ  R13, BX
	TESTQ BX, BX
	JLE   bigstore

bigk:
	VBROADCASTSD (R12), Z8
	VMULPD       (R11), Z8, Z9
	VMULPD       64(R11), Z8, Z10
	VMULPD       128(R11), Z8, Z11
	VMULPD       192(R11), Z8, Z12
	VMULPD.Z     256(R11), Z8, K1, Z13
	VMULPD.Z     320(R11), Z8, K2, Z14
	VMULPD.Z     384(R11), Z8, K3, Z15
	VMULPD.Z     448(R11), Z8, K4, Z16
	VADDPD       Z9, Z0, Z0
	VADDPD       Z10, Z1, Z1
	VADDPD       Z11, Z2, Z2
	VADDPD       Z12, Z3, Z3
	VADDPD       Z13, Z4, Z4
	VADDPD       Z14, Z5, Z5
	VADDPD       Z15, Z6, Z6
	VADDPD       Z16, Z7, Z7
	ADDQ         R9, R11
	ADDQ         R10, R12
	DECQ         BX
	JNZ          bigk

bigstore:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, K1, 256(DI)
	VMOVUPD Z5, K2, 320(DI)
	VMOVUPD Z6, K3, 384(DI)
	VMOVUPD Z7, K4, 448(DI)

	LEAQ (DI)(CX*8), DI
	LEAQ (SI)(CX*8), SI
	SUBQ CX, R8
	JMP  tile

done:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET

// func tanhVecAVX512(dst, src []float64) bool
//
// Packed transcription of math.Tanh: the Cephes rational branch
// (|x| < 0.625), the exp branch (1 - 2/(exp(2|x|)+1) with sign restored),
// and the ±1 saturation branch (|x| > 0.5*MAXLOG) are all computed and
// blended by opmask, every lane performing exactly the operation sequence
// of the scalar code — including math.archExp's FMA variant for the exp
// call (the FMAs here mirror FMAs in that assembly, not fusions of scalar
// mul/add pairs, so rounding matches bit for bit). NaN lanes are only
// detected (sticky K4 → returned), and the caller redoes the slice with
// the scalar function.
//
// Constant registers (loaded once): Z16 bias qword, Z17 0.625,
// Z18 0.5*MAXLOG, Z19 2.0, Z20 log2(e), Z21 LN2U, Z22 LN2L, Z23 0.0625,
// Z24..Z29 Taylor c8..c3, Z30 0.5, Z31 1.0.
TEXT ·tanhVecAVX512(SB), NOSPLIT, $0-49
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	SHRQ $3, CX
	KXORW K4, K4, K4
	TESTQ CX, CX
	JZ    tdone

	VBROADCASTSD ·tanhConsts+168(SB), Z16
	VBROADCASTSD ·tanhConsts+0(SB), Z17
	VBROADCASTSD ·tanhConsts+8(SB), Z18
	VBROADCASTSD ·tanhConsts+16(SB), Z19
	VBROADCASTSD ·tanhConsts+24(SB), Z20
	VBROADCASTSD ·tanhConsts+32(SB), Z21
	VBROADCASTSD ·tanhConsts+40(SB), Z22
	VBROADCASTSD ·tanhConsts+48(SB), Z23
	VBROADCASTSD ·tanhConsts+56(SB), Z24
	VBROADCASTSD ·tanhConsts+64(SB), Z25
	VBROADCASTSD ·tanhConsts+72(SB), Z26
	VBROADCASTSD ·tanhConsts+80(SB), Z27
	VBROADCASTSD ·tanhConsts+88(SB), Z28
	VBROADCASTSD ·tanhConsts+96(SB), Z29
	VBROADCASTSD ·tanhConsts+104(SB), Z30
	VBROADCASTSD ·tanhConsts+112(SB), Z31

tloop:
	VMOVUPD (SI), Z0
	// z = |x|, sign = x ^ z, branch masks, NaN stickiness.
	VPSLLQ $1, Z0, Z1
	VPSRLQ $1, Z1, Z1
	VXORPD Z1, Z0, Z2
	VCMPPD $0x1D, Z17, Z1, K1 // GE_OS: z >= 0.625
	VCMPPD $0x1E, Z18, Z1, K2 // GT_OS: z > 0.5*MAXLOG
	VCMPPD $0x03, Z0, Z0, K3  // UNORD: NaN lanes
	KORW   K3, K4, K4

	// ---- archExp(u), u = 2z, FMA variant ----
	VMULPD       Z19, Z1, Z3  // u = 2*z
	VMULPD       Z20, Z3, Z4  // n = u*log2(e)
	VCVTPD2DQ    Z4, Y5       // round to int32 (nearest-even)
	VCVTDQ2PD    Y5, Z4
	VFNMADD231PD Z21, Z4, Z3  // u -= n*LN2U
	VFNMADD231PD Z22, Z4, Z3  // u -= n*LN2L
	VMULPD       Z23, Z3, Z3  // u *= 0.0625
	VMOVAPD      Z24, Z6      // Taylor: p = c8
	VFMADD213PD  Z25, Z3, Z6  // p = p*u + c7
	VFMADD213PD  Z26, Z3, Z6
	VFMADD213PD  Z27, Z3, Z6
	VFMADD213PD  Z28, Z3, Z6
	VFMADD213PD  Z29, Z3, Z6
	VFMADD213PD  Z30, Z3, Z6  // … + 0.5
	VFMADD213PD  Z31, Z3, Z6  // … + 1.0
	VMULPD       Z6, Z3, Z3   // u *= p, then square back 4 times:
	VADDPD       Z19, Z3, Z7  // t = u + 2
	VMULPD       Z7, Z3, Z3   // u *= t
	VADDPD       Z19, Z3, Z7
	VMULPD       Z7, Z3, Z3
	VADDPD       Z19, Z3, Z7
	VMULPD       Z7, Z3, Z3
	VADDPD       Z19, Z3, Z7
	VFMADD213PD  Z31, Z7, Z3  // u = t*u + 1
	VPMOVSXDQ    Y5, Z5       // scale by 2^n: build the bits directly
	VPADDQ       Z16, Z5, Z5
	VPSLLQ       $52, Z5, Z5
	VMULPD       Z5, Z3, Z8   // s = exp(2z)

	// exp branch: 1 - 2/(s+1), sign restored onto the positive result.
	VADDPD Z31, Z8, Z7
	VDIVPD Z7, Z19, Z8
	VSUBPD Z8, Z31, Z8
	VORPD  Z2, Z8, Z8

	// ---- Cephes rational branch: x + x*s2*P(s2)/Q(s2) ----
	// Go's * and / are left-associative, so the scalar expression is
	// ((x*s2)*num)/den — the division comes LAST, not num/den first.
	VMULPD       Z0, Z0, Z9
	VBROADCASTSD ·tanhConsts+120(SB), Z13
	VMULPD       Z9, Z13, Z10 // num = P0*s2
	VBROADCASTSD ·tanhConsts+128(SB), Z13
	VADDPD       Z13, Z10, Z10
	VMULPD       Z9, Z10, Z10
	VBROADCASTSD ·tanhConsts+136(SB), Z13
	VADDPD       Z13, Z10, Z10
	VBROADCASTSD ·tanhConsts+144(SB), Z13
	VADDPD       Z13, Z9, Z11 // den = s2 + Q0
	VMULPD       Z9, Z11, Z11
	VBROADCASTSD ·tanhConsts+152(SB), Z13
	VADDPD       Z13, Z11, Z11
	VMULPD       Z9, Z11, Z11
	VBROADCASTSD ·tanhConsts+160(SB), Z13
	VADDPD       Z13, Z11, Z11
	VMULPD       Z9, Z0, Z12  // t = x*s2
	VMULPD       Z10, Z12, Z12
	VDIVPD       Z11, Z12, Z12
	VADDPD       Z12, Z0, Z12

	// Blend: rational result; x itself where x == ±0 (the scalar code
	// early-returns x there, and the polynomial turns -0 into +0);
	// the exp branch where z >= 0.625; ±1 where z saturates.
	VPTESTNMQ Z1, Z1, K5
	VMOVAPD   Z0, K5, Z12
	VMOVAPD   Z8, K1, Z12
	VORPD     Z2, Z31, Z7
	VMOVAPD   Z7, K2, Z12
	VMOVUPD   Z12, (DI)

	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  tloop

tdone:
	KMOVW K4, AX
	TESTL AX, AX
	SETNE ret+48(FP)
	VZEROUPPER
	RET
