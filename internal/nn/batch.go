package nn

// Batched compute kernels. Every kernel is bit-identical to looping its
// scalar counterpart over the batch rows in ascending order: each output
// element (and each gradient-accumulator element) is produced by the same
// sequence of floating-point operations in the same order, so replacing a
// scalar loop with a batched call can never change a result — only how
// fast it arrives.
//
// All three matrix products reduce to the accumRows primitive (kernel.go),
// which vectorizes across independent accumulator elements and never
// reassociates a reduction:
//
//   - forward holds the batch row's activations as the coefficient vector
//     and streams transposed weight rows (weights-stationary: the wt cache
//     is built once per weight revision and read by every row of every
//     batch until the optimizer steps);
//   - the weight gradient holds a GW row as the accumulator and streams
//     batch input rows against the corresponding upstream-gradient column,
//     so each GW element sees the batch's addends in ascending row order —
//     the accumulator is carried through the rows, never recomputed as a
//     separate partial sum;
//   - the input gradient holds a dx row as the accumulator and streams
//     weight rows in ascending output order, exactly like the scalar loop.
//
// Pinned by the batched-vs-scalar oracle property test in batch_test.go
// and by TestCompareGolden end to end.

// ForwardBatch computes ys = xs·Wᵀ + b for a batch of b input rows.
// xs is b×In row-major, ys is b×Out row-major. Each output element is the
// same dot product, in the same summation order, as b scalar Forward
// calls — row r of ys equals Forward(xs[r·In:...]) exactly.
func (l *Linear) ForwardBatch(xs, ys []float64, b int) {
	in, out := l.In, l.Out
	wt := l.wtView()
	for r := 0; r < b; r++ {
		y := ys[r*out : r*out+out]
		copy(y, l.B)
		accumRows(y, wt, xs[r*in:], in, out, 1)
	}
}

// wtView returns W transposed to In×Out, rebuilding the cache if the
// weights changed since it was last built.
func (l *Linear) wtView() []float64 {
	if l.wt == nil || l.wtRev != l.rev {
		if l.wt == nil {
			l.wt = make([]float64, len(l.W))
		}
		in, out := l.In, l.Out
		for o := 0; o < out; o++ {
			row := l.W[o*in : o*in+in]
			for i, w := range row {
				l.wt[i*out+o] = w
			}
		}
		l.wtRev = l.rev
	}
	return l.wt
}

// BackwardBatch accumulates parameter gradients for a batch: xs is the
// b×In input matrix, dys the b×Out upstream-gradient matrix, and dxs (b×In,
// may be nil to skip) receives the input gradients. It is bit-identical to
// b scalar Backward calls in row order: every GW/GB element receives the
// same addends in the same (ascending-row) sequence, and each dxs row sums
// over output units in the same ascending order.
func (l *Linear) BackwardBatch(xs, dys, dxs []float64, b int) {
	in, out := l.In, l.Out
	for o := 0; o < out; o++ {
		gb := l.GB[o]
		for r := 0; r < b; r++ {
			gb += dys[r*out+o]
		}
		l.GB[o] = gb
		accumRows(l.GW[o*in:o*in+in], xs, dys[o:], b, in, out)
	}
	if dxs != nil {
		dxs = dxs[: b*in : b*in]
		for i := range dxs {
			dxs[i] = 0
		}
		for r := 0; r < b; r++ {
			accumRows(dxs[r*in:r*in+in], l.W, dys[r*out:], out, in, 1)
		}
	}
}

// SoftmaxBatch computes a row-wise softmax over a b×width matrix. Each row
// is the scalar Softmax applied to the corresponding logits row.
func SoftmaxBatch(logits, probs []float64, b, width int) {
	for r := 0; r < b; r++ {
		Softmax(logits[r*width:(r+1)*width], probs[r*width:(r+1)*width])
	}
}

// BatchCache holds the intermediate activations of one batched forward
// pass (row-major, B rows), needed for the corresponding BackwardBatch.
type BatchCache struct {
	B      int
	X      []float64 // B×In inputs
	H1, A1 []float64 // B×hidden pre-/post-tanh, layer 1
	H2, A2 []float64 // B×hidden pre-/post-tanh, layer 2
}

// headCols returns the column count of the fused head block: every policy
// head's logits plus the value output in the last column.
func (ac *ActorCritic) headCols() int {
	n := 1
	for _, hd := range ac.Heads {
		n += hd.Out
	}
	return n
}

// batchScratch sizes the batched forward/backward scratch for b rows,
// growing to the high-water mark so steady state allocates nothing.
func (ac *ActorCritic) batchScratch(b int) *BatchCache {
	c := ac.bw
	if c == nil || b > ac.batchCap {
		in, h1, h2 := ac.L1.In, ac.L1.Out, ac.L2.Out
		c = &BatchCache{
			X:  make([]float64, b*in),
			H1: make([]float64, b*h1), A1: make([]float64, b*h1),
			H2: make([]float64, b*h2), A2: make([]float64, b*h2),
		}
		ac.bw = c
		ac.batchCap = b
		ac.logitsB = make([][]float64, len(ac.Heads))
		for k, hd := range ac.Heads {
			ac.logitsB[k] = make([]float64, b*hd.Out)
		}
		ac.valOutB = make([]float64, b)
		ac.headsOutB = make([]float64, b*ac.headCols())
		ac.dA2B = make([]float64, b*h2)
		ac.dTmpB = make([]float64, b*h2)
		ac.dH2B = make([]float64, b*h2)
		ac.dA1B = make([]float64, b*h1)
		ac.dH1B = make([]float64, b*h1)
	}
	return c
}

// headsView returns the fused head block — the h2×headCols transposed
// weights and the headCols bias vector covering Heads then Value —
// rebuilding it when any source layer's weights changed.
func (ac *ActorCritic) headsView() (wt, bias []float64) {
	h2 := ac.L2.Out
	ncols := ac.headCols()
	fresh := len(ac.headsRevs) == len(ac.Heads)+1
	if fresh {
		for k, hd := range ac.Heads {
			if ac.headsRevs[k] != hd.rev {
				fresh = false
				break
			}
		}
		fresh = fresh && ac.headsRevs[len(ac.Heads)] == ac.Value.rev
	}
	if !fresh {
		if len(ac.headsWT) != h2*ncols {
			ac.headsWT = make([]float64, h2*ncols)
			ac.headsBias = make([]float64, ncols)
			ac.headsRevs = make([]uint64, len(ac.Heads)+1)
		}
		col := 0
		for k := 0; k <= len(ac.Heads); k++ {
			l := ac.Value
			if k < len(ac.Heads) {
				l = ac.Heads[k]
			}
			for j := 0; j < l.Out; j++ {
				ac.headsBias[col] = l.B[j]
				for i := 0; i < h2; i++ {
					ac.headsWT[i*ncols+col] = l.W[j*h2+i]
				}
				col++
			}
			ac.headsRevs[k] = l.rev
		}
	}
	return ac.headsWT, ac.headsBias
}

// ForwardBatch runs the network over b states stacked in xs (b×In
// row-major), returning per-head logits as b×headOut row-major matrices
// and the b value estimates. Row r of every output is bit-identical to
// Forward(xs[r·In:...]).
//
// Like Forward, the returned slices and cache are owned by the network and
// reused by the next ForwardBatch call; steady state allocates nothing
// once the scratch has grown to the largest batch seen.
func (ac *ActorCritic) ForwardBatch(xs []float64, b int) (logits [][]float64, values []float64, cache *BatchCache) {
	c := ac.batchScratch(b)
	in, h1, h2 := ac.L1.In, ac.L1.Out, ac.L2.Out
	c.B = b
	c.X = c.X[:b*in]
	c.H1, c.A1 = c.H1[:b*h1], c.A1[:b*h1]
	c.H2, c.A2 = c.H2[:b*h2], c.A2[:b*h2]
	copy(c.X, xs[:b*in])
	ac.L1.ForwardBatch(c.X, c.H1, b)
	tanhSlice(c.A1, c.H1)
	ac.L2.ForwardBatch(c.A1, c.H2, b)
	tanhSlice(c.A2, c.H2)
	// One fused pass over all heads and the value unit per state, then
	// scatter the block columns into the per-head row-major outputs.
	ncols := ac.headCols()
	hwt, hbias := ac.headsView()
	hout := ac.headsOutB[:b*ncols]
	for r := 0; r < b; r++ {
		y := hout[r*ncols : r*ncols+ncols]
		copy(y, hbias)
		accumRows(y, hwt, c.A2[r*h2:], h2, ncols, 1)
	}
	col := 0
	for k, hd := range ac.Heads {
		w := hd.Out
		lg := ac.logitsB[k][:b*w]
		for r := 0; r < b; r++ {
			copy(lg[r*w:r*w+w], hout[r*ncols+col:r*ncols+col+w])
		}
		ac.logitsB[k] = lg
		col += w
	}
	vals := ac.valOutB[:b]
	for r := 0; r < b; r++ {
		vals[r] = hout[r*ncols+ncols-1]
	}
	return ac.logitsB, vals, c
}

// BackwardBatch accumulates gradients for a batched forward pass, given
// per-head upstream logit gradients (each b×headOut row-major; nil entries
// are skipped) and per-row value-output gradients (len B; may be nil).
// It is bit-identical to B scalar Backward calls in row order — including
// the scalar path's dValue == 0 skip, applied here per row, so a row with
// a zero value gradient contributes nothing to the value head or to its
// trunk gradient.
func (ac *ActorCritic) BackwardBatch(c *BatchCache, dLogits [][]float64, dValues []float64) {
	b := c.B
	h1, h2 := ac.L1.Out, ac.L2.Out
	dA2 := ac.dA2B[:b*h2]
	tmp := ac.dTmpB[:b*h2]
	for i := range dA2 {
		dA2[i] = 0
	}
	for k, hd := range ac.Heads {
		if dLogits[k] == nil {
			continue
		}
		hd.BackwardBatch(c.A2, dLogits[k], tmp, b)
		for i := range dA2 {
			dA2[i] += tmp[i]
		}
	}
	if dValues != nil {
		// Fused value-head backward (Out == 1): for each active row,
		// accumulate GB/GW and add W·g into the trunk gradient. The scalar
		// path routes this through Backward's dx scratch, but a single
		// output unit makes dx[i] exactly wᵢ·g, so adding it directly is
		// the same addend dA2 would receive.
		vgb := ac.Value.GB[0]
		vgrow := ac.Value.GW[:h2]
		vrow := ac.Value.W[:h2]
		for r := 0; r < b; r++ {
			if dValues[r] == 0 {
				continue
			}
			vgb += dValues[r]
			accumRows(vgrow, c.A2[r*h2:r*h2+h2], dValues[r:], 1, h2, 1)
			accumRows(dA2[r*h2:r*h2+h2], vrow, dValues[r:], 1, h2, 1)
		}
		ac.Value.GB[0] = vgb
	}
	// Through tanh at layer 2, then the trunk.
	dH2 := ac.dH2B[:b*h2]
	for i := range dH2 {
		dH2[i] = dA2[i] * (1 - c.A2[i]*c.A2[i])
	}
	dA1 := ac.dA1B[:b*h1]
	ac.L2.BackwardBatch(c.A1, dH2, dA1, b)
	dH1 := ac.dH1B[:b*h1]
	for i := range dH1 {
		dH1[i] = dA1[i] * (1 - c.A1[i]*c.A1[i])
	}
	ac.L1.BackwardBatch(c.X, dH1, nil, b)
}
