package nn

import (
	"testing"

	"repro/internal/sim"
)

func benchNet() (*ActorCritic, []float64) {
	rng := sim.NewRNG(1)
	net := NewActorCritic(33, 50, []int{5, 5, 3}, rng)
	x := make([]float64, 33)
	for i := range x {
		x[i] = rng.Float64()
	}
	return net, x
}

// BenchmarkForward measures one policy+value inference on the paper-sized
// network.
func BenchmarkForward(b *testing.B) {
	net, x := benchNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

// BenchmarkForwardBackward measures one full gradient step's compute.
func BenchmarkForwardBackward(b *testing.B) {
	net, x := benchNet()
	dl := [][]float64{make([]float64, 5), make([]float64, 5), make([]float64, 3)}
	for _, d := range dl {
		for i := range d {
			d[i] = 0.1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, cache := net.Forward(x)
		net.Backward(cache, dl, 1.0)
	}
}
