// Package nn is a small, dependency-free neural-network library sized for
// FleetIO's RL models (Table 3: two hidden layers of 50 units, ~9K
// parameters). It provides dense layers with tanh activations, an
// actor-critic network with a shared trunk, multiple categorical policy
// heads and a value head, the Adam optimizer, softmax/categorical
// utilities, and gob serialization. It replaces the paper's
// PyTorch/RLlib stack.
//
// Alongside the scalar per-state kernels, ForwardBatch/BackwardBatch
// process B×In row-major batches through reusable BatchCache scratch —
// bit-identical to the scalar path (same FP operation order; see
// docs/PERFORMANCE.md "Batched RL kernels") and allocation-free in
// steady state.
package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"os"

	"repro/internal/sim"
)

// Linear is a fully connected layer y = Wx + b with gradient accumulators
// and Adam moment buffers.
type Linear struct {
	In, Out int
	W, B    []float64 // W is Out×In row-major

	GW, GB []float64 // accumulated gradients
	MW, VW []float64 // Adam first/second moments for W
	MB, VB []float64 // Adam moments for B

	// Transposed-weight cache for the batched forward path (batch.go):
	// wt is W laid out In×Out so one accumRows pass per state streams
	// contiguous rows. rev counts weight mutations; wt is rebuilt lazily
	// whenever wtRev falls behind. Every in-package mutator (Adam.Step,
	// SetParams, gob decode, Clone) keeps this coherent; code that writes
	// W directly must call NoteWeightsChanged before the next batched call.
	wt         []float64
	wtRev, rev uint64
}

// NoteWeightsChanged invalidates the transposed-weight caches used by the
// batched forward kernels. In-package mutators handle this automatically;
// call it only after assigning to W directly.
func (l *Linear) NoteWeightsChanged() { l.rev++ }

// NewLinear builds a layer with Xavier/Glorot-uniform initialization.
func NewLinear(in, out int, rng *sim.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		GW: make([]float64, in*out), GB: make([]float64, out),
		MW: make([]float64, in*out), VW: make([]float64, in*out),
		MB: make([]float64, out), VB: make([]float64, out),
	}
	bound := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W {
		l.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return l
}

// Forward computes y = Wx + b into y (len Out). x must have length In.
func (l *Linear) Forward(x, y []float64) {
	in := l.In
	x = x[:in] // one bounds check here lets the inner loop elide them
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*in : o*in+in]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
}

// Backward accumulates parameter gradients given the layer input x (len
// In) and the upstream gradient dy, and writes the input gradient into dx
// (len In, may be nil to skip).
func (l *Linear) Backward(x, dy, dx []float64) {
	in := l.In
	x = x[:in]
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		l.GB[o] += g
		grow := l.GW[o*in : o*in+in]
		for i, xi := range x {
			grow[i] += g * xi
		}
	}
	if dx != nil {
		dx = dx[:in]
		for i := range dx {
			dx[i] = 0
		}
		for o := 0; o < l.Out; o++ {
			g := dy[o]
			row := l.W[o*in : o*in+in]
			for i, wi := range row {
				dx[i] += wi * g
			}
		}
	}
}

// ZeroGrad clears the gradient accumulators.
func (l *Linear) ZeroGrad() {
	for i := range l.GW {
		l.GW[i] = 0
	}
	for i := range l.GB {
		l.GB[i] = 0
	}
}

// NumParams returns the parameter count.
func (l *Linear) NumParams() int { return len(l.W) + len(l.B) }

// Adam is the Adam optimizer (Kingma & Ba) over a set of layers.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
}

// NewAdam returns Adam with the paper's learning rate and standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update using the accumulated gradients (scaled by
// 1/batch) and clears them.
func (a *Adam) Step(layers []*Linear, batch float64) {
	if batch <= 0 {
		batch = 1
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(w, g, m, v []float64) {
		for i := range w {
			gi := g[i] / batch
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mh := m[i] / c1
			vh := v[i] / c2
			w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			g[i] = 0
		}
	}
	for _, l := range layers {
		upd(l.W, l.GW, l.MW, l.VW)
		upd(l.B, l.GB, l.MB, l.VB)
		l.NoteWeightsChanged()
	}
}

// Softmax writes the softmax of logits into probs (stable).
func Softmax(logits, probs []float64) {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		p := math.Exp(v - max)
		probs[i] = p
		sum += p
	}
	for i := range probs {
		probs[i] /= sum
	}
}

// SampleCategorical draws an index from the probability vector.
func SampleCategorical(rng *sim.RNG, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest element.
func Argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Entropy returns the Shannon entropy of a probability vector (nats).
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// ActorCritic is the FleetIO agent network: a tanh MLP trunk shared by K
// categorical policy heads (one per action dimension — Harvest,
// Make_Harvestable, Set_Priority) and a scalar value head.
type ActorCritic struct {
	L1, L2 *Linear
	Heads  []*Linear
	Value  *Linear

	// Reusable forward/backward scratch, lazily sized on first use so
	// steady-state Forward/Backward performs zero allocations (§4.7: the
	// per-window inference runs on every agent every 2 s, and pretraining
	// runs it millions of times). Unexported, so gob round-trips and
	// Clone hand out networks with fresh scratch. Like the network's
	// gradient accumulators, scratch makes a network single-goroutine.
	fw                       *Cache
	logits                   [][]float64
	valOut                   []float64
	dA2, dTmp, dH2, dA1, dH1 []float64
	dVal                     [1]float64

	// Batched counterparts (batch.go), sized to the largest batch seen
	// (batchCap rows) under the same zero-steady-state-allocation contract.
	bw                            *BatchCache
	batchCap                      int
	logitsB                       [][]float64
	valOutB                       []float64
	dA2B, dTmpB, dH2B, dA1B, dH1B []float64

	// Fused output block for the batched forward: all policy heads plus
	// the value head as one h2×(Σ headOut + 1) transposed weight matrix,
	// so one accumRows pass per state covers every output unit instead of
	// one tiny matrix product per head. Rebuilt when any source layer's
	// rev moves (headsRevs mirrors Heads then Value).
	headsWT, headsBias, headsOutB []float64
	headsRevs                     []uint64

	// layers caches the Layers() slice — ZeroGrad and every optimizer step
	// ask for it, and the layer set never changes after construction.
	layers []*Linear
}

// NewActorCritic builds the network: in → hidden tanh → hidden tanh →
// {heads, value}.
func NewActorCritic(in, hidden int, headSizes []int, rng *sim.RNG) *ActorCritic {
	ac := &ActorCritic{
		L1:    NewLinear(in, hidden, rng),
		L2:    NewLinear(hidden, hidden, rng),
		Value: NewLinear(hidden, 1, rng),
	}
	for _, hs := range headSizes {
		ac.Heads = append(ac.Heads, NewLinear(hidden, hs, rng))
	}
	return ac
}

// Cache holds the intermediate activations of one forward pass, needed for
// the corresponding backward pass.
type Cache struct {
	X      []float64
	H1, A1 []float64
	H2, A2 []float64
}

// Forward runs the network, returning per-head logits and the value.
//
// The returned logits and cache are owned by the network and reused: they
// are valid until the next Forward call on the same *ActorCritic. Copy
// anything that must outlive that (the PPO training loop consumes them
// before re-entering Forward, so the hot paths never need to).
func (ac *ActorCritic) Forward(x []float64) (logits [][]float64, value float64, cache *Cache) {
	c := ac.fw
	if c == nil || len(c.X) != len(x) {
		c = &Cache{
			X:  make([]float64, len(x)),
			H1: make([]float64, ac.L1.Out), A1: make([]float64, ac.L1.Out),
			H2: make([]float64, ac.L2.Out), A2: make([]float64, ac.L2.Out),
		}
		ac.fw = c
	}
	copy(c.X, x)
	ac.L1.Forward(c.X, c.H1)
	for i, v := range c.H1 {
		c.A1[i] = math.Tanh(v)
	}
	ac.L2.Forward(c.A1, c.H2)
	for i, v := range c.H2 {
		c.A2[i] = math.Tanh(v)
	}
	if ac.logits == nil {
		ac.logits = make([][]float64, len(ac.Heads))
		for k, h := range ac.Heads {
			ac.logits[k] = make([]float64, h.Out)
		}
		ac.valOut = make([]float64, 1)
	}
	for k, h := range ac.Heads {
		h.Forward(c.A2, ac.logits[k])
	}
	ac.Value.Forward(c.A2, ac.valOut)
	return ac.logits, ac.valOut[0], c
}

// Backward accumulates gradients given upstream gradients for each head's
// logits (nil entries are skipped) and the value output.
func (ac *ActorCritic) Backward(c *Cache, dLogits [][]float64, dValue float64) {
	if len(ac.dA2) != ac.L2.Out || len(ac.dA1) != ac.L1.Out {
		ac.dA2 = make([]float64, ac.L2.Out)
		ac.dTmp = make([]float64, ac.L2.Out)
		ac.dH2 = make([]float64, ac.L2.Out)
		ac.dA1 = make([]float64, ac.L1.Out)
		ac.dH1 = make([]float64, ac.L1.Out)
	}
	dA2, tmp := ac.dA2, ac.dTmp
	for i := range dA2 {
		dA2[i] = 0
	}
	for k, h := range ac.Heads {
		if dLogits[k] == nil {
			continue
		}
		h.Backward(c.A2, dLogits[k], tmp)
		for i := range dA2 {
			dA2[i] += tmp[i]
		}
	}
	if dValue != 0 {
		ac.dVal[0] = dValue
		ac.Value.Backward(c.A2, ac.dVal[:], tmp)
		for i := range dA2 {
			dA2[i] += tmp[i]
		}
	}
	// Through tanh at layer 2.
	dH2 := ac.dH2
	for i := range dH2 {
		dH2[i] = dA2[i] * (1 - c.A2[i]*c.A2[i])
	}
	dA1 := ac.dA1
	ac.L2.Backward(c.A1, dH2, dA1)
	dH1 := ac.dH1
	for i := range dH1 {
		dH1[i] = dA1[i] * (1 - c.A1[i]*c.A1[i])
	}
	ac.L1.Backward(c.X, dH1, nil)
}

// Layers returns every trainable layer. The slice is cached (the layer set
// is fixed after construction); callers must not modify it.
func (ac *ActorCritic) Layers() []*Linear {
	if ac.layers == nil {
		ac.layers = append([]*Linear{ac.L1, ac.L2, ac.Value}, ac.Heads...)
	}
	return ac.layers
}

// ZeroGrad clears all gradient accumulators.
func (ac *ActorCritic) ZeroGrad() {
	for _, l := range ac.Layers() {
		l.ZeroGrad()
	}
}

// NumParams returns the total trainable parameter count.
func (ac *ActorCritic) NumParams() int {
	n := 0
	for _, l := range ac.Layers() {
		n += l.NumParams()
	}
	return n
}

// Clone deep-copies the network (weights only; fresh grads/moments).
func (ac *ActorCritic) Clone() *ActorCritic {
	cp := func(l *Linear) *Linear {
		n := &Linear{In: l.In, Out: l.Out,
			W: append([]float64(nil), l.W...), B: append([]float64(nil), l.B...),
			GW: make([]float64, len(l.W)), GB: make([]float64, len(l.B)),
			MW: make([]float64, len(l.W)), VW: make([]float64, len(l.W)),
			MB: make([]float64, len(l.B)), VB: make([]float64, len(l.B)),
		}
		return n
	}
	out := &ActorCritic{L1: cp(ac.L1), L2: cp(ac.L2), Value: cp(ac.Value)}
	for _, h := range ac.Heads {
		out.Heads = append(out.Heads, cp(h))
	}
	return out
}

// Params flattens every trainable parameter into one slice, in the stable
// Layers() order (W then B per layer). The result is a copy; it is the
// broadcast format the trainer uses to ship learner weights to collection
// workers and to persist checkpoints.
func (ac *ActorCritic) Params() []float64 {
	out := make([]float64, 0, ac.NumParams())
	for _, l := range ac.Layers() {
		out = append(out, l.W...)
		out = append(out, l.B...)
	}
	return out
}

// SetParams copies a Params()-shaped slice back into the network. Gradient
// accumulators and Adam moments are left untouched.
func (ac *ActorCritic) SetParams(p []float64) error {
	if len(p) != ac.NumParams() {
		return fmt.Errorf("nn: SetParams: got %d values, network has %d params", len(p), ac.NumParams())
	}
	i := 0
	for _, l := range ac.Layers() {
		i += copy(l.W, p[i:i+len(l.W)])
		i += copy(l.B, p[i:i+len(l.B)])
		l.NoteWeightsChanged()
	}
	return nil
}

// Encode serializes the network with gob.
func (ac *ActorCritic) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ac); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeActorCritic deserializes a network produced by Encode.
func DecodeActorCritic(data []byte) (*ActorCritic, error) {
	var ac ActorCritic
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ac); err != nil {
		return nil, fmt.Errorf("nn: decode: %w", err)
	}
	return &ac, nil
}

// SaveFile writes the network to path.
func (ac *ActorCritic) SaveFile(path string) error {
	data, err := ac.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile reads a network written by SaveFile.
func LoadFile(path string) (*ActorCritic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeActorCritic(data)
}
