//go:build amd64

package nn

import "math"

// useAVX512 gates the assembly accumRows kernel. Detected once at package
// init; tests flip it to pin the two implementations against each other.
var useAVX512 = detectAVX512()

// detectAVX512 reports whether the CPU and OS support AVX-512F (plus AVX
// and FMA, which every AVX-512F part has — the vectorized tanh transcribes
// math.archExp's FMA variant, selected by the math package exactly when
// AVX && FMA are present). The build targets GOAMD64=v1, so the decision
// must be made at runtime: CPUID for the feature bits, XGETBV for OS
// save-state support of the ZMM and opmask register files.
func detectAVX512() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if ecx1&(osxsave|avx|fma) != osxsave|avx|fma {
		return false
	}
	// XCR0 must show XMM, YMM, opmask, ZMM_Hi256, and Hi16_ZMM state enabled.
	xcr0, _ := xgetbv0()
	if xcr0&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	return ebx7&avx512f != 0
}

//go:noescape
func accumRowsAVX512(dst, rows, coeffs []float64, n, ld, cs int)

// tanhVecAVX512 writes math.Tanh(src[i]) into dst[i] for len(dst)&^7
// elements, eight lanes at a time. It reports whether any NaN lane was
// seen, in which case the caller must redo the slice with the scalar
// function (every other input class — both Cephes branches, saturation,
// ±Inf, ±0 — is reproduced bit for bit in the kernel itself).
//
//go:noescape
func tanhVecAVX512(dst, src []float64) bool

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// tanhConsts feeds tanhVecAVX512; the assembly addresses entries by byte
// offset (index×8). Values are exactly those used by math.tanh (Cephes)
// and the amd64 math.archExp assembly, so every lane computes the same
// sequence of operations on the same constants as the scalar functions.
var tanhConsts = [...]float64{
	0:  0.625,                                                 // Cephes branch point
	1:  0.5 * 8.8029691931113054295988e+01,                    // 0.5*MAXLOG: saturation bound
	2:  2.0,                                                   //
	3:  1.4426950408889634073599246810018920,                  // LOG2E
	4:  0.69314718055966295651160180568695068359375,           // LN2U
	5:  0.28235290563031577122588448175013436025525412068e-12, // LN2L
	6:  0.0625,                                                // archExp range reduction
	7:  2.4801587301587301587e-5,                              // Taylor c8 …
	8:  1.9841269841269841270e-4,
	9:  1.3888888888888888889e-3,
	10: 8.3333333333333333333e-3,
	11: 4.1666666666666666667e-2,
	12: 1.6666666666666666667e-1, // … Taylor c3
	13: 0.5,
	14: 1.0,
	15: -9.64399179425052238628e-1, // tanhP …
	16: -9.92877231001918586564e1,
	17: -1.61468768441708447952e3,
	18: 1.12811678491632931402e2, // tanhQ …
	19: 2.23548839060100448583e3,
	20: 4.84406305325125486048e3,
	21: math.Float64frombits(0x3FF), // exponent bias as a raw qword per lane
}
