//go:build !amd64

package nn

// useAVX512 is a constant off amd64, so the compiler removes the dispatch
// branch and the stub below entirely.
const useAVX512 = false

func accumRowsAVX512(dst, rows, coeffs []float64, n, ld, cs int) {
	panic("nn: accumRowsAVX512 called on non-amd64")
}

func tanhVecAVX512(dst, src []float64) bool {
	panic("nn: tanhVecAVX512 called on non-amd64")
}
