package gsb

import "sync"

// gsbPool is the idle-gSB container: a mutex-guarded LIFO slice.
//
// The paper describes a lock-free pool (Harris-style list), and
// internal/lockfree keeps that implementation for the ablation benchmark —
// but under this codebase's contention profile the mutex pool wins on both
// axes (BenchmarkGSBPoolMutex ~18.5 ns/op, 0 B/op vs BenchmarkGSBPoolLockFree
// ~38.4 ns/op, 12 B/op): pool operations are a handful per decision window,
// the uncontended mutex fast path is two atomic ops, and the slice reuses
// its backing array where the lock-free list allocates a node per push.
// See docs/PERFORMANCE.md.
//
// Matching is LIFO (most recently pushed first), the same order the
// previous lock-free list produced with its head push + head-first scan, so
// harvest selection is byte-identical across the swap.
type gsbPool struct {
	mu    sync.Mutex
	items []*GSB
}

// PushFront adds g to the pool.
func (p *gsbPool) PushFront(g *GSB) {
	p.mu.Lock()
	p.items = append(p.items, g)
	p.mu.Unlock()
}

// RemoveFirst removes and returns the most recently pushed gSB matching
// pred.
func (p *gsbPool) RemoveFirst(pred func(*GSB) bool) (*GSB, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.items) - 1; i >= 0; i-- {
		if pred(p.items[i]) {
			g := p.items[i]
			copy(p.items[i:], p.items[i+1:])
			p.items[len(p.items)-1] = nil
			p.items = p.items[:len(p.items)-1]
			return g, true
		}
	}
	return nil, false
}

// Len returns the number of pooled gSBs.
func (p *gsbPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}
