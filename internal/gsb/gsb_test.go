package gsb

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/sim"
)

type fixture struct {
	eng  *sim.Engine
	cfg  flash.Config
	dev  *flash.Device
	ftlm *ftl.Manager
	gm   *Manager
	home *ftl.Tenant
	harv *ftl.Tenant
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 32
	cfg.PagesPerBlock = 8
	eng := sim.NewEngine()
	dev := flash.NewDevice(eng, cfg)
	ftlm := ftl.NewManager(eng, dev)
	gm := NewManager(ftlm, cfg.Channels, cfg.ChannelBandwidth())
	gm.BlocksPerChip = 2
	home := ftl.NewTenant(ftlm, 0, []int{0, 1}, 512)
	harv := ftl.NewTenant(ftlm, 1, []int{2, 3}, 512)
	return &fixture{eng: eng, cfg: cfg, dev: dev, ftlm: ftlm, gm: gm, home: home, harv: harv}
}

func TestChannelsFor(t *testing.T) {
	f := newFixture(t)
	bw := f.cfg.ChannelBandwidth()
	if got := f.gm.ChannelsFor(0); got != 0 {
		t.Fatalf("ChannelsFor(0) = %d", got)
	}
	if got := f.gm.ChannelsFor(bw * 1.5); got != 1 {
		t.Fatalf("ChannelsFor(1.5ch) = %d, want 1 (round down)", got)
	}
	if got := f.gm.ChannelsFor(bw * 3); got != 3 {
		t.Fatalf("ChannelsFor(3ch) = %d", got)
	}
}

func TestMakeHarvestableCreatesGSB(t *testing.T) {
	f := newFixture(t)
	g := f.gm.SetHarvestable(f.home, 2)
	if g == nil {
		t.Fatal("no gSB created")
	}
	if g.NChls != 2 || len(g.Channels) != 2 {
		t.Fatalf("gSB channels = %v", g.Channels)
	}
	wantBlocks := 2 * f.gm.BlocksPerChip * f.cfg.ChipsPerChannel
	if len(g.Blocks) != wantBlocks {
		t.Fatalf("gSB blocks = %d, want %d", len(g.Blocks), wantBlocks)
	}
	if g.Capacity != int64(wantBlocks)*f.cfg.BlockBytes() {
		t.Fatalf("capacity = %d", g.Capacity)
	}
	if g.InUse || g.Harvest != -1 || g.Home != 0 {
		t.Fatalf("fresh gSB state wrong: %s", g)
	}
	if f.gm.PoolLen(2) != 1 {
		t.Fatalf("pool[2] = %d", f.gm.PoolLen(2))
	}
	if f.gm.HarvestableChannels(0) != 2 {
		t.Fatalf("harvestable = %d", f.gm.HarvestableChannels(0))
	}
}

func TestSetHarvestableIdempotent(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 2)
	if g := f.gm.SetHarvestable(f.home, 2); g != nil {
		t.Fatal("target already met; nothing should be created")
	}
	if f.gm.Stats().Created != 1 {
		t.Fatalf("created = %d", f.gm.Stats().Created)
	}
}

func TestSetHarvestableShrinkReclaims(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 2)
	free0 := f.ftlm.FreeBlocks(0) + f.ftlm.FreeBlocks(1)
	f.gm.SetHarvestable(f.home, 0)
	if f.gm.HarvestableChannels(0) != 0 {
		t.Fatalf("harvestable = %d after shrink", f.gm.HarvestableChannels(0))
	}
	after := f.ftlm.FreeBlocks(0) + f.ftlm.FreeBlocks(1)
	if after <= free0 {
		t.Fatalf("blocks not returned: %d -> %d", free0, after)
	}
	if f.gm.PoolLen(2) != 0 {
		t.Fatal("reclaimed gSB still in pool")
	}
	if f.gm.Stats().Reclaimed != 1 {
		t.Fatalf("reclaimed = %d", f.gm.Stats().Reclaimed)
	}
}

func TestHarvestExactFit(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 2)
	g := f.gm.HarvestFor(f.harv, 2)
	if g == nil {
		t.Fatal("harvest failed")
	}
	if !g.InUse || g.Harvest != 1 {
		t.Fatalf("harvested state wrong: %s", g)
	}
	if f.gm.PoolLen(2) != 0 {
		t.Fatal("harvested gSB still idle in pool")
	}
	if f.harv.HarvestLaneCount() == 0 {
		t.Fatal("harvester has no lanes")
	}
	// Harvester can now write on home's channels.
	seen := map[int]bool{}
	for lpn := 0; lpn < 64; lpn++ {
		ppa, ok := f.harv.AllocatePage(lpn, false)
		if !ok {
			t.Fatal("alloc failed")
		}
		seen[ppa.Channel] = true
	}
	if !seen[0] && !seen[1] {
		t.Fatal("harvester never used harvested channels")
	}
}

func TestHarvestFallbackSmallerThenLarger(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 1) // only a 1-channel gSB exists
	g := f.gm.HarvestFor(f.harv, 2)
	if g == nil || g.NChls != 1 {
		t.Fatalf("want fallback to smaller gSB, got %v", g)
	}
	// Now only a 2-channel gSB exists; a 1-channel request takes it.
	f2 := newFixture(t)
	f2.gm.SetHarvestable(f2.home, 2)
	g2 := f2.gm.HarvestFor(f2.harv, 1)
	if g2 == nil || g2.NChls != 2 {
		t.Fatalf("want fallback to larger gSB, got %v", g2)
	}
}

func TestCannotHarvestOwnGSB(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 2)
	if g := f.gm.HarvestFor(f.home, 2); g != nil {
		t.Fatalf("home harvested its own gSB: %s", g)
	}
	if f.gm.Stats().HarvestMisses != 1 {
		t.Fatalf("misses = %d", f.gm.Stats().HarvestMisses)
	}
	// The gSB must still be in the pool for others.
	if f.gm.PoolLen(2) != 1 {
		t.Fatal("gSB lost after refused harvest")
	}
}

func TestHarvestEmptyPool(t *testing.T) {
	f := newFixture(t)
	if g := f.gm.HarvestFor(f.harv, 1); g != nil {
		t.Fatalf("harvested from empty pool: %s", g)
	}
}

func TestLazyReclaimInUseGSB(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 2)
	g := f.gm.HarvestFor(f.harv, 2)
	// Dirty one block's worth of pages.
	for lpn := 0; lpn < f.cfg.PagesPerBlock; lpn++ {
		f.harv.AllocatePage(lpn, false)
	}
	f.gm.SetHarvestable(f.home, 0) // triggers reclaim of the in-use gSB
	if !g.Reclaiming {
		t.Fatal("gSB not marked reclaiming")
	}
	if f.gm.Live(g.ID) == nil {
		// All written pages may have stayed in one lane; if some blocks were
		// dirty the gSB must still be pending.
		t.Log("gSB fully reclaimed immediately (all blocks clean)")
		return
	}
	if f.harv.HarvestLaneCount() != 0 {
		t.Fatal("harvester lanes must close on reclaim")
	}
	// Force GC on home to erase the dirty blocks: churn home's space.
	for round := 0; round < 200 && f.gm.Live(g.ID) != nil; round++ {
		for lpn := 0; lpn < 8; lpn++ {
			f.home.AllocatePage(lpn, false)
		}
		f.eng.Run()
	}
	if f.gm.Live(g.ID) != nil {
		t.Fatalf("gSB never finished lazy reclamation: %s", g)
	}
	if f.gm.HarvestableChannels(0) != 0 {
		t.Fatal("harvestable budget must be zero")
	}
}

func TestReclaimAllFrom(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 1)
	f.gm.ReclaimAllFrom(0)
	if f.gm.HarvestableChannels(0) != 0 {
		t.Fatal("budget must drop to zero")
	}
	if f.gm.Stats().Reclaimed != 1 {
		t.Fatalf("reclaimed = %d", f.gm.Stats().Reclaimed)
	}
}

func TestCreateRespectsFreeFloor(t *testing.T) {
	f := newFixture(t)
	// Consume home's channels until both are safely below the 25% floor
	// (the floor is per channel, so an average near 25% is not enough).
	for lpn := 0; ; lpn++ {
		if f.home.FreeFraction() < 0.20 {
			break
		}
		if _, ok := f.home.AllocatePage(lpn%512, false); !ok {
			break
		}
	}
	g := f.gm.SetHarvestable(f.home, 2)
	if g != nil {
		t.Fatalf("created %s with channels near the floor", g)
	}
	if f.gm.Stats().CreateFailures == 0 {
		t.Fatal("expected a create failure")
	}
}

func TestBlockErasedHookIgnoresForeignBlocks(t *testing.T) {
	f := newFixture(t)
	// Hook with gsbID -1 (regular block) and an unknown id must be no-ops.
	f.gm.blockErased(0, -1)
	f.gm.blockErased(0, 999)
}

// TestSetHarvestableSteadyStateAllocs pins the create/reclaim cycle at
// zero steady-state allocations: gSB metadata comes from the free list and
// block/channel storage is recycled (the cycle runs every decision window
// for the lifetime of a deployment).
func TestSetHarvestableSteadyStateAllocs(t *testing.T) {
	f := newFixture(t)
	cycle := func() {
		f.gm.SetHarvestable(f.home, 1)
		f.gm.SetHarvestable(f.home, 0)
	}
	cycle() // size the free list and scratch
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state SetHarvestable cycle allocates %v per run", avg)
	}
}
