package gsb

import (
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/lockfree"
)

// The pool's lock-free list must tolerate concurrent harvest contention:
// many goroutines racing RemoveFirst against pushes, with no gSB handed to
// two harvesters (the paper's motivation for the Harris list).
func TestPoolConcurrentHarvestNoDoubleGrant(t *testing.T) {
	var pool lockfree.List[*GSB]
	const n = 2000
	for i := 0; i < n; i++ {
		pool.PushFront(&GSB{ID: i, NChls: 1, Home: 0, Harvest: -1})
	}
	var mu sync.Mutex
	granted := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g, ok := pool.RemoveFirst(func(x *GSB) bool { return x.Home != 99 })
				if !ok {
					return
				}
				mu.Lock()
				if prev, dup := granted[g.ID]; dup {
					mu.Unlock()
					t.Errorf("gSB %d granted to both %d and %d", g.ID, prev, w)
					return
				}
				granted[g.ID] = w
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(granted) != n {
		t.Fatalf("granted %d of %d gSBs", len(granted), n)
	}
}

// TestReclaimDuringGCStaleID pins the reclaim/erase ordering contract the
// FTL hook depends on: when GC erases a block whose gSB has already fully
// returned to the pool (finalized), the late blockErased delivery carries a
// gsbID that no longer resolves and must be a no-op — never a double
// finalize, never a negative pending count. gsbIDs are never reused, so a
// stale ID can only miss in byID.
func TestReclaimDuringGCStaleID(t *testing.T) {
	f := newFixture(t)
	f.gm.SetHarvestable(f.home, 2)
	g := f.gm.HarvestFor(f.harv, 2)
	if g == nil {
		t.Fatal("harvest failed")
	}
	// Dirty several blocks' worth of harvested pages, then reclaim: the
	// gSB drains lazily through GC.
	for lpn := 0; lpn < 3*f.cfg.PagesPerBlock; lpn++ {
		f.harv.AllocatePage(lpn, false)
	}
	f.gm.SetHarvestable(f.home, 0)
	id := g.ID
	for round := 0; round < 400 && f.gm.Live(id) != nil; round++ {
		if g.pending < 0 {
			t.Fatalf("pending went negative: %d", g.pending)
		}
		for lpn := 0; lpn < 8; lpn++ {
			f.home.AllocatePage(lpn, false)
		}
		f.eng.Run()
	}
	if f.gm.Live(id) != nil {
		t.Fatalf("gSB never drained: %s", g)
	}
	if got := f.gm.Stats().Reclaimed; got != 1 {
		t.Fatalf("reclaimed = %d, want exactly 1", got)
	}
	// Stale delivery after finalization: GC erasing another block that
	// still carries this gsbID must be ignored, not double-finalized.
	f.gm.blockErased(0, id)
	f.gm.blockErased(1, id)
	if got := f.gm.Stats().Reclaimed; got != 1 {
		t.Fatalf("stale blockErased re-finalized: reclaimed = %d", got)
	}
	if g.pending < 0 {
		t.Fatalf("stale blockErased drove pending negative: %d", g.pending)
	}
	if f.gm.HarvestableChannels(0) != 0 {
		t.Fatal("harvestable budget must stay zero after stale deliveries")
	}
}

// TestReclaimWithEraseFailures extends the ordering contract to the fault
// path: a block retired after an injected erase failure never returns to
// the free pool, but its gSB accounting must still complete — the retire
// path fires the same blockErased hook, so a reclaiming gSB drains and
// finalizes even when every one of its dirty blocks dies during GC.
func TestReclaimWithEraseFailures(t *testing.T) {
	f := newFixture(t)
	f.dev.SetFaultInjector(fault.NewInjector(fault.Config{
		EraseFailProb: 1, // every erase fails: all GC'd blocks retire
		Seed:          1,
	}))
	f.gm.SetHarvestable(f.home, 2)
	g := f.gm.HarvestFor(f.harv, 2)
	if g == nil {
		t.Fatal("harvest failed")
	}
	for lpn := 0; lpn < 3*f.cfg.PagesPerBlock; lpn++ {
		f.harv.AllocatePage(lpn, false)
	}
	f.gm.SetHarvestable(f.home, 0)
	id := g.ID
	for round := 0; round < 400 && f.gm.Live(id) != nil; round++ {
		if g.pending < 0 {
			t.Fatalf("pending went negative: %d", g.pending)
		}
		for lpn := 0; lpn < 8; lpn++ {
			f.home.AllocatePage(lpn, false)
		}
		f.eng.Run()
	}
	if f.gm.Live(id) != nil {
		t.Fatalf("gSB never finalized despite erase-fail retirements: %s", g)
	}
	if got := f.gm.Stats().Reclaimed; got != 1 {
		t.Fatalf("reclaimed = %d, want exactly 1", got)
	}
	if f.ftlm.Stats().Retired == 0 {
		t.Fatal("no blocks retired under EraseFailProb=1")
	}
}

func TestPoolScanSkipsHarvested(t *testing.T) {
	var pool lockfree.List[*GSB]
	a := &GSB{ID: 1, NChls: 2}
	b := &GSB{ID: 2, NChls: 2}
	pool.PushFront(a)
	pool.PushFront(b)
	pool.RemoveFirst(func(x *GSB) bool { return x == b })
	count := 0
	pool.Scan(func(g *GSB) bool {
		if g == b {
			t.Fatal("removed gSB still visible")
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("scan saw %d live gSBs", count)
	}
}
