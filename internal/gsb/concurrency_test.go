package gsb

import (
	"sync"
	"testing"

	"repro/internal/lockfree"
)

// The pool's lock-free list must tolerate concurrent harvest contention:
// many goroutines racing RemoveFirst against pushes, with no gSB handed to
// two harvesters (the paper's motivation for the Harris list).
func TestPoolConcurrentHarvestNoDoubleGrant(t *testing.T) {
	var pool lockfree.List[*GSB]
	const n = 2000
	for i := 0; i < n; i++ {
		pool.PushFront(&GSB{ID: i, NChls: 1, Home: 0, Harvest: -1})
	}
	var mu sync.Mutex
	granted := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g, ok := pool.RemoveFirst(func(x *GSB) bool { return x.Home != 99 })
				if !ok {
					return
				}
				mu.Lock()
				if prev, dup := granted[g.ID]; dup {
					mu.Unlock()
					t.Errorf("gSB %d granted to both %d and %d", g.ID, prev, w)
					return
				}
				granted[g.ID] = w
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(granted) != n {
		t.Fatalf("granted %d of %d gSBs", len(granted), n)
	}
}

func TestPoolScanSkipsHarvested(t *testing.T) {
	var pool lockfree.List[*GSB]
	a := &GSB{ID: 1, NChls: 2}
	b := &GSB{ID: 2, NChls: 2}
	pool.PushFront(a)
	pool.PushFront(b)
	pool.RemoveFirst(func(x *GSB) bool { return x == b })
	count := 0
	pool.Scan(func(g *GSB) bool {
		if g == b {
			t.Fatal("removed gSB still visible")
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("scan saw %d live gSBs", count)
	}
}
