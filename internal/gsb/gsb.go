// Package gsb implements FleetIO's ghost superblock (gSB) abstraction
// (§3.6): harvestable bundles of flash blocks striped across one or more
// channels, tracked in pools indexed by channel count. The manager turns
// Make_Harvestable actions into gSB creation/reclamation and Harvest
// actions into gSB handoffs, with lazy reclamation of in-use gSBs
// finishing through the FTL's GC erase hook.
package gsb

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/obs"
)

// GSB mirrors the paper's Figure 7 metadata: the channel footprint,
// capacity, harvesting state, and the home/harvest tenants.
type GSB struct {
	ID       int
	NChls    int   // number of channels the superblock stripes across
	Capacity int64 // bytes
	InUse    bool  // currently harvested
	Home     int   // vSSD that gave up the resources
	Harvest  int   // vSSD harvesting it, -1 when none

	Channels   []int
	Blocks     []int // ftl block indices
	Reclaiming bool
	pending    int // blocks not yet back in the home pool
}

// Stats counts manager activity.
type Stats struct {
	Created        int64
	Harvested      int64
	Reclaimed      int64 // gSBs fully returned to their home pools
	CreateFailures int64 // Make_Harvestable that found no lendable channel
	HarvestMisses  int64 // Harvest that found no compatible gSB
}

// Manager owns the gSB pool. Pool operations are mutex-guarded (see
// gsbPool for why the paper's lock-free design was retired here); the
// surrounding bookkeeping runs on the single simulation goroutine.
type Manager struct {
	ftlm *ftl.Manager

	// pool[n] holds idle gSBs striping across exactly n channels.
	pool []gsbPool

	byID        map[int]*GSB
	byHome      map[int][]*GSB // live gSBs per home tenant
	byHarvester map[int][]*GSB // in-use gSBs per harvesting tenant
	nextID      int

	// BlocksPerChip is how many blocks each chip contributes per channel
	// of a new gSB. The paper's minimum superblock is 16 blocks (64 MB) on
	// one channel; with 4 chips per channel that is 4 blocks per chip.
	BlocksPerChip int
	// MinFreeFrac refuses gSB creation on channels below this free-block
	// fraction (the paper uses 25%).
	MinFreeFrac float64
	// ChannelBW is the per-channel bandwidth (bytes/s) used to convert a
	// requested gsb_bw into a channel count, rounding down (§3.6).
	ChannelBW float64

	// rec traces gSB lifecycle events; nil disables.
	rec *obs.Recorder

	stats Stats

	// freeG recycles finalized gSB metadata (and the grown Blocks/Channels
	// arrays inside) — safe because finalize removes the gSB from every
	// index and no caller retains *GSB across manager calls. reclaimS and
	// harvestedS are iteration snapshots for loops that mutate the indexes
	// they walk; they never nest (reclaim reaches neither SetHarvestable,
	// ReclaimAllFrom, nor HarvestedBy).
	freeG      []*GSB
	reclaimS   []*GSB
	harvestedS []*GSB
}

// SetObserver attaches a decision-event recorder for gSB lifecycle
// tracing (nil detaches it).
func (m *Manager) SetObserver(rec *obs.Recorder) { m.rec = rec }

// NewManager wires a gSB manager to the FTL manager and installs the GC
// erase hook that completes lazy reclamation.
func NewManager(ftlm *ftl.Manager, channels int, channelBW float64) *Manager {
	m := &Manager{
		ftlm:          ftlm,
		pool:          make([]gsbPool, channels+1),
		byID:          make(map[int]*GSB),
		byHome:        make(map[int][]*GSB),
		byHarvester:   make(map[int][]*GSB),
		BlocksPerChip: 4,
		MinFreeFrac:   0.25,
		ChannelBW:     channelBW,
	}
	ftlm.OnBlockErased(m.blockErased)
	return m
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// PoolLen returns the number of idle gSBs striping across n channels.
func (m *Manager) PoolLen(n int) int {
	if n < 0 || n >= len(m.pool) {
		return 0
	}
	return m.pool[n].Len()
}

// HarvestableChannels returns the total channel-count of home's live,
// not-reclaiming gSBs — its current harvestable budget.
func (m *Manager) HarvestableChannels(home int) int {
	total := 0
	for _, g := range m.byHome[home] {
		if !g.Reclaiming {
			total += g.NChls
		}
	}
	return total
}

// Live returns the gSB with the given id, or nil.
func (m *Manager) Live(id int) *GSB { return m.byID[id] }

// ChannelsFor converts a bandwidth request (bytes/s) into a channel count,
// rounding down per §3.6.
func (m *Manager) ChannelsFor(bw float64) int {
	if m.ChannelBW <= 0 {
		return 0
	}
	return int(bw / m.ChannelBW)
}

// SetHarvestable executes a Make_Harvestable(gsb_bw) action for home: the
// target harvestable budget becomes targetChls channels. gSBs wider than
// the target are reclaimed (§3.6 "Reclaiming gSBs"); if the surviving
// budget is short, a new gSB makes up the difference from channels that
// still have headroom. It returns the created gSB, if any.
func (m *Manager) SetHarvestable(home *ftl.Tenant, targetChls int) *GSB {
	if targetChls < 0 {
		targetChls = 0
	}
	// Phase 1: reclaim oversized gSBs.
	m.reclaimS = append(m.reclaimS[:0], m.byHome[home.ID()]...)
	for _, g := range m.reclaimS {
		if !g.Reclaiming && g.NChls > targetChls {
			m.reclaim(g)
		}
	}
	// Phase 2: top up.
	deficit := targetChls - m.HarvestableChannels(home.ID())
	if deficit <= 0 {
		return nil
	}
	return m.create(home, deficit)
}

// grab pops a recycled gSB (keeping its grown Blocks/Channels arrays) or
// allocates a fresh one.
func (m *Manager) grab() *GSB {
	if n := len(m.freeG); n > 0 {
		g := m.freeG[n-1]
		m.freeG[n-1] = nil
		m.freeG = m.freeG[:n-1]
		return g
	}
	return &GSB{}
}

// create builds a gSB of up to nchls channels from home's owned channels
// that pass the free floor. Returns nil when no channel qualifies.
func (m *Manager) create(home *ftl.Tenant, nchls int) *GSB {
	id := m.nextID
	g := m.grab()
	blocks := g.Blocks[:0]
	chans := g.Channels[:0]
	for _, ch := range home.Channels() {
		if len(chans) == nchls {
			break
		}
		before := len(blocks)
		blocks = m.ftlm.LendBlocksInto(blocks, ch, m.BlocksPerChip, home.ID(), id, m.MinFreeFrac)
		if len(blocks) == before {
			continue
		}
		chans = append(chans, ch)
	}
	if len(chans) == 0 {
		g.Blocks, g.Channels = blocks, chans // keep any grown capacity
		m.freeG = append(m.freeG, g)
		m.stats.CreateFailures++
		return nil
	}
	m.nextID++
	*g = GSB{
		ID:       id,
		NChls:    len(chans),
		Capacity: int64(len(blocks)) * m.ftlm.BlockBytes(),
		Home:     home.ID(),
		Harvest:  -1,
		Channels: chans,
		Blocks:   blocks,
		pending:  len(blocks),
	}
	m.byID[id] = g
	m.byHome[home.ID()] = append(m.byHome[home.ID()], g)
	m.pool[g.NChls].PushFront(g)
	m.stats.Created++
	m.rec.GSB(obs.KindGSBCreate, g.ID, g.Home, -1, g.NChls)
	// While lending, keep the home tenant's GC aiming above the §3.6 free
	// floor so future gSB creation stays possible (supply would otherwise
	// starve once harvested data accumulates on the home channels).
	home.SetGCTarget(m.MinFreeFrac + 0.10)
	return g
}

// HarvestFor executes a Harvest(gsb_bw) action for the harvester: it takes
// the best-fitting idle gSB (exact channel count, then progressively
// smaller, then larger — §3.6) that the harvester does not itself own, and
// attaches its blocks as write lanes. Returns nil when nothing suitable is
// idle.
func (m *Manager) HarvestFor(harvester *ftl.Tenant, nchls int) *GSB {
	if nchls < 1 {
		nchls = 1
	}
	if nchls >= len(m.pool) {
		nchls = len(m.pool) - 1
	}
	notMine := func(g *GSB) bool { return g.Home != harvester.ID() && !g.Reclaiming }
	try := func(n int) *GSB {
		g, ok := m.pool[n].RemoveFirst(notMine)
		if !ok {
			return nil
		}
		return g
	}
	var g *GSB
	if g = try(nchls); g == nil {
		for n := nchls - 1; n >= 1 && g == nil; n-- {
			g = try(n)
		}
		for n := nchls + 1; n < len(m.pool) && g == nil; n++ {
			g = try(n)
		}
	}
	if g == nil {
		m.stats.HarvestMisses++
		return nil
	}
	g.InUse = true
	g.Harvest = harvester.ID()
	harvester.AddHarvestLanes(g.ID, g.Blocks)
	m.byHarvester[harvester.ID()] = append(m.byHarvester[harvester.ID()], g)
	m.stats.Harvested++
	m.rec.GSB(obs.KindGSBHarvest, g.ID, g.Harvest, g.Home, g.NChls)
	return g
}

// HarvestedChannels returns the total channel-count currently harvested by
// the given tenant.
func (m *Manager) HarvestedChannels(harvester int) int {
	total := 0
	for _, g := range m.byHarvester[harvester] {
		if !g.Reclaiming {
			total += g.NChls
		}
	}
	return total
}

// HarvestedBy returns the in-use gSBs of a harvester (live, including
// reclaiming ones). The slice is a reused snapshot, valid until the next
// HarvestedBy call; Release may be called on its entries while iterating.
func (m *Manager) HarvestedBy(harvester int) []*GSB {
	m.harvestedS = append(m.harvestedS[:0], m.byHarvester[harvester]...)
	return m.harvestedS
}

// Release gives an in-use gSB back: the harvester's lanes close and the
// blocks drain to the home pool (lazily for dirty ones). It is the
// harvester-initiated counterpart of a home-side reclaim.
func (m *Manager) Release(g *GSB) {
	if g == nil || g.Reclaiming {
		return
	}
	m.reclaim(g)
}

// ReclaimAllFrom reclaims every live gSB of the given home tenant (used
// when a vSSD is deallocated or its policy revokes harvesting).
func (m *Manager) ReclaimAllFrom(home int) {
	m.reclaimS = append(m.reclaimS[:0], m.byHome[home]...)
	for _, g := range m.reclaimS {
		if !g.Reclaiming {
			m.reclaim(g)
		}
	}
}

// reclaim starts reclamation of g. Idle gSBs return all their blocks
// immediately; in-use gSBs stop accepting new writes and drain lazily as
// GC erases their dirty blocks (§3.6, §3.7).
func (m *Manager) reclaim(g *GSB) {
	g.Reclaiming = true
	m.rec.GSB(obs.KindGSBReclaim, g.ID, g.Home, g.Harvest, g.NChls)
	if !g.InUse {
		// Remove from the pool so nobody harvests it mid-reclaim.
		m.pool[g.NChls].RemoveFirst(func(x *GSB) bool { return x == g })
		for _, idx := range g.Blocks {
			m.ftlm.ReturnCleanBlock(idx)
		}
		g.pending = 0
		m.finalize(g)
		return
	}
	harvester := m.ftlm.Tenants()[g.Harvest]
	clean := harvester.CloseHarvestLanes(g.ID)
	g.pending -= len(clean)
	if g.pending <= 0 {
		m.finalize(g)
	}
	// Dirty blocks finish through blockErased as GC collects them.
}

// blockErased is the FTL hook: a block belonging to gsbID returned to the
// free pool.
func (m *Manager) blockErased(_ int, gsbID int) {
	if gsbID < 0 {
		return
	}
	g := m.byID[gsbID]
	if g == nil {
		return
	}
	g.pending--
	// A gSB whose blocks have all returned to the home pool is gone
	// whether or not a reclaim was requested: GC naturally drains in-use
	// gSBs over time (harvested-first victims, §3.7), and finalizing here
	// frees the budget so agents can make fresh resources harvestable.
	if g.pending <= 0 {
		if !g.Reclaiming && !g.InUse {
			// Still idling in the pool: remove it so nobody harvests a husk.
			m.pool[g.NChls].RemoveFirst(func(x *GSB) bool { return x == g })
		}
		m.finalize(g)
	}
}

// finalize removes a fully returned gSB from all indexes.
func (m *Manager) finalize(g *GSB) {
	delete(m.byID, g.ID)
	list := m.byHome[g.Home]
	for i, x := range list {
		if x == g {
			m.byHome[g.Home] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if g.Harvest >= 0 {
		hl := m.byHarvester[g.Harvest]
		for i, x := range hl {
			if x == g {
				m.byHarvester[g.Harvest] = append(hl[:i], hl[i+1:]...)
				break
			}
		}
	}
	if len(m.byHome[g.Home]) == 0 {
		m.ftlm.Tenants()[g.Home].SetGCTarget(0)
	}
	m.stats.Reclaimed++
	m.rec.GSB(obs.KindGSBFinalize, g.ID, g.Home, g.Harvest, g.NChls)
	m.freeG = append(m.freeG, g)
}

// String renders the gSB for diagnostics.
func (g *GSB) String() string {
	return fmt.Sprintf("gSB{id=%d nchls=%d home=%d harvest=%d inUse=%v reclaiming=%v blocks=%d}",
		g.ID, g.NChls, g.Home, g.Harvest, g.InUse, g.Reclaiming, len(g.Blocks))
}
