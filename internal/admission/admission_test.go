package admission

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/vssd"
)

func testSetup() (*sim.Engine, *vssd.Platform, []*vssd.VSSD) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 4
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 8
	p := vssd.NewPlatform(eng, pc)
	a := p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})
	b := p.AddVSSD(vssd.Config{Name: "b", Channels: []int{2, 3}})
	return eng, p, []*vssd.VSSD{a, b}
}

func TestImmediateActionsBypassBatch(t *testing.T) {
	_, p, vs := testSetup()
	c := NewController(p, nil)
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActSetPriority, Level: ftl.PriorityHigh})
	if c.Pending() != 0 {
		t.Fatal("Set_Priority must not be batched")
	}
	if vs[0].Priority() != ftl.PriorityHigh {
		t.Fatal("Set_Priority not applied immediately")
	}
	if c.Stats().Immediate != 1 {
		t.Fatalf("immediate = %d", c.Stats().Immediate)
	}
}

func TestHarvestActionsBatchUntilFlush(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	if c.Pending() != 1 {
		t.Fatal("harvest action must batch")
	}
	if p.GSB().HarvestableChannels(0) != 0 {
		t.Fatal("action executed before flush")
	}
	c.Flush()
	if p.GSB().HarvestableChannels(0) != 1 {
		t.Fatal("flush did not execute the action")
	}
	if c.Pending() != 0 {
		t.Fatal("batch not cleared")
	}
}

func TestMakeHarvestableOrderedFirst(t *testing.T) {
	// Submit Harvest before Make_Harvestable in the same batch: with
	// reordering the harvest still succeeds because supply lands first.
	_, p, _ := testSetup()
	c := NewController(p, nil)
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Flush()
	if got := p.GSB().HarvestedChannels(1); got != 1 {
		t.Fatalf("harvested = %d; reordering failed", got)
	}
}

func TestReorderDisabledAblation(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	c.Reorder = false
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Flush()
	if got := p.GSB().HarvestedChannels(1); got != 0 {
		t.Fatalf("harvested = %d; without reordering the harvest should miss", got)
	}
}

func TestPolicyFilters(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, DenyList{
		NoHarvest: map[int]bool{1: true},
		NoLend:    map[int]bool{0: true},
	})
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
	if c.Stats().Filtered != 2 {
		t.Fatalf("filtered = %d, want 2", c.Stats().Filtered)
	}
	c.Flush()
	if p.GSB().HarvestableChannels(0) != 0 || p.GSB().HarvestedChannels(1) != 0 {
		t.Fatal("filtered actions executed")
	}
}

func TestLeastHarvestedPriorityUnderContention(t *testing.T) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 6
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 8
	p := vssd.NewPlatform(eng, pc)
	lender := p.AddVSSD(vssd.Config{Name: "lender", Channels: []int{0, 1, 2}})
	rich := p.AddVSSD(vssd.Config{Name: "rich", Channels: []int{3, 4}})
	poor := p.AddVSSD(vssd.Config{Name: "poor", Channels: []int{5}})
	_ = lender
	c := NewController(p, nil)
	bw := p.FlashConfig().ChannelBandwidth()
	// First, rich harvests one channel.
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Flush()
	c.Submit(vssd.Action{VSSD: rich.ID(), Kind: vssd.ActHarvest, BW: bw})
	c.Flush()
	if p.GSB().HarvestedChannels(rich.ID()) != 1 {
		t.Fatal("setup harvest failed")
	}
	// Lender raises its total budget to 2 channels (the in-use gSB counts
	// toward the target), creating one more idle gSB; both harvesters
	// contend for it, rich submitted first.
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: 2 * bw})
	c.Flush()
	c.Submit(vssd.Action{VSSD: rich.ID(), Kind: vssd.ActHarvest, BW: 2 * bw})
	c.Submit(vssd.Action{VSSD: poor.ID(), Kind: vssd.ActHarvest, BW: bw})
	c.Flush()
	if got := p.GSB().HarvestedChannels(poor.ID()); got != 1 {
		t.Fatalf("poor harvested %d channels; least-harvested priority failed", got)
	}
}

func TestPeriodicFlush(t *testing.T) {
	eng, p, _ := testSetup()
	c := NewController(p, nil)
	c.Start()
	c.Start() // idempotent
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	eng.RunUntil(60 * sim.Millisecond)
	if p.GSB().HarvestableChannels(0) != 1 {
		t.Fatal("periodic flush did not run within the 50ms interval")
	}
	if c.Stats().Batches != 1 {
		t.Fatalf("batches = %d", c.Stats().Batches)
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	c.Flush()
	if c.Stats().Batches != 0 {
		t.Fatal("empty flush counted as a batch")
	}
}
