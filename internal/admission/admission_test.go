package admission

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/vssd"
)

func testSetup() (*sim.Engine, *vssd.Platform, []*vssd.VSSD) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 4
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 8
	p := vssd.NewPlatform(eng, pc)
	a := p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})
	b := p.AddVSSD(vssd.Config{Name: "b", Channels: []int{2, 3}})
	return eng, p, []*vssd.VSSD{a, b}
}

func TestImmediateActionsBypassBatch(t *testing.T) {
	_, p, vs := testSetup()
	c := NewController(p, nil)
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActSetPriority, Level: ftl.PriorityHigh})
	if c.Pending() != 0 {
		t.Fatal("Set_Priority must not be batched")
	}
	if vs[0].Priority() != ftl.PriorityHigh {
		t.Fatal("Set_Priority not applied immediately")
	}
	if c.Stats().Immediate != 1 {
		t.Fatalf("immediate = %d", c.Stats().Immediate)
	}
}

func TestHarvestActionsBatchUntilFlush(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	if c.Pending() != 1 {
		t.Fatal("harvest action must batch")
	}
	if p.GSB().HarvestableChannels(0) != 0 {
		t.Fatal("action executed before flush")
	}
	c.Flush()
	if p.GSB().HarvestableChannels(0) != 1 {
		t.Fatal("flush did not execute the action")
	}
	if c.Pending() != 0 {
		t.Fatal("batch not cleared")
	}
}

func TestMakeHarvestableOrderedFirst(t *testing.T) {
	// Submit Harvest before Make_Harvestable in the same batch: with
	// reordering the harvest still succeeds because supply lands first.
	_, p, _ := testSetup()
	c := NewController(p, nil)
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Flush()
	if got := p.GSB().HarvestedChannels(1); got != 1 {
		t.Fatalf("harvested = %d; reordering failed", got)
	}
}

func TestReorderDisabledAblation(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	c.Reorder = false
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Flush()
	if got := p.GSB().HarvestedChannels(1); got != 0 {
		t.Fatalf("harvested = %d; without reordering the harvest should miss", got)
	}
}

func TestPolicyFilters(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, DenyList{
		NoHarvest: map[int]bool{1: true},
		NoLend:    map[int]bool{0: true},
	})
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
	if c.Stats().Filtered != 2 {
		t.Fatalf("filtered = %d, want 2", c.Stats().Filtered)
	}
	c.Flush()
	if p.GSB().HarvestableChannels(0) != 0 || p.GSB().HarvestedChannels(1) != 0 {
		t.Fatal("filtered actions executed")
	}
}

func TestLeastHarvestedPriorityUnderContention(t *testing.T) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 6
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 8
	p := vssd.NewPlatform(eng, pc)
	lender := p.AddVSSD(vssd.Config{Name: "lender", Channels: []int{0, 1, 2}})
	rich := p.AddVSSD(vssd.Config{Name: "rich", Channels: []int{3, 4}})
	poor := p.AddVSSD(vssd.Config{Name: "poor", Channels: []int{5}})
	_ = lender
	c := NewController(p, nil)
	bw := p.FlashConfig().ChannelBandwidth()
	// First, rich harvests one channel.
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	c.Flush()
	c.Submit(vssd.Action{VSSD: rich.ID(), Kind: vssd.ActHarvest, BW: bw})
	c.Flush()
	if p.GSB().HarvestedChannels(rich.ID()) != 1 {
		t.Fatal("setup harvest failed")
	}
	// Lender raises its total budget to 2 channels (the in-use gSB counts
	// toward the target), creating one more idle gSB; both harvesters
	// contend for it, rich submitted first.
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: 2 * bw})
	c.Flush()
	c.Submit(vssd.Action{VSSD: rich.ID(), Kind: vssd.ActHarvest, BW: 2 * bw})
	c.Submit(vssd.Action{VSSD: poor.ID(), Kind: vssd.ActHarvest, BW: bw})
	c.Flush()
	if got := p.GSB().HarvestedChannels(poor.ID()); got != 1 {
		t.Fatalf("poor harvested %d channels; least-harvested priority failed", got)
	}
}

// TestStatsMutuallyExclusive pins the counter contract: every Submit lands
// in exactly one of Immediate (non-harvest pass-through), Filtered (policy
// denial), or — after the flush — Admitted. In particular the
// immediate-execution path must not also count as admitted, and a filtered
// action must never surface in either of the other two.
func TestStatsMutuallyExclusive(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, DenyList{NoHarvest: map[int]bool{1: true}})
	bw := p.FlashConfig().ChannelBandwidth()

	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActSetPriority, Level: ftl.PriorityHigh}) // immediate
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})              // batched
	c.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})                      // filtered
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActSetPriority, Level: ftl.PriorityLow})  // immediate

	st := c.Stats()
	if st.Immediate != 2 || st.Filtered != 1 || st.Admitted != 0 {
		t.Fatalf("pre-flush stats %+v, want Immediate=2 Filtered=1 Admitted=0", st)
	}
	c.Flush()
	st = c.Stats()
	if st.Immediate != 2 || st.Filtered != 1 || st.Admitted != 1 {
		t.Fatalf("post-flush stats %+v, want Immediate=2 Filtered=1 Admitted=1", st)
	}
	if total := st.Immediate + st.Filtered + st.Admitted; total != 4 {
		t.Fatalf("counters sum to %d, want one verdict per Submit (4)", total)
	}
	// Flushing again must not re-admit anything.
	c.Flush()
	if got := c.Stats().Admitted; got != 1 {
		t.Fatalf("re-flush re-admitted: %d", got)
	}
}

// TestHarvestFCFSTieBreak pins the deterministic tie-break: when contending
// harvesters hold equal harvested resources, the batch executes them in
// arrival order (sort.SliceStable over an explicit arrival stamp), so
// whoever submitted first wins the last idle gSB — in either submission
// order, on every run.
func TestHarvestFCFSTieBreak(t *testing.T) {
	build := func(firstID, secondID int) int {
		eng := sim.NewEngine()
		pc := vssd.DefaultPlatformConfig()
		pc.Flash.Channels = 6
		pc.Flash.ChipsPerChannel = 2
		pc.Flash.BlocksPerChip = 32
		pc.Flash.PagesPerBlock = 8
		p := vssd.NewPlatform(eng, pc)
		p.AddVSSD(vssd.Config{Name: "lender", Channels: []int{0, 1, 2}})
		p.AddVSSD(vssd.Config{Name: "h1", Channels: []int{3, 4}})
		p.AddVSSD(vssd.Config{Name: "h2", Channels: []int{5}})
		c := NewController(p, nil)
		bw := p.FlashConfig().ChannelBandwidth()
		c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
		c.Flush()
		// Both harvesters hold zero harvested channels: a pure FCFS tie.
		c.Submit(vssd.Action{VSSD: firstID, Kind: vssd.ActHarvest, BW: bw})
		c.Submit(vssd.Action{VSSD: secondID, Kind: vssd.ActHarvest, BW: bw})
		c.Flush()
		for _, id := range []int{firstID, secondID} {
			if p.GSB().HarvestedChannels(id) == 1 {
				return id
			}
		}
		return -1
	}
	for run := 0; run < 3; run++ {
		if got := build(1, 2); got != 1 {
			t.Fatalf("run %d: winner = %d, want first submitter 1", run, got)
		}
		if got := build(2, 1); got != 2 {
			t.Fatalf("run %d: winner = %d, want first submitter 2", run, got)
		}
	}
}

func TestPeriodicFlush(t *testing.T) {
	eng, p, _ := testSetup()
	c := NewController(p, nil)
	c.Start()
	c.Start() // idempotent
	bw := p.FlashConfig().ChannelBandwidth()
	c.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
	eng.RunUntil(60 * sim.Millisecond)
	if p.GSB().HarvestableChannels(0) != 1 {
		t.Fatal("periodic flush did not run within the 50ms interval")
	}
	if c.Stats().Batches != 1 {
		t.Fatalf("batches = %d", c.Stats().Batches)
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	c.Flush()
	if c.Stats().Batches != 0 {
		t.Fatal("empty flush counted as a batch")
	}
}

// TestFlushSteadyStateAllocs pins the batch cycle at zero steady-state
// allocations: the drained batch array is double-buffered back into
// service and the reorder sort uses a concrete sort.Interface (Flush runs
// every 50 ms for the lifetime of a deployment).
func TestFlushSteadyStateAllocs(t *testing.T) {
	_, p, _ := testSetup()
	c := NewController(p, nil)
	cycle := func() {
		// Harvest targets of 0 keep the batch metadata-only, as in
		// BenchmarkAdmissionBatch.
		for j := 0; j < 64; j++ {
			c.Submit(vssd.Action{VSSD: j % 2, Kind: vssd.ActHarvest, BW: 0})
		}
		c.Flush()
	}
	cycle() // size the batch buffers
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state submit+flush cycle allocates %v per run", avg)
	}
}
