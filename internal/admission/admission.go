// Package admission implements FleetIO's admission control for RL actions
// (§3.5): harvest-related actions are validated against a provider policy,
// batched (50 ms by default), and reordered so Make_Harvestable executes
// before Harvest — maximizing the harvestable supply and avoiding
// immediate reclamation. Under contention, Harvest actions are served
// first-come-first-served with vSSDs holding fewer harvested resources
// given priority.
package admission

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vssd"
)

// Policy is the cloud provider's permission check for harvest actions.
// Implementations can forbid high-priority VMs from lending resources or
// spot VMs from harvesting.
type Policy interface {
	// AllowHarvest reports whether the vSSD may execute Harvest actions.
	AllowHarvest(vssdID int) bool
	// AllowMakeHarvestable reports whether the vSSD may lend resources.
	AllowMakeHarvestable(vssdID int) bool
}

// AllowAll permits everything (the default).
type AllowAll struct{}

// AllowHarvest always returns true.
func (AllowAll) AllowHarvest(int) bool { return true }

// AllowMakeHarvestable always returns true.
func (AllowAll) AllowMakeHarvestable(int) bool { return true }

// DenyList forbids specific vSSDs from harvesting and/or lending.
type DenyList struct {
	NoHarvest map[int]bool
	NoLend    map[int]bool
}

// AllowHarvest reports whether the vSSD is absent from the harvest deny list.
func (d DenyList) AllowHarvest(id int) bool { return !d.NoHarvest[id] }

// AllowMakeHarvestable reports whether the vSSD is absent from the lend deny list.
func (d DenyList) AllowMakeHarvestable(id int) bool { return !d.NoLend[id] }

// Stats counts controller activity.
type Stats struct {
	Batches   int64
	Admitted  int64
	Filtered  int64
	Immediate int64
}

// Controller batches and orders actions before the platform executes them.
type Controller struct {
	plat   *vssd.Platform
	policy Policy

	// Interval is the batch flush period (the paper uses 50 ms).
	Interval sim.Time

	batch   []entry
	spare   []entry // drained batch array, recycled on the next fill
	sorter  batchSorter
	arrival int64
	started bool
	stats   Stats

	// Reorder enables the Make_Harvestable-first ordering; disabling it is
	// the §3.5 ablation.
	Reorder bool

	// Obs traces admission verdicts (filtered and admitted harvest-related
	// actions); nil disables. Immediate pass-through actions are not traced
	// here — the policy layer already records the decision that issued them.
	Obs *obs.Recorder
}

type entry struct {
	action  vssd.Action
	arrival int64
}

// batchSorter implements the §3.5 ordering as a concrete sort.Interface:
// sort.SliceStable's reflect.Swapper allocates per call, and Flush runs
// every 50 ms for the lifetime of a deployment. Any stable sort produces
// the same permutation for a given comparator and input order, so the
// admitted sequence is identical to the previous sort.SliceStable code.
type batchSorter struct {
	batch []entry
	gsbm  gsbHarvested
}

// gsbHarvested is the slice of the gSB manager the ordering consults.
type gsbHarvested interface {
	HarvestedChannels(harvester int) int
}

func (s *batchSorter) Len() int      { return len(s.batch) }
func (s *batchSorter) Swap(i, j int) { s.batch[i], s.batch[j] = s.batch[j], s.batch[i] }

func (s *batchSorter) Less(i, j int) bool {
	ai, aj := s.batch[i], s.batch[j]
	mi := ai.action.Kind == vssd.ActMakeHarvestable
	mj := aj.action.Kind == vssd.ActMakeHarvestable
	if mi != mj {
		return mi // Make_Harvestable strictly first
	}
	if !mi {
		// Both harvests: fewer already-harvested channels first, then FCFS.
		hi := s.gsbm.HarvestedChannels(ai.action.VSSD)
		hj := s.gsbm.HarvestedChannels(aj.action.VSSD)
		if hi != hj {
			return hi < hj
		}
	}
	return ai.arrival < aj.arrival
}

// NewController builds a controller with the paper's defaults.
func NewController(plat *vssd.Platform, policy Policy) *Controller {
	if policy == nil {
		policy = AllowAll{}
	}
	return &Controller{
		plat:     plat,
		policy:   policy,
		Interval: 50 * sim.Millisecond,
		Reorder:  true,
	}
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Pending returns the number of batched, unflushed actions.
func (c *Controller) Pending() int { return len(c.batch) }

// Start arms the periodic flush on the engine. Safe to call once.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	c.plat.Engine().Ticker(c.Interval, func(sim.Time) bool {
		c.Flush()
		return true
	})
}

// Submit routes an action: harvest-related actions are policy-checked and
// batched; everything else (Set_Priority, channel/rate changes) applies
// immediately since it is not subject to admission control.
func (c *Controller) Submit(a vssd.Action) {
	switch a.Kind {
	case vssd.ActHarvest:
		if !c.policy.AllowHarvest(a.VSSD) {
			c.stats.Filtered++
			c.Obs.Verdict(obs.KindAdmissionFilter, a.VSSD, a.Kind.String(), a.BW)
			return
		}
	case vssd.ActMakeHarvestable:
		if !c.policy.AllowMakeHarvestable(a.VSSD) {
			c.stats.Filtered++
			c.Obs.Verdict(obs.KindAdmissionFilter, a.VSSD, a.Kind.String(), a.BW)
			return
		}
	default:
		c.stats.Immediate++
		c.plat.Apply(a)
		return
	}
	c.arrival++
	c.batch = append(c.batch, entry{action: a, arrival: c.arrival})
}

// Flush executes the current batch: Make_Harvestable first (supply before
// demand), then Harvest in FCFS order with least-harvested vSSDs first.
func (c *Controller) Flush() {
	if len(c.batch) == 0 {
		return
	}
	// Double-buffer: drain the filled batch while Submit (reentrant or
	// next-window) fills the spare, then recycle the drained array.
	batch := c.batch
	c.batch = c.spare[:0]
	c.stats.Batches++
	if c.Reorder {
		c.sorter.batch = batch
		c.sorter.gsbm = c.plat.GSB()
		sort.Stable(&c.sorter)
		c.sorter.batch = nil
	}
	for _, e := range batch {
		c.stats.Admitted++
		c.Obs.Verdict(obs.KindAdmissionAdmit, e.action.VSSD, e.action.Kind.String(), e.action.BW)
		c.plat.Apply(e.action)
	}
	c.spare = batch[:0]
}
