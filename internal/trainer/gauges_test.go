package trainer

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunExportsGauges runs the synthetic trainer with a registry attached
// and checks the per-round training series end up scrapeable.
func TestRunExportsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(Config{
		Seed:      5,
		Workers:   2,
		Episodes:  4,
		NewNet:    synthNet,
		Collect:   synthCollect,
		Eval:      synthEval,
		EvalEvery: 1,
		Obs:       reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	names := strings.Join(reg.Names(), "\n")
	for _, want := range []string{
		"fleetio_train_round",
		"fleetio_train_mean_reward",
		"fleetio_train_approx_kl",
		"fleetio_train_policy_loss",
		"fleetio_train_value_loss",
		"fleetio_train_entropy",
		"fleetio_train_transitions_per_second",
		"fleetio_train_eval_score",
		"fleetio_train_best_score",
		"fleetio_train_episodes_total",
		"fleetio_train_transitions_total",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("registry missing %s", want)
		}
	}
	last := res.Rounds[len(res.Rounds)-1]
	if got := reg.Gauge("fleetio_train_round", "").Value(); got != float64(last.Round) {
		t.Errorf("round gauge %v, want %v", got, last.Round)
	}
	var wantEps, wantTrans float64
	for _, rs := range res.Rounds {
		wantEps += float64(rs.Episodes)
		wantTrans += float64(rs.Transitions)
	}
	if got := reg.Counter("fleetio_train_episodes_total", "").Value(); got != wantEps {
		t.Errorf("episodes counter %v, want %v", got, wantEps)
	}
	if got := reg.Counter("fleetio_train_transitions_total", "").Value(); got != wantTrans {
		t.Errorf("transitions counter %v, want %v", got, wantTrans)
	}
	if reg.Gauge("fleetio_train_transitions_per_second", "").Value() <= 0 {
		t.Error("throughput gauge not set")
	}
}

// TestRunNilObsUnchanged pins that a nil registry costs nothing and
// changes nothing: the same run with and without Obs produces identical
// models.
func TestRunNilObsUnchanged(t *testing.T) {
	run := func(reg *obs.Registry) []float64 {
		res, err := Run(Config{
			Seed: 5, Workers: 2, Episodes: 4,
			NewNet: synthNet, Collect: synthCollect, Obs: reg,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Final.Params()
	}
	a := run(nil)
	b := run(obs.NewRegistry())
	if len(a) != len(b) {
		t.Fatalf("param counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
