package trainer

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sim"
)

// synthNet builds a tiny two-head actor-critic so trainer tests run in
// milliseconds instead of driving the full simulator.
func synthNet(rng *sim.RNG) *nn.ActorCritic {
	return nn.NewActorCritic(4, 8, []int{3, 3}, rng)
}

// synthCollect is a deterministic toy environment: random states, rewards
// that prefer matching head-0's action to the sign structure of the state.
func synthCollect(ep int, seed int64, net *nn.ActorCritic) *rl.Buffer {
	rng := sim.NewRNG(seed)
	ppo := rl.New(net, rl.DefaultConfig(), rng.Split(1))
	buf := &rl.Buffer{}
	state := make([]float64, 4)
	for t := 0; t < 40; t++ {
		for i := range state {
			state[i] = rng.Float64()*2 - 1
		}
		acts, lp, v := ppo.Act(state)
		target := 0
		if state[0] > 0 {
			target = 2
		}
		reward := -math.Abs(float64(acts[0] - target))
		buf.Add(rl.Transition{
			State:   append([]float64(nil), state...),
			Actions: acts,
			LogProb: lp,
			Value:   v,
			Reward:  reward,
		})
	}
	buf.MarkDone()
	return buf
}

func synthEval(seed int64, net *nn.ActorCritic) float64 {
	rng := sim.NewRNG(seed)
	ppo := rl.New(net, rl.DefaultConfig(), rng.Split(1))
	state := make([]float64, 4)
	sum := 0.0
	for t := 0; t < 40; t++ {
		for i := range state {
			state[i] = rng.Float64()*2 - 1
		}
		acts := ppo.ActGreedy(state)
		target := 0
		if state[0] > 0 {
			target = 2
		}
		sum += -math.Abs(float64(acts[0] - target))
	}
	return sum / 40
}

func synthConfig(seed int64, workers, episodes int) Config {
	return Config{
		Seed:     seed,
		Workers:  workers,
		Episodes: episodes,
		NewNet:   synthNet,
		Collect:  synthCollect,
	}
}

func encodeNet(t *testing.T, net *nn.ActorCritic) []byte {
	t.Helper()
	data, err := net.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// Two runs with the same seed and worker count must produce byte-identical
// encoded models — the reproducibility contract of the parallel collector.
func TestRunDeterministic(t *testing.T) {
	for _, workers := range []int{1, 3} {
		a, err := Run(synthConfig(42, workers, 7))
		if err != nil {
			t.Fatalf("run A (workers=%d): %v", workers, err)
		}
		b, err := Run(synthConfig(42, workers, 7))
		if err != nil {
			t.Fatalf("run B (workers=%d): %v", workers, err)
		}
		if !bytes.Equal(encodeNet(t, a.Final), encodeNet(t, b.Final)) {
			t.Fatalf("workers=%d: same seed produced different models", workers)
		}
	}
}

func TestRunTrainsAndReportsRounds(t *testing.T) {
	res, err := Run(synthConfig(7, 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rounds); got != 3 {
		t.Fatalf("expected 3 rounds for 6 episodes / 2 workers, got %d", got)
	}
	for _, rs := range res.Rounds {
		if rs.Transitions != rs.Episodes*40 {
			t.Fatalf("round %d: %d transitions for %d episodes", rs.Round, rs.Transitions, rs.Episodes)
		}
	}
	// The toy reward is learnable; the policy should improve measurably.
	cfg := synthConfig(7, 2, 80)
	cfg.RL = rl.DefaultConfig()
	cfg.RL.LR = 5e-3
	cfg.Eval = synthEval
	cfg.EvalEvery = 5
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("eval gating enabled but no best model selected")
	}
	first := synthEval(999, nn.NewActorCritic(4, 8, []int{3, 3}, sim.NewRNG(41)))
	best := synthEval(999, res.Best)
	t.Logf("untrained eval %.4f, best eval %.4f", first, best)
	if best < first-0.05 {
		t.Fatalf("training made the policy worse: %.4f -> %.4f", first, best)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Episodes: 1, NewNet: synthNet}); err == nil {
		t.Fatal("missing Collect accepted")
	}
	if _, err := Run(Config{Episodes: 1, Collect: synthCollect}); err == nil {
		t.Fatal("missing NewNet accepted")
	}
	if _, err := Run(Config{Collect: synthCollect, NewNet: synthNet}); err == nil {
		t.Fatal("zero Episodes accepted")
	}
}

func TestRunResumeContinues(t *testing.T) {
	dir := t.TempDir()
	cfg := synthConfig(11, 2, 4)
	cfg.CheckpointDir = dir
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rounds) != 2 {
		t.Fatalf("expected 2 rounds, got %d", len(first.Rounds))
	}
	// Same budget + resume: everything is already done.
	cfg.Resume = true
	same, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if same.StartRound != 2 || len(same.Rounds) != 0 {
		t.Fatalf("resume at full budget reran rounds: start=%d ran=%d", same.StartRound, len(same.Rounds))
	}
	// Weights must match exactly (checkpoints persist params, not
	// optimizer moments, so compare Params rather than full gob).
	fp, sp := first.Final.Params(), same.Final.Params()
	for i := range fp {
		if fp[i] != sp[i] {
			t.Fatalf("resumed-no-op weight %d differs: %v != %v", i, fp[i], sp[i])
		}
	}
	// Larger budget + resume: continues from round 2 only.
	cfg.Episodes = 8
	more, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if more.StartRound != 2 || len(more.Rounds) != 2 {
		t.Fatalf("resume continuation: start=%d ran=%d", more.StartRound, len(more.Rounds))
	}
	if got, want := more.Final.NumParams(), first.Final.NumParams(); got != want {
		t.Fatalf("resumed model has %d params, want %d", got, want)
	}
}

func TestRunMetricsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.jsonl")
	cfg := synthConfig(3, 2, 4)
	cfg.MetricsPath = path
	cfg.Eval = synthEval
	cfg.EvalEvery = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(res.Rounds) {
		t.Fatalf("%d JSONL lines for %d rounds", len(lines), len(res.Rounds))
	}
	for i, line := range lines {
		var rs RoundStats
		if err := json.Unmarshal([]byte(line), &rs); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if rs.Round != i || rs.Transitions == 0 || rs.EvalScore == nil {
			t.Fatalf("line %d incomplete: %+v", i, rs)
		}
	}
}
