package trainer

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint is one durable training snapshot: enough to restart
// collection from the next round and to recover the eval-gated best model.
// Optimizer moments are deliberately not persisted — Adam re-warms within
// a round and the files stay small.
type Checkpoint struct {
	Round      int   // last completed round
	Seed       int64 // base seed the run was launched with
	Workers    int   // worker count the run was launched with
	Params     []float64
	BestScore  float64
	BestParams []float64 // nil when eval gating was disabled
}

// File layout: magic | uint32 payload CRC | uint32 payload length | gob
// payload. The CRC rejects torn or corrupted files that gob alone might
// accept a prefix of.
var ckptMagic = []byte("FLTCKPT1")

const ckptPrefix = "ckpt-"

// ckptName returns the file name for a round's snapshot; lexical order of
// the zero-padded round number is chronological order.
func ckptName(round int) string {
	return fmt.Sprintf("%s%08d.gob", ckptPrefix, round)
}

// Save atomically writes ck into dir (creating it if needed) as
// ckpt-<round>.gob via a temp file and rename, so a crash mid-write never
// leaves a half-visible snapshot. It returns the final path.
func Save(dir string, ck *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("trainer: checkpoint dir: %w", err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return "", fmt.Errorf("trainer: encode checkpoint: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(ckptMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload.Bytes()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())

	path := filepath.Join(dir, ckptName(ck.Round))
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return "", fmt.Errorf("trainer: checkpoint temp: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trainer: checkpoint chmod: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trainer: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trainer: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trainer: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trainer: checkpoint rename: %w", err)
	}
	return path, nil
}

// Load reads and verifies one checkpoint file.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+8 || !bytes.Equal(data[:len(ckptMagic)], ckptMagic) {
		return nil, fmt.Errorf("trainer: %s: not a checkpoint file", path)
	}
	hdr := data[len(ckptMagic):]
	wantCRC := binary.LittleEndian.Uint32(hdr[0:])
	wantLen := binary.LittleEndian.Uint32(hdr[4:])
	payload := hdr[8:]
	if uint32(len(payload)) != wantLen {
		return nil, fmt.Errorf("trainer: %s: truncated checkpoint (%d of %d payload bytes)", path, len(payload), wantLen)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("trainer: %s: checkpoint CRC mismatch", path)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("trainer: %s: decode checkpoint: %w", path, err)
	}
	return &ck, nil
}

// LoadLatest returns the newest readable checkpoint in dir, skipping
// corrupt or partial files so a crash during Save (or disk damage since)
// falls back to the last good snapshot. (nil, "", nil) means no snapshot
// exists — including when dir itself is missing.
func LoadLatest(dir string) (*Checkpoint, string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", fmt.Errorf("trainer: checkpoint dir: %w", err)
	}
	var rounds []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ".gob") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ".gob"))
		if err != nil {
			continue
		}
		rounds = append(rounds, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rounds)))
	var lastErr error
	for _, n := range rounds {
		path := filepath.Join(dir, ckptName(n))
		ck, err := Load(path)
		if err == nil {
			return ck, path, nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("trainer: no readable checkpoint in %s: %w", dir, lastErr)
	}
	return nil, "", nil
}
