package trainer

import "repro/internal/obs"

// trainGauges holds the registry handles for the per-round training
// metrics exported on /metrics. All values are set from the learner
// goroutine only; the registry makes the reads on the HTTP scrape path
// safe without extra locking.
type trainGauges struct {
	round       *obs.Metric
	meanReward  *obs.Metric
	policyLoss  *obs.Metric
	valueLoss   *obs.Metric
	entropy     *obs.Metric
	approxKL    *obs.Metric
	transPerSec *obs.Metric
	evalScore   *obs.Metric
	bestScore   *obs.Metric
	episodes    *obs.Metric
	transitions *obs.Metric
}

// newTrainGauges registers the training metric family; a nil registry
// yields nil gauges whose Set calls are no-ops.
func newTrainGauges(reg *obs.Registry) *trainGauges {
	return &trainGauges{
		round:       reg.Gauge("fleetio_train_round", "Last completed training round (0-indexed)."),
		meanReward:  reg.Gauge("fleetio_train_mean_reward", "Mean per-transition reward of the last round."),
		policyLoss:  reg.Gauge("fleetio_train_policy_loss", "PPO clipped surrogate loss of the last update."),
		valueLoss:   reg.Gauge("fleetio_train_value_loss", "Critic MSE loss of the last update."),
		entropy:     reg.Gauge("fleetio_train_entropy", "Mean policy entropy of the last update."),
		approxKL:    reg.Gauge("fleetio_train_approx_kl", "Approximate KL divergence of the last update."),
		transPerSec: reg.Gauge("fleetio_train_transitions_per_second", "Worker-pool collection throughput of the last round."),
		evalScore:   reg.Gauge("fleetio_train_eval_score", "Held-out eval score of the last evaluated snapshot."),
		bestScore:   reg.Gauge("fleetio_train_best_score", "Best held-out eval score so far."),
		episodes:    reg.Counter("fleetio_train_episodes_total", "Collection episodes completed."),
		transitions: reg.Counter("fleetio_train_transitions_total", "Transitions collected across all rounds."),
	}
}

// update publishes one finished round.
func (g *trainGauges) update(rs RoundStats, bestScore float64) {
	g.round.Set(float64(rs.Round))
	g.meanReward.Set(rs.MeanReward)
	g.policyLoss.Set(rs.PolicyLoss)
	g.valueLoss.Set(rs.ValueLoss)
	g.entropy.Set(rs.Entropy)
	g.approxKL.Set(rs.ApproxKL)
	g.transPerSec.Set(rs.TransPerSec)
	if rs.EvalScore != nil {
		g.evalScore.Set(*rs.EvalScore)
		g.bestScore.Set(bestScore)
	}
	g.episodes.Add(float64(rs.Episodes))
	g.transitions.Add(float64(rs.Transitions))
}
