package trainer

import (
	"encoding/json"
	"fmt"
	"os"
)

// RoundStats is one JSONL training-telemetry record: learner losses,
// policy drift, collection throughput, and the eval gate's verdict. The
// TransPerSec/WallMs pair makes training speed itself benchmarkable
// across worker counts and hardware.
//
// Serialized with the json tags below, one object per line (see
// docs/OBSERVABILITY.md, "Trainer JSONL schema"). EvalScore and Best are
// omitted on rounds where the eval gate did not run; WallMs/TransPerSec
// are wall-clock measurements, everything else is training statistics.
// The same fields back the fleetio_train_* gauges when Config.Obs is set.
type RoundStats struct {
	Round       int      `json:"round"`
	Episodes    int      `json:"episodes"`
	Transitions int      `json:"transitions"`
	PolicyLoss  float64  `json:"policy_loss"`
	ValueLoss   float64  `json:"value_loss"`
	Entropy     float64  `json:"entropy"`
	ApproxKL    float64  `json:"approx_kl"`
	MeanReward  float64  `json:"mean_reward"`
	EvalScore   *float64 `json:"eval_score,omitempty"`
	Best        bool     `json:"best,omitempty"`
	WallMs      float64  `json:"wall_ms"`
	TransPerSec float64  `json:"transitions_per_sec"`
}

// metricsWriter appends RoundStats as JSON lines. Append mode lets a
// resumed run extend the same trajectory file.
type metricsWriter struct {
	f   *os.File
	enc *json.Encoder
}

func newMetricsWriter(path string) (*metricsWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trainer: metrics file: %w", err)
	}
	return &metricsWriter{f: f, enc: json.NewEncoder(f)}, nil
}

// Write appends one record (json.Encoder terminates it with a newline).
func (m *metricsWriter) Write(rs RoundStats) error {
	if err := m.enc.Encode(rs); err != nil {
		return fmt.Errorf("trainer: metrics write: %w", err)
	}
	return nil
}

func (m *metricsWriter) Close() error { return m.f.Close() }
