package trainer

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sampleCheckpoint(round int) *Checkpoint {
	params := make([]float64, 64)
	for i := range params {
		params[i] = math.Sin(float64(round*100 + i))
	}
	return &Checkpoint{
		Round:      round,
		Seed:       11,
		Workers:    4,
		Params:     params,
		BestScore:  -0.25,
		BestParams: append([]float64(nil), params...),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleCheckpoint(3)
	path, err := Save(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != want.Round || got.Seed != want.Seed || got.Workers != want.Workers {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Params) != len(want.Params) {
		t.Fatalf("params length %d, want %d", len(got.Params), len(want.Params))
	}
	for i := range got.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d: %v != %v", i, got.Params[i], want.Params[i])
		}
	}
	if got.BestScore != want.BestScore || len(got.BestParams) != len(want.BestParams) {
		t.Fatalf("best snapshot mismatch: %+v", got)
	}
	// No temp files may survive a successful save.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("stray file after save: %s", e.Name())
		}
	}
}

func TestCheckpointRejectsCorruptAndPartial(t *testing.T) {
	dir := t.TempDir()
	path, err := Save(dir, sampleCheckpoint(1))
	if err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated (torn write): must be rejected.
	partial := filepath.Join(dir, "ckpt-00000002.gob")
	if err := os.WriteFile(partial, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(partial); err == nil {
		t.Fatal("partial checkpoint accepted")
	}

	// Bit flip in the payload: must be rejected by the CRC.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-3] ^= 0x40
	flippedPath := filepath.Join(dir, "ckpt-00000003.gob")
	if err := os.WriteFile(flippedPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(flippedPath); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}

	// Wrong magic: must be rejected.
	if _, err := Load(partial); err == nil {
		t.Fatal("partial accepted")
	}
	garbagePath := filepath.Join(dir, "ckpt-00000004.gob")
	if err := os.WriteFile(garbagePath, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbagePath); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}

	// LoadLatest must skip all three bad newer files and land on round 1.
	ck, gotPath, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Round != 1 || gotPath != path {
		t.Fatalf("LoadLatest did not fall back to the good snapshot: %+v from %s", ck, gotPath)
	}
}

func TestLoadLatestEmptyAndMissing(t *testing.T) {
	ck, _, err := LoadLatest(filepath.Join(t.TempDir(), "nope"))
	if err != nil || ck != nil {
		t.Fatalf("missing dir: ck=%v err=%v", ck, err)
	}
	ck, _, err = LoadLatest(t.TempDir())
	if err != nil || ck != nil {
		t.Fatalf("empty dir: ck=%v err=%v", ck, err)
	}
}

func TestLoadLatestAllCorruptErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ckpt-00000001.gob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(dir); err == nil {
		t.Fatal("all-corrupt dir should error rather than silently start fresh")
	}
}

// Resume after corrupting the newest checkpoint falls back to the last
// good snapshot and continues training from its round.
func TestRunResumeFromLastGoodSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := synthConfig(19, 1, 3) // 3 rounds, checkpoint every round
	cfg.CheckpointDir = dir
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rounds) != 3 {
		t.Fatalf("expected 3 rounds, got %d", len(first.Rounds))
	}
	// Corrupt the newest snapshot (round 2); round 1's remains good.
	newest := filepath.Join(dir, "ckpt-00000002.gob")
	if err := os.WriteFile(newest, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	cfg.Episodes = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartRound != 2 {
		t.Fatalf("expected resume at round 2 (after last good round 1), got %d", res.StartRound)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("expected rounds 2..3 to run, got %d rounds", len(res.Rounds))
	}
	if got, want := res.Final.NumParams(), first.Final.NumParams(); got != want {
		t.Fatalf("resumed model has %d params, want %d", got, want)
	}
}
