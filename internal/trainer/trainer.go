// Package trainer is FleetIO's parallel pretraining orchestrator (§3.8:
// the paper fans WiscSim episodes out under Ray; here a goroutine worker
// pool plays that role). N workers each own a full simulator episode —
// engine, platform, collection-only FleetIO policy — and stream rollout
// buffers to a single learner goroutine that runs synchronous PPO updates
// on the shared network and broadcasts fresh weights back between rounds.
//
// The package is environment-agnostic: episodes are injected as closures
// (CollectFunc/EvalFunc), so the worker-pool/learner/checkpoint shape
// transfers to any training stack. internal/harness supplies the FleetIO
// episode factory and routes Pretrain through Run.
//
// Determinism: episode i always runs with seed Seed+i against the weight
// snapshot of its round, rounds are merged in episode order (not arrival
// order), and the learner's RNG is derived from Seed — so for a fixed
// worker count two Runs produce byte-identical models.
//
// Telemetry: each round produces one RoundStats record, which feeds three
// sinks — Result.Rounds (in memory), Config.MetricsPath (append-mode
// JSONL, schema documented on RoundStats and in docs/OBSERVABILITY.md),
// and Config.Obs (live fleetio_train_* gauges for /metrics scraping).
// All three are written from the learner goroutine only, so attaching
// them never perturbs training determinism.
package trainer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rl"
	"repro/internal/sim"
)

// CollectFunc runs one collection episode: build an environment from
// (ep, seed), act with net's stochastic policy, and return the rollout.
// It is called concurrently from worker goroutines; net is private to the
// calling worker, but everything else it touches must be safe to share.
type CollectFunc func(ep int, seed int64, net *nn.ActorCritic) *rl.Buffer

// EvalFunc scores a frozen policy snapshot on a held-out episode (greedy
// actions) and returns the mean per-transition reward.
type EvalFunc func(seed int64, net *nn.ActorCritic) float64

// evalSeedOffset keeps held-out eval episodes off the collection seed
// sequence for any plausible episode budget.
const evalSeedOffset = 1_000_003

// Config parameterizes Run.
type Config struct {
	Seed     int64
	Workers  int // concurrent collection workers (default 1)
	Episodes int // total collection episodes across all rounds

	// RL holds the learner's PPO hyperparameters (zero value → defaults).
	RL rl.Config
	// NewNet builds the initial network when no checkpoint is resumed.
	NewNet func(rng *sim.RNG) *nn.ActorCritic
	// Collect runs one collection episode (required).
	Collect CollectFunc
	// Eval scores a snapshot on a held-out episode; nil disables gating.
	Eval EvalFunc
	// EvalEvery is the round period of eval gating (0 disables even with
	// Eval set; the final round is always evaluated when enabled).
	EvalEvery int

	// CheckpointDir enables atomic gob snapshots when non-empty.
	CheckpointDir string
	// CheckpointEvery is the round period of snapshots (default 1).
	CheckpointEvery int
	// Resume restarts from the newest readable checkpoint in
	// CheckpointDir, skipping corrupt or partial files.
	Resume bool

	// MetricsPath appends one JSONL RoundStats record per round.
	MetricsPath string
	// Logf, when set, receives human-readable per-round progress.
	Logf func(format string, args ...any)

	// Obs, when non-nil, exports per-round training gauges (reward,
	// losses, ApproxKL, worker throughput) for a live /metrics endpoint.
	// Gauges are written only from the learner goroutine.
	Obs *obs.Registry
}

// Result is what a training run produced.
type Result struct {
	// Final is the learner network after the last round.
	Final *nn.ActorCritic
	// Best is the eval-gated best snapshot (nil when eval was disabled).
	Best *nn.ActorCritic
	// BestScore is Best's held-out mean reward.
	BestScore float64
	// Rounds holds per-round telemetry, startRound-indexed on resume.
	Rounds []RoundStats
	// StartRound is the first round executed (>0 when resumed).
	StartRound int
}

// Run executes the collect/learn loop: ceil(Episodes/Workers) rounds, each
// dispatching up to Workers episodes to the pool, merging their rollouts in
// episode order, and applying one synchronous PPO update before
// broadcasting the new weights.
func Run(cfg Config) (*Result, error) {
	if cfg.Collect == nil {
		return nil, errors.New("trainer: Config.Collect is required")
	}
	if cfg.NewNet == nil {
		return nil, errors.New("trainer: Config.NewNet is required")
	}
	if cfg.Episodes <= 0 {
		return nil, fmt.Errorf("trainer: Episodes must be positive, got %d", cfg.Episodes)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	ckEvery := cfg.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}
	rcfg := cfg.RL
	if rcfg.Gamma == 0 {
		rcfg = rl.DefaultConfig()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rng := sim.NewRNG(cfg.Seed)
	net := cfg.NewNet(rng.Split(-1))
	learner := rl.New(net, rcfg, rng.Split(-2))

	res := &Result{Final: net, BestScore: 0}
	bestSet := false
	var bestParams []float64

	totalRounds := (cfg.Episodes + workers - 1) / workers
	if cfg.Resume && cfg.CheckpointDir != "" {
		ck, path, err := LoadLatest(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			if err := net.SetParams(ck.Params); err != nil {
				return nil, fmt.Errorf("trainer: resume %s: %w", path, err)
			}
			res.StartRound = ck.Round + 1
			if ck.BestParams != nil {
				bestSet = true
				res.BestScore = ck.BestScore
				bestParams = ck.BestParams
			}
			logf("resumed from %s (round %d, %d params)", path, ck.Round, len(ck.Params))
		}
	}

	gauges := newTrainGauges(cfg.Obs)

	var mw *metricsWriter
	if cfg.MetricsPath != "" {
		var err error
		if mw, err = newMetricsWriter(cfg.MetricsPath); err != nil {
			return nil, err
		}
		defer mw.Close()
	}

	// Persistent per-worker replicas; weights are broadcast each round.
	// Replicas are load-bearing, not just a cache-warmth optimization:
	// ActorCritic carries reusable forward/backward scratch, so a network
	// must never be shared across goroutines.
	replicas := make([]*nn.ActorCritic, workers)
	for w := range replicas {
		replicas[w] = net.Clone()
	}

	for round := res.StartRound; round < totalRounds; round++ {
		start := time.Now()
		epLo := round * workers
		epHi := epLo + workers
		if epHi > cfg.Episodes {
			epHi = cfg.Episodes
		}

		snapshot := net.Params()
		rollouts := make([]*rl.Buffer, epHi-epLo)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(local *nn.ActorCritic) {
				defer wg.Done()
				if err := local.SetParams(snapshot); err != nil {
					panic(err) // replicas are clones of net; cannot mismatch
				}
				for idx := range jobs {
					ep := epLo + idx
					rollouts[idx] = cfg.Collect(ep, cfg.Seed+int64(ep), local)
				}
			}(replicas[w])
		}
		for idx := range rollouts {
			jobs <- idx
		}
		close(jobs)
		wg.Wait()

		merged := rl.Merge(rollouts...)
		meanReward := merged.MeanReward()
		transitions := merged.Len()
		// Every episode's final transition is marked Done, so no
		// bootstrap value is needed at the merge boundary.
		ts := learner.Train(merged, 0)

		wall := time.Since(start)
		rs := RoundStats{
			Round:       round,
			Episodes:    epHi - epLo,
			Transitions: transitions,
			PolicyLoss:  ts.PolicyLoss,
			ValueLoss:   ts.ValueLoss,
			Entropy:     ts.Entropy,
			ApproxKL:    ts.ApproxKL,
			MeanReward:  meanReward,
			WallMs:      float64(wall.Microseconds()) / 1e3,
		}
		if wall > 0 {
			rs.TransPerSec = float64(transitions) / wall.Seconds()
		}

		final := round == totalRounds-1
		if cfg.Eval != nil && cfg.EvalEvery > 0 && ((round+1)%cfg.EvalEvery == 0 || final) {
			probe := net.Clone()
			score := cfg.Eval(cfg.Seed+evalSeedOffset, probe)
			rs.EvalScore = &score
			if !bestSet || score > res.BestScore {
				bestSet = true
				res.BestScore = score
				bestParams = net.Params()
				rs.Best = true
			}
		}

		if cfg.CheckpointDir != "" && ((round+1)%ckEvery == 0 || final) {
			ck := &Checkpoint{
				Round:      round,
				Seed:       cfg.Seed,
				Workers:    workers,
				Params:     net.Params(),
				BestScore:  res.BestScore,
				BestParams: bestParams,
			}
			if _, err := Save(cfg.CheckpointDir, ck); err != nil {
				return nil, err
			}
		}
		if mw != nil {
			if err := mw.Write(rs); err != nil {
				return nil, err
			}
		}
		gauges.update(rs, res.BestScore)
		res.Rounds = append(res.Rounds, rs)
		logf("round %d/%d: %d eps, %d steps, reward %.4f, kl %.5f, %.0f steps/s",
			round+1, totalRounds, rs.Episodes, rs.Transitions, rs.MeanReward, rs.ApproxKL, rs.TransPerSec)
	}

	if bestSet {
		best := net.Clone()
		if err := best.SetParams(bestParams); err != nil {
			return nil, err
		}
		res.Best = best
	}
	return res, nil
}
