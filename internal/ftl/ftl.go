// Package ftl implements the flash translation layer of the FleetIO
// reproduction: logical-to-physical mapping with out-of-place updates,
// write allocation striped across the channels a tenant owns, block
// lending for ghost superblocks, and lazy greedy garbage collection that
// prioritizes harvested/reclaimed blocks (§3.7 of the paper, including the
// Harvested Block Table).
//
// One Manager exists per device and tracks every erase block. One Tenant
// exists per vSSD and owns a logical page space plus write "lanes" — one
// per (channel, chip) it may write to, covering both its own channels and
// any harvested ghost-superblock blocks.
package ftl

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Scheduling priorities used for flash ops. Host requests use
// PriorityLow..PriorityHigh (the Set_Priority action moves a vSSD between
// them); GC traffic runs strictly below all host traffic.
const (
	PriorityGC   = 0
	PriorityLow  = 1
	PriorityMed  = 2
	PriorityHigh = 3
)

// BlockState is the lifecycle state of an erase block.
type BlockState uint8

// Block lifecycle states.
const (
	// BlockFree: erased, in its channel's free pool.
	BlockFree BlockState = iota
	// BlockLent: pulled from the free pool into a ghost superblock, not
	// yet written (clean); owned by the home tenant, usable by a harvester.
	BlockLent
	// BlockOpen: actively being written (has a write pointer).
	BlockOpen
	// BlockFull: fully written; candidate for GC.
	BlockFull
	// BlockGC: currently being collected (excluded from victim selection).
	BlockGC
	// BlockBad: retired after a program or erase failure; terminal. Bad
	// blocks never return to a free pool — the device permanently loses
	// their capacity, exactly as a real FTL grows its bad-block table.
	BlockBad
)

const invalidPPA = int32(-1)

// blockInfo is the Manager's bookkeeping for one erase block.
type blockInfo struct {
	id    flash.BlockID
	state BlockState
	// owner is the tenant whose channel pool the block came from (the
	// "home_vssd" in gSB terms); -1 while free on a shared channel.
	owner int
	// user is the tenant whose data the block holds (the harvester for
	// harvested blocks); -1 when unwritten.
	user int
	// harvested is the Harvested Block Table bit: true for blocks serving
	// a gSB or pending lazy reclamation; cleared when GC erases the block.
	harvested bool
	// gsb is the ghost-superblock ID the block belongs to, or -1.
	gsb int
	// bad marks a block pending retirement after a program/erase failure:
	// GC collects it first (even fully valid) and retires it instead of
	// returning it to the pool. It stays set in the terminal BlockBad state.
	bad      bool
	writePtr int
	valid    int
	// back-pointers for GC: the tenant and LPN stored in each page.
	pageTenant []int32
	pageLPN    []int32
}

// Stats summarizes FTL-wide activity, including the write-amplification
// accounting used by the §3.7 claim (<5% extra WA from harvesting).
type Stats struct {
	HostPrograms int64
	GCPrograms   int64
	GCReads      int64
	Erases       int64
	GCRuns       int64

	// Fault-recovery accounting (all zero without a fault injector).
	// Every injected program failure is remapped exactly once and then
	// recovered by exactly one action — a host re-dispatch (counted by the
	// vSSD layer), a GC re-program, or a GC skip when a fresher host write
	// superseded the lost page — so
	//   device.ProgramFails == Remapped
	//                       == sum(vssd retries) + GCRetryPrograms + GCRetrySkips.
	Retired         int64 // blocks retired to the bad-block table
	Remapped        int64 // program-fail pages whose mapping was repaired
	GCRetryPrograms int64 // failed GC migrations re-programmed elsewhere
	GCRetrySkips    int64 // failed GC migrations superseded by host writes
}

// WriteAmplification returns (host+gc programs)/host programs, or 1 when
// nothing has been written.
func (s Stats) WriteAmplification() float64 {
	if s.HostPrograms == 0 {
		return 1
	}
	return float64(s.HostPrograms+s.GCPrograms) / float64(s.HostPrograms)
}

// Manager tracks every erase block on the device and coordinates GC across
// tenants. It is single-threaded model code driven by the sim engine.
type Manager struct {
	eng *sim.Engine
	dev *flash.Device
	cfg flash.Config

	blocks    []blockInfo
	freePools [][]int // per (channel*chips+chip): stack of free block indices
	freeCount []int   // per channel
	tenants   []*Tenant
	// fullSets[t] is a bitmap over block indices of the blocks with
	// state == BlockFull && owner == t — the GC victim candidates.
	// Maintained at every transition into or out of BlockFull (fullMark /
	// fullUnmark) so pickVictim scans a few hundred words instead of the
	// whole block table. Membership is keyed on (state, owner) only; the
	// per-block class/valid inputs to victim selection are read fresh at
	// scan time, so invalidations and bad/harvested flips need no index
	// maintenance.
	fullSets [][]uint64

	// Submit sends a flash op to the device; the platform layer installs it
	// (wrapping accounting). Defaults to dev.Submit.
	Submit func(*flash.Op)

	// GCReserve is the number of free blocks per channel reserved for GC
	// migration so collection can always make forward progress.
	GCReserve int
	// GCThreshold is the free-block fraction below which a tenant starts
	// collecting (the paper's lazy GC uses 20%). Zero disables GC.
	GCThreshold float64
	// GCConcurrency bounds the victim blocks a tenant collects at once
	// (real FTLs collect per-channel in parallel).
	GCConcurrency int
	// GCPipeline bounds the in-flight page migrations per GC job.
	GCPipeline int
	// HarvestedFirst enables the §3.7 victim policy (harvested/reclaimed
	// blocks before regular ones). Disabling it is the ablation.
	HarvestedFirst bool

	// onBlockErased notifies the gSB manager when GC returns a block to
	// the free pool so it can finish lazy gSB reclamation.
	onBlockErased func(blockIdx, gsbID int)

	// gcFree recycles gcJob state (including the valid-page scratch slice)
	// across collections so steady-state GC does not allocate.
	gcFree *gcJob

	// rec traces GC victim selection; nil disables.
	rec *obs.Recorder

	stats Stats
}

// SetObserver attaches a decision-event recorder for GC tracing (nil
// detaches it).
func (m *Manager) SetObserver(rec *obs.Recorder) { m.rec = rec }

// OnBlockErased installs the post-erase hook (one consumer: gsb.Manager).
func (m *Manager) OnBlockErased(fn func(blockIdx, gsbID int)) { m.onBlockErased = fn }

// NewManager builds the block bookkeeping for dev. All blocks start free.
func NewManager(eng *sim.Engine, dev *flash.Device) *Manager {
	cfg := dev.Config()
	m := &Manager{
		eng:            eng,
		dev:            dev,
		cfg:            cfg,
		blocks:         make([]blockInfo, cfg.TotalBlocks()),
		freePools:      make([][]int, cfg.Channels*cfg.ChipsPerChannel),
		freeCount:      make([]int, cfg.Channels),
		GCReserve:      2,
		GCThreshold:    0.20,
		GCConcurrency:  4,
		GCPipeline:     8,
		HarvestedFirst: true,
	}
	m.Submit = dev.Submit
	for p := range m.freePools {
		m.freePools[p] = make([]int, 0, cfg.BlocksPerChip)
	}
	for i := range m.blocks {
		b := &m.blocks[i]
		b.id = m.blockID(i)
		b.owner = -1
		b.user = -1
		b.gsb = -1
		m.freePools[m.poolIndex(b.id.Channel, b.id.Chip)] = append(m.freePools[m.poolIndex(b.id.Channel, b.id.Chip)], i)
		m.freeCount[b.id.Channel]++
	}
	dev.OnFault(m.deviceFault)
	return m
}

// deviceFault is the device's OnFault hook: it repairs FTL state for a
// failed op before the op's Done callback runs, so the submitter's retry
// (host re-dispatch or GC re-program) sees a consistent mapping and a
// sealed bad block.
func (m *Manager) deviceFault(kind flash.OpKind, addr flash.PPA, status flash.OpStatus) {
	switch status {
	case flash.StatusProgramFail:
		m.handleProgramFail(addr)
	case flash.StatusEraseFail:
		// Mark the victim for retirement; gcEraseDone (which runs next,
		// as the op's Done) retires it instead of pooling it.
		m.markBad(m.blockIndex(addr.BlockOf()))
	}
}

// handleProgramFail repairs the mapping after a failed page program: the
// failed slot's back-pointer is cleared and the data owner's l2p entry is
// reset if it still points at the failed page (a racing host overwrite
// may already have superseded it), then the block is marked bad so GC
// migrates its surviving pages and retires it.
func (m *Manager) handleProgramFail(addr flash.PPA) {
	idx := m.blockIndex(addr.BlockOf())
	b := &m.blocks[idx]
	page := addr.Page
	if b.pageTenant[page] != invalidPPA {
		t := m.tenants[b.pageTenant[page]]
		lpn := int(b.pageLPN[page])
		b.pageTenant[page] = invalidPPA
		b.valid--
		t.mappedPages--
		if t.l2p[lpn] == int64(idx)<<16|int64(page) {
			t.l2p[lpn] = -1
		}
	}
	m.stats.Remapped++
	m.markBad(idx)
}

// markBad flags a block for retirement: it is sealed against further
// writes and its owner's GC is kicked so the block is collected (bad
// blocks are class-first victims) and retired. Idempotent.
func (m *Manager) markBad(idx int) {
	b := &m.blocks[idx]
	if b.bad {
		return
	}
	b.bad = true
	if b.state == BlockOpen {
		// Detach the block from whichever lane is writing it.
		if b.user >= 0 {
			m.tenants[b.user].sealActive(idx)
		}
		b.state = BlockFull
		m.fullMark(b.owner, idx)
	}
	if b.owner >= 0 {
		t := m.tenants[b.owner]
		t.badBlocks++
		t.maybeGC()
	}
}

// retireBlock moves an erased-or-unerasable bad block into the terminal
// BlockBad state instead of a free pool: its capacity is permanently
// lost, mirroring a real FTL's bad-block table. The caller is responsible
// for gSB notification (gcEraseDone reads the gsb id first).
func (m *Manager) retireBlock(idx int) {
	b := &m.blocks[idx]
	if b.bad && b.owner >= 0 {
		m.tenants[b.owner].badBlocks--
	}
	b.state = BlockBad
	b.owner = -1
	b.user = -1
	b.harvested = false
	b.gsb = -1
	b.writePtr = 0
	b.valid = 0
	b.pageTenant = b.pageTenant[:0]
	b.pageLPN = b.pageLPN[:0]
	m.stats.Retired++
}

// fullMark records block idx as a GC victim candidate for its owner. Call
// exactly when the block enters BlockFull state (owner -1 means the block
// has no collecting tenant, e.g. a sealed orphan; nothing to index).
func (m *Manager) fullMark(owner, idx int) {
	if owner < 0 {
		return
	}
	m.fullSets[owner][idx>>6] |= 1 << (uint(idx) & 63)
}

// fullUnmark drops block idx from its owner's candidate set. Call exactly
// when the block leaves BlockFull state (→ BlockGC), before owner is reset.
func (m *Manager) fullUnmark(owner, idx int) {
	if owner < 0 {
		return
	}
	m.fullSets[owner][idx>>6] &^= 1 << (uint(idx) & 63)
}

func (m *Manager) poolIndex(ch, chip int) int { return ch*m.cfg.ChipsPerChannel + chip }

func (m *Manager) blockIndex(id flash.BlockID) int {
	return (id.Channel*m.cfg.ChipsPerChannel+id.Chip)*m.cfg.BlocksPerChip + id.Block
}

func (m *Manager) blockID(idx int) flash.BlockID {
	bpc := m.cfg.BlocksPerChip
	chips := m.cfg.ChipsPerChannel
	return flash.BlockID{
		Channel: idx / (chips * bpc),
		Chip:    (idx / bpc) % chips,
		Block:   idx % bpc,
	}
}

// Stats returns a copy of the manager-wide counters.
func (m *Manager) Stats() Stats { return m.stats }

// FreeBlocks returns the number of free blocks on channel ch.
func (m *Manager) FreeBlocks(ch int) int { return m.freeCount[ch] }

// FreeFraction returns the fraction of blocks free across the channel set.
func (m *Manager) FreeFraction(channels []int) float64 {
	if len(channels) == 0 {
		return 0
	}
	perChannel := m.cfg.ChipsPerChannel * m.cfg.BlocksPerChip
	free := 0
	for _, ch := range channels {
		free += m.freeCount[ch]
	}
	return float64(free) / float64(len(channels)*perChannel)
}

// allocBlock pops a free block on channel ch, preferring the given chip
// and falling back to the channel's other chips. GC migration (forGC) may
// dip into the reserve; host allocation may not.
func (m *Manager) allocBlock(ch, chip int, forGC bool) (int, bool) {
	limit := 0
	if !forGC {
		limit = m.GCReserve
	}
	if m.freeCount[ch] <= limit {
		return -1, false
	}
	for off := 0; off < m.cfg.ChipsPerChannel; off++ {
		c := (chip + off) % m.cfg.ChipsPerChannel
		pool := m.freePools[m.poolIndex(ch, c)]
		if len(pool) == 0 {
			continue
		}
		idx := pool[len(pool)-1]
		m.freePools[m.poolIndex(ch, c)] = pool[:len(pool)-1]
		m.freeCount[ch]--
		return idx, true
	}
	return -1, false
}

// releaseBlock returns an erased block to its chip pool.
func (m *Manager) releaseBlock(idx int) {
	b := &m.blocks[idx]
	b.state = BlockFree
	b.owner = -1
	b.user = -1
	b.harvested = false
	b.gsb = -1
	b.writePtr = 0
	b.valid = 0
	// Truncate (keeping capacity for the next open) rather than nil: a
	// free block's page tables must be unreadable either way, and reuse
	// keeps the erase/reopen cycle allocation-free.
	b.pageTenant = b.pageTenant[:0]
	b.pageLPN = b.pageLPN[:0]
	p := m.poolIndex(b.id.Channel, b.id.Chip)
	m.freePools[p] = append(m.freePools[p], idx)
	m.freeCount[b.id.Channel]++
}

// acquireGCJob returns a recycled (or new) collection job.
func (m *Manager) acquireGCJob() *gcJob {
	j := m.gcFree
	if j == nil {
		return &gcJob{}
	}
	m.gcFree = j.link
	j.link = nil
	return j
}

// releaseGCJob puts a finished job back on the free list, keeping its
// pages scratch capacity.
func (m *Manager) releaseGCJob(j *gcJob) {
	j.t = nil
	j.b = nil
	j.link = m.gcFree
	m.gcFree = j
}

// LendBlocks pulls up to perChip clean blocks per chip from channel ch's
// free pool for a ghost superblock owned by home, striping across chips so
// the harvester gets the channel's full parallelism. It refuses to lend
// when doing so would drop the channel below minFreeFrac free blocks (the
// paper skips channels under 25% free). It returns the lent block indices
// (possibly empty).
func (m *Manager) LendBlocks(ch, perChip, home, gsbID int, minFreeFrac float64) []int {
	return m.LendBlocksInto(nil, ch, perChip, home, gsbID, minFreeFrac)
}

// LendBlocksInto is LendBlocks appending into dst, for per-window callers
// (the gSB manager) that reuse block-index storage. dst comes back
// unchanged when the channel fails the free floor.
func (m *Manager) LendBlocksInto(dst []int, ch, perChip, home, gsbID int, minFreeFrac float64) []int {
	perChannel := m.cfg.ChipsPerChannel * m.cfg.BlocksPerChip
	want := perChip * m.cfg.ChipsPerChannel
	if float64(m.freeCount[ch]-want)/float64(perChannel) < minFreeFrac {
		return dst
	}
	for chip := 0; chip < m.cfg.ChipsPerChannel; chip++ {
		for n := 0; n < perChip; n++ {
			idx, ok := m.allocBlock(ch, chip, false)
			if !ok {
				break
			}
			b := &m.blocks[idx]
			b.state = BlockLent
			b.owner = home
			b.user = -1
			b.harvested = true
			b.gsb = gsbID
			dst = append(dst, idx)
		}
	}
	return dst
}

// ReturnCleanBlock puts a lent, never-written block straight back into the
// free pool (gSB destruction for an unused gSB).
func (m *Manager) ReturnCleanBlock(idx int) {
	b := &m.blocks[idx]
	if b.state != BlockLent || b.writePtr != 0 {
		panic(fmt.Sprintf("ftl: ReturnCleanBlock on %v state=%d writePtr=%d", b.id, b.state, b.writePtr))
	}
	m.releaseBlock(idx)
}

// BlockStateOf exposes a block's state for tests and the gSB manager.
func (m *Manager) BlockStateOf(idx int) BlockState { return m.blocks[idx].state }

// BlockHarvested reports the HBT bit of a block.
func (m *Manager) BlockHarvested(idx int) bool { return m.blocks[idx].harvested }

// BlockValid returns the number of valid pages in a block.
func (m *Manager) BlockValid(idx int) int { return m.blocks[idx].valid }

// BlockIDOf returns the physical identity of block idx.
func (m *Manager) BlockIDOf(idx int) flash.BlockID { return m.blocks[idx].id }

// Tenants returns the registered tenants (indexed by tenant ID).
func (m *Manager) Tenants() []*Tenant { return m.tenants }

// BlockBytes returns the capacity of one erase block.
func (m *Manager) BlockBytes() int64 { return m.cfg.BlockBytes() }

// Config returns the flash geometry the manager was built for.
func (m *Manager) Config() flash.Config { return m.cfg }
