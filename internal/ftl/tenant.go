package ftl

import (
	"fmt"
	"math/bits"

	"repro/internal/flash"
	"repro/internal/sim"
)

// lane is one (channel, chip) write frontier. Own lanes refill themselves
// from the channel free pool; harvest lanes drain a fixed backlog of lent
// gSB blocks and close when it is exhausted.
type lane struct {
	ch, chip int
	active   int // block index, -1 when none
	backlog  []int
	own      bool // refills from the free pool
	gsb      int  // gSB id for harvest lanes, -1 otherwise
	closed   bool
}

// Tenant is the per-vSSD FTL: an LPN→PPA map, write lanes, and a GC state
// machine. LPNs are page-sized logical addresses local to the tenant.
type Tenant struct {
	mgr *Manager
	id  int
	// channels this tenant may allocate its own blocks from.
	channels []int
	// l2p maps LPN -> block index + page, encoded as int64
	// (blockIdx<<16 | page), or -1 when unmapped.
	l2p []int64

	lanes  []*lane
	cursor int
	// gcLanes are dedicated write frontiers for GC migration (one per
	// owned channel). They may allocate from the reserved blocks and are
	// never written by host traffic, so collection always has somewhere to
	// put valid data and can't be starved by the host racing it for pages.
	gcLanes  []*lane
	gcCursor int

	logicalPages int

	// GC state.
	gcJobs    int
	gcVictims int64
	// badBlocks counts owned blocks flagged for retirement (program/erase
	// failures) that GC has not yet retired; while non-zero, maybeGC keeps
	// collecting even when free space is plentiful.
	badBlocks int
	// gcTarget, when above the manager threshold, makes GC keep collecting
	// until the free fraction reaches it. The gSB manager raises it for
	// tenants that are lending blocks so the §3.6 free floor stays
	// satisfiable and harvesting supply doesn't starve.
	gcTarget float64

	// Fraction of logical pages currently mapped (for capacity stats).
	mappedPages int64

	stats Stats
}

// NewTenant registers a tenant with id (must equal len(mgr.Tenants()))
// owning the given channels and a logical space of logicalPages pages.
func NewTenant(mgr *Manager, id int, channels []int, logicalPages int) *Tenant {
	if id != len(mgr.tenants) {
		panic(fmt.Sprintf("ftl: tenant id %d out of order (have %d)", id, len(mgr.tenants)))
	}
	if logicalPages <= 0 {
		panic("ftl: non-positive logical size")
	}
	t := &Tenant{
		mgr:          mgr,
		id:           id,
		channels:     append([]int(nil), channels...),
		l2p:          make([]int64, logicalPages),
		logicalPages: logicalPages,
	}
	for i := range t.l2p {
		t.l2p[i] = -1
	}
	for _, ch := range channels {
		for chip := 0; chip < mgr.cfg.ChipsPerChannel; chip++ {
			t.lanes = append(t.lanes, &lane{ch: ch, chip: chip, active: -1, own: true, gsb: -1})
		}
		t.gcLanes = append(t.gcLanes, &lane{ch: ch, chip: 0, active: -1, own: true, gsb: -1})
	}
	mgr.tenants = append(mgr.tenants, t)
	mgr.fullSets = append(mgr.fullSets, make([]uint64, (len(mgr.blocks)+63)/64))
	return t
}

// ID returns the tenant id.
func (t *Tenant) ID() int { return t.id }

// Channels returns the channels the tenant allocates its own blocks from.
func (t *Tenant) Channels() []int { return t.channels }

// LogicalPages returns the tenant's logical capacity in pages.
func (t *Tenant) LogicalPages() int { return t.logicalPages }

// MappedPages returns how many logical pages currently hold data.
func (t *Tenant) MappedPages() int64 { return t.mappedPages }

// InGC reports whether a GC job is currently running for this tenant —
// the In_GC bit of the RL state.
func (t *Tenant) InGC() bool { return t.gcJobs > 0 }

// GCRuns returns the number of victim blocks collected so far.
func (t *Tenant) GCRuns() int64 { return t.gcVictims }

// BadBlocks returns the owned blocks flagged for retirement that GC has
// not yet retired.
func (t *Tenant) BadBlocks() int { return t.badBlocks }

// sealActive detaches block idx from any lane currently writing it (the
// fault path seals failed blocks so no further programs land on them).
func (t *Tenant) sealActive(idx int) {
	for _, ln := range t.lanes {
		if ln.active == idx {
			ln.active = -1
		}
	}
	for _, ln := range t.gcLanes {
		if ln.active == idx {
			ln.active = -1
		}
	}
}

// SetGCTarget raises (or clears, with 0) the tenant's free-fraction goal.
func (t *Tenant) SetGCTarget(frac float64) {
	t.gcTarget = frac
	t.maybeGC()
}

// Stats returns this tenant's program/erase accounting.
func (t *Tenant) Stats() Stats { return t.stats }

// FreeFraction returns the free-block fraction over the tenant's channels.
func (t *Tenant) FreeFraction() float64 { return t.mgr.FreeFraction(t.channels) }

// SetChannels replaces the tenant's owned channel set (used by the
// Adaptive and SSDKeeper baselines that re-partition channels). Lanes for
// removed channels are closed; lanes for added channels are created.
func (t *Tenant) SetChannels(channels []int) {
	t.channels = append([]int(nil), channels...)
	inSet := make(map[int]bool, len(channels))
	for _, ch := range channels {
		inSet[ch] = true
	}
	kept := t.lanes[:0]
	have := make(map[int]bool)
	for _, ln := range t.lanes {
		if !ln.own {
			kept = append(kept, ln)
			continue
		}
		if inSet[ln.ch] {
			kept = append(kept, ln)
			have[ln.ch] = true
			continue
		}
		// Dropped own lane: seal its open block so GC can reclaim it; the
		// mapped data stays readable until overwritten or collected.
		if ln.active >= 0 {
			b := &t.mgr.blocks[ln.active]
			b.state = BlockFull
			t.mgr.fullMark(b.owner, ln.active)
			ln.active = -1
		}
	}
	t.lanes = kept
	for _, ch := range channels {
		if !have[ch] {
			for chip := 0; chip < t.mgr.cfg.ChipsPerChannel; chip++ {
				t.lanes = append(t.lanes, &lane{ch: ch, chip: chip, active: -1, own: true, gsb: -1})
			}
		}
	}
	if t.cursor >= len(t.lanes) {
		t.cursor = 0
	}
	// Rebuild the GC frontiers the same way.
	keptGC := t.gcLanes[:0]
	haveGC := make(map[int]bool)
	for _, ln := range t.gcLanes {
		if inSet[ln.ch] {
			keptGC = append(keptGC, ln)
			haveGC[ln.ch] = true
			continue
		}
		if ln.active >= 0 {
			b := &t.mgr.blocks[ln.active]
			b.state = BlockFull
			t.mgr.fullMark(b.owner, ln.active)
			ln.active = -1
		}
	}
	t.gcLanes = keptGC
	for _, ch := range channels {
		if !haveGC[ch] {
			t.gcLanes = append(t.gcLanes, &lane{ch: ch, chip: 0, active: -1, own: true, gsb: -1})
		}
	}
	if t.gcCursor >= len(t.gcLanes) {
		t.gcCursor = 0
	}
}

// AddHarvestLanes attaches the lent blocks of a harvested gSB as write
// lanes. Blocks are grouped by (channel, chip).
func (t *Tenant) AddHarvestLanes(gsbID int, blocks []int) {
	group := make(map[[2]int][]int)
	var order [][2]int
	for _, idx := range blocks {
		b := &t.mgr.blocks[idx]
		if b.state != BlockLent {
			panic(fmt.Sprintf("ftl: harvesting non-lent block %v (state %d)", b.id, b.state))
		}
		b.user = t.id
		key := [2]int{b.id.Channel, b.id.Chip}
		if _, seen := group[key]; !seen {
			order = append(order, key)
		}
		group[key] = append(group[key], idx)
	}
	for _, key := range order {
		t.lanes = append(t.lanes, &lane{
			ch: key[0], chip: key[1], active: -1,
			backlog: group[key], own: false, gsb: gsbID,
		})
	}
}

// CloseHarvestLanes stops new writes into the given gSB's lanes and
// returns still-clean backlog blocks to the manager (they go back to the
// home pool). Blocks already written remain until GC reclaims them.
func (t *Tenant) CloseHarvestLanes(gsbID int) (cleanReturned []int) {
	kept := t.lanes[:0]
	for _, ln := range t.lanes {
		if ln.gsb != gsbID {
			kept = append(kept, ln)
			continue
		}
		for _, idx := range ln.backlog {
			b := &t.mgr.blocks[idx]
			b.user = -1
			t.mgr.ReturnCleanBlock(idx)
			cleanReturned = append(cleanReturned, idx)
		}
		if ln.active >= 0 {
			// A partially written block: seal it so GC can reclaim it.
			b := &t.mgr.blocks[ln.active]
			if b.writePtr == 0 {
				b.user = -1
				t.mgr.ReturnCleanBlock(ln.active)
				cleanReturned = append(cleanReturned, ln.active)
			} else {
				b.state = BlockFull
				t.mgr.fullMark(b.owner, ln.active)
			}
		}
	}
	t.lanes = kept
	if t.cursor >= len(t.lanes) && len(t.lanes) > 0 {
		t.cursor = 0
	}
	return cleanReturned
}

// HarvestLaneCount returns how many open harvest lanes the tenant has.
func (t *Tenant) HarvestLaneCount() int {
	n := 0
	for _, ln := range t.lanes {
		if !ln.own && !ln.closed {
			n++
		}
	}
	return n
}

// WriteChannels returns the distinct channels the tenant can currently
// write to (own + harvested), i.e. its effective bandwidth footprint.
func (t *Tenant) WriteChannels() []int {
	seen := make(map[int]bool)
	var out []int
	for _, ln := range t.lanes {
		if ln.closed {
			continue
		}
		if !seen[ln.ch] {
			seen[ln.ch] = true
			out = append(out, ln.ch)
		}
	}
	return out
}

// openLane ensures the lane has an open block, pulling from its backlog or
// the channel free pool. Reports false when the lane is (now) closed or
// allocation failed.
func (t *Tenant) openLane(ln *lane, forGC bool) bool {
	if ln.closed {
		return false
	}
	if ln.active >= 0 {
		return true
	}
	if ln.own {
		idx, ok := t.mgr.allocBlock(ln.ch, ln.chip, forGC)
		if !ok {
			return false
		}
		b := &t.mgr.blocks[idx]
		b.state = BlockOpen
		b.owner = t.id
		b.user = t.id
		b.writePtr = 0
		b.valid = 0
		t.initBlockPages(b)
		ln.active = idx
		return true
	}
	// Harvest lane: pop the backlog.
	for len(ln.backlog) > 0 {
		idx := ln.backlog[0]
		ln.backlog = ln.backlog[1:]
		b := &t.mgr.blocks[idx]
		if b.state != BlockLent {
			continue
		}
		b.state = BlockOpen
		b.user = t.id
		b.writePtr = 0
		b.valid = 0
		t.initBlockPages(b)
		ln.active = idx
		return true
	}
	ln.closed = true
	return false
}

func (t *Tenant) initBlockPages(b *blockInfo) {
	n := t.mgr.cfg.PagesPerBlock
	// Reuse the capacity from the block's previous erase cycle; only a
	// block's first-ever open allocates.
	if cap(b.pageTenant) >= n {
		b.pageTenant = b.pageTenant[:n]
		b.pageLPN = b.pageLPN[:n]
	} else {
		b.pageTenant = make([]int32, n)
		b.pageLPN = make([]int32, n)
	}
	for i := range b.pageTenant {
		b.pageTenant[i] = invalidPPA
	}
}

// AllocatePage maps lpn to a fresh physical page and returns its address.
// The old mapping (if any) is invalidated. forGC allocations may use the
// reserved blocks. ok is false when no space is available anywhere (the
// caller should back off and let GC run).
func (t *Tenant) AllocatePage(lpn int, forGC bool) (flash.PPA, bool) {
	if lpn < 0 || lpn >= t.logicalPages {
		panic(fmt.Sprintf("ftl: LPN %d out of range [0,%d)", lpn, t.logicalPages))
	}
	// GC migration writes go to the dedicated GC frontiers (which may use
	// the reserve); host writes use the regular striped lanes. A tenant
	// with no owned channels (pure harvester) falls back to its harvest
	// lanes for GC traffic.
	lanes, cursor := t.lanes, &t.cursor
	if forGC && len(t.gcLanes) > 0 {
		lanes, cursor = t.gcLanes, &t.gcCursor
	}
	if len(lanes) == 0 {
		return flash.PPA{}, false
	}
	for tries := 0; tries < len(lanes); tries++ {
		if *cursor >= len(lanes) {
			*cursor = 0
		}
		ln := lanes[*cursor]
		*cursor = (*cursor + 1) % len(lanes)
		if !t.openLane(ln, forGC) {
			continue
		}
		b := &t.mgr.blocks[ln.active]
		page := b.writePtr
		b.writePtr++
		t.invalidate(lpn)
		b.pageTenant[page] = int32(t.id)
		b.pageLPN[page] = int32(lpn)
		b.valid++
		t.l2p[lpn] = int64(ln.active)<<16 | int64(page)
		t.mappedPages++
		if b.writePtr == t.mgr.cfg.PagesPerBlock {
			b.state = BlockFull
			t.mgr.fullMark(b.owner, ln.active)
			ln.active = -1
		}
		t.maybeGC()
		return flash.PPA{Channel: b.id.Channel, Chip: b.id.Chip, Block: b.id.Block, Page: page}, true
	}
	t.maybeGC()
	return flash.PPA{}, false
}

// Lookup returns the physical address of lpn's data.
func (t *Tenant) Lookup(lpn int) (flash.PPA, bool) {
	if lpn < 0 || lpn >= t.logicalPages {
		return flash.PPA{}, false
	}
	enc := t.l2p[lpn]
	if enc < 0 {
		return flash.PPA{}, false
	}
	idx := int(enc >> 16)
	page := int(enc & 0xFFFF)
	id := t.mgr.blocks[idx].id
	return flash.PPA{Channel: id.Channel, Chip: id.Chip, Block: id.Block, Page: page}, true
}

// Trim unmaps lpn, invalidating its physical page.
func (t *Tenant) Trim(lpn int) {
	if lpn < 0 || lpn >= t.logicalPages {
		return
	}
	if t.l2p[lpn] >= 0 {
		t.invalidate(lpn)
		t.l2p[lpn] = -1
	}
}

// invalidate clears the physical page currently backing lpn (if any)
// without touching the l2p entry; callers overwrite or reset it.
func (t *Tenant) invalidate(lpn int) {
	enc := t.l2p[lpn]
	if enc < 0 {
		return
	}
	idx := int(enc >> 16)
	page := int(enc & 0xFFFF)
	b := &t.mgr.blocks[idx]
	if b.pageTenant[page] == int32(t.id) && b.pageLPN[page] == int32(lpn) {
		b.pageTenant[page] = invalidPPA
		b.valid--
		t.mappedPages--
	}
}

// maybeGC starts GC jobs when the tenant's channel set runs low on free
// blocks — below the lazy threshold fraction, or close enough to the host
// allocation reserve that writes are about to stall (which matters on the
// small devices used in tests). Up to GCConcurrency victims are collected
// in parallel; jobs re-arm themselves on completion.
func (t *Tenant) maybeGC() {
	if t.mgr.eng == nil || t.mgr.GCThreshold <= 0 {
		return
	}
	conc := t.mgr.GCConcurrency
	if conc < 1 {
		conc = 1
	}
	for t.gcJobs < conc {
		free := 0
		for _, ch := range t.channels {
			free += t.mgr.freeCount[ch]
		}
		nearReserve := len(t.channels) > 0 && free <= (t.mgr.GCReserve+1)*len(t.channels)
		goal := t.mgr.GCThreshold
		if t.gcTarget > goal {
			goal = t.gcTarget
		}
		if t.FreeFraction() > goal && !nearReserve && t.badBlocks == 0 {
			return
		}
		victim := t.pickVictim()
		if victim < 0 {
			return
		}
		t.mgr.rec.GCRun(t.id, victim, t.mgr.blocks[victim].valid, t.mgr.blocks[victim].harvested)
		t.mgr.blocks[victim].state = BlockGC
		t.mgr.fullUnmark(t.id, victim)
		t.gcJobs++
		t.mgr.stats.GCRuns++
		t.gcVictims++
		t.collect(victim)
	}
}

// gcPriority escalates collection above host traffic when free space is
// critically low; otherwise GC runs strictly in the background.
func (t *Tenant) gcPriority() int {
	if t.FreeFraction() < t.mgr.GCThreshold*0.6 {
		return PriorityHigh + 1
	}
	return PriorityGC
}

// pickVictim chooses the best Full block owned by this tenant: with
// HarvestedFirst, harvested/reclaimed blocks are strictly preferred (the
// §3.7 policy); ties and the rest order by fewest valid pages.
//
// Candidates come from the tenant's fullSets bitmap rather than a scan of
// the whole block table (victim selection was ~8% of figure-run CPU).
// Words and bits iterate in ascending block-index order and the comparison
// stays a strict less-than, so the chosen victim — including the
// lowest-index tie-break — is identical to the old linear scan's.
func (t *Tenant) pickVictim() int {
	best := -1
	bestClass, bestValid := 1<<30, 1<<30
	full := t.mgr.fullSets[t.id]
	for w, word := range full {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			// Set membership guarantees state == BlockFull && owner == t.id
			// (pinned by TestPickVictimMatchesScan).
			b := &t.mgr.blocks[i]
			// A fully valid regular block yields no free pages; collecting
			// it would be pure write amplification (and can livelock GC
			// re-arming). A fully valid *harvested* block is still worth
			// collecting: its data migrates into the harvester's own space
			// and the block returns to this tenant's pool. A *bad* block
			// must be collected no matter what — its surviving pages need
			// to move off the failing media before it is retired.
			if b.valid >= t.mgr.cfg.PagesPerBlock && !b.harvested && !b.bad {
				continue
			}
			class := 1
			if t.mgr.HarvestedFirst && b.harvested {
				class = 0
			}
			if b.bad {
				class = -1
			}
			if class < bestClass || (class == bestClass && b.valid < bestValid) {
				bestClass, bestValid = class, b.valid
				best = i
			}
		}
	}
	return best
}

// gcJob is the state of one victim collection: the valid-page worklist and
// the migration pipeline cursor. Jobs are recycled through the Manager's
// free list (keeping the pages scratch), and every pipeline stage is a
// package-level handler with the job riding in the op's Ctx slot, so a
// steady-state GC run performs no per-page allocations.
type gcJob struct {
	t           *Tenant
	victim      int
	b           *blockInfo
	pages       []int // valid page indices at job start (reused scratch)
	next        int   // cursor into pages
	outstanding int   // migrations in flight
	width       int
	link        *gcJob // manager free-list link
}

// collect migrates the victim's valid pages (reads + re-programs through
// the data owner's allocator, which lands harvested data in the
// harvester's own space per §3.7) and then erases it. Migrations are
// pipelined up to GCPipeline pages deep, and the whole job escalates above
// host priority when free space is critically low.
func (t *Tenant) collect(victim int) {
	b := &t.mgr.blocks[victim]
	j := t.mgr.acquireGCJob()
	j.t = t
	j.victim = victim
	j.b = b
	j.pages = j.pages[:0]
	for p := 0; p < b.writePtr; p++ {
		if b.pageTenant[p] != invalidPPA {
			j.pages = append(j.pages, p)
		}
	}
	j.next = 0
	j.outstanding = 0
	j.width = t.mgr.GCPipeline
	if j.width < 1 {
		j.width = 1
	}
	j.launch()
	if j.outstanding == 0 {
		t.eraseVictim(j)
	}
}

// launch tops the migration pipeline back up to width, skipping pages a
// host overwrite invalidated since the job started.
func (j *gcJob) launch() {
	for j.outstanding < j.width && j.next < len(j.pages) {
		p := j.pages[j.next]
		j.next++
		if j.b.pageTenant[p] == invalidPPA {
			continue
		}
		j.outstanding++
		j.migrate(p)
	}
}

// migrate issues the read half of one page migration. Priority is
// re-evaluated per operation so a job started in the background escalates
// once free space turns critical.
func (j *gcJob) migrate(p int) {
	t := j.t
	id := j.b.id
	t.mgr.stats.GCReads++
	op := t.mgr.dev.AcquireOp()
	op.Kind = flash.OpRead
	op.Addr = flash.PPA{Channel: id.Channel, Chip: id.Chip, Block: id.Block, Page: p}
	op.Tenant = t.id
	op.Priority = t.gcPriority()
	op.Done = gcReadDone
	op.Ctx = j
	op.CtxI = int64(p)
	t.mgr.Submit(op)
}

// finish retires one migration (or skipped page) and either refills the
// pipeline or, when the worklist has drained, erases the victim.
func (j *gcJob) finish() {
	j.outstanding--
	if j.next >= len(j.pages) && j.outstanding == 0 {
		j.t.eraseVictim(j)
		return
	}
	j.launch()
}

// gcReadDone: the migration read finished; try to program the data to its
// new home. ctx is the *gcJob, ctxI the victim page index. Reads never
// report a failure status (retry latency is folded into the cell time).
func gcReadDone(ctx any, ctxI int64, _ sim.Time, _ flash.OpStatus) {
	gcTryProgram(sim.EventArg{P: ctx, I: ctxI}, 0)
}

// gcTryProgram allocates a destination page and issues the program. The
// page may have been invalidated by a host overwrite racing the migration,
// so the mapping is re-checked on entry and on every retry. Allocation
// retries until space exists (only a pathologically full device ever waits
// here) — the victim must never be erased while it still holds valid data.
func gcTryProgram(arg sim.EventArg, _ sim.Time) {
	j := arg.P.(*gcJob)
	p := int(arg.I)
	b := j.b
	if b.pageTenant[p] == invalidPPA {
		j.finish()
		return
	}
	// The victim is in BlockGC state and cannot be rewritten, so the data
	// owner and LPN are stable across retries.
	dataTenant := j.t.mgr.tenants[b.pageTenant[p]]
	lpn := int(b.pageLPN[p])
	if dst, ok := dataTenant.AllocatePage(lpn, true); ok {
		j.programMigrated(dataTenant, lpn, dst, j.t.gcPriority())
		return
	}
	j.t.mgr.eng.ScheduleEvent(sim.Millisecond, gcTryProgram, arg)
}

func (j *gcJob) programMigrated(dataTenant *Tenant, lpn int, dst flash.PPA, prio int) {
	t := j.t
	t.mgr.stats.GCPrograms++
	dataTenant.stats.GCPrograms++
	op := t.mgr.dev.AcquireOp()
	op.Kind = flash.OpProgram
	op.Addr = dst
	op.Tenant = dataTenant.id
	op.Priority = prio
	op.Done = gcProgramDone
	op.Ctx = j
	// Carry (data tenant, LPN) so a program failure can re-issue the
	// migration without touching the (possibly recycled) op.
	op.CtxI = int64(dataTenant.id)<<32 | int64(lpn)
	t.mgr.Submit(op)
}

// gcProgramDone finishes one migration program. On a program failure the
// FTL has already repaired the mapping (OnFault runs first), so the lost
// page is re-migrated through gcRetryProgram; the job stays outstanding
// until the page lands somewhere or a host write supersedes it.
func gcProgramDone(ctx any, ctxI int64, _ sim.Time, status flash.OpStatus) {
	if status == flash.StatusProgramFail {
		gcRetryProgram(sim.EventArg{P: ctx, I: ctxI}, 0)
		return
	}
	ctx.(*gcJob).finish()
}

// gcRetryProgram re-issues a failed GC migration for the (tenant, LPN)
// packed in arg.I. If the LPN has been remapped since the failure, a
// racing host write owns fresher data and the migration is dropped;
// otherwise a new destination page is allocated (retrying on allocation
// stall like gcTryProgram) and programmed.
func gcRetryProgram(arg sim.EventArg, _ sim.Time) {
	j := arg.P.(*gcJob)
	m := j.t.mgr
	dataTenant := m.tenants[int(arg.I>>32)]
	lpn := int(arg.I & 0xFFFFFFFF)
	if dataTenant.l2p[lpn] != -1 {
		m.stats.GCRetrySkips++
		j.finish()
		return
	}
	if dst, ok := dataTenant.AllocatePage(lpn, true); ok {
		m.stats.GCRetryPrograms++
		j.programMigrated(dataTenant, lpn, dst, j.t.gcPriority())
		return
	}
	m.eng.ScheduleEvent(sim.Millisecond, gcRetryProgram, arg)
}

// eraseVictim erases the (now fully invalid) victim and returns it to the
// free pool, clearing the HBT bit (§3.7: "blocks are marked as regular
// after erased by GC").
func (t *Tenant) eraseVictim(j *gcJob) {
	id := j.b.id
	t.mgr.stats.Erases++
	t.stats.Erases++
	op := t.mgr.dev.AcquireOp()
	op.Kind = flash.OpErase
	op.Addr = flash.PPA{Channel: id.Channel, Chip: id.Chip, Block: id.Block}
	op.Tenant = t.id
	op.Priority = PriorityGC
	op.Done = gcEraseDone
	op.Ctx = j
	t.mgr.Submit(op)
}

// gcEraseDone retires the whole job: the block returns to the free pool —
// or, when the erase failed or the block was already flagged bad, to the
// bad-block table — the gSB manager is notified either way (a retired
// gSB block still completes the gSB's pending-block accounting), and GC
// re-arms. The job is recycled first so a re-armed collection reuses it.
func gcEraseDone(ctx any, _ int64, _ sim.Time, status flash.OpStatus) {
	j := ctx.(*gcJob)
	t, victim, gsbID := j.t, j.victim, j.b.gsb
	bad := j.b.bad || status == flash.StatusEraseFail
	m := t.mgr
	m.releaseGCJob(j)
	if bad {
		m.retireBlock(victim)
	} else {
		m.releaseBlock(victim)
	}
	if m.onBlockErased != nil {
		m.onBlockErased(victim, gsbID)
	}
	t.gcJobs--
	t.maybeGC()
}

// RecordHostProgram bumps host-write accounting (called by the vSSD layer
// when it submits a host program for this tenant).
func (t *Tenant) RecordHostProgram() {
	t.stats.HostPrograms++
	t.mgr.stats.HostPrograms++
}

// Prefill maps fillFrac of the logical space instantly (no simulated I/O),
// overwriting overwriteFrac of what it wrote so GC has invalid pages to
// reclaim. It mirrors the paper's warm-up ("consume at least 50% of the
// free blocks").
func (t *Tenant) Prefill(fillFrac, overwriteFrac float64, rng *sim.RNG) error {
	if fillFrac < 0 || fillFrac > 1 || overwriteFrac < 0 || overwriteFrac > 1 {
		return fmt.Errorf("ftl: prefill fractions out of range")
	}
	// Prefill happens at setup time, before workloads are scheduled, so it
	// may drain the engine to let GC reclaim space when allocation stalls.
	alloc := func(lpn int) error {
		if _, ok := t.AllocatePage(lpn, false); ok {
			return nil
		}
		for try := 0; try < 64; try++ {
			t.mgr.eng.Run()
			if _, ok := t.AllocatePage(lpn, false); ok {
				return nil
			}
		}
		return fmt.Errorf("ftl: prefill ran out of space at lpn %d", lpn)
	}
	n := int(float64(t.logicalPages) * fillFrac)
	for lpn := 0; lpn < n; lpn++ {
		if err := alloc(lpn); err != nil {
			return err
		}
	}
	rewrites := int(float64(n) * overwriteFrac)
	for i := 0; i < rewrites; i++ {
		if err := alloc(rng.Intn(n)); err != nil {
			return err
		}
	}
	return nil
}
