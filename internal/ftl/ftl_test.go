package ftl

import (
	"testing"
	"testing/quick"

	"repro/internal/flash"
	"repro/internal/sim"
)

func smallConfig() flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.BlocksPerChip = 16
	c.PagesPerBlock = 8
	return c
}

func newTestMgr(t *testing.T, cfg flash.Config) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	dev := flash.NewDevice(eng, cfg)
	return eng, NewManager(eng, dev)
}

func TestBlockIndexRoundTrip(t *testing.T) {
	_, m := newTestMgr(t, smallConfig())
	for i := range m.blocks {
		id := m.blockID(i)
		if m.blockIndex(id) != i {
			t.Fatalf("round trip failed for %d -> %v", i, id)
		}
	}
}

func TestAllBlocksStartFree(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	perChannel := cfg.ChipsPerChannel * cfg.BlocksPerChip
	for ch := 0; ch < cfg.Channels; ch++ {
		if m.FreeBlocks(ch) != perChannel {
			t.Fatalf("channel %d free = %d, want %d", ch, m.FreeBlocks(ch), perChannel)
		}
	}
	if got := m.FreeFraction([]int{0, 1}); got != 1.0 {
		t.Fatalf("free fraction = %v, want 1", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, m := newTestMgr(t, smallConfig())
	tn := NewTenant(m, 0, []int{0, 1}, 256)
	ppa, ok := tn.AllocatePage(42, false)
	if !ok {
		t.Fatal("allocation failed on empty device")
	}
	got, ok := tn.Lookup(42)
	if !ok || got != ppa {
		t.Fatalf("lookup = %v/%v, want %v", got, ok, ppa)
	}
	if _, ok := tn.Lookup(41); ok {
		t.Fatal("unmapped LPN must miss")
	}
}

func TestOverwriteInvalidatesOldPage(t *testing.T) {
	_, m := newTestMgr(t, smallConfig())
	tn := NewTenant(m, 0, []int{0}, 256)
	first, _ := tn.AllocatePage(7, false)
	second, _ := tn.AllocatePage(7, false)
	if first == second {
		t.Fatal("out-of-place update must pick a new page")
	}
	got, _ := tn.Lookup(7)
	if got != second {
		t.Fatalf("lookup returns stale page: %v", got)
	}
	firstIdx := m.blockIndex(first.BlockOf())
	// The page in the first block must be invalid now.
	b := &m.blocks[firstIdx]
	if b.pageTenant[first.Page] != invalidPPA {
		t.Fatal("old page still marked valid")
	}
	if tn.MappedPages() != 1 {
		t.Fatalf("mapped pages = %d, want 1", tn.MappedPages())
	}
}

func TestWritesStripeAcrossChannels(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0, 1}, 256)
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		ppa, ok := tn.AllocatePage(i, false)
		if !ok {
			t.Fatal("alloc failed")
		}
		seen[ppa.Channel] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("writes used channels %v, want both", seen)
	}
}

func TestTrim(t *testing.T) {
	_, m := newTestMgr(t, smallConfig())
	tn := NewTenant(m, 0, []int{0}, 64)
	tn.AllocatePage(3, false)
	tn.Trim(3)
	if _, ok := tn.Lookup(3); ok {
		t.Fatal("trimmed LPN must be unmapped")
	}
	if tn.MappedPages() != 0 {
		t.Fatalf("mapped = %d after trim", tn.MappedPages())
	}
	tn.Trim(3)    // double trim is a no-op
	tn.Trim(9999) // out of range is a no-op
	tn.Trim(-1)   // negative is a no-op
}

func TestCapacityExhaustionRespectsReserve(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.BlocksPerChip = 4
	cfg.PagesPerBlock = 4
	eng, m := newTestMgr(t, cfg)
	m.GCThreshold = 0 // keep GC out of this test
	tn := NewTenant(m, 0, []int{0}, 64)
	writable := 0
	for i := 0; i < 64; i++ {
		if _, ok := tn.AllocatePage(i, false); ok {
			writable++
		}
	}
	// 4 blocks, reserve 2 → host can fill 2 blocks = 8 pages.
	if writable != 8 {
		t.Fatalf("host wrote %d pages, want 8 (reserve respected)", writable)
	}
	// GC allocation may use the reserve.
	if _, ok := tn.AllocatePage(60, true); !ok {
		t.Fatal("GC allocation must reach the reserve")
	}
	_ = eng
}

func TestGCReclaimsInvalidBlocks(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.BlocksPerChip = 10
	cfg.PagesPerBlock = 4
	eng, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0}, 64)
	// Overwrite the same 4 LPNs repeatedly: every filled block becomes fully
	// invalid, so GC (erase-only) keeps reclaiming and writes never stall.
	for round := 0; round < 40; round++ {
		for lpn := 0; lpn < 4; lpn++ {
			if _, ok := tn.AllocatePage(lpn, false); !ok {
				// Let queued GC events run, then retry once.
				eng.Run()
				if _, ok2 := tn.AllocatePage(lpn, false); !ok2 {
					t.Fatalf("write stalled at round %d with GC available", round)
				}
			}
		}
		eng.Run()
	}
	if m.Stats().Erases == 0 {
		t.Fatal("GC never erased anything")
	}
	if m.Stats().GCPrograms != 0 {
		t.Fatalf("fully-invalid victims should need no migration, got %d", m.Stats().GCPrograms)
	}
	// All data must still be readable.
	for lpn := 0; lpn < 4; lpn++ {
		if _, ok := tn.Lookup(lpn); !ok {
			t.Fatalf("LPN %d lost after GC", lpn)
		}
	}
}

func TestGCMigratesValidPages(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.BlocksPerChip = 8
	cfg.PagesPerBlock = 4
	eng, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0}, 64)
	write := func(lpn int) {
		if _, ok := tn.AllocatePage(lpn, false); !ok {
			eng.Run()
			if _, ok := tn.AllocatePage(lpn, false); !ok {
				t.Fatalf("stall writing %d", lpn)
			}
		}
	}
	// Live working set that never gets overwritten...
	live := 8
	for lpn := 0; lpn < live; lpn++ {
		write(lpn)
	}
	// ...then interleave fresh live pages with churn on LPN 0, so every
	// victim block holds a mix of valid (fresh) and invalid (stale 0) pages
	// and GC must migrate.
	for round := 0; round < 12; round++ {
		write(live + round)
		write(0)
		eng.Run()
	}
	eng.Run()
	if m.Stats().GCPrograms == 0 {
		t.Fatal("expected GC to migrate valid pages")
	}
	for lpn := 0; lpn < live+12; lpn++ {
		if _, ok := tn.Lookup(lpn); !ok {
			t.Fatalf("LPN %d lost after migration", lpn)
		}
	}
	if st := m.Stats(); st.GCReads < st.GCPrograms {
		t.Fatalf("every migrated page needs a read: reads=%d programs=%d", st.GCReads, st.GCPrograms)
	}
}

// Property: after an arbitrary sequence of writes and trims, every mapped
// LPN resolves to a distinct physical page and the per-block valid counts
// equal the number of LPNs mapping into the block.
func TestMappingConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := smallConfig()
		_, m := newTestMgr(t, cfg)
		m.GCThreshold = 0 // isolate mapping logic from GC
		tn := NewTenant(m, 0, []int{0, 1}, 128)
		for _, o := range ops {
			lpn := int(o % 128)
			if o&0x8000 != 0 {
				tn.Trim(lpn)
			} else {
				tn.AllocatePage(lpn, false) // may fail when full; fine
			}
		}
		// Check 1: distinct physical pages.
		seen := make(map[flash.PPA]int)
		mapped := int64(0)
		for lpn := 0; lpn < 128; lpn++ {
			ppa, ok := tn.Lookup(lpn)
			if !ok {
				continue
			}
			mapped++
			if prev, dup := seen[ppa]; dup {
				t.Logf("LPNs %d and %d alias %v", prev, lpn, ppa)
				return false
			}
			seen[ppa] = lpn
		}
		if mapped != tn.MappedPages() {
			return false
		}
		// Check 2: block valid counts match mapping.
		validByBlock := make(map[int]int)
		for ppa := range seen {
			validByBlock[m.blockIndex(ppa.BlockOf())]++
		}
		for i := range m.blocks {
			if m.blocks[i].valid != validByBlock[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLendBlocks(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	NewTenant(m, 0, []int{0}, 64)
	lent := m.LendBlocks(0, 2, 0, 7, 0.25)
	if len(lent) != 2*cfg.ChipsPerChannel {
		t.Fatalf("lent %d blocks, want %d", len(lent), 2*cfg.ChipsPerChannel)
	}
	for _, idx := range lent {
		if m.BlockStateOf(idx) != BlockLent {
			t.Fatalf("block %d not lent", idx)
		}
		if !m.BlockHarvested(idx) {
			t.Fatal("lent block must have HBT bit set")
		}
	}
	// Free count dropped accordingly.
	perChannel := cfg.ChipsPerChannel * cfg.BlocksPerChip
	if m.FreeBlocks(0) != perChannel-len(lent) {
		t.Fatalf("free = %d", m.FreeBlocks(0))
	}
}

func TestLendBlocksRespectsFloor(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.BlocksPerChip = 8
	_, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0}, 64)
	// Consume blocks until only 3/8 free (37%).
	for lpn := 0; ; lpn++ {
		if m.FreeBlocks(0) <= 3 {
			break
		}
		tn.AllocatePage(lpn%64, false)
	}
	// Lending 2 would leave 1/8 = 12.5% < 25%: must refuse.
	if lent := m.LendBlocks(0, 2, 0, 1, 0.25); lent != nil {
		t.Fatalf("lend should refuse below floor, got %d blocks", len(lent))
	}
	// Lending 1 leaves 2/8 = 25%: allowed.
	if lent := m.LendBlocks(0, 1, 0, 1, 0.25); len(lent) != 1 {
		t.Fatalf("lend of 1 should succeed, got %v", lent)
	}
}

func TestHarvestLanesWriteOnForeignChannel(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	home := NewTenant(m, 0, []int{0}, 64)
	harv := NewTenant(m, 1, []int{1}, 64)
	_ = home
	lent := m.LendBlocks(0, 1, 0, 3, 0.0)
	if len(lent) == 0 {
		t.Fatal("no blocks lent")
	}
	harv.AddHarvestLanes(3, lent)
	if harv.HarvestLaneCount() != cfg.ChipsPerChannel {
		t.Fatalf("harvest lanes = %d", harv.HarvestLaneCount())
	}
	chans := harv.WriteChannels()
	if len(chans) != 2 {
		t.Fatalf("write channels = %v, want own+harvested", chans)
	}
	// Writes should hit channel 0 (home's channel) some of the time.
	hit := false
	for lpn := 0; lpn < 16; lpn++ {
		ppa, ok := harv.AllocatePage(lpn, false)
		if !ok {
			t.Fatal("alloc failed")
		}
		if ppa.Channel == 0 {
			hit = true
		}
	}
	if !hit {
		t.Fatal("harvester never wrote to the harvested channel")
	}
}

func TestCloseHarvestLanesReturnsCleanBlocks(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	NewTenant(m, 0, []int{0}, 64)
	// The harvester owns no channels, so its only lanes are harvest lanes
	// and the single write below is guaranteed to dirty a lent block.
	harv := NewTenant(m, 1, nil, 64)
	before := m.FreeBlocks(0)
	lent := m.LendBlocks(0, 1, 0, 5, 0.0)
	harv.AddHarvestLanes(5, lent)
	// Write one page so exactly one block is dirty.
	if _, ok := harv.AllocatePage(0, false); !ok {
		t.Fatal("harvest write failed")
	}
	returned := harv.CloseHarvestLanes(5)
	if len(returned) != len(lent)-1 {
		t.Fatalf("returned %d clean blocks, want %d", len(returned), len(lent)-1)
	}
	if m.FreeBlocks(0) != before-1 {
		t.Fatalf("free on home channel = %d, want %d", m.FreeBlocks(0), before-1)
	}
	if harv.HarvestLaneCount() != 0 {
		t.Fatal("harvest lanes must be gone")
	}
	// The dirty block is sealed for GC.
	dirty := -1
	for _, idx := range lent {
		if m.BlockStateOf(idx) == BlockFull {
			dirty = idx
		}
	}
	if dirty < 0 {
		t.Fatal("dirty block not sealed as Full")
	}
	if !m.BlockHarvested(dirty) {
		t.Fatal("dirty block must keep HBT bit until erased")
	}
}

func TestHarvestedFirstVictimSelection(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.BlocksPerChip = 8
	cfg.PagesPerBlock = 4
	_, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0}, 64)
	harv := NewTenant(m, 1, []int{}, 64)
	// Make a regular full block with zero valid pages (cheapest victim).
	for lpn := 0; lpn < 4; lpn++ {
		tn.AllocatePage(lpn, false)
	}
	for lpn := 0; lpn < 4; lpn++ {
		tn.AllocatePage(lpn, false) // invalidates first block
	}
	// Make a harvested full block with some valid pages (more expensive).
	lent := m.LendBlocks(0, 1, 0, 2, 0.0)
	harv.AddHarvestLanes(2, lent)
	for lpn := 0; lpn < 4; lpn++ {
		harv.AllocatePage(lpn, false)
	}
	victim := tn.pickVictim()
	if victim < 0 {
		t.Fatal("no victim found")
	}
	if !m.BlockHarvested(victim) {
		t.Fatal("HarvestedFirst must pick the harvested block despite higher valid count")
	}
	m.HarvestedFirst = false
	victim = tn.pickVictim()
	if m.BlockHarvested(victim) {
		t.Fatal("without HarvestedFirst the zero-valid regular block wins")
	}
}

func TestGCErasedHookFires(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.BlocksPerChip = 6
	cfg.PagesPerBlock = 4
	eng, m := newTestMgr(t, cfg)
	var hookBlocks []int
	var hookGSBs []int
	m.OnBlockErased(func(idx, gsbID int) {
		hookBlocks = append(hookBlocks, idx)
		hookGSBs = append(hookGSBs, gsbID)
	})
	tn := NewTenant(m, 0, []int{0}, 64)
	for round := 0; round < 30; round++ {
		for lpn := 0; lpn < 4; lpn++ {
			if _, ok := tn.AllocatePage(lpn, false); !ok {
				eng.Run()
				tn.AllocatePage(lpn, false)
			}
		}
		eng.Run()
	}
	if len(hookBlocks) == 0 {
		t.Fatal("erase hook never fired")
	}
	for _, g := range hookGSBs {
		if g != -1 {
			t.Fatalf("regular block erased with gsb id %d", g)
		}
	}
}

func TestPrefill(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0, 1}, 256)
	rng := sim.NewRNG(1)
	if err := tn.Prefill(0.5, 0.25, rng); err != nil {
		t.Fatal(err)
	}
	if tn.MappedPages() != 128 {
		t.Fatalf("mapped = %d, want 128", tn.MappedPages())
	}
	if tn.FreeFraction() >= 1.0 {
		t.Fatal("prefill consumed no blocks")
	}
	if err := tn.Prefill(2, 0, rng); err == nil {
		t.Fatal("out-of-range fraction must error")
	}
}

func TestSetChannelsSealsDroppedLanes(t *testing.T) {
	cfg := smallConfig()
	_, m := newTestMgr(t, cfg)
	m.GCThreshold = 0
	tn := NewTenant(m, 0, []int{0, 1}, 256)
	for lpn := 0; lpn < 4; lpn++ {
		tn.AllocatePage(lpn, false)
	}
	tn.SetChannels([]int{1})
	// No open blocks may remain on channel 0.
	for i := range m.blocks {
		b := &m.blocks[i]
		if b.id.Channel == 0 && b.state == BlockOpen {
			t.Fatal("dropped lane left an open block")
		}
	}
	// New writes go only to channel 1.
	for lpn := 10; lpn < 20; lpn++ {
		ppa, ok := tn.AllocatePage(lpn, false)
		if !ok {
			t.Fatal("alloc failed")
		}
		if ppa.Channel != 0 && ppa.Channel != 1 {
			t.Fatal("bogus channel")
		}
		if ppa.Channel == 0 {
			t.Fatal("write landed on dropped channel")
		}
	}
	// Old data is still readable.
	if _, ok := tn.Lookup(0); !ok {
		t.Fatal("data lost after channel change")
	}
	// Growing back works too.
	tn.SetChannels([]int{0, 1})
	seen0 := false
	for lpn := 30; lpn < 40; lpn++ {
		ppa, _ := tn.AllocatePage(lpn, false)
		if ppa.Channel == 0 {
			seen0 = true
		}
	}
	if !seen0 {
		t.Fatal("re-added channel unused")
	}
}

func TestWriteAmplificationIdentity(t *testing.T) {
	var s Stats
	if s.WriteAmplification() != 1 {
		t.Fatal("WA of nothing must be 1")
	}
	s.HostPrograms = 100
	s.GCPrograms = 25
	if got := s.WriteAmplification(); got != 1.25 {
		t.Fatalf("WA = %v, want 1.25", got)
	}
}

// pickVictimScan is the reference victim selection: the pre-index linear
// scan over the whole block table. pickVictim must match it exactly,
// including the lowest-index tie-break.
func pickVictimScan(tn *Tenant) int {
	best := -1
	bestKey := [2]int{1 << 30, 1 << 30}
	for i := range tn.mgr.blocks {
		b := &tn.mgr.blocks[i]
		if b.state != BlockFull || b.owner != tn.id {
			continue
		}
		if b.valid >= tn.mgr.cfg.PagesPerBlock && !b.harvested && !b.bad {
			continue
		}
		class := 1
		if tn.mgr.HarvestedFirst && b.harvested {
			class = 0
		}
		if b.bad {
			class = -1
		}
		key := [2]int{class, b.valid}
		if key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
			bestKey = key
			best = i
		}
	}
	return best
}

// checkFullSets asserts the candidate bitmaps hold exactly the blocks with
// state == BlockFull && owner == t, for every tenant.
func checkFullSets(t *testing.T, m *Manager) {
	t.Helper()
	for tid := range m.tenants {
		set := m.fullSets[tid]
		for i := range m.blocks {
			b := &m.blocks[i]
			want := b.state == BlockFull && b.owner == tid
			got := set[i>>6]&(1<<(uint(i)&63)) != 0
			if got != want {
				t.Fatalf("fullSets[%d] bit %d = %v, want %v (state=%d owner=%d)",
					tid, i, got, want, b.state, b.owner)
			}
		}
	}
}

// Property: through a churny mixed workload — overwrites, trims, GC,
// lending/harvesting, channel re-partitioning, and injected bad blocks —
// the Full-block candidate index stays exact and pickVictim returns the
// same block the reference whole-table scan would.
func TestPickVictimMatchesScan(t *testing.T) {
	cfg := smallConfig()
	cfg.PagesPerBlock = 4
	eng, m := newTestMgr(t, cfg)
	tn := NewTenant(m, 0, []int{0}, 128)
	harv := NewTenant(m, 1, []int{1}, 128)
	rng := sim.NewRNG(42)
	check := func() {
		checkFullSets(t, m)
		for _, tenant := range m.tenants {
			if got, want := tenant.pickVictim(), pickVictimScan(tenant); got != want {
				t.Fatalf("tenant %d pickVictim = %d, want %d", tenant.id, got, want)
			}
		}
	}
	// Lend one chip-stripe of tenant 0's channel to the harvester.
	lent := m.LendBlocks(0, 1, 0, 1, 0.0)
	harv.AddHarvestLanes(1, lent)
	bad := 0
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0:
			tn.Trim(rng.Intn(128))
		case 1:
			harv.AllocatePage(rng.Intn(128), false)
		case 2:
			// Flag a random open/full block bad (exercises markBad's
			// Open→Full seal and the class -1 victims). Capped so retired
			// capacity can't starve GC migration into a retry livelock.
			i := rng.Intn(len(m.blocks))
			if st := m.blocks[i].state; bad < 4 && (st == BlockOpen || st == BlockFull) {
				m.markBad(i)
				bad++
			}
		case 3:
			eng.Run()
		default:
			tn.AllocatePage(rng.Intn(128), false)
		}
		check()
	}
	// Drain GC, close the harvest lanes (seals dirty lent blocks), and
	// re-partition the harvester's channels (seals dropped-lane blocks).
	eng.Run()
	harv.CloseHarvestLanes(1)
	check()
	harv.SetChannels([]int{})
	check()
	m.HarvestedFirst = false
	check()
}

func TestTenantIDOrderEnforced(t *testing.T) {
	_, m := newTestMgr(t, smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order tenant id must panic")
		}
	}()
	NewTenant(m, 5, []int{0}, 64)
}
