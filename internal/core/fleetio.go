package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
)

// HarvestLevels are the channel counts each harvest-related action head
// can request (head index → channels). Level 0 means "none".
var HarvestLevels = []int{0, 1, 2, 4, 8}

// PriorityLevels maps the Set_Priority head to ftl scheduling levels
// (low/medium/high).
var PriorityLevels = []int{1, 2, 3}

// Mode selects the Figure 15 reward variants.
type Mode uint8

// FleetIO reward modes.
const (
	// ModeFull is FleetIO proper: per-type α and β-mixed rewards.
	ModeFull Mode = iota
	// ModeUnifiedGlobal uses the unified α=0.01 for every agent (keeps β).
	ModeUnifiedGlobal
	// ModeCustomizedLocal keeps per-type α but sets β=1 (selfish agents).
	ModeCustomizedLocal
)

func (m Mode) String() string {
	switch m {
	case ModeUnifiedGlobal:
		return "FleetIO-Unified-Global"
	case ModeCustomizedLocal:
		return "FleetIO-Customized-Local"
	default:
		return "FleetIO"
	}
}

// FleetIOConfig configures the policy.
type FleetIOConfig struct {
	Mode           Mode
	Beta           float64 // default 0.6
	SLOVioGuar     float64 // default 0.01
	HistoryWindows int     // default 3
	Train          bool    // online fine-tuning
	TrainEvery     int     // windows between PPO updates (paper: 10)
	TypeEvery      int     // windows between workload re-typing (0 = off)
	Seed           int64

	// Pretrained, when set, seeds every agent with a copy of this network.
	Pretrained *nn.ActorCritic
	// ShareModel makes all agents train one shared network (pretraining
	// mode); otherwise each agent fine-tunes its own copy.
	ShareModel bool
	// GreedyCollect makes training-mode action selection greedy
	// (ActGreedyEval) while still recording transitions; the trainer's
	// held-out eval episodes use it to score a frozen policy snapshot.
	GreedyCollect bool

	// ScalarRL disables the batched RL kernels: Decide falls back to
	// per-agent scalar inference and PPO trains with per-sample network
	// calls. Both paths are bit-identical by construction; the flag lets
	// CI (scripts/check.sh) prove it on full figure runs and serves as an
	// escape hatch. Applied after RL-default resolution, so it works even
	// when cfg.RL is left zero.
	ScalarRL bool

	// ErrorRateState appends the per-tenant NAND error-rate feature
	// (write retries / requests per window) to every window state, used
	// by fault-injection scenarios. It widens the network input, so it is
	// incompatible with a Pretrained network built at the base width.
	ErrorRateState bool

	// PlacementHead appends a fourth categorical action head of width
	// len(TierLevels): a per-window tier hint (fast vs dense) for the
	// agent's tenant. The hint is not a device action — emit issues the
	// same three vssd.Actions either way — it is read by the fleet
	// control plane at epoch barriers via TierHint and turned into
	// promote/demote migrations there. Off (the default), the head layout
	// and every RNG draw are unchanged, so the tier-off path stays
	// byte-identical.
	PlacementHead bool
	// TierOccState appends the fast-tier occupancy feature (fed by the
	// fleet control plane via SetTierOcc at epoch barriers) to every
	// window state, following the ErrorRateState width pattern. Like
	// ErrorRateState it widens the network input, so it is incompatible
	// with a Pretrained network built at the base width.
	TierOccState bool

	// TypeModel classifies workloads for per-type α (§3.4); nil keeps the
	// unified α.
	TypeModel *cluster.Model
	// AlphaByCluster maps the TypeModel's cluster ids to α values.
	AlphaByCluster map[int]float64
	// RL overrides PPO hyperparameters (zero value → DefaultConfig).
	RL rl.Config

	// Obs traces per-window decisions (the three issued actions plus the
	// single/mixed rewards of the closing window); nil disables.
	Obs *obs.Recorder
}

// agent is the per-vSSD RL state.
type agent struct {
	id     int
	ppo    *rl.PPO
	buf    rl.Buffer
	hist   *History
	scales StateScales
	alpha  float64

	pending     bool
	lastState   []float64
	lastActions []int
	lastLogProb float64
	lastValue   float64

	// tierHint is the last placement-head sample (PlacementHead on);
	// -1 until the agent's first decision window closes. tierOcc is the
	// fast-tier occupancy the control plane last pushed (TierOccState).
	tierHint int
	tierOcc  float64

	rec *trace.Recorder
}

// FleetIO is the paper's policy: one RL agent per vSSD issuing Harvest,
// Make_Harvestable, and Set_Priority actions every window.
type FleetIO struct {
	cfg    FleetIOConfig
	plat   *vssd.Platform
	agents []*agent
	shared *rl.PPO
	rng    *sim.RNG

	windows    int64
	trainStats []rl.TrainStats

	// Per-window scratch, reused across Decide calls (a pretraining run
	// makes hundreds of thousands of them).
	singleS, mixedS, iopsS, vioS []float64
	stateRows                    []float64
	actsOut                      []vssd.Action
	stateDim                     int
}

// NewFleetIO builds the policy for a platform's current vSSDs.
func NewFleetIO(plat *vssd.Platform, cfg FleetIOConfig) *FleetIO {
	if cfg.Beta == 0 {
		cfg.Beta = DefaultBeta
	}
	if cfg.Mode == ModeCustomizedLocal {
		cfg.Beta = 1.0
	}
	if cfg.SLOVioGuar == 0 {
		cfg.SLOVioGuar = 0.01
	}
	if cfg.HistoryWindows == 0 {
		cfg.HistoryWindows = DefaultHistoryWindows
	}
	if cfg.TrainEvery == 0 {
		cfg.TrainEvery = 10
	}
	if cfg.RL.Gamma == 0 {
		rcfg := rl.DefaultConfig()
		rcfg.LR = cfg.RL.LR
		if rcfg.LR == 0 {
			rcfg.LR = rl.DefaultConfig().LR
		}
		cfg.RL = rcfg
	}
	// After the default resolution above, which would clobber the flag when
	// the rest of cfg.RL is zero.
	if cfg.ScalarRL {
		cfg.RL.ScalarKernels = true
	}
	f := &FleetIO{cfg: cfg, plat: plat, rng: sim.NewRNG(cfg.Seed)}
	f.stateDim = cfg.HistoryWindows * f.stateWidth()
	if cfg.ShareModel {
		// Shared-model training continues on the provided network in place
		// (pretraining episodes chain); without one, a fresh net is built.
		net := cfg.Pretrained
		if net == nil {
			net = nn.NewActorCritic(f.stateDim, 50, f.heads(), f.rng.Split(-1))
		}
		f.shared = rl.New(net, cfg.RL, f.rng.Split(-2))
	}
	f.SyncAgents()
	return f
}

// stateWidth is the per-window feature count under the configured
// optional state extensions.
func (f *FleetIO) stateWidth() int {
	width := StatesPerWindow
	if f.cfg.ErrorRateState {
		width = StatesPerWindowExt
	}
	if f.cfg.TierOccState {
		width++
	}
	return width
}

// heads is the action-head layout: the three device heads, plus the
// placement head when configured.
func (f *FleetIO) heads() []int {
	heads := []int{len(HarvestLevels), len(HarvestLevels), len(PriorityLevels)}
	if f.cfg.PlacementHead {
		heads = append(heads, len(TierLevels))
	}
	return heads
}

func (f *FleetIO) newNet(r *sim.RNG) *nn.ActorCritic {
	if f.cfg.Pretrained != nil {
		return f.cfg.Pretrained.Clone()
	}
	return nn.NewActorCritic(f.stateDim, 50, f.heads(), r)
}

// SyncAgents appends an agent for every platform vSSD beyond the current
// agent count. The constructor uses it for the initial build; fleet
// shards call it again from the control plane after placing or migrating
// a tenant mid-run (vssd.Platform only ever appends), so agent i is
// always vSSD i and per-agent RNG streams (Split by index) stay
// deterministic regardless of when each vSSD appeared.
func (f *FleetIO) SyncAgents() {
	chanBW := f.plat.FlashConfig().ChannelBandwidth()
	width := f.stateWidth()
	for i := len(f.agents); i < len(f.plat.VSSDs()); i++ {
		v := f.plat.VSSD(i)
		a := &agent{
			id:       i,
			hist:     NewHistoryWidth(f.cfg.HistoryWindows, width),
			alpha:    UnifiedAlpha,
			tierHint: -1,
			scales:   DefaultScales(len(v.Tenant().Channels()), chanBW, int64(v.Tenant().LogicalPages())*int64(f.plat.FlashConfig().PageSize)),
		}
		if f.cfg.ShareModel {
			a.ppo = f.shared
		} else {
			r := f.rng.Split(int64(i))
			a.ppo = rl.New(f.newNet(r), f.cfg.RL, r.Split(7))
		}
		f.agents = append(f.agents, a)
	}
}

// Name implements Policy.
func (f *FleetIO) Name() string { return f.cfg.Mode.String() }

// SetRecorder attaches a block-trace recorder for workload typing (§3.4);
// the harness wires each vSSD's generator recorder here.
func (f *FleetIO) SetRecorder(vssdID int, rec *trace.Recorder) {
	f.agents[vssdID].rec = rec
}

// SetAlpha pins an agent's reward coefficient (used by tests and the
// α-tuning pipeline).
func (f *FleetIO) SetAlpha(vssdID int, alpha float64) { f.agents[vssdID].alpha = alpha }

// TierHint returns the agent's last placement-head sample (a TierLevels
// value), or -1 before its first decision window closes or when the
// placement head is off. The fleet control plane reads it at epoch
// barriers.
func (f *FleetIO) TierHint(vssdID int) int { return f.agents[vssdID].tierHint }

// SetTierOcc pushes the fast-tier occupancy the agent observes in its
// next window state (TierOccState on). Called by the fleet control plane
// at epoch barriers, between the shard's decision windows.
func (f *FleetIO) SetTierOcc(vssdID int, occ float64) { f.agents[vssdID].tierOcc = occ }

// Alpha returns an agent's current reward coefficient.
func (f *FleetIO) Alpha(vssdID int) float64 { return f.agents[vssdID].alpha }

// Agents returns the number of agents.
func (f *FleetIO) Agents() int { return len(f.agents) }

// Net returns the network of agent id (the shared net in ShareModel mode).
func (f *FleetIO) Net(id int) *nn.ActorCritic { return f.agents[id].ppo.Net }

// TrainStats returns PPO statistics collected so far.
func (f *FleetIO) TrainStats() []rl.TrainStats { return f.trainStats }

// DrainRollouts returns each agent's collected transitions as a fresh
// buffer — the final transition of each marked episode-terminal — and
// clears the per-agent buffers. Collection-only runs (TrainEvery set past
// the episode length) use this to hand rollouts to an external learner.
func (f *FleetIO) DrainRollouts() []*rl.Buffer {
	out := make([]*rl.Buffer, len(f.agents))
	for i, a := range f.agents {
		b := &rl.Buffer{}
		b.Append(&a.buf)
		b.MarkDone()
		a.buf.Reset()
		a.pending = false
		out[i] = b
	}
	return out
}

// Decide implements Policy: reward the previous actions (Eq. 1 + Eq. 2),
// train periodically, re-type workloads, then act.
func (f *FleetIO) Decide(now sim.Time, snaps []vssd.WindowSnapshot) []vssd.Action {
	f.windows++
	n := len(f.agents)
	if n != len(snaps) {
		panic(fmt.Sprintf("core: %d snapshots for %d agents", len(snaps), n))
	}

	if cap(f.singleS) < n {
		f.singleS = make([]float64, n)
		f.mixedS = make([]float64, n)
		f.iopsS = make([]float64, n)
		f.vioS = make([]float64, n)
	}

	// Rewards for the window that just closed.
	single := f.singleS[:n]
	for i, a := range f.agents {
		alpha := a.alpha
		if f.cfg.Mode == ModeUnifiedGlobal {
			alpha = UnifiedAlpha
		}
		single[i] = SingleReward(alpha, snaps[i], a.scales.GuaranteedBW, f.cfg.SLOVioGuar)
	}
	mixed := MixRewardsInto(single, f.mixedS, f.cfg.Beta)

	// Shared states (Σ over collocated agents, §3.3.1).
	var totIOPS, totVio float64
	iops := f.iopsS[:n]
	vio := f.vioS[:n]
	for i, s := range snaps {
		dur := s.Duration
		if dur <= 0 {
			dur = 1
		}
		iops[i] = s.Window.IOPS(dur)
		vio[i] = s.Window.SLOViolationRate()
		totIOPS += iops[i]
		totVio += vio[i]
	}

	// Periodic workload re-typing.
	if f.cfg.TypeEvery > 0 && f.cfg.TypeModel != nil && f.windows%int64(f.cfg.TypeEvery) == 0 {
		f.retype()
	}

	actions := f.actsOut[:0]
	chanBW := f.plat.FlashConfig().ChannelBandwidth()

	// One batched matrix pass per decision window in shared-model mode:
	// every agent's stacked state runs through the network together, with
	// the categorical sampling consuming the shared RNG in the same
	// (agent, head) order as the per-agent loop — bit-identical by
	// construction (see internal/nn/batch.go). On windows where an agent
	// may train the shared network mid-loop, the scalar path runs instead
	// so the act/train interleaving is preserved exactly.
	batched := f.shared != nil && !f.cfg.ScalarRL &&
		(!f.cfg.Train || f.windows%int64(f.cfg.TrainEvery) != 0)
	if batched {
		if cap(f.stateRows) < n*f.stateDim {
			f.stateRows = make([]float64, n*f.stateDim)
		}
		rows := f.stateRows[:n*f.stateDim]
		for i, a := range f.agents {
			state := f.closeWindow(a, snaps[i], mixed[i], totIOPS-iops[i], totVio-vio[i])
			copy(rows[i*f.stateDim:(i+1)*f.stateDim], state)
			if f.cfg.Train {
				a.lastState = state
			}
		}
		var bActs [][]int
		var bLPs, bVals []float64
		if !f.cfg.Train {
			bActs = f.shared.ActGreedyBatch(rows, n)
		} else if f.cfg.GreedyCollect {
			bActs, bLPs, bVals = f.shared.ActGreedyEvalBatch(rows, n)
		} else {
			bActs, bLPs, bVals = f.shared.ActBatch(rows, n)
		}
		for i, a := range f.agents {
			if f.cfg.Train {
				a.lastActions = bActs[i]
				a.lastLogProb = bLPs[i]
				a.lastValue = bVals[i]
				a.pending = true
			}
			actions = f.emit(actions, i, a, bActs[i], vio[i], chanBW, single[i], mixed[i])
		}
		f.actsOut = actions
		return actions
	}

	for i, a := range f.agents {
		state := f.closeWindow(a, snaps[i], mixed[i], totIOPS-iops[i], totVio-vio[i])
		var acts []int
		if f.cfg.Train {
			// Both pretraining and deployed fine-tuning sample the
			// stochastic policy: exploration is what lets the agents keep
			// matching harvest supply to the collocated demand (the
			// harvested superblocks drain and must be re-negotiated every
			// few windows). The α-gated priority cap in emit bounds the
			// damage of a bad sample to the latency tenants.
			var lp, val float64
			if f.cfg.GreedyCollect {
				acts, lp, val = a.ppo.ActGreedyEval(state)
			} else {
				acts, lp, val = a.ppo.Act(state)
			}
			a.lastState = state
			a.lastActions = acts
			a.lastLogProb = lp
			a.lastValue = val
			a.pending = true
			if f.windows%int64(f.cfg.TrainEvery) == 0 && a.buf.Len() >= f.cfg.RL.MiniBatch {
				st := a.ppo.Train(&a.buf, a.ppo.Value(state))
				f.trainStats = append(f.trainStats, st)
			}
		} else {
			acts = a.ppo.ActGreedy(state)
		}
		actions = f.emit(actions, i, a, acts, vio[i], chanBW, single[i], mixed[i])
	}
	f.actsOut = actions
	return actions
}

// closeWindow records the transition ended by this window (when one is
// pending) and pushes the agent's new window state, returning the stacked
// state vector.
func (f *FleetIO) closeWindow(a *agent, snap vssd.WindowSnapshot, reward, otherIOPS, otherVio float64) []float64 {
	if a.pending && f.cfg.Train {
		a.buf.Add(rl.Transition{
			State:   a.lastState,
			Actions: a.lastActions,
			LogProb: a.lastLogProb,
			Value:   a.lastValue,
			Reward:  reward,
		})
	}
	var ws []float64
	if f.cfg.ErrorRateState {
		ws = EncodeWindowExt(snap, a.scales, otherIOPS, otherVio)
	} else {
		ws = EncodeWindow(snap, a.scales, otherIOPS, otherVio)
	}
	if f.cfg.TierOccState {
		ws = append(ws, clamp(a.tierOcc, 0, 1))
	}
	a.hist.Push(ws)
	return a.hist.Vector()
}

// emit applies the action guardrails and appends agent i's three per-window
// actions (and observability records) to the actions slice.
//
// Priority boosts exist "to help each vSSD meet the performance
// isolation goal" (§3.3.2). A bandwidth-typed agent (α=0) has no
// isolation term in its reward, so nothing stops it from squatting
// on the highest priority and starving collocated latency-sensitive
// tenants; cap it at medium. Conversely, a latency-typed agent that
// is currently blowing its SLO budget escalates immediately —
// §3.3.2's "if a vSSD experiences high SLO violations ... the RL
// agent will increase the priority level", enforced as a guardrail
// so one badly sampled action cannot cost a window of tail latency.
func (f *FleetIO) emit(actions []vssd.Action, i int, a *agent, acts []int, vioRate, chanBW, single, mixed float64) []vssd.Action {
	if f.cfg.PlacementHead {
		// The placement head is not a device action: the sample is parked
		// on the agent for the fleet control plane to read (TierHint) at
		// the next epoch barrier and turn into a promote/demote migration.
		a.tierHint = TierFromHead(acts[3])
	}
	level := PriorityLevels[acts[2]]
	if a.alpha <= 1e-9 {
		if level > 2 {
			level = 2
		}
	} else if vioRate > f.cfg.SLOVioGuar && level < 3 {
		level = 3
	}
	makeBW := float64(HarvestLevels[acts[1]]) * chanBW
	harvestBW := float64(HarvestLevels[acts[0]]) * chanBW
	actions = append(actions,
		vssd.Action{VSSD: i, Kind: vssd.ActMakeHarvestable, BW: makeBW},
		vssd.Action{VSSD: i, Kind: vssd.ActHarvest, BW: harvestBW},
		vssd.Action{VSSD: i, Kind: vssd.ActSetPriority, Level: level},
	)
	if f.cfg.Obs.Enabled() {
		f.cfg.Obs.Reward(i, single, mixed)
		f.cfg.Obs.Decision(obs.KindMakeHarvestable, i, makeBW, 0)
		f.cfg.Obs.Decision(obs.KindHarvest, i, harvestBW, 0)
		f.cfg.Obs.Decision(obs.KindSetPriority, i, 0, level)
	}
	return actions
}

// retype re-classifies each vSSD's recent traffic and updates α (§3.4).
func (f *FleetIO) retype() {
	pageSize := f.plat.FlashConfig().PageSize
	for _, a := range f.agents {
		if a.rec == nil || a.rec.Len() < 100 {
			continue
		}
		recs := a.rec.Records()
		logical := int64(f.plat.VSSD(a.id).Tenant().LogicalPages())
		c, known := f.cfg.TypeModel.ClassifyTrace(recs, pageSize, logical)
		if !known {
			a.alpha = UnifiedAlpha
			continue
		}
		if alpha, ok := f.cfg.AlphaByCluster[c]; ok {
			a.alpha = alpha
		} else {
			a.alpha = UnifiedAlpha
		}
	}
}
