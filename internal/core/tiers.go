package core

import "fmt"

// Tier ids for hybrid (tiered) fleets. Tier 0 is the fast, low-latency,
// low-density class (SLC-like); tier 1 is the dense, slow class
// (QLC-like). The fleet layer assigns device shards to tiers; the
// placement action head below emits one of these per decision window.
const (
	// TierFast is the short-ReadPage/ProgramPage, few-blocks class.
	TierFast = 0
	// TierDense is the long-timing, many-blocks class.
	TierDense = 1
)

// TierLevels maps the placement head's categorical index to a tier id
// (head index → tier), the same head-to-level shape as HarvestLevels and
// PriorityLevels. Its length is the head width.
var TierLevels = []int{TierFast, TierDense}

// TierFromHead decodes a placement-head sample into a tier id. It panics
// on an out-of-range head index — the head width and TierLevels are built
// from the same slice, so a mismatch is a programming error.
func TierFromHead(h int) int {
	if h < 0 || h >= len(TierLevels) {
		panic(fmt.Sprintf("core: placement head index %d out of range [0,%d)", h, len(TierLevels)))
	}
	return TierLevels[h]
}

// HeadFromTier encodes a tier id as the placement-head index that emits
// it (the inverse of TierFromHead). Panics on a tier no head level maps
// to.
func HeadFromTier(tier int) int {
	for h, t := range TierLevels {
		if t == tier {
			return h
		}
	}
	panic(fmt.Sprintf("core: no placement head level for tier %d", tier))
}
