package core

import (
	"repro/internal/sim"
	"repro/internal/vssd"
)

// StatesPerWindow is the RL state width of one time window: the nine
// Table 1 states plus the two shared multi-agent states (§3.3.1).
const StatesPerWindow = 11

// StatesPerWindowExt is the window width with the optional per-tenant
// error-rate feature appended (FleetIOConfig.ErrorRateState): the
// fraction of the window's page writes that needed a NAND-failure retry.
const StatesPerWindowExt = StatesPerWindow + 1

// DefaultHistoryWindows is how many windows are stacked into one model
// input (§3.3.1: three prior time windows).
const DefaultHistoryWindows = 3

// StateScales normalizes raw measurements into the ~[0,1] ranges the tiny
// MLP trains well on.
type StateScales struct {
	// GuaranteedBW is the vSSD's allocated bandwidth (bytes/s): owned
	// channels × per-channel bandwidth.
	GuaranteedBW float64
	// IOPSScale divides IOPS readings.
	IOPSScale float64
	// LatScale divides latencies (ns).
	LatScale float64
	// CapScale divides available capacity (bytes).
	CapScale float64
	// QueueScale divides queue lengths.
	QueueScale float64
}

// EncodeWindow converts one snapshot into the 11-dimensional window state.
func EncodeWindow(s vssd.WindowSnapshot, sc StateScales, sharedIOPS, sharedVio float64) []float64 {
	dur := s.Duration
	if dur <= 0 {
		dur = 1
	}
	bw := s.Window.Bandwidth(dur)
	out := make([]float64, StatesPerWindow)
	out[0] = clamp(bw/nz(sc.GuaranteedBW), 0, 4)                                // Avg_BW
	out[1] = clamp(s.Window.IOPS(dur)/nz(sc.IOPSScale), 0, 4)                   // Avg_IOPS
	out[2] = clamp(s.Window.AvgLatency()/nz(sc.LatScale), 0, 4)                 // Avg_Lat
	out[3] = clamp(s.Window.SLOViolationRate(), 0, 1)                           // SLO_Vio
	out[4] = clamp(float64(s.QueueLen+s.InflightPages)/nz(sc.QueueScale), 0, 4) // QDelay proxy
	out[5] = s.Window.ReadRatio()                                               // RW_Ratio
	out[6] = clamp(float64(s.AvailCapacity)/nz(sc.CapScale), 0, 1)              // Avail_Capacity
	if s.InGC {
		out[7] = 1 // In_GC
	}
	out[8] = float64(s.Priority) / 3.0                  // Cur_Priority
	out[9] = clamp(sharedIOPS/nz(sc.IOPSScale)/4, 0, 4) // Σ others' IOPS
	out[10] = clamp(sharedVio, 0, 1)                    // Σ others' SLO_Vio
	return out
}

// EncodeWindowExt is EncodeWindow plus the per-tenant error-rate feature:
// write retries caused by injected NAND program failures, normalized by
// the window's completed requests. Always 0 without a fault injector, so
// the feature is inert (but still widens the net input — a policy using
// it cannot load a network pretrained at the base width).
func EncodeWindowExt(s vssd.WindowSnapshot, sc StateScales, sharedIOPS, sharedVio float64) []float64 {
	out := EncodeWindow(s, sc, sharedIOPS, sharedVio)
	out = append(out, clamp(float64(s.Window.Retries)/float64(max64(s.Window.Requests(), 1)), 0, 1))
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func nz(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// History stacks the most recent window states into one model input.
type History struct {
	windows int
	width   int
	buf     [][]float64
}

// NewHistory holds the last `windows` window-states of the default
// (base) width.
func NewHistory(windows int) *History {
	return NewHistoryWidth(windows, StatesPerWindow)
}

// NewHistoryWidth holds the last `windows` window-states of `width`
// features each (StatesPerWindowExt for policies with the error-rate
// feature enabled).
func NewHistoryWidth(windows, width int) *History {
	if windows <= 0 {
		windows = DefaultHistoryWindows
	}
	if width <= 0 {
		width = StatesPerWindow
	}
	return &History{windows: windows, width: width}
}

// Push appends a window state, evicting the oldest beyond capacity.
func (h *History) Push(state []float64) {
	h.buf = append(h.buf, state)
	if len(h.buf) > h.windows {
		h.buf = h.buf[1:]
	}
}

// Vector returns the stacked input (windows × width), zero-padded at the
// front until enough history accumulates — oldest first.
func (h *History) Vector() []float64 {
	out := make([]float64, h.windows*h.width)
	pad := h.windows - len(h.buf)
	for i, w := range h.buf {
		copy(out[(pad+i)*h.width:], w)
	}
	return out
}

// Dim returns the stacked input width.
func (h *History) Dim() int { return h.windows * h.width }

// DefaultScales derives normalization constants from a vSSD's allocation.
func DefaultScales(ownedChannels int, channelBW float64, logicalBytes int64) StateScales {
	if ownedChannels < 1 {
		ownedChannels = 1
	}
	return StateScales{
		GuaranteedBW: float64(ownedChannels) * channelBW,
		IOPSScale:    5000,
		LatScale:     float64(10 * sim.Millisecond),
		CapScale:     float64(logicalBytes),
		QueueScale:   128,
	}
}
