package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/admission"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vssd"
	"repro/internal/workload"
)

func testPlatform(channels int) (*sim.Engine, *vssd.Platform) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = channels
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 64
	pc.Flash.PagesPerBlock = 32
	return eng, vssd.NewPlatform(eng, pc)
}

func snapWith(bw int64, dur sim.Time, vioRate float64, reqs int64) vssd.WindowSnapshot {
	var w metrics.Window
	vio := int64(vioRate * float64(reqs))
	for i := int64(0); i < reqs; i++ {
		lat := int64(100)
		slo := int64(1000)
		if i < vio {
			lat = 2000
		}
		w.Complete(false, bw/reqs, lat, 10, slo)
	}
	return vssd.WindowSnapshot{Duration: dur, Window: w}
}

func TestSingleRewardEq1(t *testing.T) {
	// BW = guaranteed, no violations, α=0 → reward exactly 1.
	s := snapWith(1000, sim.Second, 0, 10)
	if got := SingleReward(0, s, 1000, 0.01); math.Abs(got-1) > 1e-9 {
		t.Fatalf("reward = %v, want 1", got)
	}
	// α=1 → pure violation penalty.
	s2 := snapWith(1000, sim.Second, 0.5, 10)
	got := SingleReward(1, s2, 1000, 0.01)
	if math.Abs(got-(-50)) > 1e-9 {
		t.Fatalf("reward = %v, want -50 (0.5/0.01)", got)
	}
}

// Property: reward is non-decreasing in bandwidth and non-increasing in
// violation rate.
func TestRewardMonotonicityProperty(t *testing.T) {
	f := func(bwA, bwB uint16, vioA, vioB uint8) bool {
		alpha := 0.025
		mk := func(bw int64, vio float64) float64 {
			s := snapWith(int64(bw)*100+100, sim.Second, vio, 20)
			return SingleReward(alpha, s, 5000, 0.01)
		}
		loBW, hiBW := int64(bwA), int64(bwB)
		if loBW > hiBW {
			loBW, hiBW = hiBW, loBW
		}
		if mk(hiBW, 0.1) < mk(loBW, 0.1)-1e-9 {
			return false
		}
		loV, hiV := float64(vioA%100)/100, float64(vioB%100)/100
		if loV > hiV {
			loV, hiV = hiV, loV
		}
		return mk(100, hiV) <= mk(100, loV)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMixRewardsEq2(t *testing.T) {
	single := []float64{1.0, 0.5, 0.0}
	mixed := MixRewards(single, 0.6)
	// Agent 0: 0.6*1 + 0.4*(0.25) = 0.7
	if math.Abs(mixed[0]-0.7) > 1e-9 {
		t.Fatalf("mixed[0] = %v", mixed[0])
	}
	// Agent 2: 0.6*0 + 0.4*0.75 = 0.3
	if math.Abs(mixed[2]-0.3) > 1e-9 {
		t.Fatalf("mixed[2] = %v", mixed[2])
	}
	// β=1 → unchanged (Customized-Local).
	selfish := MixRewards(single, 1.0)
	for i := range single {
		if selfish[i] != single[i] {
			t.Fatal("β=1 must keep own rewards")
		}
	}
	// Single agent unchanged regardless of β.
	if got := MixRewards([]float64{0.42}, 0.6); got[0] != 0.42 {
		t.Fatal("single agent reward must pass through")
	}
}

func TestMixRewardsConservesMean(t *testing.T) {
	f := func(raw []float64, beta8 uint8) bool {
		if len(raw) < 2 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			// Keep magnitudes in a realistic reward range; at 1e308 the
			// conservation identity drowns in floating-point error.
			raw[i] = math.Mod(v, 100)
		}
		beta := float64(beta8%101) / 100
		mixed := MixRewards(raw, beta)
		var a, b float64
		for i := range raw {
			a += raw[i]
			b += mixed[i]
		}
		return math.Abs(a-b) < 1e-6*math.Max(1, math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTuneAlphaBinarySearch(t *testing.T) {
	// vio(α) = 0.2·(1-α): threshold 0.05 → α* = 0.75.
	calls := 0
	alpha := TuneAlpha(func(a float64) float64 {
		calls++
		return 0.2 * (1 - a)
	}, 0.05, 20)
	if math.Abs(alpha-0.75) > 1e-3 {
		t.Fatalf("α = %v, want 0.75", alpha)
	}
	if calls > 25 {
		t.Fatalf("binary search used %d evals", calls)
	}
	// Already satisfied at α=0.
	if got := TuneAlpha(func(float64) float64 { return 0.01 }, 0.05, 10); got != 0 {
		t.Fatalf("α = %v, want 0", got)
	}
	// Unsatisfiable.
	if got := TuneAlpha(func(float64) float64 { return 0.9 }, 0.05, 10); got != 1 {
		t.Fatalf("α = %v, want 1", got)
	}
}

func TestEncodeWindowRangesAndSemantics(t *testing.T) {
	s := snapWith(64_000_000, sim.Second, 0.5, 100)
	s.InGC = true
	s.Priority = ftl.PriorityHigh
	s.QueueLen = 10
	s.InflightPages = 6
	s.AvailCapacity = 500
	sc := StateScales{GuaranteedBW: 64e6, IOPSScale: 100, LatScale: 1000, CapScale: 1000, QueueScale: 16}
	v := EncodeWindow(s, sc, 200, 0.3)
	if math.Abs(v[0]-1.0) > 0.01 {
		t.Fatalf("BW state = %v, want ~1", v[0])
	}
	if v[3] != 0.5 {
		t.Fatalf("SLO_Vio state = %v", v[3])
	}
	if v[4] != 1.0 {
		t.Fatalf("QDelay state = %v", v[4])
	}
	if v[6] != 0.5 {
		t.Fatalf("capacity state = %v", v[6])
	}
	if v[7] != 1 {
		t.Fatal("In_GC not encoded")
	}
	if v[8] != 1.0 {
		t.Fatalf("priority state = %v", v[8])
	}
	if v[10] != 0.3 {
		t.Fatalf("shared vio state = %v", v[10])
	}
	for i, x := range v {
		if math.IsNaN(x) || x < 0 || x > 4 {
			t.Fatalf("state[%d] = %v out of range", i, x)
		}
	}
}

func TestHistoryStacking(t *testing.T) {
	h := NewHistory(3)
	if h.Dim() != 33 {
		t.Fatalf("dim = %d", h.Dim())
	}
	v := h.Vector()
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty history must be zero")
		}
	}
	mk := func(val float64) []float64 {
		s := make([]float64, StatesPerWindow)
		for i := range s {
			s[i] = val
		}
		return s
	}
	h.Push(mk(1))
	h.Push(mk(2))
	v = h.Vector()
	if v[0] != 0 || v[StatesPerWindow] != 1 || v[2*StatesPerWindow] != 2 {
		t.Fatalf("padding/order wrong: %v", v[:3*StatesPerWindow:3*StatesPerWindow])
	}
	h.Push(mk(3))
	h.Push(mk(4)) // evicts 1
	v = h.Vector()
	if v[0] != 2 || v[StatesPerWindow] != 3 || v[2*StatesPerWindow] != 4 {
		t.Fatal("eviction order wrong")
	}
}

func TestRunnerRotatesAndApplies(t *testing.T) {
	eng, p := testPlatform(2)
	p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})
	calls := 0
	pol := policyFunc{
		name: "test",
		fn: func(now sim.Time, snaps []vssd.WindowSnapshot) []vssd.Action {
			calls++
			if len(snaps) != 1 {
				t.Fatalf("snaps = %d", len(snaps))
			}
			return []vssd.Action{{VSSD: 0, Kind: vssd.ActSetPriority, Level: ftl.PriorityHigh}}
		},
	}
	r := &Runner{Plat: p, Policy: pol, Window: 100 * sim.Millisecond}
	r.Start()
	r.Start() // idempotent
	eng.RunUntil(550 * sim.Millisecond)
	if calls != 5 {
		t.Fatalf("policy called %d times, want 5", calls)
	}
	if r.Windows() != 5 {
		t.Fatalf("windows = %d", r.Windows())
	}
	if p.VSSD(0).Priority() != ftl.PriorityHigh {
		t.Fatal("action not applied")
	}
}

type policyFunc struct {
	name string
	fn   func(sim.Time, []vssd.WindowSnapshot) []vssd.Action
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Decide(now sim.Time, s []vssd.WindowSnapshot) []vssd.Action {
	return p.fn(now, s)
}

func TestStaticPolicy(t *testing.T) {
	s := StaticPolicy{PolicyName: "Hardware Isolation"}
	if s.Name() != "Hardware Isolation" {
		t.Fatal("name wrong")
	}
	if s.Decide(0, nil) != nil {
		t.Fatal("static policy must not act")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeFull.String() != "FleetIO" ||
		ModeUnifiedGlobal.String() != "FleetIO-Unified-Global" ||
		ModeCustomizedLocal.String() != "FleetIO-Customized-Local" {
		t.Fatal("mode strings wrong")
	}
}

func TestFleetIOConstruction(t *testing.T) {
	_, p := testPlatform(4)
	p.AddVSSD(vssd.Config{Name: "ls", Channels: []int{0, 1}})
	p.AddVSSD(vssd.Config{Name: "bi", Channels: []int{2, 3}})
	f := NewFleetIO(p, FleetIOConfig{Seed: 1})
	if f.Agents() != 2 {
		t.Fatalf("agents = %d", f.Agents())
	}
	if f.Name() != "FleetIO" {
		t.Fatal("name wrong")
	}
	// Customized-Local forces β=1.
	fl := NewFleetIO(p, FleetIOConfig{Mode: ModeCustomizedLocal, Seed: 1})
	if fl.cfg.Beta != 1.0 {
		t.Fatalf("β = %v in Customized-Local", fl.cfg.Beta)
	}
	// Independent nets per agent by default.
	if f.Net(0) == f.Net(1) {
		t.Fatal("agents must have independent networks by default")
	}
	fs := NewFleetIO(p, FleetIOConfig{ShareModel: true, Seed: 1})
	if fs.Net(0) != fs.Net(1) {
		t.Fatal("ShareModel must share one network")
	}
}

func TestFleetIOEndToEnd(t *testing.T) {
	eng, p := testPlatform(4)
	ls := p.AddVSSD(vssd.Config{Name: "ls", Channels: []int{0, 1}, SLO: 2 * sim.Millisecond})
	bi := p.AddVSSD(vssd.Config{Name: "bi", Channels: []int{2, 3}, MaxInflightPages: 256})
	gls := workload.NewGenerator(eng, ls, workload.ByName("YCSB"), sim.NewRNG(2))
	gbi := workload.NewGenerator(eng, bi, workload.ByName("TeraSort"), sim.NewRNG(3))
	gls.Start()
	gbi.Start()

	f := NewFleetIO(p, FleetIOConfig{Train: true, TrainEvery: 5, Seed: 4})
	adm := admission.NewController(p, nil)
	r := &Runner{Plat: p, Adm: adm, Policy: f, Window: 100 * sim.Millisecond}
	r.Start()
	eng.RunUntil(6 * sim.Second)
	if r.Windows() < 50 {
		t.Fatalf("only %d windows elapsed", r.Windows())
	}
	// Agents acted: harvest machinery must have been exercised (created or
	// attempted) — at minimum the admission controller processed batches.
	if adm.Stats().Admitted == 0 {
		t.Fatal("no actions admitted in 6s of decisions")
	}
	// Online fine-tuning happened.
	if len(f.TrainStats()) == 0 {
		t.Fatal("no PPO updates ran")
	}
}

func TestFleetIOSetAlpha(t *testing.T) {
	_, p := testPlatform(2)
	p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})
	f := NewFleetIO(p, FleetIOConfig{Seed: 1})
	if f.Alpha(0) != UnifiedAlpha {
		t.Fatalf("default α = %v", f.Alpha(0))
	}
	f.SetAlpha(0, AlphaLC1)
	if f.Alpha(0) != AlphaLC1 {
		t.Fatal("SetAlpha failed")
	}
}

func TestPaperAlphaConstants(t *testing.T) {
	if AlphaLC1 != 2.5e-2 || AlphaLC2 != 5e-3 || AlphaBI != 0 || UnifiedAlpha != 0.01 {
		t.Fatal("α constants must match §3.8")
	}
	if DefaultBeta != 0.6 {
		t.Fatal("β must match Table 3")
	}
}

// TestDecideBatchedMatchesScalar runs two identical shared-model FleetIO
// deployments — one on the batched Decide path, one forced scalar with
// ScalarRL — over the same simulated workload and requires identical action
// streams, identical training statistics, and identical final network
// parameters. This is the policy-level pin of the batched-kernel
// bit-identity contract (the figure-level pin is scripts/check.sh's
// batched-vs-scalar golden gate).
func TestDecideBatchedMatchesScalar(t *testing.T) {
	type run struct {
		acts  []vssd.Action
		stats []interface{}
		par   []float64
	}
	do := func(scalar bool, train, greedy bool) run {
		eng, p := testPlatform(4)
		ls := p.AddVSSD(vssd.Config{Name: "ls", Channels: []int{0, 1}, SLO: 2 * sim.Millisecond})
		bi := p.AddVSSD(vssd.Config{Name: "bi", Channels: []int{2, 3}, MaxInflightPages: 256})
		gls := workload.NewGenerator(eng, ls, workload.ByName("YCSB"), sim.NewRNG(2))
		gbi := workload.NewGenerator(eng, bi, workload.ByName("TeraSort"), sim.NewRNG(3))
		gls.Start()
		gbi.Start()
		f := NewFleetIO(p, FleetIOConfig{
			ShareModel: true, Train: train, GreedyCollect: greedy,
			TrainEvery: 5, Seed: 4, ScalarRL: scalar,
		})
		var out run
		adm := admission.NewController(p, nil)
		r := &Runner{Plat: p, Adm: adm, Policy: f, Window: 100 * sim.Millisecond,
			OnWindow: func(now sim.Time, snaps []vssd.WindowSnapshot) {}}
		// Capture the per-window actions via a wrapping policy.
		r.Policy = capturePolicy{f, &out.acts}
		r.Start()
		eng.RunUntil(5 * sim.Second)
		for _, st := range f.TrainStats() {
			out.stats = append(out.stats, st)
		}
		out.par = f.Net(0).Params()
		return out
	}
	for _, mode := range []struct {
		name          string
		train, greedy bool
	}{{"deploy", false, false}, {"train-sample", true, false}, {"train-greedy", true, true}} {
		t.Run(mode.name, func(t *testing.T) {
			s := do(true, mode.train, mode.greedy)
			b := do(false, mode.train, mode.greedy)
			if len(s.acts) == 0 || len(s.acts) != len(b.acts) {
				t.Fatalf("action streams differ in length: %d vs %d", len(s.acts), len(b.acts))
			}
			for i := range s.acts {
				sa, ba := s.acts[i], b.acts[i]
				if sa.VSSD != ba.VSSD || sa.Kind != ba.Kind || sa.BW != ba.BW || sa.Level != ba.Level {
					t.Fatalf("action %d diverges: %+v != %+v", i, sa, ba)
				}
			}
			if len(s.stats) != len(b.stats) {
				t.Fatalf("train stats count: %d vs %d", len(s.stats), len(b.stats))
			}
			for i := range s.stats {
				if s.stats[i] != b.stats[i] {
					t.Fatalf("train stats %d diverge:\n%+v\n%+v", i, s.stats[i], b.stats[i])
				}
			}
			for i := range s.par {
				if s.par[i] != b.par[i] {
					t.Fatalf("network param %d diverges", i)
				}
			}
		})
	}
}

// capturePolicy appends every decided action to a log before passing them on.
type capturePolicy struct {
	*FleetIO
	log *[]vssd.Action
}

func (c capturePolicy) Decide(now sim.Time, snaps []vssd.WindowSnapshot) []vssd.Action {
	acts := c.FleetIO.Decide(now, snaps)
	*c.log = append(*c.log, acts...)
	return acts
}
