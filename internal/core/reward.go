package core

import "repro/internal/vssd"

// RewardConfig holds the Eq. 1 / Eq. 2 parameters.
type RewardConfig struct {
	// Alpha trades bandwidth against SLO violations (Eq. 1): larger α
	// prioritizes performance isolation. §3.8's fine-tuned values are
	// 2.5e-2 (LC-1), 5e-3 (LC-2), and 0 (bandwidth-intensive); the unified
	// fallback is 0.01.
	Alpha float64
	// Beta mixes an agent's own reward with its collocated agents' average
	// (Eq. 2). The paper's default is 0.6.
	Beta float64
	// SLOVioGuar is the guaranteed SLO-violation budget (1% in §3.3.3).
	SLOVioGuar float64
}

// UnifiedAlpha is the fallback α for unknown workload types (§3.4).
const UnifiedAlpha = 0.01

// Fine-tuned α values per workload type (§3.8).
const (
	AlphaLC1 = 2.5e-2 // broad latency-sensitive cluster
	AlphaLC2 = 5e-3   // YCSB-like low-entropy cluster
	AlphaBI  = 0.0    // bandwidth-intensive ("TO") cluster
)

// DefaultBeta is the paper's reward-mixing coefficient.
const DefaultBeta = 0.6

// SingleReward computes Eq. 1 for one vSSD window:
//
//	R = (1-α)·AvgBW/AvgBW_guar − α·SLO_Vio/SLO_Vio_guar
func SingleReward(alpha float64, snap vssd.WindowSnapshot, guaranteedBW, sloVioGuar float64) float64 {
	dur := snap.Duration
	if dur <= 0 {
		dur = 1
	}
	bwTerm := snap.Window.Bandwidth(dur) / nz(guaranteedBW)
	vioTerm := snap.Window.SLOViolationRate() / nz(sloVioGuar)
	return (1-alpha)*bwTerm - alpha*vioTerm
}

// MixRewards applies Eq. 2: each agent's reward becomes
// β·own + (1-β)·mean(others). A single agent keeps its own reward.
func MixRewards(single []float64, beta float64) []float64 {
	return MixRewardsInto(single, make([]float64, len(single)), beta)
}

// MixRewardsInto is MixRewards writing into caller-provided storage, for
// per-window callers that reuse scratch.
func MixRewardsInto(single, out []float64, beta float64) []float64 {
	n := len(single)
	out = out[:n]
	if n == 1 {
		out[0] = single[0]
		return out
	}
	var sum float64
	for _, r := range single {
		sum += r
	}
	for i, r := range single {
		others := (sum - r) / float64(n-1)
		out[i] = beta*r + (1-beta)*others
	}
	return out
}

// TuneAlpha implements §3.4's reward fine-tuning: binary-search the
// smallest α whose measured SLO-violation rate stays within threshold
// (default 5%) — the smallest admissible α delivers the highest bandwidth.
// eval(α) runs the workload under α and returns its violation rate;
// violation rates are assumed non-increasing in α. iters halvings give
// 2^-iters resolution.
func TuneAlpha(eval func(alpha float64) float64, threshold float64, iters int) float64 {
	lo, hi := 0.0, 1.0
	if eval(lo) <= threshold {
		return lo
	}
	if eval(hi) > threshold {
		return hi // even maximum isolation cannot meet the threshold
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if eval(mid) <= threshold {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
