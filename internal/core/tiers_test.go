package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vssd"
	"repro/internal/workload"
)

func TestTierHeadRoundTrip(t *testing.T) {
	for h := range TierLevels {
		if got := HeadFromTier(TierFromHead(h)); got != h {
			t.Errorf("head %d round-tripped to %d", h, got)
		}
	}
	if TierFromHead(HeadFromTier(TierFast)) != TierFast {
		t.Error("TierFast did not round-trip")
	}
	if TierFromHead(HeadFromTier(TierDense)) != TierDense {
		t.Error("TierDense did not round-trip")
	}
	for _, bad := range []int{-1, len(TierLevels)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TierFromHead(%d) did not panic", bad)
				}
			}()
			TierFromHead(bad)
		}()
	}
}

func TestPlacementHeadLayout(t *testing.T) {
	_, p := testPlatform(2)
	p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})

	base := NewFleetIO(p, FleetIOConfig{Seed: 1})
	if got := len(base.heads()); got != 3 {
		t.Fatalf("base head count = %d, want 3", got)
	}
	ph := NewFleetIO(p, FleetIOConfig{Seed: 1, PlacementHead: true})
	heads := ph.heads()
	if len(heads) != 4 || heads[3] != len(TierLevels) {
		t.Fatalf("placement head layout = %v, want 4th head of width %d", heads, len(TierLevels))
	}
	if ph.TierHint(0) != -1 {
		t.Fatalf("tier hint before any window = %d, want -1", ph.TierHint(0))
	}
}

func TestTierOccStateWidth(t *testing.T) {
	_, p := testPlatform(2)
	p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})

	cases := []struct {
		cfg  FleetIOConfig
		want int
	}{
		{FleetIOConfig{Seed: 1}, StatesPerWindow},
		{FleetIOConfig{Seed: 1, TierOccState: true}, StatesPerWindow + 1},
		{FleetIOConfig{Seed: 1, ErrorRateState: true}, StatesPerWindowExt},
		{FleetIOConfig{Seed: 1, ErrorRateState: true, TierOccState: true}, StatesPerWindowExt + 1},
	}
	for _, tc := range cases {
		f := NewFleetIO(p, tc.cfg)
		if got := f.stateWidth(); got != tc.want {
			t.Errorf("stateWidth(err=%v, tier=%v) = %d, want %d",
				tc.cfg.ErrorRateState, tc.cfg.TierOccState, got, tc.want)
		}
	}
}

// The placement head must actually produce hints, and SetTierOcc must be
// observable, once decision windows run.
func TestPlacementHeadEmitsHints(t *testing.T) {
	eng, p := testPlatform(4)
	v := p.AddVSSD(vssd.Config{Name: "ls", Channels: []int{0, 1, 2, 3}})
	g := workload.NewGenerator(eng, v, workload.ByName("YCSB"), sim.NewRNG(2))
	g.Start()

	f := NewFleetIO(p, FleetIOConfig{Train: true, Seed: 3, PlacementHead: true, TierOccState: true})
	f.SetTierOcc(0, 0.5)
	r := &Runner{Plat: p, Policy: f, Window: 100 * sim.Millisecond}
	r.Start()
	eng.RunUntil(2 * sim.Second)

	hint := f.TierHint(0)
	if hint != TierFast && hint != TierDense {
		t.Fatalf("tier hint after 2s of windows = %d, want a TierLevels value", hint)
	}
	if f.agents[0].tierOcc != 0.5 {
		t.Fatalf("tierOcc = %v, want the pushed 0.5", f.agents[0].tierOcc)
	}
}

// SyncAgents must pick up vSSDs added after construction, with hints
// defaulting to -1 (the "no sample yet" sentinel the fleet reads).
func TestSyncAgentsAppends(t *testing.T) {
	_, p := testPlatform(4)
	p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})
	f := NewFleetIO(p, FleetIOConfig{Seed: 1, PlacementHead: true})
	if f.Agents() != 1 {
		t.Fatalf("agents = %d, want 1", f.Agents())
	}
	p.AddVSSD(vssd.Config{Name: "b", Channels: []int{2, 3}})
	f.SyncAgents()
	if f.Agents() != 2 {
		t.Fatalf("agents after sync = %d, want 2", f.Agents())
	}
	if f.TierHint(1) != -1 {
		t.Fatalf("new agent's hint = %d, want -1", f.TierHint(1))
	}
}
