// Package core implements FleetIO itself: the per-vSSD RL agents (§3.3),
// the Table 1 state encoding, the Table 2 action space, the single- and
// multi-agent reward functions (Eq. 1 and Eq. 2), workload-type reward
// fine-tuning (§3.4), and the decision loop that drives agents every time
// window through admission control. The same Policy interface hosts the
// baseline schedulers, so every experiment runs policies interchangeably.
package core

import (
	"repro/internal/admission"
	"repro/internal/sim"
	"repro/internal/vssd"
)

// Policy decides per-window actions for all vSSDs on a platform. Decide is
// called once per decision window with that window's snapshots, in vSSD
// order; returned actions are executed through admission control (harvest
// actions) or directly (the rest). Stateful policies (FleetIO, Adaptive)
// keep history between calls. The returned slice is only valid until the
// next Decide call — implementations may reuse it as scratch.
type Policy interface {
	Name() string
	Decide(now sim.Time, snaps []vssd.WindowSnapshot) []vssd.Action
}

// StaticPolicy takes no runtime actions (Hardware Isolation, Software
// Isolation, SSDKeeper after its initial partitioning decision).
type StaticPolicy struct{ PolicyName string }

// Name returns the policy's display name.
func (s StaticPolicy) Name() string { return s.PolicyName }

// Decide never acts.
func (s StaticPolicy) Decide(sim.Time, []vssd.WindowSnapshot) []vssd.Action { return nil }

// Runner drives a policy: every Window it rotates all vSSD windows, asks
// the policy for actions, and routes them through admission control.
type Runner struct {
	Plat   *vssd.Platform
	Adm    *admission.Controller // nil: apply directly
	Policy Policy
	Window sim.Time

	// OnWindow, if set, observes each window's snapshots (used by the
	// harness to build utilization timelines).
	OnWindow func(now sim.Time, snaps []vssd.WindowSnapshot)

	windows int64
	started bool
	// snaps is the per-tick snapshot scratch, reused across windows. No
	// consumer (Decide, OnWindow) retains the slice past its call.
	snaps []vssd.WindowSnapshot
}

// Windows returns the number of decision windows elapsed.
func (r *Runner) Windows() int64 { return r.windows }

// Start arms the decision ticker. The first rotation happens one window
// from now.
func (r *Runner) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.Window <= 0 {
		r.Window = 2 * sim.Second
	}
	if r.Adm != nil {
		r.Adm.Start()
	}
	r.Plat.Engine().Ticker(r.Window, func(now sim.Time) bool {
		r.step(now)
		return true
	})
}

func (r *Runner) step(now sim.Time) {
	r.windows++
	vs := r.Plat.VSSDs()
	if cap(r.snaps) < len(vs) {
		r.snaps = make([]vssd.WindowSnapshot, len(vs))
	}
	snaps := r.snaps[:len(vs)]
	for i, v := range vs {
		snaps[i] = v.Rotate()
	}
	if r.OnWindow != nil {
		r.OnWindow(now, snaps)
	}
	for _, a := range r.Policy.Decide(now, snaps) {
		if r.Adm != nil {
			r.Adm.Submit(a)
		} else {
			r.Plat.Apply(a)
		}
	}
}
