package lockfree

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	var l List[int]
	for i := 1; i <= 5; i++ {
		l.PushFront(i)
	}
	for want := 5; want >= 1; want-- {
		v, ok := l.PopFront()
		if !ok || v != want {
			t.Fatalf("pop = %d/%v, want %d", v, ok, want)
		}
	}
	if _, ok := l.PopFront(); ok {
		t.Fatal("pop from empty list must fail")
	}
}

func TestEmptyAndLen(t *testing.T) {
	var l List[string]
	if !l.Empty() || l.Len() != 0 {
		t.Fatal("zero value must be empty")
	}
	l.PushFront("a")
	l.PushFront("b")
	if l.Len() != 2 || l.Empty() {
		t.Fatalf("len = %d", l.Len())
	}
	l.PopFront()
	if l.Len() != 1 {
		t.Fatalf("len = %d after pop", l.Len())
	}
}

func TestRemoveFirstMatch(t *testing.T) {
	var l List[int]
	for i := 1; i <= 6; i++ {
		l.PushFront(i) // list: 6 5 4 3 2 1
	}
	v, ok := l.RemoveFirst(func(x int) bool { return x%2 == 1 })
	if !ok || v != 5 {
		t.Fatalf("removed %d/%v, want first odd = 5", v, ok)
	}
	v, ok = l.RemoveFirst(func(x int) bool { return x == 42 })
	if ok {
		t.Fatalf("matched nonexistent element: %d", v)
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d, want 5", l.Len())
	}
}

func TestScan(t *testing.T) {
	var l List[int]
	for i := 1; i <= 4; i++ {
		l.PushFront(i)
	}
	var seen []int
	l.Scan(func(v int) bool { seen = append(seen, v); return true })
	want := []int{4, 3, 2, 1}
	if len(seen) != 4 {
		t.Fatalf("scan saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("scan order %v, want %v", seen, want)
		}
	}
	// Early stop.
	count := 0
	l.Scan(func(int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop scanned %d", count)
	}
	// Removed elements are not scanned.
	l.RemoveFirst(func(v int) bool { return v == 3 })
	seen = nil
	l.Scan(func(v int) bool { seen = append(seen, v); return true })
	for _, v := range seen {
		if v == 3 {
			t.Fatal("scan saw removed element")
		}
	}
}

// Property: any interleaved sequence of pushes and pops behaves like a
// multiset — everything popped was pushed, nothing popped twice, and what
// remains is push-count minus pop-count.
func TestMultisetProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var l List[int]
		pushed := make(map[int]int)
		popped := make(map[int]int)
		next := 0
		for _, o := range ops {
			if o%3 != 0 {
				l.PushFront(next)
				pushed[next]++
				next++
			} else if v, ok := l.PopFront(); ok {
				popped[v]++
			}
		}
		total := 0
		for v, n := range popped {
			if pushed[v] < n {
				return false
			}
			total += n
		}
		return l.Len() == len(pushed)-total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPushPop(t *testing.T) {
	var l List[int]
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	results := make([][]int, workers)
	// Half the workers push a disjoint range, half pop.
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w%2 == 0 {
				base := w * perW
				for i := 0; i < perW; i++ {
					l.PushFront(base + i)
				}
			} else {
				for i := 0; i < perW; i++ {
					if v, ok := l.PopFront(); ok {
						results[w] = append(results[w], v)
					}
				}
			}
		}()
	}
	wg.Wait()
	// Drain the rest.
	var drained []int
	for {
		v, ok := l.PopFront()
		if !ok {
			break
		}
		drained = append(drained, v)
	}
	seen := make(map[int]bool)
	record := func(v int) {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	for _, r := range results {
		for _, v := range r {
			record(v)
		}
	}
	for _, v := range drained {
		record(v)
	}
	// Every pushed element was popped exactly once.
	if len(seen) != (workers/2)*perW {
		t.Fatalf("popped %d distinct values, want %d", len(seen), (workers/2)*perW)
	}
	if !l.Empty() {
		t.Fatalf("list not empty at end: len=%d", l.Len())
	}
}

func TestConcurrentRemoveFirst(t *testing.T) {
	var l List[int]
	const n = 4000
	for i := 0; i < n; i++ {
		l.PushFront(i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int]bool)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := l.RemoveFirst(func(x int) bool { return x%2 == 0 })
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					mu.Unlock()
					t.Errorf("value %d removed twice", v)
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n/2 {
		t.Fatalf("removed %d evens, want %d", len(seen), n/2)
	}
	// All odds remain.
	count := 0
	l.Scan(func(v int) bool {
		if v%2 == 0 {
			t.Fatalf("even value %d survived", v)
		}
		count++
		return true
	})
	if count != n/2 {
		t.Fatalf("scan found %d odds, want %d", count, n/2)
	}
}
