// Package lockfree provides the non-blocking linked list backing the ghost
// superblock pool (§3.6 of the FleetIO paper cites Harris' pragmatic
// non-blocking lists). The implementation uses head-insertion, CAS-claimed
// logical deletion, and cooperative physical unlinking — a scheme that is
// linearizable for the pool's three operations (push, pop-first,
// remove-matching) and safe in a garbage-collected runtime.
//
// Invariants that make the unlink race-free without Harris' mark bit:
// nodes are inserted only at the head, so interior next pointers only ever
// move forward past claimed nodes; a stale unlink can therefore resurrect
// an already-claimed (logically deleted) node, which traversals skip, but
// can never detach a live one.
package lockfree

import "sync/atomic"

type node[T any] struct {
	value   T
	next    atomic.Pointer[node[T]]
	claimed atomic.Bool
}

// List is a lock-free linked list. The zero value is an empty list.
type List[T any] struct {
	head atomic.Pointer[node[T]]
	size atomic.Int64
}

// PushFront inserts v at the head of the list.
func (l *List[T]) PushFront(v T) {
	n := &node[T]{value: v}
	for {
		h := l.head.Load()
		n.next.Store(h)
		if l.head.CompareAndSwap(h, n) {
			l.size.Add(1)
			return
		}
	}
}

// PopFront removes and returns the first live element. ok is false when
// the list is (logically) empty.
func (l *List[T]) PopFront() (v T, ok bool) {
	return l.RemoveFirst(func(T) bool { return true })
}

// RemoveFirst removes and returns the first live element satisfying match,
// scanning from the head. ok is false when no live element matches.
func (l *List[T]) RemoveFirst(match func(T) bool) (v T, ok bool) {
	var prev *node[T]
	cur := l.head.Load()
	for cur != nil {
		next := cur.next.Load()
		if cur.claimed.Load() {
			// Cooperative physical unlink of a logically deleted node.
			if prev == nil {
				l.head.CompareAndSwap(cur, next)
			} else {
				prev.next.CompareAndSwap(cur, next)
			}
			cur = next
			continue
		}
		if match(cur.value) && cur.claimed.CompareAndSwap(false, true) {
			l.size.Add(-1)
			// Best-effort immediate unlink.
			if prev == nil {
				l.head.CompareAndSwap(cur, cur.next.Load())
			} else {
				prev.next.CompareAndSwap(cur, cur.next.Load())
			}
			return cur.value, true
		}
		// Either no match or someone else claimed it first; move on.
		if !cur.claimed.Load() {
			prev = cur
		}
		cur = next
	}
	return v, false
}

// Scan calls fn on every live element from head to tail, stopping early if
// fn returns false. Elements claimed concurrently may or may not be seen.
func (l *List[T]) Scan(fn func(T) bool) {
	for cur := l.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.claimed.Load() {
			continue
		}
		if !fn(cur.value) {
			return
		}
	}
}

// Len returns the number of live elements. It is exact when the list is
// quiescent and a linearizable approximation under concurrency.
func (l *List[T]) Len() int {
	n := l.size.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the list has no live elements.
func (l *List[T]) Empty() bool { return l.Len() == 0 }
