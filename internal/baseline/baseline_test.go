package baseline

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vssd"
)

func snapBW(id int, bw float64, dur sim.Time) vssd.WindowSnapshot {
	var w metrics.Window
	w.Complete(false, int64(bw*float64(dur)/1e9), 100, 0, 0)
	return vssd.WindowSnapshot{VSSD: id, Duration: dur, Window: w}
}

func TestStaticBaselinesNeverAct(t *testing.T) {
	for _, p := range []interface {
		Name() string
		Decide(sim.Time, []vssd.WindowSnapshot) []vssd.Action
	}{HardwareIsolation(), SoftwareIsolation()} {
		if acts := p.Decide(0, []vssd.WindowSnapshot{{}}); acts != nil {
			t.Fatalf("%s acted", p.Name())
		}
	}
	if HardwareIsolation().Name() != "Hardware Isolation" {
		t.Fatal("name wrong")
	}
	if SoftwareIsolation().Name() != "Software Isolation" {
		t.Fatal("name wrong")
	}
}

func TestConfigureSoftwareIsolation(t *testing.T) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 4
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 8
	p := vssd.NewPlatform(eng, pc)
	all := []int{0, 1, 2, 3}
	p.AddVSSD(vssd.Config{Name: "a", Channels: all, LogicalPages: 512})
	p.AddVSSD(vssd.Config{Name: "b", Channels: all, LogicalPages: 512})
	ConfigureSoftwareIsolation(p, 1.5)
	// Smoke: requests still flow under throttling.
	var done bool
	p.VSSD(0).Submit(&vssd.Request{Write: true, LPN: 0, Pages: 1,
		OnComplete: func(*vssd.Request, sim.Time) { done = true }})
	eng.Run()
	if !done {
		t.Fatal("request did not complete under software isolation")
	}
}

func TestAdaptiveProportionalAllocation(t *testing.T) {
	a := &Adaptive{TotalChannels: 8}
	snaps := []vssd.WindowSnapshot{
		snapBW(0, 300e6, sim.Second), // hungry
		snapBW(1, 100e6, sim.Second), // light
	}
	acts := a.Decide(0, snaps)
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	var n0, n1 int
	seen := map[int]bool{}
	for _, act := range acts {
		if act.Kind != vssd.ActSetChannels {
			t.Fatalf("unexpected action %v", act.Kind)
		}
		for _, c := range act.Channels {
			if seen[c] {
				t.Fatalf("channel %d assigned twice", c)
			}
			seen[c] = true
		}
		if act.VSSD == 0 {
			n0 = len(act.Channels)
		} else {
			n1 = len(act.Channels)
		}
	}
	if n0+n1 != 8 {
		t.Fatalf("partition covers %d channels", n0+n1)
	}
	if n0 <= n1 {
		t.Fatalf("hungry vSSD got %d ≤ light's %d", n0, n1)
	}
	if n1 < 1 {
		t.Fatal("every vSSD keeps at least one channel")
	}
}

func TestAdaptiveIdleSplitsEvenly(t *testing.T) {
	a := &Adaptive{TotalChannels: 8}
	snaps := []vssd.WindowSnapshot{
		{VSSD: 0, Duration: sim.Second},
		{VSSD: 1, Duration: sim.Second},
	}
	acts := a.Decide(0, snaps)
	for _, act := range acts {
		if len(act.Channels) != 4 {
			t.Fatalf("idle split = %d channels", len(act.Channels))
		}
	}
}

func TestAdaptiveDegenerate(t *testing.T) {
	a := &Adaptive{TotalChannels: 1}
	if acts := a.Decide(0, []vssd.WindowSnapshot{{}, {}}); acts != nil {
		t.Fatal("cannot partition 1 channel across 2 vSSDs")
	}
	if acts := a.Decide(0, nil); acts != nil {
		t.Fatal("no snaps, no actions")
	}
}

func TestSSDKeeperPredictsMonotoneDemand(t *testing.T) {
	sk := NewSSDKeeper(16, 64e6, 1)
	low := sk.Predict(0.05, 0.2, 0.5)
	high := sk.Predict(0.8, 0.2, 0.5)
	if low < 1 || high > 16 {
		t.Fatalf("predictions out of range: %d, %d", low, high)
	}
	if high <= low {
		t.Fatalf("demand not increasing with bandwidth: %d vs %d", low, high)
	}
	// A near-saturating workload should demand most of the device.
	if high < 10 {
		t.Fatalf("80%% load predicted only %d channels", high)
	}
	// A tiny workload should demand few channels.
	if low > 4 {
		t.Fatalf("5%% load predicted %d channels", low)
	}
}

func TestSSDKeeperPartitionsOnceAfterObservation(t *testing.T) {
	sk := NewSSDKeeper(8, 64e6, 2)
	sk.ObserveWindows = 2
	snaps := []vssd.WindowSnapshot{
		snapBW(0, 300e6, sim.Second),
		snapBW(1, 30e6, sim.Second),
	}
	if acts := sk.Decide(0, snaps); acts != nil {
		t.Fatal("acted before observation finished")
	}
	acts := sk.Decide(0, snaps)
	if acts == nil {
		t.Fatal("no partition after observation")
	}
	if !sk.Decided() {
		t.Fatal("not marked decided")
	}
	total := 0
	var hungry, light int
	for _, a := range acts {
		total += len(a.Channels)
		if a.VSSD == 0 {
			hungry = len(a.Channels)
		} else {
			light = len(a.Channels)
		}
	}
	if total != 8 {
		t.Fatalf("partition covers %d channels", total)
	}
	if hungry <= light {
		t.Fatalf("hungry=%d light=%d", hungry, light)
	}
	// Static afterwards.
	if acts := sk.Decide(0, snaps); acts != nil {
		t.Fatal("SSDKeeper must stay static after deciding")
	}
}
