// Package baseline implements the four comparison policies of §4.1:
//
//   - Hardware Isolation: static, equal, hardware-isolated channel shares.
//   - SSDKeeper: a DNN predicts each vSSD's channel demand from its
//     workload features and fixes a static hardware-isolated partition.
//   - Adaptive: per-window proportional channel reallocation (eZNS-style).
//   - Software Isolation: all vSSDs share all channels behind token-bucket
//     rate limiting and stride scheduling.
//
// Setup helpers configure the platform for each sharing style; the Policy
// implementations provide the runtime behavior.
package baseline

import (
	"math"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/vssd"
)

// HardwareIsolation never acts at runtime; the harness gives each vSSD an
// equal exclusive channel share at setup.
func HardwareIsolation() core.Policy {
	return core.StaticPolicy{PolicyName: "Hardware Isolation"}
}

// SoftwareIsolation never acts at runtime; ConfigureSoftwareIsolation sets
// up the shared channels, token buckets, and stride tickets.
func SoftwareIsolation() core.Policy {
	return core.StaticPolicy{PolicyName: "Software Isolation"}
}

// ConfigureSoftwareIsolation applies the §4.1 software-isolated setup to
// every vSSD: a token-bucket rate limit of shareFactor × (device peak /
// #vSSDs) and equal stride tickets. shareFactor > 1 lets tenants briefly
// exceed their fair share (utilization-friendly, weak isolation).
func ConfigureSoftwareIsolation(p *vssd.Platform, shareFactor float64) {
	cfg := p.FlashConfig()
	peak := cfg.ChannelBandwidth() * float64(cfg.Channels)
	n := len(p.VSSDs())
	if n == 0 {
		return
	}
	rate := peak / float64(n) * shareFactor
	for _, v := range p.VSSDs() {
		v.SetRateLimit(rate, rate/2)
	}
}

// Adaptive reallocates flash channels every window proportionally to each
// vSSD's bandwidth in the prior window, following the elastic-namespace
// approach the paper cites [31]. Every vSSD keeps at least one channel.
type Adaptive struct {
	// TotalChannels is the pool being partitioned.
	TotalChannels int
}

// Name implements core.Policy.
func (a *Adaptive) Name() string { return "Adaptive" }

// Decide implements core.Policy.
func (a *Adaptive) Decide(_ sim.Time, snaps []vssd.WindowSnapshot) []vssd.Action {
	n := len(snaps)
	if n == 0 || a.TotalChannels < n {
		return nil
	}
	bws := make([]float64, n)
	total := 0.0
	for i, s := range snaps {
		dur := s.Duration
		if dur <= 0 {
			dur = 1
		}
		bws[i] = s.Window.Bandwidth(dur)
		total += bws[i]
	}
	// Every vSSD keeps a minimum share (a quarter of its equal split) so a
	// briefly idle tenant is throttled, not starved outright.
	floor := a.TotalChannels / n / 4
	if floor < 1 {
		floor = 1
	}
	counts := make([]int, n)
	assigned := 0
	if total <= 0 {
		for i := range counts {
			counts[i] = a.TotalChannels / n
			assigned += counts[i]
		}
	} else {
		for i := range counts {
			counts[i] = int(float64(a.TotalChannels) * bws[i] / total)
			if counts[i] < floor {
				counts[i] = floor
			}
			assigned += counts[i]
		}
	}
	// Fix rounding: give leftovers to (or take overruns from) the largest
	// consumers first.
	for assigned < a.TotalChannels {
		best := argmaxF(bws, counts, +1)
		counts[best]++
		assigned++
	}
	for assigned > a.TotalChannels {
		worst := argminWithFloor(counts, bws, floor)
		if worst < 0 {
			break
		}
		counts[worst]--
		assigned--
	}
	// Carve contiguous ranges.
	actions := make([]vssd.Action, 0, n)
	next := 0
	for i, c := range counts {
		chans := make([]int, 0, c)
		for j := 0; j < c; j++ {
			chans = append(chans, next)
			next++
		}
		actions = append(actions, vssd.Action{VSSD: snaps[i].VSSD, Kind: vssd.ActSetChannels, Channels: chans})
	}
	return actions
}

func argmaxF(bws []float64, counts []int, _ int) int {
	best, bestV := 0, math.Inf(-1)
	for i, b := range bws {
		v := b / float64(counts[i]+1)
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func argminWithFloor(counts []int, bws []float64, floor int) int {
	best, bestV := -1, math.Inf(1)
	for i, c := range counts {
		if c <= floor {
			continue
		}
		v := bws[i] / float64(c)
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SSDKeeper reproduces the paper's learned baseline [26]: a small DNN maps
// observed workload features to a channel demand, and the resulting
// hardware-isolated partition is applied once and kept static (minimizing
// average latency via right-sizing, but unable to track dynamics).
type SSDKeeper struct {
	net *nn.ActorCritic
	// ObserveWindows is how many windows to watch before partitioning.
	ObserveWindows int
	TotalChannels  int
	ChannelBW      float64

	seen    int
	sumBW   []float64
	sumIOPS []float64
	decided bool
}

// NewSSDKeeper builds the baseline and trains its demand-prediction DNN on
// synthetic (features → ideal channels) pairs, standing in for the
// original's offline training corpus.
func NewSSDKeeper(totalChannels int, channelBW float64, seed int64) *SSDKeeper {
	rng := sim.NewRNG(seed)
	net := nn.NewActorCritic(3, 16, nil, rng)
	opt := nn.NewAdam(0.01)
	// Ideal demand: enough channels for the offered bandwidth plus 20%
	// headroom — the latency-minimizing static allocation.
	for step := 0; step < 3000; step++ {
		net.ZeroGrad()
		for b := 0; b < 16; b++ {
			offered := rng.Float64() * float64(totalChannels) * channelBW
			iops := rng.Float64()
			readRatio := rng.Float64()
			want := math.Ceil(offered * 1.2 / channelBW)
			if want < 1 {
				want = 1
			}
			if want > float64(totalChannels) {
				want = float64(totalChannels)
			}
			x := []float64{offered / (float64(totalChannels) * channelBW), iops, readRatio}
			_, v, cache := net.Forward(x)
			net.Backward(cache, nil, 2*(v-want))
		}
		opt.Step(net.Layers(), 16)
	}
	return &SSDKeeper{
		net:            net,
		ObserveWindows: 3,
		TotalChannels:  totalChannels,
		ChannelBW:      channelBW,
	}
}

// Name implements core.Policy.
func (s *SSDKeeper) Name() string { return "SSDKeeper" }

// Decided reports whether the static partition has been applied.
func (s *SSDKeeper) Decided() bool { return s.decided }

// Predict returns the DNN's channel demand for the given normalized
// features.
func (s *SSDKeeper) Predict(bwFrac, iopsNorm, readRatio float64) int {
	_, v, _ := s.net.Forward([]float64{bwFrac, iopsNorm, readRatio})
	d := int(math.Round(v))
	if d < 1 {
		d = 1
	}
	if d > s.TotalChannels {
		d = s.TotalChannels
	}
	return d
}

// Decide implements core.Policy: observe, then partition once.
func (s *SSDKeeper) Decide(_ sim.Time, snaps []vssd.WindowSnapshot) []vssd.Action {
	if s.decided {
		return nil
	}
	n := len(snaps)
	if s.sumBW == nil {
		s.sumBW = make([]float64, n)
		s.sumIOPS = make([]float64, n)
	}
	peak := float64(s.TotalChannels) * s.ChannelBW
	for i, sn := range snaps {
		dur := sn.Duration
		if dur <= 0 {
			dur = 1
		}
		s.sumBW[i] += sn.Window.Bandwidth(dur)
		s.sumIOPS[i] += sn.Window.IOPS(dur)
	}
	s.seen++
	if s.seen < s.ObserveWindows {
		return nil
	}
	demands := make([]int, n)
	total := 0
	for i := range snaps {
		bw := s.sumBW[i] / float64(s.seen)
		iops := s.sumIOPS[i] / float64(s.seen)
		demands[i] = s.Predict(bw/peak, iops/5000, snaps[i].Window.ReadRatio())
		total += demands[i]
	}
	// Scale into the available pool, keeping ≥1 channel each.
	counts := make([]int, n)
	assigned := 0
	for i, d := range demands {
		c := d * s.TotalChannels / maxInt(total, 1)
		if c < 1 {
			c = 1
		}
		counts[i] = c
		assigned += c
	}
	for assigned > s.TotalChannels {
		idx := -1
		for i, c := range counts {
			if c > 1 && (idx < 0 || c > counts[idx]) {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		counts[idx]--
		assigned--
	}
	for assigned < s.TotalChannels {
		idx := 0
		for i, d := range demands {
			if d > demands[idx] {
				idx = i
			}
		}
		counts[idx]++
		demands[idx] = 0 // spread leftovers
		assigned++
	}
	actions := make([]vssd.Action, 0, n)
	next := 0
	for i, c := range counts {
		chans := make([]int, 0, c)
		for j := 0; j < c; j++ {
			chans = append(chans, next)
			next++
		}
		actions = append(actions, vssd.Action{VSSD: snaps[i].VSSD, Kind: vssd.ActSetChannels, Channels: chans})
	}
	s.decided = true
	return actions
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
