package metrics

import "testing"

// BenchmarkHistogramAdd measures the per-sample recording cost, which sits
// on every request completion.
func BenchmarkHistogramAdd(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Add(int64(i%1000) * 1000)
	}
}

// BenchmarkHistogramQuantile measures tail-quantile queries on a populated
// histogram.
func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 100000; i++ {
		h.Add(i * 37 % 10_000_000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
