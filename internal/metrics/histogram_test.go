package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestHistogramEmptyQuantile pins the documented contract: an empty
// histogram returns the 0 "no data" sentinel for every q, including
// out-of-range ones, and keeps doing so after Add+Reset.
func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	h.Add(500)
	if h.Quantile(0.5) == 0 {
		t.Fatal("non-empty histogram returned the empty sentinel")
	}
	h.Reset()
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("post-Reset Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Add(12345)
	if h.Count() != 1 || h.Min() != 12345 || h.Max() != 12345 {
		t.Fatalf("single-sample stats wrong: %s", h.String())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v := h.Quantile(q)
		if v != 12345 {
			t.Fatalf("Quantile(%v) = %d, want 12345", q, v)
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 32; i++ {
		h.Add(i)
	}
	// Values below subBuckets are stored exactly; rank ceil(0.5*32)=16 is
	// the 16th smallest sample, i.e. value 15.
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("median of 0..31 = %d, want 15", got)
	}
	if h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var h Histogram
	samples := make([]int64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Latency-like distribution: lognormal-ish mix with a heavy tail.
		v := int64(50_000 + r.ExpFloat64()*400_000)
		if r.Intn(100) == 0 {
			v *= 10
		}
		h.Add(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < -0.05 || rel > 0.05 {
			t.Fatalf("Quantile(%v) = %d, exact %d, rel err %.3f", q, got, exact, rel)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, c Histogram
	for i := int64(1); i <= 1000; i++ {
		a.Add(i * 100)
		c.Add(i * 100)
	}
	for i := int64(1); i <= 1000; i++ {
		b.Add(i * 1000)
		c.Add(i * 1000)
	}
	a.Merge(&b)
	if a.Count() != c.Count() || a.Sum() != c.Sum() || a.Min() != c.Min() || a.Max() != c.Max() {
		t.Fatalf("merge mismatch: %s vs %s", a.String(), c.String())
	}
	if a.P99() != c.P99() {
		t.Fatalf("merged P99 %d != direct %d", a.P99(), c.P99())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Min() != 5 || b.Max() != 5 {
		t.Fatal("merge into empty lost samples")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-100)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: min=%d", h.Min())
	}
}

func TestHistogramCountAbove(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 100; i++ {
		h.Add(i * 1000)
	}
	above := h.CountAbove(50_000)
	// Conservative bound: strictly-above counting can undercount within one
	// bucket but never overcount.
	if above > 49 || above < 40 {
		t.Fatalf("CountAbove(50000) = %d, want in [40,49]", above)
	}
}

// Property: histogram quantile is sandwiched between the sample min and max,
// monotone in q, and mean/sum/count match direct accumulation.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		var sum int64
		min, max := int64(raw[0]), int64(raw[0])
		for _, u := range raw {
			v := int64(u)
			h.Add(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if h.Sum() != sum || h.Count() != int64(len(raw)) || h.Min() != min || h.Max() != max {
			return false
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < min || v > max || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileRankOracle checks Quantile against a sorted-sample
// oracle with exact integer rank arithmetic: the q-quantile of n samples is
// the ceil(q*n)-th smallest, and the histogram must return a value in that
// sample's bucket. q values are k/100 fractions so the oracle rank
// (k*n+99)/100 is computed without floats — this is the property the old
// float-only rank broke (0.07*100 rounds to 7.0000000000000009, Ceil'ing
// to rank 8 instead of 7).
func TestHistogramQuantileRankOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 7, 10, 100, 1000, 4096} {
		var h Histogram
		samples := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			v := int64(r.Intn(1_000_000))
			h.Add(v)
			samples = append(samples, v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for k := 1; k <= 99; k++ {
			q := float64(k) / 100
			rank := (k*n + 99) / 100 // ceil(k*n/100) in exact arithmetic
			oracle := samples[rank-1]
			got := h.Quantile(q)
			if slotFor(got) != slotFor(oracle) {
				t.Fatalf("n=%d Quantile(%v) = %d (slot %d), oracle rank %d sample %d (slot %d)",
					n, q, got, slotFor(got), rank, oracle, slotFor(oracle))
			}
		}
	}
}

// TestHistogramQuantileBoundary pins exact behavior when q lands exactly on
// a rank boundary of exactly-stored small values.
func TestHistogramQuantileBoundary(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 10; i++ {
		h.Add(i) // values < subBuckets are stored exactly
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.07, 1}, // ceil(0.7) = rank 1 — regression: float error gave rank 2
		{0.1, 1},  // ceil(1.0) = rank 1, exactly on the boundary
		{0.10001, 2},
		{0.5, 5}, // ceil(5.0) = rank 5
		{0.51, 6},
		{0.9, 9},
		{0.99, 10},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileNaN pins the NaN contract: int64(NaN) is undefined
// behavior in Go, so a NaN q must short-circuit to the 0 sentinel on both
// empty and populated histograms.
func TestHistogramQuantileNaN(t *testing.T) {
	nan := math.NaN()
	var h Histogram
	if got := h.Quantile(nan); got != 0 {
		t.Fatalf("empty Quantile(NaN) = %d, want 0", got)
	}
	h.Add(123456)
	if got := h.Quantile(nan); got != 0 {
		t.Fatalf("Quantile(NaN) = %d, want 0 sentinel", got)
	}
}

func TestSlotRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		s := slotFor(v)
		lo := slotLow(s)
		if lo > v {
			t.Fatalf("slotLow(%d)=%d exceeds value %d", s, lo, v)
		}
		// Relative error bounded by one sub-bucket width.
		if v >= subBuckets {
			if float64(v-lo)/float64(v) > 1.0/subBuckets {
				t.Fatalf("bucket error too large for %d: lo=%d", v, lo)
			}
		} else if lo != v {
			t.Fatalf("small values must be exact: %d -> %d", v, lo)
		}
	}
}

func TestWindowBasics(t *testing.T) {
	var w Window
	const slo = 1_000_000
	w.Complete(false, 4096, 500_000, 100_000, slo)
	w.Complete(true, 8192, 2_000_000, 900_000, slo)
	if w.Reads != 1 || w.Writes != 1 {
		t.Fatalf("counts: %d reads %d writes", w.Reads, w.Writes)
	}
	if w.Bytes() != 12288 {
		t.Fatalf("bytes = %d", w.Bytes())
	}
	if w.SLOViolations != 1 {
		t.Fatalf("SLO violations = %d, want 1", w.SLOViolations)
	}
	if got := w.SLOViolationRate(); got != 0.5 {
		t.Fatalf("violation rate = %v", got)
	}
	if got := w.ReadRatio(); got != 0.5 {
		t.Fatalf("read ratio = %v", got)
	}
	if got := w.AvgLatency(); got != 1_250_000 {
		t.Fatalf("avg latency = %v", got)
	}
	if got := w.AvgQueueDelay(); got != 500_000 {
		t.Fatalf("avg qdelay = %v", got)
	}
}

func TestWindowRates(t *testing.T) {
	var w Window
	for i := 0; i < 100; i++ {
		w.Complete(false, 1<<20, 1000, 0, 0)
	}
	const sec = int64(1e9)
	if bw := w.Bandwidth(sec); bw != 100<<20 {
		t.Fatalf("bandwidth = %v", bw)
	}
	if io := w.IOPS(2 * sec); io != 50 {
		t.Fatalf("IOPS = %v", io)
	}
	if w.Bandwidth(0) != 0 || w.IOPS(-1) != 0 {
		t.Fatal("degenerate durations must give 0")
	}
}

func TestWindowIdleReadRatioNeutral(t *testing.T) {
	var w Window
	if w.ReadRatio() != 0.5 {
		t.Fatal("idle window read ratio should be neutral 0.5")
	}
}

func TestWindowMergeAndReset(t *testing.T) {
	var a, b Window
	a.Complete(false, 100, 10, 1, 5)
	b.Complete(true, 200, 20, 2, 5)
	a.Merge(&b)
	if a.Requests() != 2 || a.Bytes() != 300 || a.SLOViolations != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
	a.Reset()
	if a.Requests() != 0 || a.Hist.Count() != 0 {
		t.Fatal("reset incomplete")
	}
}
