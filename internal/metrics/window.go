package metrics

// Window accumulates the per-decision-window statistics that become the RL
// state of a vSSD (Table 1 of the paper): bandwidth, IOPS, average and tail
// latency, SLO violations, queue delay, and read/write mix.
type Window struct {
	// ReadBytes and WriteBytes are payload bytes completed in the window.
	ReadBytes  int64
	WriteBytes int64
	// Reads and Writes count completed requests.
	Reads  int64
	Writes int64
	// LatencySum is the sum of request latencies (ns); LatencyCount the
	// number of completed requests contributing to it.
	LatencySum   int64
	LatencyCount int64
	// SLOViolations counts completed requests whose latency exceeded the
	// vSSD's SLO.
	SLOViolations int64
	// QueueDelaySum is the total time (ns) requests spent queued before
	// their first flash operation was dispatched.
	QueueDelaySum int64
	// Retries counts page writes re-dispatched after an injected NAND
	// program failure; zero without a fault injector. The per-tenant
	// error-rate RL state feature derives from it.
	Retries int64
	// Hist records per-request latency for tail quantiles.
	Hist Histogram
}

// Reset zeroes the window in place for reuse.
func (w *Window) Reset() { *w = Window{} }

// Requests returns the number of completed requests.
func (w *Window) Requests() int64 { return w.Reads + w.Writes }

// Bytes returns the total payload bytes moved.
func (w *Window) Bytes() int64 { return w.ReadBytes + w.WriteBytes }

// Bandwidth returns bytes per second over a window of length dur (ns).
func (w *Window) Bandwidth(dur int64) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(w.Bytes()) / (float64(dur) / 1e9)
}

// IOPS returns completed requests per second over a window of length dur.
func (w *Window) IOPS(dur int64) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(w.Requests()) / (float64(dur) / 1e9)
}

// AvgLatency returns the mean request latency in ns.
func (w *Window) AvgLatency() float64 {
	if w.LatencyCount == 0 {
		return 0
	}
	return float64(w.LatencySum) / float64(w.LatencyCount)
}

// AvgQueueDelay returns the mean queueing delay in ns.
func (w *Window) AvgQueueDelay() float64 {
	if w.LatencyCount == 0 {
		return 0
	}
	return float64(w.QueueDelaySum) / float64(w.LatencyCount)
}

// SLOViolationRate returns the fraction of requests violating the SLO.
func (w *Window) SLOViolationRate() float64 {
	n := w.Requests()
	if n == 0 {
		return 0
	}
	return float64(w.SLOViolations) / float64(n)
}

// ReadRatio returns reads / (reads+writes), or 0.5 when idle (a neutral
// value so an idle vSSD does not look write-only to the RL state).
func (w *Window) ReadRatio() float64 {
	n := w.Requests()
	if n == 0 {
		return 0.5
	}
	return float64(w.Reads) / float64(n)
}

// Complete records a finished request into the window.
func (w *Window) Complete(isWrite bool, bytes, latency, queueDelay, slo int64) {
	if isWrite {
		w.Writes++
		w.WriteBytes += bytes
	} else {
		w.Reads++
		w.ReadBytes += bytes
	}
	w.LatencySum += latency
	w.LatencyCount++
	w.QueueDelaySum += queueDelay
	w.Hist.Add(latency)
	if slo > 0 && latency > slo {
		w.SLOViolations++
	}
}

// Merge accumulates o into w.
func (w *Window) Merge(o *Window) {
	w.ReadBytes += o.ReadBytes
	w.WriteBytes += o.WriteBytes
	w.Reads += o.Reads
	w.Writes += o.Writes
	w.LatencySum += o.LatencySum
	w.LatencyCount += o.LatencyCount
	w.SLOViolations += o.SLOViolations
	w.QueueDelaySum += o.QueueDelaySum
	w.Retries += o.Retries
	w.Hist.Merge(&o.Hist)
}
