// Package metrics provides the measurement machinery used throughout the
// FleetIO reproduction: log-bucketed latency histograms with accurate tail
// quantiles, per-window bandwidth/IOPS/SLO counters, and device utilization
// accounting. All values are in virtual-time nanoseconds and bytes.
//
// Everything here reports 0 — never an error or NaN — when no data has
// been recorded (see Histogram.Quantile for the rationale), which is what
// lets downstream consumers (SLO calibration, the RL state vector, the
// internal/obs telemetry probes) read mid-run without guarding for
// emptiness.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
)

// histogram layout: values are bucketed by (exponent of the magnitude,
// linear sub-bucket). With 32 sub-buckets per octave the relative
// quantization error is bounded by ~3%, which is ample for P99/P99.9
// comparisons between policies.
const (
	subBucketBits  = 5
	subBuckets     = 1 << subBucketBits
	histogramSlots = 64 * subBuckets
)

// Histogram records non-negative int64 samples (latencies in ns) in
// logarithmic buckets. The zero value is ready to use.
type Histogram struct {
	counts [histogramSlots]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

func slotFor(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// exp is the index of the highest set bit; values in
	// [2^exp, 2^(exp+1)) are split into subBuckets linear slots.
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int(v>>(uint(exp)-subBucketBits)) - subBuckets
	return (exp-subBucketBits+1)*subBuckets + sub
}

// slotLow returns the smallest value mapping to slot s; used to report
// quantiles as representative values.
func slotLow(s int) int64 {
	if s < subBuckets {
		return int64(s)
	}
	exp := s/subBuckets + subBucketBits - 1
	sub := s % subBuckets
	return (int64(subBuckets) + int64(sub)) << (uint(exp) - subBucketBits)
}

// Add records one sample. Negative samples are clamped to zero (they can
// only arise from model bugs; clamping keeps measurement total-order safe).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[slotFor(v)]++
	h.total++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest recorded sample, or 0 with no samples.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded sample, or 0 with no samples.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an estimate of the q-quantile (q in [0,1]). The estimate
// is the lower bound of the bucket holding the q-th sample, so it is within
// one bucket width (≈3% relative) of the true order statistic.
//
// An empty histogram returns 0 for every q, including q outside [0,1].
// Zero is a deliberate sentinel, not a measurement: no real completion has
// a zero-nanosecond latency, so downstream consumers (SLO calibration,
// telemetry gauges, figure tables) can — and do — treat a zero quantile as
// "no data" rather than an exceptionally fast tail. A NaN q also returns
// the 0 sentinel (int64(NaN) is undefined in Go, so it must not reach the
// rank conversion).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// The q-quantile is the ceil(q*total)-th smallest sample. The product
	// can land one float ulp above an exact integer boundary (0.07*100 =
	// 7.0000000000000009), which would push Ceil one rank too high; shave
	// a relative epsilon before rounding so exact boundaries stay exact.
	rank := int64(math.Ceil(q * float64(h.total) * (1 - 4e-16)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for s := 0; s < histogramSlots; s++ {
		seen += h.counts[s]
		if seen >= rank {
			lo := slotLow(s)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// P50, P95, P99, P999 are convenience accessors for common tail quantiles.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P95() int64  { return h.Quantile(0.95) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// CountAbove returns how many samples exceed v.
func (h *Histogram) CountAbove(v int64) int64 {
	if h.total == 0 {
		return 0
	}
	s := slotFor(v)
	var above int64
	for i := s + 1; i < histogramSlots; i++ {
		above += h.counts[i]
	}
	// The sample's own bucket may contain values both above and below v;
	// attribute them conservatively as not-above (bucket lower bound <= v).
	return above
}

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d p999=%d max=%d",
		h.total, h.Mean(), h.P50(), h.P95(), h.P99(), h.P999(), h.max)
}
