//go:build !flashdebug

package flash

// poolDebug enables use-after-release poisoning of recycled Ops. The
// default build keeps the release path branch-free; `go test
// -tags=flashdebug ./internal/flash/` turns poisoning on (see debug_on.go).
const poolDebug = false

// poisonOp is a no-op without the flashdebug tag; the constant guard lets
// the compiler delete the call entirely.
func poisonOp(*Op) {}
