package flash

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSaturatedChannel measures simulated page reads per wall second
// on one fully loaded channel.
func BenchmarkSaturatedChannel(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	issued := 0
	var issue func()
	issue = func() {
		if issued >= b.N {
			return
		}
		issued++
		d.Submit(&Op{Kind: OpRead,
			Addr: PPA{Channel: 0, Chip: issued % cfg.ChipsPerChannel},
			Done: func(sim.Time) { issue() }})
	}
	b.ResetTimer()
	for i := 0; i < cfg.QueueDepth && i < b.N; i++ {
		issue()
	}
	eng.Run()
}

// BenchmarkMixedDevice measures a full 16-channel device under a
// read/write mix.
func BenchmarkMixedDevice(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	rng := sim.NewRNG(1)
	issued := 0
	var issue func()
	issue = func() {
		if issued >= b.N {
			return
		}
		issued++
		kind := OpRead
		if rng.Float64() < 0.3 {
			kind = OpProgram
		}
		d.Submit(&Op{Kind: kind,
			Addr: PPA{Channel: rng.Intn(cfg.Channels), Chip: rng.Intn(cfg.ChipsPerChannel)},
			Done: func(sim.Time) { issue() }})
	}
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N; i++ {
		issue()
	}
	eng.Run()
}
