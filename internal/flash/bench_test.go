package flash

import (
	"testing"

	"repro/internal/sim"
)

// benchDriver keeps a closed loop of ops flowing through a device using
// the allocation-free path: AcquireOp + a package-level done handler, no
// capturing closures.
type benchDriver struct {
	d      *Device
	cfg    Config
	rng    *sim.RNG // nil for the read-only saturated-channel load
	issued int
	limit  int
}

// benchIssue submits the next op of the closed loop; ctx is the
// *benchDriver.
func benchIssue(ctx any, _ int64, _ sim.Time, _ OpStatus) {
	dr := ctx.(*benchDriver)
	if dr.issued >= dr.limit {
		return
	}
	dr.issued++
	op := dr.d.AcquireOp()
	if dr.rng == nil {
		op.Kind = OpRead
		op.Addr = PPA{Channel: 0, Chip: dr.issued % dr.cfg.ChipsPerChannel}
	} else {
		op.Kind = OpRead
		if dr.rng.Float64() < 0.3 {
			op.Kind = OpProgram
		}
		op.Addr = PPA{Channel: dr.rng.Intn(dr.cfg.Channels), Chip: dr.rng.Intn(dr.cfg.ChipsPerChannel)}
	}
	op.Done = benchIssue
	op.Ctx = dr
	dr.d.Submit(op)
}

// warm drives n ops through the closed loop outside the timed region so
// the op pool, channel queues, and event heap reach working capacity;
// the timed iterations then measure pure steady state at any benchtime.
func (dr *benchDriver) warm(eng *sim.Engine, prime, n int) {
	dr.issued, dr.limit = 0, n
	for i := 0; i < prime && i < n; i++ {
		benchIssue(dr, 0, 0, StatusOK)
	}
	eng.Run()
	dr.issued = 0
}

// BenchmarkSaturatedChannel measures simulated page reads per wall second
// on one fully loaded channel. Steady state must report 0 allocs/op
// (guarded by TestDeviceDatapathZeroAlloc and scripts/check.sh).
func BenchmarkSaturatedChannel(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	dr := &benchDriver{d: d, cfg: cfg}
	dr.warm(eng, cfg.QueueDepth, 4096)
	dr.limit = b.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < cfg.QueueDepth && i < b.N; i++ {
		benchIssue(dr, 0, 0, StatusOK)
	}
	eng.Run()
}

// BenchmarkMixedDevice measures a full 16-channel device under a
// read/write mix. Steady state must report 0 allocs/op.
func BenchmarkMixedDevice(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	dr := &benchDriver{d: d, cfg: cfg, rng: sim.NewRNG(1)}
	dr.warm(eng, 64, 4096)
	// Replay the warmed RNG sequence so the measured run never exceeds
	// the queue depths (and so the pool high-water mark) warm-up reached.
	dr.rng.Reseed(1)
	dr.limit = b.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N; i++ {
		benchIssue(dr, 0, 0, StatusOK)
	}
	eng.Run()
}
