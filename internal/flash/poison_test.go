//go:build flashdebug

package flash

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestReleasePoisonsOp verifies the flashdebug poison: a stale holder
// reading a recycled op sees out-of-range sentinels (negative channel, NaN
// pass), not plausible leftover data. Run with:
//
//	go test -tags=flashdebug -race ./internal/flash/
func TestReleasePoisonsOp(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	op := d.AcquireOp()
	op.Kind = OpRead
	op.Priority = 2
	op.Pass = 1.5
	op.CtxI = 7
	d.Submit(op)
	eng.Run()
	if !op.released {
		t.Fatal("completed op must be marked released")
	}
	if op.Addr.Channel >= 0 || op.Priority >= 0 || op.CtxI >= 0 || !math.IsNaN(op.Pass) {
		t.Fatalf("released op not poisoned: %+v", op)
	}
	if op.Done != nil || op.Ctx != nil {
		t.Fatal("released op must drop its callback and context refs")
	}
}

// TestPoisonedAddrPanicsOnResubmitPath: even if the released flag were
// bypassed, the poisoned address is out of range for any device, so a
// stale submit still fails loudly.
func TestPoisonedAddrPanicsOnResubmitPath(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	op := d.AcquireOp()
	op.Kind = OpRead
	d.Submit(op)
	eng.Run()
	stale := *op // copy the poisoned payload; the copy has released=true too
	stale.released = false
	defer func() {
		if recover() == nil {
			t.Fatal("poisoned address must fail range checks")
		}
	}()
	d.Submit(&stale)
}
