package flash

import (
	"testing"

	"repro/internal/sim"
)

func testConfig() Config {
	c := DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 4
	c.BlocksPerChip = 8
	c.PagesPerBlock = 16
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels must be invalid")
	}
	bad = DefaultConfig()
	bad.QueueDepth = -1
	if bad.Validate() == nil {
		t.Fatal("negative queue depth must be invalid")
	}
}

func TestConfigDerived(t *testing.T) {
	c := DefaultConfig()
	if got := c.BlockBytes(); got != 4<<20 {
		t.Fatalf("block bytes = %d, want 4MiB", got)
	}
	if got := c.TotalBlocks(); got != 16*4*256 {
		t.Fatalf("total blocks = %d", got)
	}
	bw := c.ChannelBandwidth()
	if bw < 60e6 || bw > 72e6 {
		t.Fatalf("channel bandwidth = %.1f MB/s, want ~64-67 MiB/s", bw/1e6)
	}
}

func TestSingleReadLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	var done sim.Time
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0, Block: 0, Page: 0},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { done = at }})
	eng.Run()
	want := d.Config().ReadPage + d.Config().transferTime(d.Config().PageSize)
	if done != want {
		t.Fatalf("read completed at %d, want %d", done, want)
	}
}

func TestSingleProgramLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	var done sim.Time
	d.Submit(&Op{Kind: OpProgram, Addr: PPA{Channel: 0, Chip: 0},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { done = at }})
	eng.Run()
	want := d.Config().transferTime(d.Config().PageSize) + d.Config().ProgramPage
	if done != want {
		t.Fatalf("program completed at %d, want %d", done, want)
	}
}

func TestEraseLatencyAndChipBlocking(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	d := NewDevice(eng, cfg)
	var eraseDone, readDone sim.Time
	d.Submit(&Op{Kind: OpErase, Addr: PPA{Channel: 0, Chip: 0},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { eraseDone = at }})
	// A read on the same chip must wait for the erase; a read on another
	// chip must not.
	var otherChip sim.Time
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { readDone = at }})
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 1},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { otherChip = at }})
	eng.Run()
	if eraseDone != cfg.EraseBlock {
		t.Fatalf("erase done at %d, want %d", eraseDone, cfg.EraseBlock)
	}
	if readDone <= cfg.EraseBlock {
		t.Fatalf("same-chip read finished during erase: %d", readDone)
	}
	if otherChip >= cfg.EraseBlock {
		t.Fatalf("other-chip read blocked by erase: %d", otherChip)
	}
}

func TestBusSerialization(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	d := NewDevice(eng, cfg)
	// Two reads on different chips of the same channel: cell senses overlap,
	// bus transfers serialize.
	var first, second sim.Time
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { first = at }})
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 1},
		Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { second = at }})
	eng.Run()
	xfer := cfg.transferTime(cfg.PageSize)
	if want := cfg.ReadPage + xfer; first != want {
		t.Fatalf("first read at %d, want %d", first, want)
	}
	if want := cfg.ReadPage + 2*xfer; second != want {
		t.Fatalf("second read at %d, want %d (bus must serialize)", second, want)
	}
}

func TestChannelIndependence(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	d := NewDevice(eng, cfg)
	var a, b sim.Time
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0}, Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { a = at }})
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 1, Chip: 0}, Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { b = at }})
	eng.Run()
	if a != b {
		t.Fatalf("reads on independent channels should finish together: %d vs %d", a, b)
	}
}

func TestPriorityOrdering(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.QueueDepth = 1 // force strict one-at-a-time so queue order is visible
	d := NewDevice(eng, cfg)
	var order []int
	mk := func(id, prio int) *Op {
		return &Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0}, Priority: prio,
			Done: func(any, int64, sim.Time, OpStatus) { order = append(order, id) }}
	}
	// Occupy the channel first so the rest queue up.
	d.Submit(mk(0, 0))
	d.Submit(mk(1, 0))
	d.Submit(mk(2, 2))
	d.Submit(mk(3, 1))
	eng.Run()
	want := []int{0, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestStridePassOrdering(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.QueueDepth = 1
	d := NewDevice(eng, cfg)
	var order []int
	mk := func(id int, pass float64) *Op {
		return &Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0}, Pass: pass,
			Done: func(any, int64, sim.Time, OpStatus) { order = append(order, id) }}
	}
	d.Submit(mk(0, 0))
	d.Submit(mk(1, 30))
	d.Submit(mk(2, 10))
	d.Submit(mk(3, 20))
	eng.Run()
	want := []int{0, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stride order = %v, want %v", order, want)
		}
	}
}

func TestQueueDepthLimit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.QueueDepth = 4
	d := NewDevice(eng, cfg)
	for i := 0; i < 10; i++ {
		d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: i % cfg.ChipsPerChannel}})
	}
	if got := d.Inflight(0); got != 4 {
		t.Fatalf("inflight = %d, want 4 (queue depth)", got)
	}
	if got := d.QueueLen(0); got != 6 {
		t.Fatalf("queued = %d, want 6", got)
	}
	eng.Run()
	if d.Inflight(0) != 0 || d.QueueLen(0) != 0 {
		t.Fatal("queue must drain")
	}
}

func TestChannelThroughputCalibration(t *testing.T) {
	// Saturate one channel with reads across all chips; sustained payload
	// bandwidth should approach the configured bus bandwidth (~64 MB/s).
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	const pages = 2000
	var completed int
	var last sim.Time
	for i := 0; i < pages; i++ {
		d.Submit(&Op{Kind: OpRead,
			Addr: PPA{Channel: 0, Chip: i % cfg.ChipsPerChannel, Block: 0, Page: i % cfg.PagesPerBlock},
			Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { completed++; last = at }})
	}
	eng.Run()
	if completed != pages {
		t.Fatalf("completed %d of %d", completed, pages)
	}
	bytes := float64(pages) * float64(cfg.PageSize)
	bw := bytes / (float64(last) / 1e9)
	peak := cfg.ChannelBandwidth()
	if bw < 0.9*peak || bw > 1.05*peak {
		t.Fatalf("saturated read bandwidth %.1f MB/s, want ~%.1f MB/s", bw/1e6, peak/1e6)
	}
}

func TestWriteThroughputBusLimited(t *testing.T) {
	// With 4 chips absorbing 500us programs behind a ~244us/page bus, write
	// throughput should also be close to bus-limited.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	const pages = 2000
	var last sim.Time
	for i := 0; i < pages; i++ {
		d.Submit(&Op{Kind: OpProgram,
			Addr: PPA{Channel: 0, Chip: i % cfg.ChipsPerChannel},
			Done: func(_ any, _ int64, at sim.Time, _ OpStatus) { last = at }})
	}
	eng.Run()
	bw := float64(pages) * float64(cfg.PageSize) / (float64(last) / 1e9)
	peak := cfg.ChannelBandwidth()
	if bw < 0.85*peak {
		t.Fatalf("write bandwidth %.1f MB/s too far below bus limit %.1f MB/s", bw/1e6, peak/1e6)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	d := NewDevice(eng, cfg)
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 0, Chip: 0}})
	d.Submit(&Op{Kind: OpProgram, Addr: PPA{Channel: 0, Chip: 1}})
	d.Submit(&Op{Kind: OpErase, Addr: PPA{Channel: 0, Chip: 2}})
	eng.Run()
	st := d.Stats(0)
	if st.Reads != 1 || st.Programs != 1 || st.Erases != 1 {
		t.Fatalf("op counts wrong: %+v", st)
	}
	if st.BytesRead != int64(cfg.PageSize) || st.BytesWritten != int64(cfg.PageSize) {
		t.Fatalf("byte counts wrong: %+v", st)
	}
	if st.BusBusy != 2*cfg.transferTime(cfg.PageSize) {
		t.Fatalf("bus busy = %d", st.BusBusy)
	}
}

func TestSubmitOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range channel must panic")
		}
	}()
	d.Submit(&Op{Kind: OpRead, Addr: PPA{Channel: 99}})
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpProgram.String() != "program" || OpErase.String() != "erase" {
		t.Fatal("OpKind strings wrong")
	}
}
