package flash

import (
	"testing"

	"repro/internal/sim"
)

// TestDeviceDatapathZeroAlloc is the allocation-regression guard for the
// per-I/O path: after warm-up (op pool filled, heaps and the event queue
// grown to their high-water mark), driving a mixed read/write load through
// a full device must not allocate at all.
func TestDeviceDatapathZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDevice(eng, cfg)
	dr := &benchDriver{d: d, cfg: cfg, rng: sim.NewRNG(7)}
	// Each drive replays the same op sequence (reseeded RNG), so warm-up
	// establishes every queue's high-water mark and the measured runs can
	// never trigger amortized slice growth — any alloc is a real per-op
	// regression.
	drive := func(n int) {
		dr.rng.Reseed(7)
		dr.issued = 0
		dr.limit = n
		for i := 0; i < 64 && i < n; i++ {
			benchIssue(dr, 0, 0, StatusOK)
		}
		eng.Run()
	}
	drive(4096)
	if allocs := testing.AllocsPerRun(10, func() { drive(4096) }); allocs > 0 {
		t.Fatalf("device datapath: %.1f allocs/run in steady state, want 0", allocs)
	}
}

// TestAcquireOpRecycles pins the pool contract: a completed op goes back
// to the device free list and is handed out again by the next Acquire.
func TestAcquireOpRecycles(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	op := d.AcquireOp()
	op.Kind = OpRead
	d.Submit(op)
	eng.Run()
	if got := d.AcquireOp(); got != op {
		t.Fatal("completed op must return to the device free list")
	}
}

// TestExternalOpAbsorbed: directly constructed ops are pulled into the
// pool on completion, so legacy callers feed the free list too.
func TestExternalOpAbsorbed(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	op := &Op{Kind: OpRead}
	d.Submit(op)
	eng.Run()
	if got := d.AcquireOp(); got != op {
		t.Fatal("externally constructed op must be absorbed into the pool")
	}
}

// TestSubmitReleasedOpPanics is the use-after-release detector: once the
// device has recycled an op, resubmitting the stale pointer must panic
// instead of corrupting the free list.
func TestSubmitReleasedOpPanics(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	op := d.AcquireOp()
	op.Kind = OpRead
	d.Submit(op)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("resubmitting a released op must panic")
		}
	}()
	d.Submit(op)
}

// TestDoneSeesContextNotOp verifies completion context travels through
// Ctx/CtxI and that the callback fires after the op is back on the free
// list (the Done-side half of the ownership contract).
func TestDoneSeesContextNotOp(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, testConfig())
	type payload struct{ hits int }
	pl := &payload{}
	op := d.AcquireOp()
	op.Kind = OpRead
	op.Ctx = pl
	op.CtxI = 42
	op.Done = func(ctx any, ctxI int64, _ sim.Time, _ OpStatus) {
		if ctx.(*payload) != pl || ctxI != 42 {
			t.Errorf("ctx=%v ctxI=%d, want %v 42", ctx, ctxI, pl)
		}
		ctx.(*payload).hits++
	}
	d.Submit(op)
	eng.Run()
	if pl.hits != 1 {
		t.Fatalf("Done ran %d times, want 1", pl.hits)
	}
	if got := d.AcquireOp(); got != op {
		t.Fatal("op must be released by the time Done has run")
	}
}
