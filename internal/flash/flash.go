// Package flash models an open-channel SSD at the level FleetIO manages it:
// channels that issue commands independently, chips that overlap cell
// operations behind a serialized per-channel bus, and blocks/pages with
// NAND timing for read, program, and erase. The model is a discrete-event
// substitute for the programmable SSD board used by the paper (Table 3
// geometry) — it reproduces the contention, queueing, and GC effects that
// determine the paper's relative results.
package flash

import (
	"container/heap"
	"fmt"

	"repro/internal/sim"
)

// Config describes the device geometry and timing. The defaults mirror
// Table 3 of the paper with a bus calibrated so one channel sustains about
// 64 MB/s, the per-channel bandwidth the paper quotes in §3.6.
type Config struct {
	Channels        int // independent flash channels
	ChipsPerChannel int // chips (dies) sharing one channel bus
	BlocksPerChip   int // erase blocks per chip
	PagesPerBlock   int // pages per erase block
	PageSize        int // bytes per page

	ReadPage    sim.Time // cell read (tR)
	ProgramPage sim.Time // cell program (tPROG)
	EraseBlock  sim.Time // block erase (tBERS)
	BusNsPerKB  sim.Time // channel bus transfer time per KiB

	QueueDepth int // max outstanding commands per channel
}

// DefaultConfig returns the paper's Table 3 device: 16 channels, 4 chips
// per channel, 16 KB pages, queue depth 16. BlocksPerChip is scaled down
// from the paper's 1 TB board so simulations stay fast; capacity-sensitive
// experiments override it.
func DefaultConfig() Config {
	return Config{
		Channels:        16,
		ChipsPerChannel: 4,
		BlocksPerChip:   256, // 256 blocks * 4MB = 1 GiB/chip simulated
		PagesPerBlock:   256, // 256 * 16KB = 4 MiB blocks
		PageSize:        16 << 10,
		ReadPage:        70 * sim.Microsecond,
		ProgramPage:     500 * sim.Microsecond,
		EraseBlock:      3 * sim.Millisecond,
		BusNsPerKB:      15_250, // ~64 MiB/s channel bus
		QueueDepth:      16,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("flash: Channels = %d", c.Channels)
	case c.ChipsPerChannel <= 0:
		return fmt.Errorf("flash: ChipsPerChannel = %d", c.ChipsPerChannel)
	case c.BlocksPerChip <= 0:
		return fmt.Errorf("flash: BlocksPerChip = %d", c.BlocksPerChip)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: PagesPerBlock = %d", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("flash: PageSize = %d", c.PageSize)
	case c.ReadPage <= 0 || c.ProgramPage <= 0 || c.EraseBlock <= 0:
		return fmt.Errorf("flash: non-positive NAND timing")
	case c.BusNsPerKB <= 0:
		return fmt.Errorf("flash: BusNsPerKB = %d", c.BusNsPerKB)
	case c.QueueDepth <= 0:
		return fmt.Errorf("flash: QueueDepth = %d", c.QueueDepth)
	}
	return nil
}

// TotalBlocks returns the number of erase blocks on the device.
func (c Config) TotalBlocks() int {
	return c.Channels * c.ChipsPerChannel * c.BlocksPerChip
}

// BlockBytes returns the capacity of one erase block.
func (c Config) BlockBytes() int64 {
	return int64(c.PagesPerBlock) * int64(c.PageSize)
}

// CapacityBytes returns the raw device capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.TotalBlocks()) * c.BlockBytes()
}

// ChannelBandwidth returns the calibrated peak payload bandwidth of one
// channel in bytes/second (bus-limited).
func (c Config) ChannelBandwidth() float64 {
	return 1e9 / float64(c.BusNsPerKB) * 1024
}

// transferTime returns the bus time for n bytes.
func (c Config) transferTime(n int) sim.Time {
	t := (sim.Time(n) * c.BusNsPerKB) / 1024
	if t < 1 {
		t = 1
	}
	return t
}

// PPA is a physical page address.
type PPA struct {
	Channel int
	Chip    int
	Block   int
	Page    int
}

// BlockID identifies an erase block on the device.
type BlockID struct {
	Channel int
	Chip    int
	Block   int
}

// BlockOf returns the block containing the page.
func (p PPA) BlockOf() BlockID {
	return BlockID{Channel: p.Channel, Chip: p.Chip, Block: p.Block}
}

// OpKind is a flash command type.
type OpKind uint8

// Flash command kinds.
const (
	OpRead OpKind = iota
	OpProgram
	OpErase
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one flash command submitted to a channel. Scheduling fields
// (Priority, Pass) are set by the I/O scheduler: channels serve the highest
// Priority first and, within a priority level, the lowest stride Pass, then
// FIFO. Done is invoked when the command completes.
type Op struct {
	Kind     OpKind
	Addr     PPA
	Tenant   int     // owning vSSD, for accounting
	Priority int     // higher is served first
	Pass     float64 // stride-scheduling pass value (lower first)
	Done     func(at sim.Time)

	seq      uint64
	enqueued sim.Time
}

// opHeap orders by (Priority desc, Pass asc, seq asc).
type opHeap []*Op

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	if h[i].Pass != h[j].Pass {
		return h[i].Pass < h[j].Pass
	}
	return h[i].seq < h[j].seq
}
func (h opHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x interface{}) { *h = append(*h, x.(*Op)) }
func (h *opHeap) Pop() interface{} {
	old := *h
	n := len(old)
	op := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return op
}

// ChannelStats aggregates per-channel accounting used for utilization and
// interference analysis.
type ChannelStats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Programs     int64
	Erases       int64
	BusBusy      sim.Time // total time the channel bus spent transferring
}

// busWaiter is an op waiting its turn on the channel bus together with the
// continuation to run when its transfer completes.
type busWaiter struct {
	op   *Op
	dur  sim.Time
	then func(busEnd sim.Time)
}

type busHeap []busWaiter

func (h busHeap) Len() int { return len(h) }
func (h busHeap) Less(i, j int) bool {
	a, b := h[i].op, h[j].op
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Pass != b.Pass {
		return a.Pass < b.Pass
	}
	return a.seq < b.seq
}
func (h busHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *busHeap) Push(x interface{}) { *h = append(*h, x.(busWaiter)) }
func (h *busHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = busWaiter{}
	*h = old[:n-1]
	return w
}

type channel struct {
	id       int
	busBusy  bool
	busQueue busHeap
	chipFree []sim.Time
	queue    opHeap
	inflight int
	stats    ChannelStats
}

// Device is the simulated open-channel SSD. It is driven entirely from
// engine callbacks and is not safe for concurrent use.
type Device struct {
	cfg Config
	eng *sim.Engine
	chs []*channel
	seq uint64
}

// NewDevice builds a device on the engine. It panics on an invalid config
// (construction happens at setup time where a panic is an assertion).
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{cfg: cfg, eng: eng, chs: make([]*channel, cfg.Channels)}
	for i := range d.chs {
		d.chs[i] = &channel{id: i, chipFree: make([]sim.Time, cfg.ChipsPerChannel)}
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a copy of the accounting for channel ch.
func (d *Device) Stats(ch int) ChannelStats { return d.chs[ch].stats }

// QueueLen returns the number of ops waiting (not yet dispatched) on ch.
func (d *Device) QueueLen(ch int) int { return len(d.chs[ch].queue) }

// Inflight returns the number of dispatched, uncompleted ops on ch.
func (d *Device) Inflight(ch int) int { return d.chs[ch].inflight }

// Submit enqueues op on its channel and dispatches if capacity allows.
func (d *Device) Submit(op *Op) {
	if op.Addr.Channel < 0 || op.Addr.Channel >= d.cfg.Channels {
		panic(fmt.Sprintf("flash: channel %d out of range", op.Addr.Channel))
	}
	if op.Addr.Chip < 0 || op.Addr.Chip >= d.cfg.ChipsPerChannel {
		panic(fmt.Sprintf("flash: chip %d out of range", op.Addr.Chip))
	}
	d.seq++
	op.seq = d.seq
	op.enqueued = d.eng.Now()
	ch := d.chs[op.Addr.Channel]
	heap.Push(&ch.queue, op)
	d.dispatch(ch)
}

// dispatch starts queued ops while the channel has queue-depth headroom.
func (d *Device) dispatch(ch *channel) {
	for ch.inflight < d.cfg.QueueDepth && len(ch.queue) > 0 {
		op := heap.Pop(&ch.queue).(*Op)
		ch.inflight++
		d.service(ch, op)
	}
}

func (d *Device) complete(ch *channel, op *Op, at sim.Time) {
	ch.inflight--
	if op.Done != nil {
		op.Done(at)
	}
	d.dispatch(ch)
}

// service runs op through its phases. Reads: cell sense on the chip, then a
// bus-out transfer; programs: bus-in transfer, then cell program; erases:
// cell only. Chips overlap cell work; the bus is a contended resource
// arbitrated in (priority, pass, FIFO) order at the moment each transfer is
// requested, so a late-arriving transfer can never be starved by a future
// reservation.
func (d *Device) service(ch *channel, op *Op) {
	now := d.eng.Now()
	xfer := d.cfg.transferTime(d.cfg.PageSize)
	chip := &ch.chipFree[op.Addr.Chip]
	switch op.Kind {
	case OpRead:
		cellStart := maxTime(now, *chip)
		cellEnd := cellStart + d.cfg.ReadPage
		*chip = cellEnd
		ch.stats.Reads++
		ch.stats.BytesRead += int64(d.cfg.PageSize)
		d.eng.At(cellEnd, func() {
			d.acquireBus(ch, op, xfer, func(busEnd sim.Time) {
				d.complete(ch, op, busEnd)
			})
		})
	case OpProgram:
		ch.stats.Programs++
		ch.stats.BytesWritten += int64(d.cfg.PageSize)
		d.acquireBus(ch, op, xfer, func(busEnd sim.Time) {
			cellStart := maxTime(busEnd, *chip)
			cellEnd := cellStart + d.cfg.ProgramPage
			*chip = cellEnd
			d.eng.At(cellEnd, func() {
				d.complete(ch, op, cellEnd)
			})
		})
	case OpErase:
		cellStart := maxTime(now, *chip)
		cellEnd := cellStart + d.cfg.EraseBlock
		*chip = cellEnd
		ch.stats.Erases++
		d.eng.At(cellEnd, func() {
			d.complete(ch, op, cellEnd)
		})
	default:
		panic(fmt.Sprintf("flash: unknown op kind %d", op.Kind))
	}
}

// acquireBus grants the channel bus to op for dur, immediately if idle or
// after queueing in (priority, pass, FIFO) order. then runs when the
// transfer finishes.
func (d *Device) acquireBus(ch *channel, op *Op, dur sim.Time, then func(busEnd sim.Time)) {
	if ch.busBusy {
		heap.Push(&ch.busQueue, busWaiter{op: op, dur: dur, then: then})
		return
	}
	d.grantBus(ch, busWaiter{op: op, dur: dur, then: then})
}

func (d *Device) grantBus(ch *channel, w busWaiter) {
	ch.busBusy = true
	end := d.eng.Now() + w.dur
	ch.stats.BusBusy += w.dur
	d.eng.At(end, func() {
		w.then(end)
		// w.then may have queued more waiters (e.g. a completed read chain
		// dispatching the next op); serve the best one now.
		if len(ch.busQueue) > 0 {
			next := heap.Pop(&ch.busQueue).(busWaiter)
			d.grantBus(ch, next)
		} else {
			ch.busBusy = false
		}
	})
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
