// Package flash models an open-channel SSD at the level FleetIO manages it:
// channels that issue commands independently, chips that overlap cell
// operations behind a serialized per-channel bus, and blocks/pages with
// NAND timing for read, program, and erase. The model is a discrete-event
// substitute for the programmable SSD board used by the paper (Table 3
// geometry) — it reproduces the contention, queueing, and GC effects that
// determine the paper's relative results.
//
// The per-op datapath is allocation-free in steady state: Ops are recycled
// through a per-device free list (AcquireOp / automatic release after
// Done), the command and bus queues are inlined typed min-heaps with no
// interface boxing, and every pipeline stage is scheduled through the
// engine's closure-free ScheduleEvent/AtEvent path.
package flash

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Config describes the device geometry and timing. The defaults mirror
// Table 3 of the paper with a bus calibrated so one channel sustains about
// 64 MB/s, the per-channel bandwidth the paper quotes in §3.6.
type Config struct {
	Channels        int // independent flash channels
	ChipsPerChannel int // chips (dies) sharing one channel bus
	BlocksPerChip   int // erase blocks per chip
	PagesPerBlock   int // pages per erase block
	PageSize        int // bytes per page

	ReadPage    sim.Time // cell read (tR)
	ProgramPage sim.Time // cell program (tPROG)
	EraseBlock  sim.Time // block erase (tBERS)
	BusNsPerKB  sim.Time // channel bus transfer time per KiB

	QueueDepth int // max outstanding commands per channel
}

// DefaultConfig returns the paper's Table 3 device: 16 channels, 4 chips
// per channel, 16 KB pages, queue depth 16. BlocksPerChip is scaled down
// from the paper's 1 TB board so simulations stay fast; capacity-sensitive
// experiments override it.
func DefaultConfig() Config {
	return Config{
		Channels:        16,
		ChipsPerChannel: 4,
		BlocksPerChip:   256, // 256 blocks * 4MB = 1 GiB/chip simulated
		PagesPerBlock:   256, // 256 * 16KB = 4 MiB blocks
		PageSize:        16 << 10,
		ReadPage:        70 * sim.Microsecond,
		ProgramPage:     500 * sim.Microsecond,
		EraseBlock:      3 * sim.Millisecond,
		BusNsPerKB:      15_250, // ~64 MiB/s channel bus
		QueueDepth:      16,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("flash: Channels = %d", c.Channels)
	case c.ChipsPerChannel <= 0:
		return fmt.Errorf("flash: ChipsPerChannel = %d", c.ChipsPerChannel)
	case c.BlocksPerChip <= 0:
		return fmt.Errorf("flash: BlocksPerChip = %d", c.BlocksPerChip)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: PagesPerBlock = %d", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("flash: PageSize = %d", c.PageSize)
	case c.ReadPage <= 0 || c.ProgramPage <= 0 || c.EraseBlock <= 0:
		return fmt.Errorf("flash: non-positive NAND timing")
	case c.BusNsPerKB <= 0:
		return fmt.Errorf("flash: BusNsPerKB = %d", c.BusNsPerKB)
	case c.QueueDepth <= 0:
		return fmt.Errorf("flash: QueueDepth = %d", c.QueueDepth)
	}
	return nil
}

// TotalBlocks returns the number of erase blocks on the device.
func (c Config) TotalBlocks() int {
	return c.Channels * c.ChipsPerChannel * c.BlocksPerChip
}

// BlockBytes returns the capacity of one erase block.
func (c Config) BlockBytes() int64 {
	return int64(c.PagesPerBlock) * int64(c.PageSize)
}

// CapacityBytes returns the raw device capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.TotalBlocks()) * c.BlockBytes()
}

// ChannelBandwidth returns the calibrated peak payload bandwidth of one
// channel in bytes/second (bus-limited).
func (c Config) ChannelBandwidth() float64 {
	return 1e9 / float64(c.BusNsPerKB) * 1024
}

// transferTime returns the bus time for n bytes.
func (c Config) transferTime(n int) sim.Time {
	t := (sim.Time(n) * c.BusNsPerKB) / 1024
	if t < 1 {
		t = 1
	}
	return t
}

// PPA is a physical page address.
type PPA struct {
	Channel int
	Chip    int
	Block   int
	Page    int
}

// BlockID identifies an erase block on the device.
type BlockID struct {
	Channel int
	Chip    int
	Block   int
}

// BlockOf returns the block containing the page.
func (p PPA) BlockOf() BlockID {
	return BlockID{Channel: p.Channel, Chip: p.Chip, Block: p.Block}
}

// OpKind is a flash command type.
type OpKind uint8

// Flash command kinds.
const (
	OpRead OpKind = iota
	OpProgram
	OpErase
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// OpStatus is the completion result of a flash command. With no fault
// injector installed every op completes StatusOK; with one installed,
// programs and erases may report the NAND failure statuses the FTL
// answers with remapping and bad-block retirement.
type OpStatus uint8

// Completion statuses.
const (
	// StatusOK: the command succeeded.
	StatusOK OpStatus = iota
	// StatusProgramFail: the page program failed; the data did not land
	// and the block should be retired after its valid pages move away.
	StatusProgramFail
	// StatusEraseFail: the block erase failed; the block is worn out and
	// must be retired instead of reused.
	StatusEraseFail
)

func (s OpStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusProgramFail:
		return "program-fail"
	case StatusEraseFail:
		return "erase-fail"
	default:
		return fmt.Sprintf("OpStatus(%d)", uint8(s))
	}
}

// OpDone is invoked when a command completes. ctx and ctxI are the Ctx and
// CtxI values the submitter stored on the op, and status is the command's
// completion result (always StatusOK unless a fault injector is
// installed); using a package-level function here (rather than a capturing
// closure) keeps submission allocation-free. The *Op itself is NOT passed:
// by the time Done runs the device has already recycled it.
type OpDone func(ctx any, ctxI int64, at sim.Time, status OpStatus)

// Op is one flash command submitted to a channel. Scheduling fields
// (Priority, Pass) are set by the I/O scheduler: channels serve the highest
// Priority first and, within a priority level, the lowest stride Pass, then
// FIFO.
//
// Ownership contract: acquire with Device.AcquireOp, fill in the public
// fields, and hand the op to Submit — from that point the device owns it.
// After Done returns the op is back on the device free list; neither the
// submitter nor the Done handler may retain or touch it (completion
// context travels through Ctx/CtxI instead). Resubmitting a released op
// panics. Directly constructed (&Op{...}) ops are accepted by Submit and
// absorbed into the pool on completion under the same contract.
type Op struct {
	Kind     OpKind
	Addr     PPA
	Tenant   int     // owning vSSD, for accounting
	Priority int     // higher is served first
	Pass     float64 // stride-scheduling pass value (lower first)
	Done     OpDone  // completion callback; nil for fire-and-forget
	Ctx      any     // opaque completion context (pointer-shaped: no boxing)
	CtxI     int64   // scalar completion context (e.g. a page index)

	seq      uint64
	enqueued sim.Time
	dev      *Device
	status   OpStatus // injected completion result, decided at service time
	stall    sim.Time // injected extra cell-phase latency (program phase)
	next     *Op      // device free-list link
	released bool     // on the free list; Submit panics (use-after-release)
}

// opLess is the scheduling order: Priority desc, Pass asc, seq asc (FIFO).
func opLess(a, b *Op) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Pass != b.Pass {
		return a.Pass < b.Pass
	}
	return a.seq < b.seq
}

// opQueue is an inlined 4-ary min-heap of *Op ordered by opLess — the same
// layout as the sim engine's event queue. No container/heap, no interface
// boxing; push/pop reuse the slice's capacity, so steady-state queueing
// performs zero allocations. opLess is a total order (seq breaks all
// ties), so pop order is deterministic and identical to what the previous
// container/heap implementation produced.
type opQueue []*Op

func (q *opQueue) push(op *Op) {
	*q = append(*q, op)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !opLess(op, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = op
}

func (q *opQueue) pop() *Op {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil // release the slot; capacity is reused
	h = h[:n]
	*q = h
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if opLess(h[j], h[m]) {
					m = j
				}
			}
			if !opLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// ChannelStats aggregates per-channel accounting used for utilization and
// interference analysis.
type ChannelStats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Programs     int64
	Erases       int64
	BusBusy      sim.Time // total time the channel bus spent transferring
}

type channel struct {
	id       int
	busBusy  bool
	busQueue opQueue // ops waiting for the bus, in (priority, pass, FIFO) order
	chipFree []sim.Time
	queue    opQueue
	inflight int
	stats    ChannelStats
}

// FaultStats counts the faults a device's injector has produced since
// construction. All zeros when no injector is installed.
type FaultStats struct {
	ProgramFails int64 // injected page-program failures
	EraseFails   int64 // injected block-erase failures
	ReadRetryOps int64 // reads that needed at least one retry round
	RetryRounds  int64 // total read-retry rounds injected
	ChipTimeouts int64 // transient chip stalls injected
}

// Device is the simulated open-channel SSD. It is driven entirely from
// engine callbacks and is not safe for concurrent use.
type Device struct {
	cfg  Config
	eng  *sim.Engine
	chs  []*channel
	seq  uint64
	xfer sim.Time // cached page transfer time
	free *Op      // free list of recycled ops

	// inj, when non-nil, injects NAND faults. Every injection draw sits
	// behind one inj != nil check so the disabled path costs a single
	// predictable branch and draws nothing from any RNG stream.
	inj     *fault.Injector
	onFault func(kind OpKind, addr PPA, status OpStatus)
	fstats  FaultStats
}

// NewDevice builds a device on the engine. It panics on an invalid config
// (construction happens at setup time where a panic is an assertion).
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{cfg: cfg, eng: eng, chs: make([]*channel, cfg.Channels),
		xfer: cfg.transferTime(cfg.PageSize)}
	for i := range d.chs {
		d.chs[i] = &channel{id: i, chipFree: make([]sim.Time, cfg.ChipsPerChannel)}
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetFaultInjector installs (or, with nil, removes) a NAND fault
// injector. Install at setup time, before traffic: the injector's RNG
// stream advances with every serviced op, so swapping it mid-run changes
// subsequent fault decisions.
func (d *Device) SetFaultInjector(inj *fault.Injector) { d.inj = inj }

// OnFault installs a hook invoked when an op completes with a failure
// status, before the op's Done callback runs — the FTL uses it to retire
// the failed block and fix the mapping so the submitter's retry (from
// Done) allocates somewhere healthy.
func (d *Device) OnFault(fn func(kind OpKind, addr PPA, status OpStatus)) { d.onFault = fn }

// FaultStats returns a copy of the injected-fault counters.
func (d *Device) FaultStats() FaultStats { return d.fstats }

// Stats returns a copy of the accounting for channel ch.
func (d *Device) Stats(ch int) ChannelStats { return d.chs[ch].stats }

// QueueLen returns the number of ops waiting (not yet dispatched) on ch.
func (d *Device) QueueLen(ch int) int { return len(d.chs[ch].queue) }

// Inflight returns the number of dispatched, uncompleted ops on ch.
func (d *Device) Inflight(ch int) int { return d.chs[ch].inflight }

// AcquireOp returns a zeroed Op from the device free list (allocating only
// when the list is empty). The caller fills the public fields and passes
// it to Submit; see the Op ownership contract.
func (d *Device) AcquireOp() *Op {
	op := d.free
	if op == nil {
		return &Op{dev: d}
	}
	d.free = op.next
	*op = Op{dev: d}
	return op
}

// releaseOp recycles a completed op onto the free list.
func (d *Device) releaseOp(op *Op) {
	if poolDebug {
		poisonOp(op)
	}
	op.released = true
	op.Done = nil
	op.Ctx = nil
	op.next = d.free
	d.free = op
}

// Submit enqueues op on its channel and dispatches if capacity allows. The
// device takes ownership of op (it is recycled after completion).
func (d *Device) Submit(op *Op) {
	if op.released {
		panic("flash: Submit of a released Op (use-after-release)")
	}
	if op.Addr.Channel < 0 || op.Addr.Channel >= d.cfg.Channels {
		panic(fmt.Sprintf("flash: channel %d out of range", op.Addr.Channel))
	}
	if op.Addr.Chip < 0 || op.Addr.Chip >= d.cfg.ChipsPerChannel {
		panic(fmt.Sprintf("flash: chip %d out of range", op.Addr.Chip))
	}
	op.dev = d // absorb directly constructed ops into the pool contract
	d.seq++
	op.seq = d.seq
	op.enqueued = d.eng.Now()
	ch := d.chs[op.Addr.Channel]
	ch.queue.push(op)
	d.dispatch(ch)
}

// dispatch starts queued ops while the channel has queue-depth headroom.
func (d *Device) dispatch(ch *channel) {
	for ch.inflight < d.cfg.QueueDepth && len(ch.queue) > 0 {
		op := ch.queue.pop()
		ch.inflight++
		d.service(ch, op)
	}
}

// complete finishes op: accounting, recycling, then the Done callback and
// a dispatch pass. The op is released BEFORE Done runs so the completion
// chain (which typically submits the next I/O) reuses the hot Op. For a
// failed op the OnFault hook runs before Done, so FTL-level bookkeeping
// (bad-block retirement, mapping repair) is finished by the time the
// submitter reacts to the status.
func (d *Device) complete(ch *channel, op *Op, at sim.Time) {
	ch.inflight--
	done, ctx, ctxI := op.Done, op.Ctx, op.CtxI
	status := op.status
	if status != StatusOK {
		kind, addr := op.Kind, op.Addr
		d.releaseOp(op)
		if d.onFault != nil {
			d.onFault(kind, addr, status)
		}
	} else {
		d.releaseOp(op)
	}
	if done != nil {
		done(ctx, ctxI, at, status)
	}
	d.dispatch(ch)
}

// Pipeline stage handlers. Each is a package-level sim.EventHandler whose
// arg carries the op in the pointer slot — no closures, no allocations.
// The op's dev field recovers the device; the channel comes from the
// address.

// opCellReadDone: a read's cell sense finished; request the bus for the
// data-out transfer.
func opCellReadDone(arg sim.EventArg, _ sim.Time) {
	op := arg.P.(*Op)
	d := op.dev
	d.acquireBus(d.chs[op.Addr.Channel], op)
}

// opBusDone: a bus transfer finished. Reads complete; programs start their
// cell phase. Handling the finished op may queue more bus waiters (e.g. a
// completed read chain dispatching the next op), so the best waiter is
// served afterwards.
func opBusDone(arg sim.EventArg, now sim.Time) {
	op := arg.P.(*Op)
	d := op.dev
	ch := d.chs[op.Addr.Channel]
	switch op.Kind {
	case OpRead:
		d.complete(ch, op, now)
	case OpProgram:
		chip := &ch.chipFree[op.Addr.Chip]
		cellStart := maxTime(now, *chip)
		// op.stall carries the injected chip-timeout stall decided at
		// service time; it is always zero without an injector.
		cellEnd := cellStart + d.cfg.ProgramPage + op.stall
		*chip = cellEnd
		d.eng.AtEvent(cellEnd, opCellDone, sim.EventArg{P: op})
	default:
		panic(fmt.Sprintf("flash: op kind %v on the bus", op.Kind))
	}
	if len(ch.busQueue) > 0 {
		d.grantBus(ch, ch.busQueue.pop())
	} else {
		ch.busBusy = false
	}
}

// opCellDone: a program or erase finished its cell phase; the op is done.
func opCellDone(arg sim.EventArg, now sim.Time) {
	op := arg.P.(*Op)
	op.dev.complete(op.dev.chs[op.Addr.Channel], op, now)
}

// service runs op through its phases. Reads: cell sense on the chip, then a
// bus-out transfer; programs: bus-in transfer, then cell program; erases:
// cell only. Chips overlap cell work; the bus is a contended resource
// arbitrated in (priority, pass, FIFO) order at the moment each transfer is
// requested, so a late-arriving transfer can never be starved by a future
// reservation.
func (d *Device) service(ch *channel, op *Op) {
	now := d.eng.Now()
	chip := &ch.chipFree[op.Addr.Chip]
	switch op.Kind {
	case OpRead:
		cellStart := maxTime(now, *chip)
		cellEnd := cellStart + d.cfg.ReadPage
		if d.inj != nil {
			cellEnd += d.injectRead()
		}
		*chip = cellEnd
		ch.stats.Reads++
		ch.stats.BytesRead += int64(d.cfg.PageSize)
		d.eng.AtEvent(cellEnd, opCellReadDone, sim.EventArg{P: op})
	case OpProgram:
		ch.stats.Programs++
		ch.stats.BytesWritten += int64(d.cfg.PageSize)
		if d.inj != nil {
			d.injectProgram(op)
		}
		d.acquireBus(ch, op)
	case OpErase:
		cellStart := maxTime(now, *chip)
		cellEnd := cellStart + d.cfg.EraseBlock
		if d.inj != nil {
			cellEnd += d.injectErase(op)
		}
		*chip = cellEnd
		ch.stats.Erases++
		d.eng.AtEvent(cellEnd, opCellDone, sim.EventArg{P: op})
	default:
		panic(fmt.Sprintf("flash: unknown op kind %d", op.Kind))
	}
}

// injectRead draws the fault decisions for a read at service time and
// returns the extra cell-sense latency (retry rounds plus any transient
// chip stall). Called only with an injector installed.
func (d *Device) injectRead() sim.Time {
	var extra sim.Time
	if rounds := d.inj.ReadRetries(); rounds > 0 {
		extra = sim.Time(rounds) * d.inj.RetryStep()
		d.fstats.ReadRetryOps++
		d.fstats.RetryRounds += int64(rounds)
	}
	if stall := d.inj.ChipStall(); stall > 0 {
		extra += stall
		d.fstats.ChipTimeouts++
	}
	return extra
}

// injectProgram draws the fault decisions for a program at service time,
// recording them on the op: the failure status is delivered at
// completion and the stall is applied to the cell phase after the bus
// transfer. Called only with an injector installed.
func (d *Device) injectProgram(op *Op) {
	if d.inj.ProgramFails() {
		op.status = StatusProgramFail
		d.fstats.ProgramFails++
	}
	if stall := d.inj.ChipStall(); stall > 0 {
		op.stall = stall
		d.fstats.ChipTimeouts++
	}
}

// injectErase draws the fault decisions for an erase at service time and
// returns the extra cell latency. A failed erase still occupies the chip
// for the full erase time (the controller only learns the status at
// completion). Called only with an injector installed.
func (d *Device) injectErase(op *Op) sim.Time {
	if d.inj.EraseFails() {
		op.status = StatusEraseFail
		d.fstats.EraseFails++
	}
	if stall := d.inj.ChipStall(); stall > 0 {
		d.fstats.ChipTimeouts++
		return stall
	}
	return 0
}

// acquireBus grants the channel bus to op for one page transfer,
// immediately if idle or after queueing in (priority, pass, FIFO) order.
func (d *Device) acquireBus(ch *channel, op *Op) {
	if ch.busBusy {
		ch.busQueue.push(op)
		return
	}
	d.grantBus(ch, op)
}

func (d *Device) grantBus(ch *channel, op *Op) {
	ch.busBusy = true
	ch.stats.BusBusy += d.xfer
	d.eng.AtEvent(d.eng.Now()+d.xfer, opBusDone, sim.EventArg{P: op})
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
