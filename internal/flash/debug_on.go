//go:build flashdebug

package flash

import "math"

// poolDebug enables use-after-release poisoning of recycled Ops: every
// field a stale holder might read is overwritten with an obviously-wrong
// sentinel on release, so a use-after-release shows up as an
// out-of-range-channel panic or a NaN pass value instead of silent
// corruption. Enabled with `go test -tags=flashdebug`.
const poolDebug = true

// poisonOp stomps the released op's payload fields. The scheduling fields
// (seq, enqueued) and the pool links are left alone — releaseOp and
// AcquireOp own those.
func poisonOp(op *Op) {
	op.Kind = OpKind(0xEE)
	op.Addr = PPA{Channel: -1 << 30, Chip: -1 << 30, Block: -1 << 30, Page: -1 << 30}
	op.Tenant = -1 << 30
	op.Priority = -1 << 30
	op.Pass = math.NaN()
	op.CtxI = -1 << 62
}
