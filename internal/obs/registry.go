package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the two Prometheus series types the registry
// exposes.
type MetricType uint8

// Metric types.
const (
	// TypeGauge is a value that can go up and down (bandwidth, P99, …).
	TypeGauge MetricType = iota
	// TypeCounter is a monotonically non-decreasing value (totals).
	TypeCounter
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	if t == TypeCounter {
		return "counter"
	}
	return "gauge"
}

// Metric is one series: a (name, label-set) pair holding a float64. Set
// and Add are atomic, so the simulation goroutine can update while HTTP
// scrapes read. A nil *Metric (handed out by a nil *Registry) ignores
// Set/Add and reads as 0, keeping disabled-path instrumentation to one
// nil check.
type Metric struct {
	labels string // pre-rendered {k="v",…} or ""
	bits   atomic.Uint64
}

// Set stores v.
func (m *Metric) Set(v float64) {
	if m == nil {
		return
	}
	m.bits.Store(math.Float64bits(v))
}

// Add atomically adds v.
func (m *Metric) Add(v float64) {
	if m == nil {
		return
	}
	for {
		old := m.bits.Load()
		cur := math.Float64frombits(old)
		if m.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil metric).
func (m *Metric) Value() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// family groups every label-set of one metric name under a shared HELP
// and TYPE line.
type family struct {
	name, help string
	typ        MetricType
	series     map[string]*Metric
	order      []string
}

// Registry is a set of metric families rendered in the Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// (name, labels) pair returns the same *Metric, so samplers can
// re-register across runs. A nil *Registry returns nil metrics from
// Gauge/Counter and writes nothing.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Gauge registers (or finds) a gauge series. Labels are key/value pairs:
// Gauge("name", "help", "vssd", "0", "workload", "YCSB-0").
func (r *Registry) Gauge(name, help string, labels ...string) *Metric {
	return r.metric(TypeGauge, name, help, labels)
}

// Counter registers (or finds) a counter series. Counters must only be
// moved forward (Set with a larger value, or Add with v >= 0).
func (r *Registry) Counter(name, help string, labels ...string) *Metric {
	return r.metric(TypeCounter, name, help, labels)
}

func (r *Registry) metric(typ MetricType, name, help string, labels []string) *Metric {
	if r == nil {
		return nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*Metric)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if m, ok := f.series[ls]; ok {
		return m
	}
	m := &Metric{labels: ls}
	f.series[ls] = m
	f.order = append(f.order, ls)
	return m
}

// renderLabels builds the {k="v",…} suffix with Prometheus escaping.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every family in registration order:
//
//	# HELP fleetio_vssd_iops Completed requests per second.
//	# TYPE fleetio_vssd_iops gauge
//	fleetio_vssd_iops{vssd="0",workload="YCSB-0"} 1234
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, ls := range f.order {
			v := f.series[ls].Value()
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Names returns the registered family names sorted alphabetically (for
// tests and diagnostics).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
