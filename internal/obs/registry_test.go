package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRegistryAndMetric(t *testing.T) {
	var reg *Registry
	m := reg.Gauge("fleetio_x", "help")
	if m != nil {
		t.Fatal("nil registry returned a live metric")
	}
	m.Set(3)
	m.Add(4)
	if m.Value() != 0 {
		t.Fatal("nil metric has a value")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if reg.Names() != nil {
		t.Fatal("nil registry has names")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Gauge("fleetio_util", "SSD utilization.", "vssd", "0")
	b := reg.Gauge("fleetio_util", "SSD utilization.", "vssd", "0")
	if a != b {
		t.Fatal("same (name, labels) returned distinct metrics")
	}
	c := reg.Gauge("fleetio_util", "SSD utilization.", "vssd", "1")
	if a == c {
		t.Fatal("distinct labels share a metric")
	}
	a.Set(0.5)
	c.Add(1)
	c.Add(0.25)
	if a.Value() != 0.5 || c.Value() != 1.25 {
		t.Fatalf("values %v %v", a.Value(), c.Value())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("fleetio_vssd_iops", "Completed requests per second.", "vssd", "0", "name", "YCSB-0").Set(1234)
	reg.Counter("fleetio_ftl_erases_total", "Block erases.").Set(42)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP fleetio_vssd_iops Completed requests per second.\n",
		"# TYPE fleetio_vssd_iops gauge\n",
		`fleetio_vssd_iops{vssd="0",name="YCSB-0"} 1234` + "\n",
		"# TYPE fleetio_ftl_erases_total counter\n",
		"fleetio_ftl_erases_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("fleetio_esc", "h", "name", "a\"b\\c\nd").Set(1)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `fleetio_esc{name="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

func TestOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	NewRegistry().Gauge("fleetio_bad", "h", "vssd")
}
