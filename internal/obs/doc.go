// Package obs is FleetIO's observability layer: low-overhead decision
// tracing, time-series telemetry, and live HTTP endpoints. It exists so
// that policy behaviour can be *explained* — which agent harvested which
// gSB, why a tenant's P99 crossed its SLO, how GC pressure tracks
// harvested-block reclamation — instead of inferred from end-of-run
// aggregates.
//
// The package has three independent pieces; each is useful alone:
//
//   - Recorder captures typed decision events (RL actions, admission
//     verdicts, gSB lifecycle, GC victim selection, SLO violations) into
//     per-vSSD ring buffers stamped with virtual time, exportable as
//     JSONL. A nil *Recorder is a valid, disabled recorder: every emit
//     method nil-checks its receiver and returns, so instrumented hot
//     paths pay a single predictable branch when tracing is off.
//   - Registry holds named gauge/counter series with Prometheus-style
//     labels and renders them in the Prometheus text exposition format.
//     Metric values are atomics, so samplers on the simulation goroutine
//     and HTTP scrapes on server goroutines never block each other. A nil
//     *Registry hands out nil *Metric handles whose Set/Add are no-ops.
//   - Sampler runs probe functions on a sim.Engine ticker so per-vSSD
//     bandwidth/IOPS/P99/queue-depth series (and device GC counters) are
//     refreshed on a fixed virtual-time cadence.
//
// Serve exposes a Registry at /metrics plus the net/http/pprof handlers
// at /debug/pprof/ on a real listener; cmd/fleetsim, cmd/fleettrain,
// cmd/fleetbench, and cmd/fleetcluster mount it behind their -http flag.
//
// Naming follows Prometheus conventions: every series is prefixed
// "fleetio_", units are encoded in the name (_bytes_per_second,
// _seconds, _ratio), and monotone series end in _total. The full metric
// and event taxonomy is documented in docs/OBSERVABILITY.md.
package obs
