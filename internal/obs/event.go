package obs

import (
	"fmt"

	"repro/internal/sim"
)

// EventKind identifies what a traced Event records. Kinds marshal to the
// snake_case strings listed in docs/OBSERVABILITY.md so JSONL traces stay
// grep-able and stable across refactors.
type EventKind uint8

// Event kinds, grouped by the subsystem that emits them.
const (
	// KindHarvest is an RL agent's Harvest(gsb_bw) decision (core).
	KindHarvest EventKind = iota
	// KindMakeHarvestable is an RL agent's Make_Harvestable(gsb_bw)
	// decision (core).
	KindMakeHarvestable
	// KindSetPriority is an RL agent's Set_Priority(level) decision,
	// after the core's guardrail clamps (core).
	KindSetPriority
	// KindReward is the per-window reward fed back to an agent: Reward
	// holds the Eq. 2 mixed value, Single the agent's own Eq. 1 term.
	KindReward
	// KindAdmissionAdmit is a harvest-related action executed by the
	// admission controller's batch flush (admission).
	KindAdmissionAdmit
	// KindAdmissionFilter is a harvest-related action rejected by the
	// provider policy (admission).
	KindAdmissionFilter
	// KindGSBCreate is a new ghost superblock entering the pool; VSSD is
	// the home tenant, Channels its stripe width (gsb).
	KindGSBCreate
	// KindGSBHarvest is a gSB leaving the pool; VSSD is the harvester,
	// Peer the home tenant (gsb).
	KindGSBHarvest
	// KindGSBReclaim is the start of (possibly lazy) reclamation; VSSD is
	// the home tenant, Peer the harvester or -1 (gsb).
	KindGSBReclaim
	// KindGSBFinalize is a gSB fully drained back to its home pool (gsb).
	KindGSBFinalize
	// KindGCRun is a GC victim selection; VSSD is the collecting tenant,
	// Block the victim index, Valid its live pages (ftl).
	KindGCRun
	// KindSLOViolation is a completed host request whose latency exceeded
	// the vSSD's SLO (vssd).
	KindSLOViolation
)

var eventKindNames = [...]string{
	KindHarvest:         "harvest",
	KindMakeHarvestable: "make_harvestable",
	KindSetPriority:     "set_priority",
	KindReward:          "reward",
	KindAdmissionAdmit:  "admission_admit",
	KindAdmissionFilter: "admission_filter",
	KindGSBCreate:       "gsb_create",
	KindGSBHarvest:      "gsb_harvest",
	KindGSBReclaim:      "gsb_reclaim",
	KindGSBFinalize:     "gsb_finalize",
	KindGCRun:           "gc_run",
	KindSLOViolation:    "slo_violation",
}

// String returns the stable snake_case name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event_kind_%d", uint8(k))
}

// MarshalJSON encodes the kind as its String form.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a kind from its String form.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	for i, name := range eventKindNames {
		if string(b) == `"`+name+`"` {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %s", b)
}

// Event is one traced decision. Only the fields meaningful for the Kind
// are set; the zero values of the rest are omitted from JSON. Seq is a
// recorder-wide monotone sequence number that makes the interleaving of
// events across vSSDs reconstructible even when virtual timestamps tie.
type Event struct {
	Seq  uint64    `json:"seq"`
	At   sim.Time  `json:"at_ns"`
	Kind EventKind `json:"kind"`
	// VSSD is the acting vSSD/tenant id (-1 when not tied to one).
	VSSD int `json:"vssd"`
	// Peer is the other party of a two-sided event (gSB home tenant for a
	// harvest, the harvester for a reclaim); -1 when absent.
	Peer int `json:"peer,omitempty"`
	// GSB is the ghost-superblock id for gSB lifecycle events.
	GSB int `json:"gsb,omitempty"`
	// BW is the bytes/s operand of harvest-related decisions.
	BW float64 `json:"bw_bps,omitempty"`
	// Level is the Set_Priority operand.
	Level int `json:"level,omitempty"`
	// Channels is the channel footprint of a gSB event.
	Channels int `json:"channels,omitempty"`
	// Block and Valid describe a GC victim (block index, live pages).
	Block int `json:"block,omitempty"`
	Valid int `json:"valid,omitempty"`
	// Harvested marks a GC victim carrying the Harvested Block Table bit.
	Harvested bool `json:"harvested,omitempty"`
	// LatencyNs and SLONs describe an SLO violation.
	LatencyNs int64 `json:"latency_ns,omitempty"`
	SLONs     int64 `json:"slo_ns,omitempty"`
	// Reward and Single are the Eq. 2 mixed and Eq. 1 own-reward values.
	Reward float64 `json:"reward,omitempty"`
	Single float64 `json:"single,omitempty"`
	// Action names the admitted/filtered action for admission verdicts.
	Action string `json:"action,omitempty"`
}
