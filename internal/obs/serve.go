package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is a live observability endpoint: /metrics in the Prometheus
// text format plus the net/http/pprof profiling handlers under
// /debug/pprof/. It serves from its own goroutines; Close releases the
// listener.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Handler returns the mux Serve mounts: /metrics rendering reg (an empty
// page for a nil registry) and the standard pprof handlers. It is
// exported so tests and embedding servers can mount the endpoints on
// their own listeners.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("fleetio observability: see /metrics and /debug/pprof/\n"))
	})
	return mux
}

// Serve listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// Handler(reg) in the background. The returned Server reports the bound
// address (useful with port 0) and must be Closed by the caller.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: Handler(reg)}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
