package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// DefaultRingSize is the per-vSSD event capacity used when NewRecorder is
// given a non-positive limit. At the paper's decision cadence (a handful
// of events per vSSD per window) this holds minutes of history.
const DefaultRingSize = 4096

// Recorder captures decision events into per-vSSD ring buffers. It is
// safe for concurrent use: rings are created lazily under a read-write
// lock and each ring appends under its own mutex, so emitters for
// different vSSDs do not contend. A nil *Recorder is the disabled
// recorder — every method returns immediately after one nil check, which
// is the entire overhead instrumented code pays when tracing is off.
//
// A Recorder is a view: the clock is per-view while the event storage is
// shared, so Bind can hand each concurrent run a view stamping virtual
// timestamps from that run's own engine (see Bind).
type Recorder struct {
	clock atomic.Value // func() sim.Time
	state *recState
}

// recState is the event storage shared by every bound view.
type recState struct {
	limit int
	seq   atomic.Uint64

	mu    sync.RWMutex
	rings []*ring
}

// ring is one vSSD's bounded event history (newest limit events).
type ring struct {
	mu   sync.Mutex
	evs  []Event
	next int
	full bool
}

// NewRecorder returns a recorder keeping the newest perVSSD events per
// vSSD ring (DefaultRingSize when perVSSD <= 0). The clock stamping
// virtual timestamps starts unset; events emitted before SetClock carry
// At == 0.
func NewRecorder(perVSSD int) *Recorder {
	if perVSSD <= 0 {
		perVSSD = DefaultRingSize
	}
	return &Recorder{state: &recState{limit: perVSSD}}
}

// SetClock installs the virtual-time source (typically eng.Now of the
// engine driving the current run). Safe to call between runs while HTTP
// goroutines are live; emitters see either the old or the new clock.
func (r *Recorder) SetClock(now func() sim.Time) {
	if r == nil {
		return
	}
	r.clock.Store(now)
}

// Bind returns a view that stamps events with the given clock while
// sharing rings and sequence numbers with r. Runs executing concurrently
// each bind their own engine's Now so no run ever reads another run's
// virtual clock (engines are single-goroutine). Binding the nil recorder
// stays nil (tracing off).
func (r *Recorder) Bind(now func() sim.Time) *Recorder {
	if r == nil {
		return nil
	}
	v := &Recorder{state: r.state}
	v.SetClock(now)
	return v
}

// Enabled reports whether the recorder is live (non-nil); call sites that
// must do extra work to build an event can skip it when disabled.
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) now() sim.Time {
	if fn, ok := r.clock.Load().(func() sim.Time); ok && fn != nil {
		return fn()
	}
	return 0
}

// ringFor returns the ring for a vSSD id, growing the table as needed.
// Negative ids (events not tied to a vSSD) share ring 0's table slot via
// index clamping at emit time.
func (s *recState) ringFor(id int) *ring {
	s.mu.RLock()
	if id < len(s.rings) {
		rg := s.rings[id]
		s.mu.RUnlock()
		return rg
	}
	s.mu.RUnlock()
	s.mu.Lock()
	for len(s.rings) <= id {
		s.rings = append(s.rings, &ring{})
	}
	rg := s.rings[id]
	s.mu.Unlock()
	return rg
}

// Emit records a fully built event, stamping Seq and (when unset) At.
// Prefer the typed helpers below at instrumentation sites: their scalar
// arguments avoid constructing an Event on the disabled path.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.emit(e)
}

func (r *Recorder) emit(e Event) {
	s := r.state
	e.Seq = s.seq.Add(1)
	if e.At == 0 {
		e.At = r.now()
	}
	id := e.VSSD
	if id < 0 {
		id = 0
	}
	rg := s.ringFor(id)
	rg.mu.Lock()
	if len(rg.evs) < s.limit {
		rg.evs = append(rg.evs, e)
	} else {
		rg.evs[rg.next] = e
		rg.next = (rg.next + 1) % s.limit
		rg.full = true
	}
	rg.mu.Unlock()
}

// Decision records one RL action decision (kind KindHarvest,
// KindMakeHarvestable, or KindSetPriority).
func (r *Recorder) Decision(kind EventKind, vssd int, bw float64, level int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: kind, VSSD: vssd, BW: bw, Level: level, Peer: -1})
}

// Reward records an agent's per-window reward feedback.
func (r *Recorder) Reward(vssd int, single, mixed float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindReward, VSSD: vssd, Single: single, Reward: mixed, Peer: -1})
}

// Verdict records an admission-control outcome for a harvest-related
// action (kind KindAdmissionAdmit or KindAdmissionFilter).
func (r *Recorder) Verdict(kind EventKind, vssd int, action string, bw float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: kind, VSSD: vssd, Action: action, BW: bw, Peer: -1})
}

// GSB records a ghost-superblock lifecycle event.
func (r *Recorder) GSB(kind EventKind, gsbID, vssd, peer, channels int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: kind, VSSD: vssd, Peer: peer, GSB: gsbID, Channels: channels})
}

// GCRun records a GC victim selection.
func (r *Recorder) GCRun(tenant, block, valid int, harvested bool) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindGCRun, VSSD: tenant, Block: block, Valid: valid, Harvested: harvested, Peer: -1})
}

// SLOViolation records a completed request that missed its SLO.
func (r *Recorder) SLOViolation(vssd int, latency, slo int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindSLOViolation, VSSD: vssd, LatencyNs: latency, SLONs: slo, Peer: -1})
}

// Len returns the total number of events currently held (not the number
// emitted; rings discard their oldest entries at capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	r.state.mu.RLock()
	rings := r.state.rings
	r.state.mu.RUnlock()
	for _, rg := range rings {
		rg.mu.Lock()
		n += len(rg.evs)
		rg.mu.Unlock()
	}
	return n
}

// Events returns the held events of every vSSD merged into one slice
// ordered by (At, Seq). It copies under the ring locks, so it is safe
// while emitters are running.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.state.mu.RLock()
	rings := r.state.rings
	r.state.mu.RUnlock()
	var out []Event
	for _, rg := range rings {
		rg.mu.Lock()
		if rg.full {
			out = append(out, rg.evs[rg.next:]...)
			out = append(out, rg.evs[:rg.next]...)
		} else {
			out = append(out, rg.evs...)
		}
		rg.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// EventsFor returns the held events of one vSSD in emission order.
func (r *Recorder) EventsFor(vssd int) []Event {
	if r == nil {
		return nil
	}
	r.state.mu.RLock()
	if vssd < 0 || vssd >= len(r.state.rings) {
		r.state.mu.RUnlock()
		return nil
	}
	rg := r.state.rings[vssd]
	r.state.mu.RUnlock()
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if rg.full {
		out := make([]Event, 0, len(rg.evs))
		out = append(out, rg.evs[rg.next:]...)
		out = append(out, rg.evs[:rg.next]...)
		return out
	}
	return append([]Event(nil), rg.evs...)
}

// WriteJSONL writes every held event as one JSON object per line, in
// (At, Seq) order — the -trace output format of cmd/fleetsim. The schema
// is the Event struct's JSON encoding, documented in
// docs/OBSERVABILITY.md.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL decodes a JSONL trace written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
