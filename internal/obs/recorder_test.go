package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetClock(func() sim.Time { return 1 })
	r.Emit(Event{Kind: KindHarvest})
	r.Decision(KindHarvest, 0, 1e6, 0)
	r.Reward(0, 0.5, 0.4)
	r.Verdict(KindAdmissionAdmit, 0, "Harvest", 1e6)
	r.GSB(KindGSBCreate, 1, 0, -1, 2)
	r.GCRun(0, 3, 10, true)
	r.SLOViolation(0, 100, 50)
	if r.Len() != 0 || r.Events() != nil || r.EventsFor(0) != nil {
		t.Fatal("nil recorder holds events")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
}

func TestRecorderStampsSeqAndClock(t *testing.T) {
	r := NewRecorder(16)
	var now sim.Time = 42
	r.SetClock(func() sim.Time { return now })
	r.Decision(KindHarvest, 0, 2e6, 0)
	now = 100
	r.Decision(KindSetPriority, 0, 0, 3)
	evs := r.EventsFor(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].At != 42 || evs[1].At != 100 {
		t.Fatalf("timestamps %d,%d want 42,100", evs[0].At, evs[1].At)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("sequence not monotone: %d then %d", evs[0].Seq, evs[1].Seq)
	}
}

func TestRecorderRingDiscardsOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Decision(KindSetPriority, 0, 0, i)
	}
	evs := r.EventsFor(0)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Level != 6+i {
			t.Fatalf("event %d has level %d, want %d (newest-4 retained in order)", i, e.Level, 6+i)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len %d, want 4", r.Len())
	}
}

func TestEventsMergeOrdering(t *testing.T) {
	r := NewRecorder(16)
	var now sim.Time
	r.SetClock(func() sim.Time { return now })
	now = 30
	r.Decision(KindHarvest, 1, 0, 0)
	now = 10
	r.Decision(KindHarvest, 0, 0, 0)
	now = 20
	r.Decision(KindHarvest, 1, 0, 0)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].At != 10 || evs[1].At != 20 || evs[2].At != 30 {
		t.Fatalf("merge not ordered by At: %v %v %v", evs[0].At, evs[1].At, evs[2].At)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.SetClock(func() sim.Time { return 7 })
	r.Decision(KindMakeHarvestable, 0, 3e8, 0)
	r.GSB(KindGSBHarvest, 5, 1, 0, 2)
	r.GCRun(1, 17, 42, true)
	r.SLOViolation(0, 900, 450)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	// Every line must be standalone-parseable JSON with a kind string.
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if _, ok := m["kind"].(string); !ok {
			t.Fatalf("line %q has no string kind", ln)
		}
	}
	back, err := ReadJSONL(&buf2{bytes.NewBufferString(buf.String())})
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	want := r.Events()
	if len(back) != len(want) {
		t.Fatalf("round trip %d events, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, back[i], want[i])
		}
	}
}

// buf2 hides Bytes() so ReadJSONL exercises the plain io.Reader path.
type buf2 struct{ *bytes.Buffer }

func TestEventKindJSONStable(t *testing.T) {
	for k := KindHarvest; k <= KindSLOViolation; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back EventKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
	var bad EventKind
	if err := bad.UnmarshalJSON([]byte(`"no_such_kind"`)); err == nil {
		t.Fatal("unknown kind unmarshalled without error")
	}
}

// TestRecorderConcurrentEmit exercises the locking under -race: many
// goroutines emitting for overlapping vSSD ids while a reader drains
// merged snapshots, as trainer workers and an HTTP scrape would.
func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder(64)
	r.SetClock(func() sim.Time { return 1 })
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Decision(KindHarvest, i%5, float64(i), 0)
				r.GCRun(w%3, i, i%64, i%2 == 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Events()
			_ = r.Len()
		}
	}()
	wg.Wait()
	<-done
	if r.Len() == 0 {
		t.Fatal("no events recorded")
	}
}
