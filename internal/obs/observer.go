package obs

import "repro/internal/sim"

// Observer bundles the three observability pieces a run can carry: the
// decision-event Recorder, the metric Registry, and the virtual-time
// sampling period. The harness threads one Observer through platform
// construction (Options.Obs); cmd binaries build it behind their -http
// and -trace flags. A nil *Observer disables everything.
type Observer struct {
	// Rec receives decision events; nil disables tracing.
	Rec *Recorder
	// Reg receives time-series samples; nil disables telemetry.
	Reg *Registry
	// SamplePeriod is the telemetry cadence (<= 0 → DefaultSamplePeriod).
	SamplePeriod sim.Time
}

// NewObserver returns an observer with a fresh recorder and registry at
// the default sampling cadence.
func NewObserver() *Observer {
	return &Observer{Rec: NewRecorder(0), Reg: NewRegistry()}
}

// Recorder returns the observer's recorder, nil for a nil observer (so
// call sites can pass o.Recorder() straight into SetObserver hooks).
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.Rec
}

// Registry returns the observer's registry, nil for a nil observer.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}
