package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("fleetio_train_round", "Last round.").Set(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) (string, string, int) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type"), resp.StatusCode
	}

	body, ctype, code := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "fleetio_train_round 3") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, _, code = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %q", code, body[:min(len(body), 200)])
	}

	if _, _, code = get("/no/such/page"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}

	body, _, code = get("/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %q", code, body)
	}
}

func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestNilServerAccessors(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
