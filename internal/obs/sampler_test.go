package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestSamplerTicksAndStops(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler()
	var seen []sim.Time
	s.AddProbe(func(now sim.Time) { seen = append(seen, now) })
	s.Start(eng, 10*sim.Millisecond)
	eng.RunUntil(55 * sim.Millisecond)
	if s.Ticks() != 5 {
		t.Fatalf("got %d ticks in 55ms at 10ms cadence, want 5", s.Ticks())
	}
	if len(seen) != 5 || seen[0] != 10*sim.Millisecond {
		t.Fatalf("probe observations %v", seen)
	}
	s.Stop()
	// The ticker lapses on its next firing; the queue then drains fully.
	eng.Run()
	if s.Ticks() != 5 {
		t.Fatalf("ticks advanced to %d after Stop", s.Ticks())
	}
}

func TestSamplerDefaultPeriod(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler()
	s.Start(eng, 0)
	eng.RunUntil(DefaultSamplePeriod * 3)
	if s.Ticks() != 3 {
		t.Fatalf("got %d ticks, want 3", s.Ticks())
	}
	s.Stop()
	eng.Run()
}

func TestNilSamplerIsSafe(t *testing.T) {
	var s *Sampler
	s.AddProbe(func(sim.Time) {})
	s.Start(sim.NewEngine(), 0)
	s.Stop()
	if s.Ticks() != 0 {
		t.Fatal("nil sampler ticked")
	}
}
