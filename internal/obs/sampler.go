package obs

import (
	"sync/atomic"

	"repro/internal/sim"
)

// DefaultSamplePeriod is the telemetry cadence used when a sampler is
// started with a non-positive period: 100 ms of virtual time, fine
// enough to resolve behaviour inside one paper-scale decision window.
const DefaultSamplePeriod = 100 * sim.Millisecond

// Sampler drives time-series probes from a sim.Engine ticker. Probes are
// closures registered by the harness (or any owner of a platform) that
// read model state and Set registry metrics; the sampler itself knows
// nothing about what is being sampled, which keeps obs free of imports
// from the model packages.
type Sampler struct {
	probes  []func(now sim.Time)
	ticks   atomic.Int64
	stopped atomic.Bool
}

// NewSampler returns an empty sampler.
func NewSampler() *Sampler {
	return &Sampler{}
}

// AddProbe registers fn to run on every sample tick. Not safe to call
// concurrently with Start's ticks; register probes before starting.
func (s *Sampler) AddProbe(fn func(now sim.Time)) {
	if s == nil || fn == nil {
		return
	}
	s.probes = append(s.probes, fn)
}

// Ticks returns how many sample rounds have run.
func (s *Sampler) Ticks() int64 {
	if s == nil {
		return 0
	}
	return s.ticks.Load()
}

// Stop makes the ticker lapse after the current period (the engine event
// queue then drains normally).
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopped.Store(true)
}

// Start arms the periodic probe ticker on eng, sampling every period of
// virtual time (DefaultSamplePeriod when period <= 0). Like every
// self-rescheduling ticker it keeps the event queue non-empty, so owners
// that later call eng.Run (rather than RunUntil) must Stop the sampler
// first.
func (s *Sampler) Start(eng *sim.Engine, period sim.Time) {
	if s == nil {
		return
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	eng.Ticker(period, func(now sim.Time) bool {
		if s.stopped.Load() {
			return false
		}
		for _, p := range s.probes {
			p(now)
		}
		s.ticks.Add(1)
		return true
	})
}
