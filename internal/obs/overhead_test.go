package obs

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// sinkHist keeps the timed loops below observable by the compiler.
var sinkHist metrics.Histogram

// hotLoop models the instrumented completion path: a histogram add (the
// BenchmarkHistogramAdd hot path) plus, when traced is true, the exact
// nil-receiver recorder call vssd.pageDone makes. rec stays nil — this
// measures the DISABLED cost, which is the overhead every untraced
// benchmark run pays.
func hotLoop(iters int, traced bool) time.Duration {
	var rec *Recorder
	sinkHist.Reset()
	start := time.Now()
	for i := 0; i < iters; i++ {
		lat := int64(100 + i%1000)
		sinkHist.Add(lat)
		if traced {
			rec.SLOViolation(i&7, lat, 50)
		}
	}
	return time.Since(start)
}

// bestOf returns the fastest of n timings — minimums are far more stable
// than means on a shared machine, and the minimum is the honest cost of
// the code (everything above it is scheduler noise).
func bestOf(n, iters int, traced bool) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		if d := hotLoop(iters, traced); d < best {
			best = d
		}
	}
	return best
}

// TestDisabledRecorderOverhead is the <2% guard from the observability
// issue: a nil *Recorder in the per-page completion path must not slow a
// histogram-add-style hot loop measurably. The threshold allows 2%
// relative plus a 0.7 ns/op absolute floor (one mispredicted branch of
// slack) so the test stays robust to timer quantization; persistent
// regressions such as an allocation or a mutex on the disabled path
// exceed it by an order of magnitude.
func TestDisabledRecorderOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short")
	}
	const iters = 2_000_000
	const trials = 9
	hotLoop(iters, true) // warm up code and caches
	var base, traced time.Duration
	for attempt := 0; attempt < 5; attempt++ {
		base = bestOf(trials, iters, false)
		traced = bestOf(trials, iters, true)
		limit := time.Duration(float64(base)*1.02) + time.Duration(0.7*iters)
		if traced <= limit {
			return
		}
		t.Logf("attempt %d: base %v traced %v limit %v", attempt, base, traced, limit)
	}
	perOp := float64(traced-base) / iters
	t.Fatalf("disabled recorder adds %.2fns/op (%v vs %v baseline, >2%% + 0.7ns slack)",
		perOp, traced, base)
}

func BenchmarkDisabledRecorderEmit(b *testing.B) {
	var rec *Recorder
	for i := 0; i < b.N; i++ {
		rec.SLOViolation(i&7, int64(i), 50)
	}
}

func BenchmarkEnabledRecorderEmit(b *testing.B) {
	rec := NewRecorder(DefaultRingSize)
	rec.SetClock(func() sim.Time { return 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.SLOViolation(i&7, int64(i), 50)
	}
}
