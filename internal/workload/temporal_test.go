package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
)

func smallPlatform(eng *sim.Engine) *vssd.Platform {
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 2
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 16
	return vssd.NewPlatform(eng, pc)
}

// runShape drives one generator for dur and returns its recorded trace.
func runShape(t *testing.T, prof Profile, seed int64, dur sim.Time) []trace.Record {
	t.Helper()
	eng := sim.NewEngine()
	p := smallPlatform(eng)
	v := p.AddVSSD(vssd.Config{Name: "w", Channels: []int{0, 1}})
	g := NewGenerator(eng, v, prof, sim.NewRNG(seed))
	rec := trace.NewRecorder(0)
	g.Record(rec)
	g.Start()
	eng.RunUntil(dur)
	g.Stop()
	eng.Run()
	return rec.Records()
}

func TestApplyShapeSteadyIsIdentity(t *testing.T) {
	for _, name := range Names() {
		base := ByName(name)
		got := ApplyShape(base, ShapeSteady, 1, nil)
		if got.Burst != nil || got.Replay != nil || len(got.Diurnal) != 0 {
			t.Fatalf("%s: steady shape added overlays", name)
		}
		a := runShape(t, base, 11, 500*sim.Millisecond)
		b := runShape(t, got, 11, 500*sim.Millisecond)
		if len(a) != len(b) {
			t.Fatalf("%s: steady shape changed traffic: %d vs %d", name, len(a), len(b))
		}
	}
}

func TestShapeStringsRoundTrip(t *testing.T) {
	for _, s := range Shapes() {
		back, err := ParseShape(s.String())
		if err != nil || back != s {
			t.Fatalf("%v does not round-trip: %v %v", s, back, err)
		}
	}
	if _, err := ParseShape("nope"); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestDiurnalModulatesRate(t *testing.T) {
	base := ByName("YCSB")
	base.Phases = nil // isolate the diurnal component
	diurnal := ApplyShape(base, ShapeDiurnal, 1, nil)

	a := runShape(t, base, 21, 2*sim.Second)
	b := runShape(t, diurnal, 21, 2*sim.Second)
	if len(a) == len(b) {
		t.Fatal("diurnal overlay did not change the arrival count")
	}

	// The first harmonic's half-periods should show a visible rate swing:
	// count arrivals in [0,2s) quarters (period 4s → rising then falling).
	q := make([]int, 4)
	for _, r := range b {
		i := int(r.At / (500 * sim.Millisecond))
		if i >= 0 && i < 4 {
			q[i]++
		}
	}
	if q[1] <= q[3] {
		t.Fatalf("diurnal peak not visible: quarters %v", q)
	}

	// Deterministic per seed.
	c := runShape(t, diurnal, 21, 2*sim.Second)
	if len(b) != len(c) {
		t.Fatalf("diurnal run not deterministic: %d vs %d", len(b), len(c))
	}
	for i := range b {
		if b[i] != c[i] {
			t.Fatalf("diurnal record %d differs", i)
		}
	}
}

func TestBurstyFlipsRegimes(t *testing.T) {
	base := ByName("YCSB")
	bursty := ApplyShape(base, ShapeBursty, 1, nil)
	if bursty.Burst == nil {
		t.Fatal("bursty shape missing Burst")
	}

	eng := sim.NewEngine()
	p := smallPlatform(eng)
	v := p.AddVSSD(vssd.Config{Name: "w", Channels: []int{0, 1}})
	g := NewGenerator(eng, v, bursty, sim.NewRNG(31))
	g.Start()
	eng.RunUntil(4 * sim.Second)
	g.Stop()
	eng.Run()
	if g.burst.flips < 2 {
		t.Fatalf("only %d regime flips in 4s", g.burst.flips)
	}
	if f := g.RateFactor(); f != bursty.Burst.HighFactor && f != bursty.Burst.LowFactor {
		// The composed factor includes phases, so just check it's positive.
		if f <= 0 {
			t.Fatalf("rate factor %v", f)
		}
	}

	a := runShape(t, bursty, 31, 2*sim.Second)
	b := runShape(t, bursty, 31, 2*sim.Second)
	if len(a) != len(b) {
		t.Fatalf("bursty run not deterministic: %d vs %d", len(a), len(b))
	}
	steady := runShape(t, base, 31, 2*sim.Second)
	if len(a) == len(steady) {
		t.Fatal("bursty overlay did not change the arrival count")
	}
}

func TestReplayDeterministicAcrossEngines(t *testing.T) {
	src := ByName("YCSB").SynthesizeTrace(3000, 100000, sim.NewRNG(41))
	prof := ReplayProfile("rep", src, false)
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}

	a := runShape(t, prof, 51, 2*sim.Second)
	b := runShape(t, prof, 99, 2*sim.Second) // different seed: replay ignores RNG
	if len(a) != len(b) {
		t.Fatalf("replay depends on the seed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay record %d differs across seeds", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("replay issued nothing")
	}
	// Replayed LPN/pages match the source records (small logical space may
	// fold addresses, so check the prefix where they fit).
	for i := 0; i < 10 && i < len(a); i++ {
		if a[i].Write != src[i].Write || a[i].Pages != src[i].Pages {
			t.Fatalf("replay record %d: got %+v want %+v", i, a[i], src[i])
		}
	}
}

func TestReplayLoopWraps(t *testing.T) {
	// A short trace looped over a long run must wrap and keep issuing.
	src := ByName("YCSB").SynthesizeTrace(200, 100000, sim.NewRNG(42))
	prof := ReplayProfile("loop", src, true)

	eng := sim.NewEngine()
	p := smallPlatform(eng)
	v := p.AddVSSD(vssd.Config{Name: "w", Channels: []int{0, 1}})
	g := NewGenerator(eng, v, prof, sim.NewRNG(1))
	g.Start()
	eng.RunUntil(2 * sim.Second)
	g.Stop()
	eng.Run()
	if g.ReplayWraps() < 1 {
		t.Fatalf("looped replay never wrapped (issued %d)", g.Issued())
	}
	if g.Issued() <= int64(len(src)) {
		t.Fatalf("looped replay stopped after one pass: %d issued", g.Issued())
	}

	// Unlooped replay stops at the end of the trace.
	once := ReplayProfile("once", src, false)
	recs := runShape(t, once, 1, 2*sim.Second)
	if len(recs) != len(src) {
		t.Fatalf("unlooped replay issued %d of %d", len(recs), len(src))
	}
}

func TestReplayFoldsOversizedAddresses(t *testing.T) {
	src := []trace.Record{
		{At: 0, Write: true, LPN: 1 << 40, Pages: 4},
		{At: sim.Millisecond, LPN: 3, Pages: 100000},
	}
	prof := ReplayProfile("big", src, false)
	recs := runShape(t, prof, 1, sim.Second)
	if len(recs) != 2 {
		t.Fatalf("issued %d of 2", len(recs))
	}
	eng := sim.NewEngine()
	p := smallPlatform(eng)
	v := p.AddVSSD(vssd.Config{Name: "w", Channels: []int{0, 1}})
	logical := int64(v.Tenant().LogicalPages())
	for i, r := range recs {
		if r.LPN < 0 || r.LPN+int64(r.Pages) > logical {
			t.Fatalf("record %d not folded into logical space: %+v (logical %d)", i, r, logical)
		}
	}
}

func TestRegisterAndReplayProfile(t *testing.T) {
	src := ByName("TeraSort").SynthesizeTrace(500, 100000, sim.NewRNG(43))
	prof := ReplayProfile("RegTest", src, true)
	if prof.Class != Bandwidth {
		t.Fatalf("big-transfer trace classed %v", prof.Class)
	}
	if err := Register(prof); err != nil {
		t.Fatal(err)
	}
	defer delete(profiles, "RegTest")
	if ByName("RegTest").Replay == nil {
		t.Fatal("registered profile lost its trace")
	}
	if err := Register(prof); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(Profile{Name: "bad", Replay: &Replay{}}); err == nil {
		t.Fatal("invalid profile registered")
	}

	small := []trace.Record{{At: 0, Pages: 1}, {At: 10, Pages: 1}}
	if p := ReplayProfile("tiny", small, false); p.Class != Latency {
		t.Fatalf("small-transfer trace classed %v", p.Class)
	}
}

func TestTemporalValidate(t *testing.T) {
	base := ByName("YCSB")
	bad := base
	bad.Diurnal = []Harmonic{{Period: 0, Amp: 0.5}}
	if bad.Validate() == nil {
		t.Fatal("zero-period harmonic accepted")
	}
	bad = base
	bad.Burst = &Burst{HighFactor: 0, MeanHigh: sim.Second, MeanLow: sim.Second}
	if bad.Validate() == nil {
		t.Fatal("zero high factor accepted")
	}
	bad = base
	bad.Burst = &Burst{HighFactor: 2, MeanHigh: 0, MeanLow: sim.Second}
	if bad.Validate() == nil {
		t.Fatal("zero sojourn accepted")
	}
	bad = base
	bad.Replay = &Replay{Records: []trace.Record{{At: 10, Pages: 1}, {At: 5, Pages: 1}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-order replay accepted")
	}
	bad.Replay = &Replay{Records: []trace.Record{{At: 0, Pages: 0}}}
	if bad.Validate() == nil {
		t.Fatal("zero-page replay record accepted")
	}
}

func TestSynthesizeTraceHonorsOverlays(t *testing.T) {
	base := ByName("YCSB")
	shaped := ApplyShape(base, ShapeBursty, 1, nil)
	a := base.SynthesizeTrace(2000, 100000, sim.NewRNG(44))
	b := shaped.SynthesizeTrace(2000, 100000, sim.NewRNG(44))
	if a[len(a)-1].At == b[len(b)-1].At {
		t.Fatal("burst overlay did not change synthesized arrival times")
	}
	rep := ReplayProfile("r", a, false)
	c := rep.SynthesizeTrace(100, 100000, sim.NewRNG(45))
	if len(c) != 100 || c[0] != a[0] {
		t.Fatal("replay profile synthesis must return its own records")
	}
}
