// Package workload provides synthetic generators for the nine cloud
// workloads the paper uses (Table 4 for evaluation; §3.8 lists the
// pretraining set). The paper runs the real applications; this
// reproduction parameterizes each one in exactly the features FleetIO
// observes — IOPS process, request-size mix, read/write ratio, address
// locality (LPA entropy), sequentiality, and phase structure — so the
// clustering, reward fine-tuning, and bandwidth/latency contrasts exercise
// the same code paths.
package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
)

// Class tags a workload as bandwidth-intensive or latency-sensitive
// (Table 4's two categories).
type Class uint8

// Workload classes.
const (
	Bandwidth Class = iota
	Latency
)

func (c Class) String() string {
	if c == Bandwidth {
		return "bandwidth-intensive"
	}
	return "latency-sensitive"
}

// Phase scales a workload's intensity for a duration; profiles cycle
// through their phases, producing the dynamic demand that storage
// harvesting exploits.
type Phase struct {
	Dur    sim.Time
	Factor float64
}

// Harmonic is one sinusoidal component of a diurnal intensity pattern:
// the rate multiplier contributes Amp*sin(2π·t/Period). Real diurnal
// curves are sums of a few harmonics (daily + weekly + noise period);
// profiles list several and the factors compose additively around 1.
type Harmonic struct {
	Period sim.Time
	Amp    float64
}

// Burst parameterizes a two-state Markov-modulated Poisson process: the
// generator alternates between a high-rate and a low-rate regime with
// exponentially distributed sojourn times, multiplying the base rate by
// HighFactor or LowFactor (0 = 1.0). State flips draw from the
// generator's own RNG stream, so the burst schedule is deterministic per
// seed and independent across tenants.
type Burst struct {
	HighFactor, LowFactor float64
	MeanHigh, MeanLow     sim.Time
}

// Replay makes a profile deterministic: instead of drawing synthetic
// accesses, the generator replays Records open-loop at their recorded
// timestamps (shifted to the generator's start time). With Loop set the
// trace repeats end-to-start, advancing the time base by the trace span
// each wrap.
type Replay struct {
	Records []trace.Record
	Loop    bool
}

// span returns one loop iteration's duration: last-minus-first arrival
// plus one mean gap, so looped replays keep a steady arrival rate across
// the wrap instead of issuing two records back to back.
func (r *Replay) span() sim.Time {
	n := len(r.Records)
	if n == 0 {
		return sim.Millisecond
	}
	d := r.Records[n-1].At - r.Records[0].At
	if n == 1 || d <= 0 {
		return sim.Millisecond
	}
	return d + d/sim.Time(n-1)
}

// Profile is a fully parameterized workload.
type Profile struct {
	Name  string
	Class Class

	// ClosedLoop keeps Concurrency requests in flight (bandwidth-hungry
	// batch jobs); otherwise arrivals are an open-loop Poisson process at
	// MeanIOPS.
	ClosedLoop  bool
	Concurrency int
	MeanIOPS    float64

	// ReadRatio is the fraction of requests that are reads.
	ReadRatio float64
	// PagesMin/PagesMax bound the uniform request size in pages.
	PagesMin, PagesMax int
	// SeqProb is the probability of continuing a sequential run instead of
	// jumping to a Zipf-random offset.
	SeqProb float64
	// ZipfSkew shapes random jumps (1.0 = uniform; higher = more local).
	ZipfSkew float64
	// WorkingSetFrac bounds the touched fraction of the logical space.
	WorkingSetFrac float64
	// Phases modulate intensity; empty means constant.
	Phases []Phase
	// MaxInflightPages overrides the vSSD inflight cap (0 = default).
	MaxInflightPages int

	// Diurnal adds multi-period sinusoidal rate modulation on top of
	// Phases; empty means none. The composed factor is clamped at 0.05.
	Diurnal []Harmonic
	// Burst overlays a two-state MMPP regime switch; nil means none.
	Burst *Burst
	// Replay, when set, replaces the synthetic access process entirely:
	// the generator replays the trace open-loop and every other shape
	// knob is ignored.
	Replay *Replay
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if p.Replay != nil {
		// Replay profiles use only the trace; the synthetic knobs are
		// unused and so unchecked.
		if len(p.Replay.Records) == 0 {
			return fmt.Errorf("workload %s: empty replay trace", p.Name)
		}
		var prev sim.Time
		for i, r := range p.Replay.Records {
			if r.Pages < 1 || r.LPN < 0 {
				return fmt.Errorf("workload %s: replay record %d: lpn=%d pages=%d", p.Name, i, r.LPN, r.Pages)
			}
			if r.At < prev {
				return fmt.Errorf("workload %s: replay record %d out of order", p.Name, i)
			}
			prev = r.At
		}
		return nil
	}
	for i, h := range p.Diurnal {
		if h.Period <= 0 {
			return fmt.Errorf("workload %s: diurnal harmonic %d: period %v", p.Name, i, h.Period)
		}
	}
	if b := p.Burst; b != nil {
		switch {
		case b.HighFactor <= 0:
			return fmt.Errorf("workload %s: burst high factor %v", p.Name, b.HighFactor)
		case b.LowFactor < 0:
			return fmt.Errorf("workload %s: burst low factor %v", p.Name, b.LowFactor)
		case b.MeanHigh <= 0 || b.MeanLow <= 0:
			return fmt.Errorf("workload %s: burst sojourns %v/%v", p.Name, b.MeanHigh, b.MeanLow)
		}
	}
	switch {
	case p.ClosedLoop && p.Concurrency <= 0:
		return fmt.Errorf("workload %s: closed loop needs concurrency", p.Name)
	case !p.ClosedLoop && p.MeanIOPS <= 0:
		return fmt.Errorf("workload %s: open loop needs IOPS", p.Name)
	case p.ReadRatio < 0 || p.ReadRatio > 1:
		return fmt.Errorf("workload %s: read ratio %v", p.Name, p.ReadRatio)
	case p.PagesMin <= 0 || p.PagesMax < p.PagesMin:
		return fmt.Errorf("workload %s: page bounds %d..%d", p.Name, p.PagesMin, p.PagesMax)
	case p.SeqProb < 0 || p.SeqProb > 1:
		return fmt.Errorf("workload %s: seq prob %v", p.Name, p.SeqProb)
	case p.WorkingSetFrac <= 0 || p.WorkingSetFrac > 1:
		return fmt.Errorf("workload %s: working set %v", p.Name, p.WorkingSetFrac)
	}
	return nil
}

// The nine workload profiles. Bandwidth-intensive jobs are closed-loop
// streaming mixes; latency-sensitive services are open-loop with small
// requests. YCSB-B gets a much higher Zipf skew than the other
// latency-sensitive services so it forms its own low-entropy cluster
// (Figure 6).
var profiles = map[string]Profile{
	"TeraSort": {
		Name: "TeraSort", Class: Bandwidth, ClosedLoop: true, Concurrency: 12,
		ReadRatio: 0.50, PagesMin: 16, PagesMax: 48, SeqProb: 0.92, ZipfSkew: 1.0,
		WorkingSetFrac: 0.45, MaxInflightPages: 512,
		Phases: []Phase{{8 * sim.Second, 1.0}, {4 * sim.Second, 0.7}},
	},
	"MLPrep": {
		Name: "MLPrep", Class: Bandwidth, ClosedLoop: true, Concurrency: 10,
		ReadRatio: 0.75, PagesMin: 12, PagesMax: 40, SeqProb: 0.88, ZipfSkew: 1.1,
		WorkingSetFrac: 0.5, MaxInflightPages: 512,
		Phases: []Phase{{6 * sim.Second, 1.0}, {3 * sim.Second, 0.8}},
	},
	"PageRank": {
		Name: "PageRank", Class: Bandwidth, ClosedLoop: true, Concurrency: 14,
		ReadRatio: 0.85, PagesMin: 16, PagesMax: 64, SeqProb: 0.90, ZipfSkew: 1.0,
		WorkingSetFrac: 0.55, MaxInflightPages: 512,
		Phases: []Phase{{10 * sim.Second, 1.0}, {2 * sim.Second, 0.5}},
	},
	"BatchAnalytics": {
		Name: "BatchAnalytics", Class: Bandwidth, ClosedLoop: true, Concurrency: 8,
		ReadRatio: 0.70, PagesMin: 8, PagesMax: 32, SeqProb: 0.85, ZipfSkew: 1.0,
		WorkingSetFrac: 0.8, MaxInflightPages: 256,
		Phases: []Phase{{5 * sim.Second, 1.0}, {5 * sim.Second, 0.6}},
	},
	"VDI-Web": {
		Name: "VDI-Web", Class: Latency, MeanIOPS: 2200,
		ReadRatio: 0.70, PagesMin: 1, PagesMax: 4, SeqProb: 0.15, ZipfSkew: 1.25,
		WorkingSetFrac: 0.6, MaxInflightPages: 128,
		Phases: []Phase{{4 * sim.Second, 1.3}, {4 * sim.Second, 0.5}, {4 * sim.Second, 1.0}},
	},
	"YCSB": {
		Name: "YCSB", Class: Latency, MeanIOPS: 3200,
		ReadRatio: 0.95, PagesMin: 1, PagesMax: 1, SeqProb: 0.05, ZipfSkew: 2.2,
		WorkingSetFrac: 0.5, MaxInflightPages: 128,
		Phases: []Phase{{5 * sim.Second, 1.2}, {5 * sim.Second, 0.6}},
	},
	"TPCE": {
		Name: "TPCE", Class: Latency, MeanIOPS: 2600,
		ReadRatio: 0.90, PagesMin: 1, PagesMax: 2, SeqProb: 0.10, ZipfSkew: 1.24,
		WorkingSetFrac: 0.7, MaxInflightPages: 128,
		Phases: []Phase{{6 * sim.Second, 1.1}, {3 * sim.Second, 0.7}},
	},
	"SearchEngine": {
		Name: "SearchEngine", Class: Latency, MeanIOPS: 2000,
		ReadRatio: 0.98, PagesMin: 1, PagesMax: 4, SeqProb: 0.12, ZipfSkew: 1.27,
		WorkingSetFrac: 0.8, MaxInflightPages: 128,
		Phases: []Phase{{4 * sim.Second, 1.4}, {6 * sim.Second, 0.6}},
	},
	"LiveMaps": {
		Name: "LiveMaps", Class: Latency, MeanIOPS: 1600,
		ReadRatio: 0.80, PagesMin: 2, PagesMax: 8, SeqProb: 0.25, ZipfSkew: 1.20,
		WorkingSetFrac: 0.7, MaxInflightPages: 128,
		Phases: []Phase{{5 * sim.Second, 1.0}, {5 * sim.Second, 0.8}},
	},
}

// ByName returns the named profile; it panics on unknown names (profiles
// are compile-time data, so a miss is a programming error).
func ByName(name string) Profile {
	p, ok := profiles[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown profile %q", name))
	}
	return p
}

// Names returns all profile names, evaluation set first.
func Names() []string {
	return []string{
		"TeraSort", "MLPrep", "PageRank", "VDI-Web", "YCSB",
		"TPCE", "SearchEngine", "LiveMaps", "BatchAnalytics",
	}
}

// EvaluationBandwidth returns the bandwidth-intensive evaluation set.
func EvaluationBandwidth() []string { return []string{"TeraSort", "MLPrep", "PageRank"} }

// EvaluationLatency returns the latency-sensitive evaluation set.
func EvaluationLatency() []string { return []string{"VDI-Web", "YCSB"} }

// PretrainingSet returns the held-out workloads used for offline
// pretraining (§3.8).
func PretrainingSet() []string {
	return []string{"LiveMaps", "TPCE", "SearchEngine", "BatchAnalytics"}
}

// addrState tracks the sequential pointer for address generation.
type addrState struct {
	seq int64
}

// nextAccess produces the next (write, lpn, pages) triple for the profile
// over a logical space of `pages` pages.
func (p Profile) nextAccess(rng *sim.RNG, st *addrState, logicalPages int) (write bool, lpn int64, n int) {
	write = rng.Float64() >= p.ReadRatio
	n = p.PagesMin
	if p.PagesMax > p.PagesMin {
		n += rng.Intn(p.PagesMax - p.PagesMin + 1)
	}
	ws := int64(float64(logicalPages) * p.WorkingSetFrac)
	if ws < int64(n) {
		ws = int64(n)
	}
	if rng.Float64() < p.SeqProb {
		if st.seq+int64(n) > ws {
			st.seq = 0 // wrap the sequential stream
		}
		lpn = st.seq
	} else {
		lpn = int64(rng.Zipf(int(ws), p.ZipfSkew))
		if lpn+int64(n) > ws {
			lpn = ws - int64(n)
			if lpn < 0 {
				lpn = 0
			}
		}
	}
	st.seq = lpn + int64(n) // the next sequential access continues here
	return write, lpn, n
}

// phaseFactor returns the intensity multiplier at time t.
func (p Profile) phaseFactor(t sim.Time) float64 {
	if len(p.Phases) == 0 {
		return 1
	}
	var cycle sim.Time
	for _, ph := range p.Phases {
		cycle += ph.Dur
	}
	if cycle <= 0 {
		return 1
	}
	off := t % cycle
	for _, ph := range p.Phases {
		if off < ph.Dur {
			return ph.Factor
		}
		off -= ph.Dur
	}
	return 1
}

// diurnalFactor composes the profile's harmonics at time t, clamped so
// the rate never collapses entirely during troughs.
func (p Profile) diurnalFactor(t sim.Time) float64 {
	f := 1.0
	for _, h := range p.Diurnal {
		f += h.Amp * math.Sin(2*math.Pi*float64(t)/float64(h.Period))
	}
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// burstState tracks which MMPP regime a stream is in and when it next
// flips; shared between the live Generator and SynthesizeTrace.
type burstState struct {
	init  bool
	high  bool
	until sim.Time
	flips int64
}

// factor advances the regime switch to time now (drawing sojourns from
// rng) and returns the current rate multiplier.
func (bs *burstState) factor(b *Burst, now sim.Time, rng *sim.RNG) float64 {
	if !bs.init {
		bs.init = true
		bs.high = false
		bs.until = now + rng.ExpDuration(b.MeanLow)
	}
	for now >= bs.until {
		bs.high = !bs.high
		bs.flips++
		mean := b.MeanLow
		if bs.high {
			mean = b.MeanHigh
		}
		bs.until += rng.ExpDuration(mean)
	}
	if bs.high {
		return b.HighFactor
	}
	if b.LowFactor == 0 {
		return 1
	}
	return b.LowFactor
}

// Generator drives a vSSD with the profile's traffic. Its steady state is
// allocation-free: requests come from the vSSD's pool, the closed-loop
// completion callback is built once at construction, and think-time /
// arrival waits go through the engine's closure-free scheduling path.
type Generator struct {
	prof    Profile
	eng     *sim.Engine
	v       *vssd.VSSD
	rng     *sim.RNG
	st      addrState
	stopped bool
	rec     *trace.Recorder
	issued  int64
	// lastFactor is the most recent composed rate multiplier (phases ×
	// diurnal × burst), exported for observability.
	lastFactor float64
	burst      burstState
	// Replay cursor: index of the next record, the virtual-time base the
	// trace is shifted by, and how many times a looped trace has wrapped.
	ri          int
	rbase       sim.Time
	replayWraps int64
	// onClosed is the shared completion callback for closed-loop requests;
	// caching it avoids one closure allocation per request.
	onClosed func(*vssd.Request, sim.Time)
}

// NewGenerator binds a profile to a vSSD. Call Start to begin traffic.
func NewGenerator(eng *sim.Engine, v *vssd.VSSD, prof Profile, rng *sim.RNG) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{prof: prof, eng: eng, v: v, rng: rng, lastFactor: 1}
	g.onClosed = func(_ *vssd.Request, _ sim.Time) { g.closedDone() }
	return g
}

// Record attaches a trace recorder capturing every issued request.
func (g *Generator) Record(rec *trace.Recorder) { g.rec = rec }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Issued returns the number of requests issued so far.
func (g *Generator) Issued() int64 { return g.issued }

// RateFactor returns the most recent composed rate multiplier (phase ×
// diurnal × burst); replay generators report 1.
func (g *Generator) RateFactor() float64 { return g.lastFactor }

// ReplayWraps returns how many times a looped replay has restarted.
func (g *Generator) ReplayWraps() int64 { return g.replayWraps }

// rateFactor composes the intensity multiplier at time now and caches it
// for RateFactor. Profiles without Diurnal/Burst take zero extra RNG
// draws here, keeping legacy runs byte-identical.
func (g *Generator) rateFactor(now sim.Time) float64 {
	f := g.prof.phaseFactor(now)
	if len(g.prof.Diurnal) > 0 {
		f *= g.prof.diurnalFactor(now)
	}
	if g.prof.Burst != nil {
		f *= g.burst.factor(g.prof.Burst, now, g.rng)
	}
	g.lastFactor = f
	return f
}

// Start launches the arrival process.
func (g *Generator) Start() {
	g.stopped = false
	if g.prof.Replay != nil {
		g.ri = 0
		g.rbase = g.eng.Now() - g.prof.Replay.Records[0].At
		g.scheduleReplay()
		return
	}
	if g.prof.ClosedLoop {
		for i := 0; i < g.prof.Concurrency; i++ {
			g.issueClosed()
		}
		return
	}
	g.scheduleOpen()
}

// Stop halts new arrivals (in-flight requests complete normally).
func (g *Generator) Stop() { g.stopped = true }

func (g *Generator) issue(onComplete func(*vssd.Request, sim.Time)) {
	write, lpn, n := g.prof.nextAccess(g.rng, &g.st, g.v.Tenant().LogicalPages())
	if g.rec != nil {
		g.rec.Add(trace.Record{At: g.eng.Now(), Write: write, LPN: lpn, Pages: int32(n)})
	}
	g.issued++
	r := g.v.AcquireRequest()
	r.Write = write
	r.LPN = int(lpn)
	r.Pages = n
	r.OnComplete = onComplete
	g.v.Submit(r)
}

func (g *Generator) issueClosed() {
	if g.stopped {
		return
	}
	g.issue(g.onClosed)
}

// closedDone chains the next closed-loop request, inserting think time
// between batch stages when the phase factor is below 1.
func (g *Generator) closedDone() {
	f := g.rateFactor(g.eng.Now())
	if f >= 0.999 {
		g.issueClosed()
		return
	}
	if f < 0.05 {
		f = 0.05
	}
	// Pause proportional to (1-f): at factor 0.5 the stream idles about
	// one service time per request.
	delay := sim.Time(float64(2*sim.Millisecond) * (1 - f) / f)
	if delay < sim.Microsecond {
		delay = sim.Microsecond
	}
	g.eng.ScheduleEvent(delay, genIssueClosed, sim.EventArg{P: g})
}

// genIssueClosed resumes a closed-loop stream after its think-time pause.
func genIssueClosed(arg sim.EventArg, _ sim.Time) { arg.P.(*Generator).issueClosed() }

func (g *Generator) scheduleOpen() {
	if g.stopped {
		return
	}
	f := g.rateFactor(g.eng.Now())
	rate := g.prof.MeanIOPS * f
	if rate < 1 {
		rate = 1
	}
	gap := g.rng.ExpDuration(sim.Time(1e9 / rate))
	g.eng.ScheduleEvent(gap, genOpenArrival, sim.EventArg{P: g})
}

// genOpenArrival fires one open-loop Poisson arrival and re-arms the gap.
func genOpenArrival(arg sim.EventArg, _ sim.Time) {
	g := arg.P.(*Generator)
	if g.stopped {
		return
	}
	g.issue(nil)
	g.scheduleOpen()
}

// scheduleReplay arms the next trace record's arrival, wrapping looped
// traces by advancing the time base one span per iteration.
func (g *Generator) scheduleReplay() {
	if g.stopped {
		return
	}
	rp := g.prof.Replay
	if g.ri >= len(rp.Records) {
		if !rp.Loop {
			return
		}
		g.ri = 0
		g.rbase += rp.span()
		g.replayWraps++
	}
	at := g.rbase + rp.Records[g.ri].At
	delay := at - g.eng.Now()
	if delay < 0 {
		delay = 0
	}
	g.eng.ScheduleEvent(delay, genReplayArrival, sim.EventArg{P: g})
}

// genReplayArrival issues the pending trace record and re-arms the next.
func genReplayArrival(arg sim.EventArg, _ sim.Time) {
	g := arg.P.(*Generator)
	if g.stopped {
		return
	}
	g.issueReplay(g.prof.Replay.Records[g.ri])
	g.ri++
	g.scheduleReplay()
}

// issueReplay submits one trace record through the normal datapath,
// folding addresses that fall outside the tenant's logical space back in
// (a trace captured on a bigger device must still replay on a small vSSD).
func (g *Generator) issueReplay(r trace.Record) {
	logical := int64(g.v.Tenant().LogicalPages())
	n := int64(r.Pages)
	if n > logical {
		n = logical
	}
	lpn := r.LPN
	if lpn+n > logical {
		lpn %= logical
		if lpn+n > logical {
			lpn = logical - n
		}
	}
	if g.rec != nil {
		g.rec.Add(trace.Record{At: g.eng.Now(), Write: r.Write, LPN: lpn, Pages: int32(n)})
	}
	g.issued++
	req := g.v.AcquireRequest()
	req.Write = r.Write
	req.LPN = int(lpn)
	req.Pages = int(n)
	req.OnComplete = nil
	g.v.Submit(req)
}

// SynthesizeTrace produces n records of this profile without a simulator,
// for clustering and offline analysis. Timestamps follow the open-loop
// arrival model (closed-loop profiles use an effective IOPS estimated from
// concurrency and a nominal 2 ms service time).
func (p Profile) SynthesizeTrace(n int, logicalPages int, rng *sim.RNG) []trace.Record {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.Replay != nil {
		// A replay profile's trace IS its synthetic form.
		m := len(p.Replay.Records)
		if m > n {
			m = n
		}
		return append([]trace.Record(nil), p.Replay.Records[:m]...)
	}
	rate := p.MeanIOPS
	if p.ClosedLoop {
		rate = float64(p.Concurrency) / 0.002
	}
	var st addrState
	var bs burstState
	recs := make([]trace.Record, 0, n)
	var now sim.Time
	for i := 0; i < n; i++ {
		f := p.phaseFactor(now)
		if len(p.Diurnal) > 0 {
			f *= p.diurnalFactor(now)
		}
		if p.Burst != nil {
			f *= bs.factor(p.Burst, now, rng)
		}
		r := rate * f
		if r < 1 {
			r = 1
		}
		now += rng.ExpDuration(sim.Time(1e9 / r))
		write, lpn, np := p.nextAccess(rng, &st, logicalPages)
		recs = append(recs, trace.Record{At: now, Write: write, LPN: lpn, Pages: int32(np)})
	}
	return recs
}

// Register adds a profile to the named-profile table so ByName and mixes
// can reference it (used for trace-backed profiles built at startup).
func Register(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, ok := profiles[p.Name]; ok {
		return fmt.Errorf("workload: profile %q already registered", p.Name)
	}
	profiles[p.Name] = p
	return nil
}

// ReplayProfile wraps a trace in a named profile: the generator replays
// the records open-loop (looping when loop is set). The class is guessed
// from the mean request size — big transfers read as bandwidth-intensive,
// small ones as latency-sensitive — which seeds the SLO and reward side.
func ReplayProfile(name string, recs []trace.Record, loop bool) Profile {
	var pages int64
	for _, r := range recs {
		pages += int64(r.Pages)
	}
	class := Latency
	if len(recs) > 0 && pages/int64(len(recs)) >= 8 {
		class = Bandwidth
	}
	return Profile{
		Name:             name,
		Class:            class,
		Replay:           &Replay{Records: recs, Loop: loop},
		MaxInflightPages: 256,
	}
}
