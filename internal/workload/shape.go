package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Shape names a temporal overlay applied on top of a base profile: the
// workload keeps its request mix and address pattern but its arrival
// process changes. Shapes are the rungs of the WorkloadScenario ladder
// (steady → diurnal → bursty → replay), mirroring how FaultScenario
// escalates fault rates.
type Shape uint8

// Temporal workload shapes.
const (
	// ShapeSteady leaves the profile untouched (the legacy generators).
	ShapeSteady Shape = iota
	// ShapeDiurnal overlays multi-period sinusoidal rate modulation.
	ShapeDiurnal
	// ShapeBursty overlays a two-state MMPP regime switch.
	ShapeBursty
	// ShapeReplay swaps the synthetic process for deterministic trace
	// replay (a supplied trace, or one synthesized from the profile).
	ShapeReplay
)

func (s Shape) String() string {
	switch s {
	case ShapeSteady:
		return "steady"
	case ShapeDiurnal:
		return "diurnal"
	case ShapeBursty:
		return "bursty"
	case ShapeReplay:
		return "replay"
	}
	return fmt.Sprintf("shape(%d)", uint8(s))
}

// ParseShape resolves a shape name from a CLI flag.
func ParseShape(name string) (Shape, error) {
	for _, s := range Shapes() {
		if s.String() == name {
			return s, nil
		}
	}
	return ShapeSteady, fmt.Errorf("workload: unknown shape %q (have steady, diurnal, bursty, replay)", name)
}

// Shapes lists all shapes in ladder order.
func Shapes() []Shape {
	return []Shape{ShapeSteady, ShapeDiurnal, ShapeBursty, ShapeReplay}
}

// synthReplayLen is how many records ApplyShape synthesizes when a replay
// shape is requested without a supplied trace.
const synthReplayLen = 20000

// ApplyShape overlays a temporal shape on prof. The profile keeps its
// name (so per-workload SLOs and result collection still key correctly)
// and its request mix; only the arrival process changes. seed
// parameterizes the synthetic replay trace so distinct tenants replay
// distinct traces; replay uses the supplied records when non-empty.
// Compressed periods: the simulated runs last seconds, not days, so the
// "diurnal" periods here are seconds-scale stand-ins for the multi-hour
// cycles real fleets see.
func ApplyShape(prof Profile, s Shape, seed int64, replay []trace.Record) Profile {
	switch s {
	case ShapeDiurnal:
		prof.Diurnal = []Harmonic{
			{Period: 4 * sim.Second, Amp: 0.55},
			{Period: 1500 * sim.Millisecond, Amp: 0.3},
			{Period: 700 * sim.Millisecond, Amp: 0.15},
		}
	case ShapeBursty:
		if prof.ClosedLoop {
			// Closed loops self-limit, so bursts mostly modulate think
			// time; keep the swing moderate.
			prof.Burst = &Burst{
				HighFactor: 1.5, LowFactor: 0.3,
				MeanHigh: 400 * sim.Millisecond, MeanLow: 800 * sim.Millisecond,
			}
		} else {
			prof.Burst = &Burst{
				HighFactor: 5, LowFactor: 0.6,
				MeanHigh: 250 * sim.Millisecond, MeanLow: 900 * sim.Millisecond,
			}
		}
	case ShapeReplay:
		recs := replay
		if len(recs) == 0 {
			recs = prof.SynthesizeTrace(synthReplayLen, 1<<20, sim.NewRNG(seed))
		}
		prof.Replay = &Replay{Records: recs, Loop: true}
	}
	return prof
}
