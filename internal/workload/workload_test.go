package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p := ByName(name)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown profile must panic")
		}
	}()
	ByName("NoSuchWorkload")
}

func TestSetsArePartitioned(t *testing.T) {
	eval := append(EvaluationBandwidth(), EvaluationLatency()...)
	pre := PretrainingSet()
	seen := map[string]bool{}
	for _, n := range eval {
		seen[n] = true
	}
	for _, n := range pre {
		if seen[n] {
			t.Fatalf("%s is in both evaluation and pretraining sets", n)
		}
	}
	// The paper pretrains on workloads *not* used in evaluation.
	if len(pre) != 4 {
		t.Fatalf("pretraining set = %v", pre)
	}
}

func TestClassesMatchTable4(t *testing.T) {
	for _, n := range EvaluationBandwidth() {
		if ByName(n).Class != Bandwidth {
			t.Fatalf("%s should be bandwidth-intensive", n)
		}
	}
	for _, n := range EvaluationLatency() {
		if ByName(n).Class != Latency {
			t.Fatalf("%s should be latency-sensitive", n)
		}
	}
	if Bandwidth.String() == Latency.String() {
		t.Fatal("class strings must differ")
	}
}

func TestPhaseFactorCycles(t *testing.T) {
	p := Profile{Phases: []Phase{{10 * sim.Second, 2.0}, {5 * sim.Second, 0.5}}}
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 2.0}, {9 * sim.Second, 2.0}, {10 * sim.Second, 0.5},
		{14 * sim.Second, 0.5}, {15 * sim.Second, 2.0}, {26 * sim.Second, 0.5},
	}
	for _, c := range cases {
		if got := p.phaseFactor(c.t); got != c.want {
			t.Fatalf("factor(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	empty := Profile{}
	if empty.phaseFactor(123) != 1 {
		t.Fatal("no phases must give factor 1")
	}
}

func TestNextAccessBounds(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, name := range Names() {
		p := ByName(name)
		var st addrState
		const logical = 100000
		for i := 0; i < 2000; i++ {
			_, lpn, n := p.nextAccess(rng, &st, logical)
			if lpn < 0 || lpn+int64(n) > logical {
				t.Fatalf("%s: access [%d,%d) outside logical space", name, lpn, lpn+int64(n))
			}
			if n < p.PagesMin || n > p.PagesMax {
				t.Fatalf("%s: size %d outside [%d,%d]", name, n, p.PagesMin, p.PagesMax)
			}
		}
	}
}

func TestReadWriteMixApproximatesRatio(t *testing.T) {
	rng := sim.NewRNG(2)
	p := ByName("YCSB")
	var st addrState
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		w, _, _ := p.nextAccess(rng, &st, 100000)
		if !w {
			reads++
		}
	}
	got := float64(reads) / n
	if got < p.ReadRatio-0.02 || got > p.ReadRatio+0.02 {
		t.Fatalf("read fraction %v, want ~%v", got, p.ReadRatio)
	}
}

func TestSequentialityDiffersByClass(t *testing.T) {
	// Bandwidth profiles should produce far more sequential successors than
	// latency profiles.
	seqFrac := func(name string) float64 {
		rng := sim.NewRNG(3)
		p := ByName(name)
		var st addrState
		var prevEnd int64 = -1
		seq := 0
		const n = 5000
		for i := 0; i < n; i++ {
			_, lpn, np := p.nextAccess(rng, &st, 1_000_000)
			if lpn == prevEnd {
				seq++
			}
			prevEnd = lpn + int64(np)
		}
		return float64(seq) / n
	}
	ts, ycsb := seqFrac("TeraSort"), seqFrac("YCSB")
	if ts < 0.7 {
		t.Fatalf("TeraSort sequential fraction %v too low", ts)
	}
	if ycsb > 0.3 {
		t.Fatalf("YCSB sequential fraction %v too high", ycsb)
	}
}

func TestSynthesizeTrace(t *testing.T) {
	rng := sim.NewRNG(4)
	recs := ByName("VDI-Web").SynthesizeTrace(5000, 100000, rng)
	if len(recs) != 5000 {
		t.Fatalf("got %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("timestamps must be non-decreasing")
		}
	}
	// Effective IOPS should be within 2x of the configured mean given the
	// phase modulation.
	dur := float64(recs[len(recs)-1].At) / 1e9
	iops := float64(len(recs)) / dur
	if iops < 1000 || iops > 5000 {
		t.Fatalf("synthesized IOPS = %v", iops)
	}
}

func TestGeneratorOpenLoop(t *testing.T) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 4
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 64
	pc.Flash.PagesPerBlock = 32
	p := vssd.NewPlatform(eng, pc)
	v := p.AddVSSD(vssd.Config{Name: "ls", Channels: []int{0, 1, 2, 3}})
	g := NewGenerator(eng, v, ByName("YCSB"), sim.NewRNG(5))
	rec := trace.NewRecorder(0)
	g.Record(rec)
	g.Start()
	eng.RunUntil(2 * sim.Second)
	g.Stop()
	eng.Run()
	issued := g.Issued()
	// ~3200 IOPS with phase factors 1.2/0.6 → roughly 2000-8000 in 2s.
	if issued < 1000 || issued > 12000 {
		t.Fatalf("issued %d requests in 2s", issued)
	}
	if int64(rec.Len()) != issued {
		t.Fatalf("trace has %d records for %d requests", rec.Len(), issued)
	}
	if v.Completed() == 0 {
		t.Fatal("nothing completed")
	}
}

func TestGeneratorClosedLoopSaturates(t *testing.T) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 4
	pc.Flash.ChipsPerChannel = 4
	pc.Flash.BlocksPerChip = 128
	pc.Flash.PagesPerBlock = 64
	p := vssd.NewPlatform(eng, pc)
	prof := ByName("TeraSort")
	v := p.AddVSSD(vssd.Config{Name: "bi", Channels: []int{0, 1, 2, 3},
		MaxInflightPages: prof.MaxInflightPages})
	g := NewGenerator(eng, v, prof, sim.NewRNG(6))
	g.Start()
	const dur = 2 * sim.Second
	eng.RunUntil(dur)
	g.Stop()
	snap := v.Rotate()
	bw := snap.Window.Bandwidth(dur)
	peak := 4 * pc.Flash.ChannelBandwidth()
	if bw < 0.5*peak {
		t.Fatalf("closed-loop bandwidth %.1f MB/s < 50%% of peak %.1f MB/s", bw/1e6, peak/1e6)
	}
}

func TestGeneratorStopHaltsArrivals(t *testing.T) {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.Channels = 2
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 32
	pc.Flash.PagesPerBlock = 16
	p := vssd.NewPlatform(eng, pc)
	v := p.AddVSSD(vssd.Config{Name: "a", Channels: []int{0, 1}})
	g := NewGenerator(eng, v, ByName("YCSB"), sim.NewRNG(7))
	g.Start()
	eng.RunUntil(500 * sim.Millisecond)
	g.Stop()
	at := g.Issued()
	eng.RunUntil(1 * sim.Second)
	eng.Run()
	if g.Issued() != at {
		t.Fatalf("arrivals continued after Stop: %d -> %d", at, g.Issued())
	}
}
