// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock measured in nanoseconds, a binary-heap event queue, and
// seedable random-number streams. Every FleetIO experiment runs on top of
// this engine so results are exactly reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so execution order is deterministic (FIFO within an
// instant).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay virtual nanoseconds. A negative delay is an
// error in the model, so it panics.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is strictly after t; the clock then advances to t. Events
// scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Ticker invokes fn every period, starting one period from now, until fn
// returns false. It is the engine's building block for periodic work such
// as RL decision windows and admission-control batches.
func (e *Engine) Ticker(period Time, fn func(now Time) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %d", period))
	}
	var tick func()
	tick = func() {
		if fn(e.now) {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
