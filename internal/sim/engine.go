// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock measured in nanoseconds, an allocation-free 4-ary
// min-heap event queue, and seedable random-number streams. Every FleetIO
// experiment runs on top of this engine so results are exactly
// reproducible for a given seed.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// EventArg is the fixed argument block delivered to an EventHandler. P
// holds a pointer-shaped payload (a pointer or func value stores into the
// interface word without boxing, so scheduling stays allocation-free) and
// I holds one scalar. Handlers that need more context hang it off the
// object P points to.
type EventArg struct {
	P any
	I int64
}

// EventHandler is a closure-free event callback: a package-level function
// (or pre-built func value) invoked with the EventArg it was scheduled
// with and the current virtual time. Passing a method value or a capturing
// closure here defeats the point — both allocate at the call site; route
// per-event state through the arg instead.
type EventHandler func(arg EventArg, now Time)

// runClosure adapts the closure-based Schedule/At API onto the
// handler-based core: the closure rides in the pointer slot of the arg.
func runClosure(arg EventArg, _ Time) { arg.P.(func())() }

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so execution order is deterministic (FIFO within an
// instant).
type event struct {
	at  Time
	seq uint64
	h   EventHandler
	arg EventArg
}

// before is the heap order: earliest timestamp first, FIFO within an
// instant.
func (e event) before(o event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine.
//
// The pending-event queue is an inlined 4-ary min-heap over a typed slice:
// no container/heap interface boxing, so steady-state Schedule/Step reuses
// the slice's capacity and performs zero allocations. The wider fan-out
// also halves the sift-down depth versus a binary heap, which is where a
// pop-heavy discrete-event loop spends its comparisons.
type Engine struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by event.before
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay virtual nanoseconds. A negative delay is an
// error in the model, so it panics. Capturing closures allocate; hot paths
// use ScheduleEvent instead.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.AtEvent(e.now+delay, runClosure, EventArg{P: fn})
}

// At runs fn at the absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	e.AtEvent(t, runClosure, EventArg{P: fn})
}

// ScheduleEvent runs h(arg, now) after delay virtual nanoseconds without
// allocating: the handler and its fixed-size argument are stored inline in
// the event slot. This is the per-I/O scheduling path — the flash datapath,
// FTL GC, and vSSD dispatch use it so steady-state simulation performs
// zero allocations per event.
func (e *Engine) ScheduleEvent(delay Time, h EventHandler, arg EventArg) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.AtEvent(e.now+delay, h, arg)
}

// AtEvent runs h(arg, t) at the absolute virtual time t, which must not be
// in the past. It is the allocation-free counterpart of At.
func (e *Engine) AtEvent(t Time, h EventHandler, arg EventArg) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.events = append(e.events, event{at: t, seq: e.seq, h: h, arg: arg})
	e.siftUp(len(e.events) - 1)
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !ev.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// siftDown restores the heap property after replacing the root.
func (e *Engine) siftDown() {
	h := e.events
	n := len(h)
	ev := h[0]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h[j].before(h[m]) {
				m = j
			}
		}
		if !h[m].before(ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{} // release the handler refs; the slot's capacity is reused
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown()
	}
	e.now = ev.at
	ev.h(ev.arg, e.now)
	return true
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is strictly after t; the clock then advances to t. Events
// scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Ticker invokes fn every period, starting one period from now, until fn
// returns false. It is the engine's building block for periodic work such
// as RL decision windows and admission-control batches.
func (e *Engine) Ticker(period Time, fn func(now Time) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %d", period))
	}
	var tick func()
	tick = func() {
		if fn(e.now) {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
