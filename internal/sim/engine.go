// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock measured in nanoseconds, an allocation-free 4-ary
// min-heap event queue, and seedable random-number streams. Every FleetIO
// experiment runs on top of this engine so results are exactly
// reproducible for a given seed.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// EventArg is the fixed argument block delivered to an EventHandler. P
// holds a pointer-shaped payload (a pointer or func value stores into the
// interface word without boxing, so scheduling stays allocation-free) and
// I holds one scalar. Handlers that need more context hang it off the
// object P points to.
type EventArg struct {
	P any
	I int64
}

// EventHandler is a closure-free event callback: a package-level function
// (or pre-built func value) invoked with the EventArg it was scheduled
// with and the current virtual time. Passing a method value or a capturing
// closure here defeats the point — both allocate at the call site; route
// per-event state through the arg instead.
type EventHandler func(arg EventArg, now Time)

// runClosure adapts the closure-based Schedule/At API onto the
// handler-based core: the closure rides in the pointer slot of the arg.
func runClosure(arg EventArg, _ Time) { arg.P.(func())() }

// eventKey is the heap-ordering half of a scheduled event: timestamp plus
// a sequence number that breaks ties between events scheduled for the same
// instant, so execution order is deterministic (FIFO within an instant).
type eventKey struct {
	at  Time
	seq uint64
}

// before is the heap order: earliest timestamp first, FIFO within an
// instant.
func (k eventKey) before(o eventKey) bool {
	return k.at < o.at || (k.at == o.at && k.seq < o.seq)
}

// eventPayload is the callback half of a scheduled event, kept in a slice
// parallel to the key heap so sift comparisons never touch it.
type eventPayload struct {
	h   EventHandler
	arg EventArg
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine.
//
// The pending-event queue is an inlined 4-ary min-heap over two parallel
// typed slices: 16-byte ordering keys (timestamp, sequence) and 32-byte
// payloads (handler, argument). No container/heap interface boxing, so
// steady-state Schedule/Step reuses the slices' capacity and performs zero
// allocations. The wider fan-out halves the sift-down depth versus a
// binary heap, and splitting keys from payloads makes the hot four-child
// minimum scan read one 64-byte cache line instead of 192 bytes of event
// structs — which is where a pop-heavy discrete-event loop spends its
// time. Because (at, seq) is a strict total order, pop order is a pure
// function of the scheduled set, so heap-layout changes like this one
// cannot perturb simulation results.
type Engine struct {
	now      Time
	seq      uint64
	keys     []eventKey // 4-ary min-heap ordered by eventKey.before
	payloads []eventPayload
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.keys) }

// Schedule runs fn after delay virtual nanoseconds. A negative delay is an
// error in the model, so it panics. Capturing closures allocate; hot paths
// use ScheduleEvent instead.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.AtEvent(e.now+delay, runClosure, EventArg{P: fn})
}

// At runs fn at the absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	e.AtEvent(t, runClosure, EventArg{P: fn})
}

// ScheduleEvent runs h(arg, now) after delay virtual nanoseconds without
// allocating: the handler and its fixed-size argument are stored inline in
// the event slot. This is the per-I/O scheduling path — the flash datapath,
// FTL GC, and vSSD dispatch use it so steady-state simulation performs
// zero allocations per event.
func (e *Engine) ScheduleEvent(delay Time, h EventHandler, arg EventArg) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.AtEvent(e.now+delay, h, arg)
}

// AtEvent runs h(arg, t) at the absolute virtual time t, which must not be
// in the past. It is the allocation-free counterpart of At.
func (e *Engine) AtEvent(t Time, h EventHandler, arg EventArg) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.keys = append(e.keys, eventKey{at: t, seq: e.seq})
	e.payloads = append(e.payloads, eventPayload{h: h, arg: arg})
	e.siftUp(len(e.keys) - 1)
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	ks, ps := e.keys, e.payloads
	k, p := ks[i], ps[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !k.before(ks[parent]) {
			break
		}
		ks[i], ps[i] = ks[parent], ps[parent]
		i = parent
	}
	ks[i], ps[i] = k, p
}

// siftDown restores the heap property after replacing the root.
func (e *Engine) siftDown() {
	ks, ps := e.keys, e.payloads
	n := len(ks)
	k, p := ks[0], ps[0]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		mk := ks[c]
		for j := c + 1; j < end; j++ {
			if ks[j].before(mk) {
				m = j
				mk = ks[j]
			}
		}
		if !mk.before(k) {
			break
		}
		ks[i], ps[i] = mk, ps[m]
		i = m
	}
	ks[i], ps[i] = k, p
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.keys) == 0 {
		return false
	}
	at := e.keys[0].at
	pl := e.payloads[0]
	n := len(e.keys) - 1
	e.keys[0] = e.keys[n]
	e.payloads[0] = e.payloads[n]
	e.payloads[n] = eventPayload{} // release the handler refs; the slot's capacity is reused
	e.keys = e.keys[:n]
	e.payloads = e.payloads[:n]
	if n > 1 {
		e.siftDown()
	}
	e.now = at
	pl.h(pl.arg, e.now)
	return true
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is strictly after t; the clock then advances to t. Events
// scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	for len(e.keys) > 0 && e.keys[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Ticker invokes fn every period, starting one period from now, until fn
// returns false. It is the engine's building block for periodic work such
// as RL decision windows and admission-control batches.
func (e *Engine) Ticker(period Time, fn func(now Time) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %d", period))
	}
	var tick func()
	tick = func() {
		if fn(e.now) {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
