package sim

import (
	"container/heap"
	"testing"
)

// refEvent mirrors event for the container/heap reference implementation
// the inlined 4-ary heap is checked against.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// refEngine is a minimal engine built on container/heap with the seed's
// original semantics: the behavioral oracle for the property test.
type refEngine struct {
	now    Time
	seq    uint64
	events refHeap
}

func (e *refEngine) schedule(delay Time, id int) {
	e.seq++
	heap.Push(&e.events, refEvent{at: e.now + delay, seq: e.seq, id: id})
}

func (e *refEngine) step() (int, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	ev := heap.Pop(&e.events).(refEvent)
	e.now = ev.at
	return ev.id, true
}

func (e *refEngine) runUntil(t Time) []int {
	var fired []int
	for len(e.events) > 0 && e.events[0].at <= t {
		id, _ := e.step()
		fired = append(fired, id)
	}
	if t > e.now {
		e.now = t
	}
	return fired
}

// TestEngineMatchesReferenceHeap drives the engine and the container/heap
// oracle with the same random interleaving of Schedule, Step, and RunUntil
// (with deliberate timestamp collisions to exercise the FIFO tie-break)
// and requires identical fire order, clocks, and queue depths throughout.
func TestEngineMatchesReferenceHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 42} {
		rng := NewRNG(seed)
		eng := NewEngine()
		ref := &refEngine{}
		var got []int
		nextID := 0

		for op := 0; op < 5000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // schedule; coarse delays force collisions
				delay := Time(rng.Intn(8)) * 10
				id := nextID
				nextID++
				eng.Schedule(delay, func() { got = append(got, id) })
				ref.schedule(delay, id)
			case 5, 6, 7: // step
				before := len(got)
				stepped := eng.Step()
				id, refStepped := ref.step()
				if stepped != refStepped {
					t.Fatalf("seed %d op %d: Step fired=%v, reference %v", seed, op, stepped, refStepped)
				}
				if stepped {
					if len(got) != before+1 || got[len(got)-1] != id {
						t.Fatalf("seed %d op %d: Step fired %v, reference fired %d", seed, op, got[before:], id)
					}
				}
			default: // runUntil a short horizon past now
				horizon := eng.Now() + Time(rng.Intn(40))
				before := len(got)
				eng.RunUntil(horizon)
				want := ref.runUntil(horizon)
				fired := got[before:]
				if len(fired) != len(want) {
					t.Fatalf("seed %d op %d: RunUntil fired %v, want %v", seed, op, fired, want)
				}
				for i := range want {
					if fired[i] != want[i] {
						t.Fatalf("seed %d op %d: RunUntil fired %v, want %v", seed, op, fired, want)
					}
				}
			}
			if eng.Now() != ref.now {
				t.Fatalf("seed %d op %d: clock %d, reference %d", seed, op, eng.Now(), ref.now)
			}
			if eng.Pending() != len(ref.events) {
				t.Fatalf("seed %d op %d: pending %d, reference %d", seed, op, eng.Pending(), len(ref.events))
			}
		}

		// Drain both and compare the tail order.
		before := len(got)
		eng.Run()
		for {
			id, ok := ref.step()
			if !ok {
				break
			}
			if before >= len(got) || got[before] != id {
				t.Fatalf("seed %d: drain order diverged at %d", seed, before)
			}
			before++
		}
		if before != len(got) {
			t.Fatalf("seed %d: engine fired %d extra events", seed, len(got)-before)
		}
	}
}

// TestEngineScheduleStepZeroAllocSteadyState guards the event core's
// allocation-free steady state: once the queue slice has grown to its
// working capacity, Schedule+Step must not allocate.
func TestEngineScheduleStepZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the queue to working capacity, then drain.
	for i := 0; i < 256; i++ {
		e.Schedule(Time(i), fn)
	}
	e.Run()
	// Keep a standing population so push/pop exercises real heap work.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(1000+i), fn)
	}
	avg := testing.AllocsPerRun(2000, func() {
		e.Schedule(100, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.2f allocs/op, want 0", avg)
	}
}

// countHandler is a package-level EventHandler for the ScheduleEvent
// guard; per-event state arrives through the arg, never a closure.
func countHandler(arg EventArg, _ Time) { *arg.P.(*int64) += arg.I }

// TestEngineScheduleEventZeroAlloc guards the closure-free scheduling
// path used by the per-I/O datapath: ScheduleEvent with a package-level
// handler and a pointer-shaped arg must never allocate, even on the very
// first events (only queue growth may, and warm-up absorbs it).
func TestEngineScheduleEventZeroAlloc(t *testing.T) {
	e := NewEngine()
	var sum int64
	arg := EventArg{P: &sum, I: 1}
	for i := 0; i < 256; i++ {
		e.ScheduleEvent(Time(i), countHandler, arg)
	}
	e.Run()
	for i := 0; i < 64; i++ {
		e.ScheduleEvent(Time(1000+i), countHandler, arg)
	}
	avg := testing.AllocsPerRun(2000, func() {
		e.ScheduleEvent(100, countHandler, arg)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state ScheduleEvent+Step allocates %.2f allocs/op, want 0", avg)
	}
	if sum == 0 {
		t.Fatal("handler never ran")
	}
}
