package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOWithinInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested events fired at %v, want [10 15]", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("RunUntil(50) executed %d events, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if count != 10 {
		t.Fatalf("RunUntil(200) executed %d events total, want 10", count)
	}
	if e.Now() != 200 {
		t.Fatalf("clock = %d, want 200", e.Now())
	}
}

func TestEngineRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	hit := false
	e.Schedule(100, func() { hit = true })
	e.RunUntil(100)
	if !hit {
		t.Fatal("event at the RunUntil boundary must execute")
	}
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Ticker(100, func(now Time) bool {
		ticks = append(ticks, now)
		return len(ticks) < 4
	})
	e.Run()
	want := []Time{100, 200, 300, 400}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period must panic")
		}
	}()
	e.Ticker(0, func(Time) bool { return false })
}

// Property: for any batch of non-negative delays, the engine executes
// callbacks in non-decreasing time order and ends with the clock at the
// maximum delay.
func TestEngineTimeMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7).Split(1)
	b := NewRNG(7).Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("split streams look identical: %d/100 collisions", same)
	}
}

func TestRNGZipfBounds(t *testing.T) {
	g := NewRNG(1)
	for _, n := range []int{1, 2, 10, 1000} {
		for _, s := range []float64{1.0, 1.2, 2.0} {
			for i := 0; i < 500; i++ {
				v := g.Zipf(n, s)
				if v < 0 || v >= n {
					t.Fatalf("Zipf(%d,%v) = %d out of range", n, s, v)
				}
			}
		}
	}
}

func TestRNGZipfSkew(t *testing.T) {
	g := NewRNG(3)
	const n = 1000
	low := 0
	for i := 0; i < 10000; i++ {
		if g.Zipf(n, 2.0) < n/10 {
			low++
		}
	}
	// With strong skew the first decile should absorb well over half the mass.
	if low < 6000 {
		t.Fatalf("Zipf skew too weak: only %d/10000 in first decile", low)
	}
}

func TestRNGExpDurationPositive(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if d := g.ExpDuration(1000); d < 1 {
			t.Fatalf("ExpDuration returned %d < 1", d)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(11)
	var sum float64
	const iters = 200000
	for i := 0; i < iters; i++ {
		sum += g.Exp(250)
	}
	mean := sum / iters
	if mean < 240 || mean > 260 {
		t.Fatalf("exponential mean = %v, want ~250", mean)
	}
}
