package sim

import (
	"math"
	"math/rand"
)

// RNG is a seedable random stream with helpers used across the simulator
// (exponential inter-arrivals, Zipf addresses, bounded picks). It wraps
// math/rand with an explicit source so no simulation ever touches global
// randomness.
type RNG struct {
	r *rand.Rand
	// seed is the stream's origin, kept so Stream can derive shard streams
	// as a pure function of (seed, shardID) without consuming stream state.
	seed int64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Split derives an independent child stream. The child's sequence is a pure
// function of the parent seed and the label, so adding new consumers does
// not perturb existing ones as long as labels are stable.
func (g *RNG) Split(label int64) *RNG {
	// SplitMix64-style scramble of (next parent value, label).
	z := uint64(g.r.Int63()) ^ (uint64(label) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Stream derives the shardID-th isolated child stream. Unlike Split it is
// a pure function of the stream's seed and the shard id — it consumes no
// parent state, so shards can be built in any order (or concurrently from
// per-shard goroutines holding their own result) without perturbing the
// parent sequence or each other. Two Stream calls with the same id return
// streams that replay identically.
func (g *RNG) Stream(shardID int64) *RNG {
	// SplitMix64-style scramble of (seed, shardID); the +1 keeps shard 0 of
	// seed 0 away from the all-zero fixed point.
	z := uint64(g.seed) + (uint64(shardID)+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Reseed rewinds the stream to the deterministic sequence of seed without
// allocating. Allocation guards use it to replay an identical load so
// slice high-water marks from warm-up are never exceeded while measuring.
func (g *RNG) Reseed(seed int64) {
	g.r.Seed(seed)
	g.seed = seed
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PermInto writes a random permutation of [0,len(p)) into p and returns it.
// It consumes exactly the same stream draws as Perm(len(p)) and produces
// the same permutation (mirroring math/rand's insertion algorithm), so hot
// loops can drop Perm's per-call allocation without perturbing any seeded
// sequence. Pinned against Perm by TestPermIntoMatchesPerm.
func (g *RNG) PermInto(p []int) []int {
	// math/rand.Perm runs the i=0 iteration (a self-swap) because skipping
	// it would change the stream; replicate that exactly.
	for i := 0; i < len(p); i++ {
		j := g.r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Exp returns an exponential sample with the given mean (>0).
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// ExpDuration returns an exponential virtual-time sample with the given
// mean duration, always at least 1ns so arrival processes make progress.
func (g *RNG) ExpDuration(mean Time) Time {
	d := Time(g.r.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Zipf draws from [0,n) with a Zipfian skew s >= 1 (s==1 is uniform). It
// builds nothing per call, using the rejection-free inverse-power method,
// which is accurate enough for locality modelling.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 1.0001 {
		return g.r.Intn(n)
	}
	// Inverse-CDF of a continuous power-law approximation on [1, n+1).
	u := g.r.Float64()
	oneMinus := 1 - s
	max := float64(n + 1)
	x := u*(math.Pow(max, oneMinus)-1) + 1
	v := math.Pow(x, 1/oneMinus)
	idx := int(v) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
