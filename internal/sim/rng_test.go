package sim

import "testing"

func drawSequence(g *RNG, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Int63()
	}
	return out
}

func sequencesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReseedReplaysSequence pins Reseed's contract: rewinding a stream to a
// seed replays exactly the sequence a fresh stream with that seed produces,
// regardless of how much the stream had already been consumed.
func TestReseedReplaysSequence(t *testing.T) {
	const seed = 42
	want := drawSequence(NewRNG(seed), 64)
	g := NewRNG(seed)
	drawSequence(g, 1000) // consume arbitrarily far
	g.Reseed(seed)
	if !sequencesEqual(drawSequence(g, 64), want) {
		t.Fatal("Reseed did not rewind to the fresh-stream sequence")
	}
	g.Reseed(seed + 1)
	if sequencesEqual(drawSequence(g, 64), want) {
		t.Fatal("Reseed to a different seed replayed the old sequence")
	}
}

// TestReseedStreamIsolation pins the property the harness's parallel runs
// rely on: every RNG wraps its own source, so reseeding (or draining) one
// run's stream must not perturb another's output — even when both were
// Split from the same parent.
func TestReseedStreamIsolation(t *testing.T) {
	// Control: B's sequence with A left untouched.
	parent := NewRNG(7)
	_ = parent.Split(100) // A
	b := parent.Split(200)
	want := drawSequence(b, 128)

	// Same construction, but A is drained and reseeded between B's draws.
	parent = NewRNG(7)
	a := parent.Split(100)
	b = parent.Split(200)
	got := make([]int64, 0, 128)
	for i := 0; i < 128; i++ {
		switch i % 3 {
		case 0:
			drawSequence(a, 17)
		case 1:
			a.Reseed(int64(i))
		}
		got = append(got, b.Int63())
	}
	if !sequencesEqual(got, want) {
		t.Fatal("reseeding stream A perturbed stream B's output")
	}
}

// TestStreamIsPureFunctionOfSeed pins Stream's contract: the child is a
// pure function of (stream seed, shard id) — call order, parent
// consumption, and other Stream calls must not change it, and Stream must
// not perturb the parent's own sequence.
func TestStreamIsPureFunctionOfSeed(t *testing.T) {
	// Same seed + id → same stream, regardless of when it is derived.
	fresh := NewRNG(11)
	want := drawSequence(fresh.Stream(3), 64)
	consumed := NewRNG(11)
	drawSequence(consumed, 500)
	_ = consumed.Stream(9)
	if !sequencesEqual(drawSequence(consumed.Stream(3), 64), want) {
		t.Fatal("Stream(3) depends on parent consumption or prior Stream calls")
	}
	// Stream consumes no parent state.
	p1, p2 := NewRNG(13), NewRNG(13)
	for i := int64(0); i < 32; i++ {
		p1.Stream(i)
	}
	if !sequencesEqual(drawSequence(p1, 64), drawSequence(p2, 64)) {
		t.Fatal("Stream perturbed the parent sequence")
	}
}

// TestStreamShardIsolation checks that per-shard streams are mutually
// independent: draining one shard's stream leaves every other shard's
// sequence untouched, and distinct shard ids yield distinct sequences.
func TestStreamShardIsolation(t *testing.T) {
	parent := NewRNG(21)
	want := make([][]int64, 8)
	for id := range want {
		want[id] = drawSequence(parent.Stream(int64(id)), 64)
	}
	for id := 1; id < 8; id++ {
		if sequencesEqual(want[0], want[id]) {
			t.Fatalf("shard 0 and shard %d streams are identical", id)
		}
	}
	// Interleave: drain shard 0 heavily between other shards' draws.
	streams := make([]*RNG, 8)
	for id := range streams {
		streams[id] = parent.Stream(int64(id))
	}
	for i := 0; i < 100; i++ {
		streams[0].Int63()
	}
	for id := 1; id < 8; id++ {
		if !sequencesEqual(drawSequence(streams[id], 64), want[id]) {
			t.Fatalf("draining shard 0 perturbed shard %d", id)
		}
	}
	// Reseed restores the original derivation base.
	parent.Reseed(21)
	if !sequencesEqual(drawSequence(parent.Stream(5), 64), want[5]) {
		t.Fatal("Stream after Reseed diverged from the original derivation")
	}
}

// TestSplitChildrenIndependent checks that sibling streams differ and that
// the same (parent seed, call order, label) always yields the same child.
func TestSplitChildrenIndependent(t *testing.T) {
	p1 := NewRNG(9)
	p2 := NewRNG(9)
	c1 := p1.Split(5)
	c2 := p2.Split(5)
	if !sequencesEqual(drawSequence(c1, 32), drawSequence(c2, 32)) {
		t.Fatal("identical parent seed + label produced different children")
	}
	p3 := NewRNG(9)
	s1 := drawSequence(p3.Split(1), 32)
	s2 := drawSequence(p3.Split(2), 32)
	if sequencesEqual(s1, s2) {
		t.Fatal("sibling streams with different labels are identical")
	}
}

// TestPermIntoMatchesPerm pins PermInto's contract: for any length it must
// produce the same permutation and consume the same stream draws as Perm,
// so switching a hot loop between them can never perturb a seeded run.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 32, 33, 100} {
		a := NewRNG(int64(n) + 5)
		b := NewRNG(int64(n) + 5)
		want := a.Perm(n)
		got := b.PermInto(make([]int, n))
		if len(got) != len(want) {
			t.Fatalf("n=%d: PermInto length %d, Perm length %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto %v, Perm %v", n, got, want)
			}
		}
		// Both streams must be in the same state afterwards.
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: PermInto consumed a different number of draws than Perm", n)
		}
	}
}

// TestPermIntoZeroAlloc guards PermInto's reason to exist: permuting into a
// caller-owned buffer must not allocate.
func TestPermIntoZeroAlloc(t *testing.T) {
	g := NewRNG(9)
	buf := make([]int, 64)
	if avg := testing.AllocsPerRun(200, func() { g.PermInto(buf) }); avg != 0 {
		t.Fatalf("PermInto allocates %.2f allocs/op, want 0", avg)
	}
}
