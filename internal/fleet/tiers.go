package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DeviceClass is one tier of a hybrid rack: a device count sharing one
// flash geometry. Tiers are expressed purely through the existing
// geometry/timing fields — a fast SLC-like class has short ReadPage/
// ProgramPage and few blocks per chip, a dense QLC-like class long
// timings and many blocks — so every layer below the fleet (flash, FTL,
// gSB, vSSD) runs unmodified.
type DeviceClass struct {
	// Name labels the class in Stats.Tiers and the fleetio_tier_* series
	// ("" → class<i>).
	Name string
	// Flash is the class geometry (zero value → DefaultDeviceConfig).
	Flash flash.Config
	// Devices is how many shards the class contributes (required, >= 1).
	Devices int
}

// DefaultTierClasses builds the standard two-tier hybrid rack: a fast
// SLC-like class (short page timings, half the blocks) and a dense
// QLC-like class (long page timings, double the blocks), both derived
// from DefaultDeviceConfig so channel/chip parallelism matches the
// homogeneous rack. Classes[0] is the fast tier by convention
// (core.TierFast).
func DefaultTierClasses(fastDevices, denseDevices int) []DeviceClass {
	fast := DefaultDeviceConfig()
	fast.ReadPage = 25 * sim.Microsecond
	fast.ProgramPage = 200 * sim.Microsecond
	fast.EraseBlock = 2 * sim.Millisecond
	fast.BlocksPerChip = 16
	dense := DefaultDeviceConfig()
	dense.ReadPage = 140 * sim.Microsecond
	dense.ProgramPage = 2 * sim.Millisecond
	dense.EraseBlock = 3500 * sim.Microsecond
	dense.BlocksPerChip = 64
	return []DeviceClass{
		{Name: "fast", Flash: fast, Devices: fastDevices},
		{Name: "dense", Flash: dense, Devices: denseDevices},
	}
}

// TierPolicyKind selects the promote/demote driver of a tiered rack.
// Initial placement differs too: the static-pin baseline pins by
// workload class at admission, while the runtime movers start class-blind
// (least-loaded anywhere) and must discover the assignment.
type TierPolicyKind uint8

// Tier policies, in comparison order.
const (
	// TierStatic is the static-pin baseline: latency-class tenants prefer
	// the fast tier at admission (bandwidth-class the dense tier), spill
	// to the other tier when their preferred one is full, and never move
	// afterwards.
	TierStatic TierPolicyKind = iota
	// TierWatermark is the adaptive occupancy baseline: class-blind
	// least-loaded admission; when fast-tier occupancy crosses
	// Config.TierHighWater the coldest fast tenant is demoted, and below
	// Config.TierLowWater the hottest dense tenant is promoted.
	TierWatermark
	// TierLearned deploys the full FleetIO agent stack on every shard
	// (per-vSSD PPO agents with the placement head and fast-tier
	// occupancy state): agents issue the usual device actions each
	// window, and the control plane consumes their tier hints at epoch
	// barriers, promoting tenants that hint fast and demoting
	// bandwidth-class tenants that hint dense. Guardrails mirror
	// core.FleetIO.emit's priority guardrails: a latency-class tenant is
	// never demoted on a sampled hint, and is pulled toward the fast
	// tier when a slot is free even without one.
	TierLearned
)

func (k TierPolicyKind) String() string {
	switch k {
	case TierStatic:
		return "static-pin"
	case TierWatermark:
		return "watermark"
	case TierLearned:
		return "learned"
	default:
		return fmt.Sprintf("TierPolicyKind(%d)", uint8(k))
	}
}

// ParseTierPolicy maps a flag value to a TierPolicyKind.
func ParseTierPolicy(s string) (TierPolicyKind, error) {
	switch s {
	case "static", "static-pin", "pin":
		return TierStatic, nil
	case "watermark", "wm":
		return TierWatermark, nil
	case "learned", "rl":
		return TierLearned, nil
	}
	return 0, fmt.Errorf("fleet: unknown tier policy %q (want static-pin, watermark, or learned)", s)
}

// TierPolicies lists every tier policy, in comparison order.
func TierPolicies() []TierPolicyKind {
	return []TierPolicyKind{TierStatic, TierWatermark, TierLearned}
}

// tiered reports whether the rack is hybrid (Config.Classes set).
func (f *Fleet) tiered() bool { return len(f.cfg.Classes) > 0 }

// shardClass resolves device id dev to its class geometry and tier index
// (devices are assigned class-contiguously, class 0 first).
func (c Config) shardClass(dev int) (flash.Config, int) {
	if len(c.Classes) == 0 {
		return c.Flash, 0
	}
	for t, cl := range c.Classes {
		if dev < cl.Devices {
			return cl.Flash, t
		}
		dev -= cl.Devices
	}
	panic(fmt.Sprintf("fleet: device %d beyond class device sum", dev))
}

// fastRange returns the device-id range [lo, hi) of the fast tier
// (class 0); denseRange the rest of the rack. Both rely on the
// class-contiguous device ids New guarantees.
func (f *Fleet) fastRange() (int, int)  { return 0, f.cfg.Classes[0].Devices }
func (f *Fleet) denseRange() (int, int) { return f.cfg.Classes[0].Devices, len(f.shards) }

// tierOccupancy is the fast tier's slot occupancy in [0, 1].
func (f *Fleet) tierOccupancy() float64 {
	lo, hi := f.fastRange()
	used := 0
	for dev := lo; dev < hi; dev++ {
		used += f.shards[dev].slotsUsed
	}
	return float64(used) / float64((hi-lo)*f.cfg.SlotsPerDevice)
}

// leastLoadedIn picks the device with a free slot in [lo, hi) under the
// least-loaded ordering, or reports none.
func (f *Fleet) leastLoadedIn(lo, hi int) (int, bool) {
	best, ok := -1, false
	for dev := lo; dev < hi; dev++ {
		if !f.hasSlot(dev) {
			continue
		}
		if !ok || f.lessLoaded(dev, best) {
			best, ok = dev, true
		}
	}
	return best, ok
}

// placeTiered is the tiered-rack admission path (Config.Placement is
// ignored on hybrid racks). Static-pin prefers the tenant's class tier
// and spills to the other; the runtime movers (watermark, learned) place
// class-blind least-loaded and rely on promote/demote to sort the rack.
func (f *Fleet) placeTiered(tn *Tenant) (int, bool) {
	if f.cfg.TierPolicy != TierStatic {
		return f.leastLoadedIn(0, len(f.shards))
	}
	fl, fh := f.fastRange()
	dl, dh := f.denseRange()
	if tn.class == workload.Latency {
		if dev, ok := f.leastLoadedIn(fl, fh); ok {
			return dev, true
		}
		return f.leastLoadedIn(dl, dh)
	}
	if dev, ok := f.leastLoadedIn(dl, dh); ok {
		return dev, true
	}
	return f.leastLoadedIn(fl, fh)
}

// settled reports whether the tenant has been on its device long enough
// (Config.MigrateAfter) to be worth moving — the same settle discipline
// load-balancing migration uses.
func (f *Fleet) settled(tn *Tenant, now sim.Time) bool {
	return now-tn.placedAt >= f.cfg.MigrateAfter
}

// stepTiers is the tiered control-plane phase, run right after
// departures and before the admission queue retries, so a slot freed by
// a departure can host a promote before a queued arrival grabs it. It
// feeds the fast-tier occupancy to the learned shards' agents, then lets
// the configured policy start at most one demote and one promote per
// epoch through the ordinary migration datapath (drain → copy as real
// simulated I/O → cutover), sharing Config.MaxMigrations with
// load-balancing migration.
func (f *Fleet) stepTiers(now sim.Time) {
	occ := f.tierOccupancy()
	if f.cfg.TierPolicy == TierLearned {
		for _, sh := range f.shards {
			if sh.fio == nil {
				continue
			}
			for _, tn := range sh.resident {
				if tn.vssd != nil {
					sh.fio.SetTierOcc(tn.vssd.ID(), occ)
				}
			}
		}
	}
	switch f.cfg.TierPolicy {
	case TierWatermark:
		f.stepWatermark(now, occ)
	case TierLearned:
		f.stepLearned(now)
	}
}

// canMigrate reports whether another migration may start under the
// shared in-flight budget.
func (f *Fleet) canMigrate() bool {
	return f.migStarted-f.migDone < f.cfg.MaxMigrations
}

// stepWatermark runs the adaptive watermark baseline: occupancy above
// the high water demotes the coldest settled fast tenant; below the low
// water, the hottest settled dense tenant is promoted. Heat is the
// per-epoch byte delta, the same victim signal load balancing uses. The
// policy is class-blind by design — that is what the learned policy has
// to beat.
func (f *Fleet) stepWatermark(now sim.Time, occ float64) {
	if !f.canMigrate() {
		return
	}
	fl, fh := f.fastRange()
	dl, dh := f.denseRange()
	if occ >= f.cfg.TierHighWater {
		victim := f.pickTierVictim(fl, fh, now, false, func(*Tenant) bool { return true })
		if dst, ok := f.leastLoadedIn(dl, dh); ok && victim != nil {
			f.startMigration(victim, dst, now)
		}
		return
	}
	if occ < f.cfg.TierLowWater {
		victim := f.pickTierVictim(dl, dh, now, true, func(*Tenant) bool { return true })
		if dst, ok := f.leastLoadedIn(fl, fh); ok && victim != nil {
			f.startMigration(victim, dst, now)
		}
	}
}

// stepLearned consumes the placement-head hints: at most one demote (a
// bandwidth-class fast tenant hinting dense) and one promote (a dense
// tenant hinting fast; latency-class tenants rank first and are pulled
// up even without a hint when a fast slot is free) per epoch.
func (f *Fleet) stepLearned(now sim.Time) {
	fl, fh := f.fastRange()
	dl, dh := f.denseRange()
	if f.canMigrate() {
		victim := f.pickTierVictim(fl, fh, now, false, func(tn *Tenant) bool {
			return tn.class != workload.Latency && f.tierHint(tn) == core.TierDense
		})
		if dst, ok := f.leastLoadedIn(dl, dh); ok && victim != nil {
			f.startMigration(victim, dst, now)
		}
	}
	if f.canMigrate() {
		victim := f.pickTierPromotee(dl, dh, now)
		if dst, ok := f.leastLoadedIn(fl, fh); ok && victim != nil {
			f.startMigration(victim, dst, now)
		}
	}
}

// tierHint reads the tenant's last placement-head sample from its
// shard's agent stack (-1 when none yet).
func (f *Fleet) tierHint(tn *Tenant) int {
	sh := f.shards[tn.Device]
	if sh.fio == nil || tn.vssd == nil {
		return -1
	}
	return sh.fio.TierHint(tn.vssd.ID())
}

// pickTierVictim scans devices [lo, hi) for the running, settled tenant
// passing want with the extreme per-epoch byte delta — hottest when hot
// is set, coldest otherwise. Device order then resident order break
// ties, keeping the choice deterministic.
func (f *Fleet) pickTierVictim(lo, hi int, now sim.Time, hot bool, want func(*Tenant) bool) *Tenant {
	var best *Tenant
	for dev := lo; dev < hi; dev++ {
		for _, tn := range f.shards[dev].resident {
			if tn.State != StateRunning || tn.Device != dev || !f.settled(tn, now) || !want(tn) {
				continue
			}
			if best == nil || (hot && tn.epochBytes > best.epochBytes) || (!hot && tn.epochBytes < best.epochBytes) {
				best = tn
			}
		}
	}
	return best
}

// pickTierPromotee ranks dense-tier promote candidates: latency-class
// tenants first (with or without a hint — the tier analogue of emit's
// SLO escalation guardrail), then bandwidth-class tenants that hint
// fast; within a group, hottest wins.
func (f *Fleet) pickTierPromotee(lo, hi int, now sim.Time) *Tenant {
	var best *Tenant
	bestLat := false
	for dev := lo; dev < hi; dev++ {
		for _, tn := range f.shards[dev].resident {
			if tn.State != StateRunning || tn.Device != dev || !f.settled(tn, now) {
				continue
			}
			lat := tn.class == workload.Latency
			if !lat && f.tierHint(tn) != core.TierFast {
				continue
			}
			if best == nil || (lat && !bestLat) || (lat == bestLat && tn.epochBytes > best.epochBytes) {
				best, bestLat = tn, lat
			}
		}
	}
	return best
}

// collectTiers fills the tier section of the roll-up: per-class device
// and slot usage, the promote/demote ledger, and the latency-class tail
// summary (each latency tenant's whole-run P99 on its current device —
// the histogram resets at cutover, so a migrated tenant reports the
// latency of its current placement, not the bulk copy).
func (f *Fleet) collectTiers(s *Stats) {
	first := 0
	for _, cl := range f.cfg.Classes {
		ts := TierStats{Name: cl.Name, Devices: cl.Devices, Slots: cl.Devices * f.cfg.SlotsPerDevice}
		for dev := first; dev < first+cl.Devices; dev++ {
			ts.SlotsUsed += f.shards[dev].slotsUsed
			if f.epochs > 0 {
				ts.MeanUtil += f.shards[dev].utilSum / float64(f.epochs)
			}
		}
		ts.MeanUtil /= float64(cl.Devices)
		s.Tiers = append(s.Tiers, ts)
		first += cl.Devices
	}
	s.PromotesStarted = f.promoStarted
	s.DemotesStarted = f.demoStarted
	s.Promotes = f.promotes
	s.Demotes = f.demotes
	s.TierMovesInFlight = f.promoStarted + f.demoStarted - f.promotes - f.demotes
	s.CrossTierBytes = f.xTierBytes
	var sum float64
	for _, tn := range f.tenants[:f.nextArr] {
		if tn.class != workload.Latency || tn.vssd == nil {
			continue
		}
		if tn.State != StateRunning && tn.State != StateLeaving {
			continue
		}
		h := tn.vssd.TotalHist()
		if h.Count() == 0 {
			continue
		}
		p99 := float64(h.P99()) / 1e6
		s.LsTenants++
		sum += p99
		if p99 > s.LsWorstP99Ms {
			s.LsWorstP99Ms = p99
		}
	}
	if s.LsTenants > 0 {
		s.LsMeanP99Ms = sum / float64(s.LsTenants)
	}
}

// tierMetrics is the fleetio_tier_* series catalogue, registered only on
// tiered racks (feature-gated series never appear on runs that cannot
// move them). The per-class series carry a tier label fixed at
// registration, indexed by class here.
type tierMetrics struct {
	slots, slotsUsed, occupancy, utilMean []*obs.Metric
	promotes, demotes                     *obs.Metric
	movesInFlight                         *obs.Metric
	copyBytes                             *obs.Metric
}

func newTierMetrics(reg *obs.Registry, classes []DeviceClass) *tierMetrics {
	m := &tierMetrics{
		promotes:      reg.Counter("fleetio_tier_promotes_total", "Cross-tier migrations completed into the fast tier."),
		demotes:       reg.Counter("fleetio_tier_demotes_total", "Cross-tier migrations completed out of the fast tier."),
		movesInFlight: reg.Gauge("fleetio_tier_moves_inflight", "Cross-tier migrations currently draining or copying."),
		copyBytes:     reg.Counter("fleetio_tier_copy_bytes_total", "Payload bytes written to the destination by completed promotes/demotes."),
	}
	for _, cl := range classes {
		m.slots = append(m.slots, reg.Gauge("fleetio_tier_slots", "Admission slots per device class.", "tier", cl.Name))
		m.slotsUsed = append(m.slotsUsed, reg.Gauge("fleetio_tier_slots_used", "Occupied admission slots per device class.", "tier", cl.Name))
		m.occupancy = append(m.occupancy, reg.Gauge("fleetio_tier_occupancy", "Slot occupancy per device class.", "tier", cl.Name))
		m.utilMean = append(m.utilMean, reg.Gauge("fleetio_tier_util_mean", "Mean device utilization per class over the last epoch.", "tier", cl.Name))
	}
	return m
}

// publishTierMetrics refreshes the fleetio_tier_* series. Called from
// publishMetrics on the control-plane thread.
func (f *Fleet) publishTierMetrics() {
	m := f.metrics.tier
	first := 0
	for t, cl := range f.cfg.Classes {
		used := 0
		var util float64
		for dev := first; dev < first+cl.Devices; dev++ {
			used += f.shards[dev].slotsUsed
			util += f.shards[dev].epochUtil
		}
		slots := cl.Devices * f.cfg.SlotsPerDevice
		m.slots[t].Set(float64(slots))
		m.slotsUsed[t].Set(float64(used))
		m.occupancy[t].Set(float64(used) / float64(slots))
		m.utilMean[t].Set(util / float64(cl.Devices))
		first += cl.Devices
	}
	m.promotes.Set(float64(f.promotes))
	m.demotes.Set(float64(f.demotes))
	m.movesInFlight.Set(float64(f.promoStarted + f.demoStarted - f.promotes - f.demotes))
	m.copyBytes.Set(float64(f.xTierBytes))
}
