package fleet

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DeviceStats is one shard's roll-up.
type DeviceStats struct {
	Device int
	// Tenants is the occupied admission slots at collection time.
	Tenants int
	// MeanUtil is the mean per-epoch device utilization (all traffic,
	// including GC and migration copies).
	MeanUtil float64
	// BytesMoved is host payload bytes completed by the device's vSSDs.
	BytesMoved int64
	// Completed is host requests completed.
	Completed int64
}

// Stats is the fleet-wide roll-up: the tenant ledger, migration ledger,
// and aggregate throughput/utilization across every device.
type Stats struct {
	Devices int
	Epochs  int

	// Tenant ledger: Arrived = Running + Migrating + Queued + Rejected +
	// Departed, and Placed = Running + Migrating + Departed (every
	// placement is still alive or has drained out through a departure).
	Arrived   int
	Placed    int
	Running   int
	Migrating int
	Queued    int
	Rejected  int
	// Departed counts tenants whose sessions ended mid-run (cohort mode,
	// Config.Lifetime > 0); 0 otherwise.
	Departed int

	// Migration ledger: Started = Completed + InFlight.
	MigrationsStarted   int
	MigrationsCompleted int
	MigrationsInFlight  int
	// Downtime is total drain+copy virtual time charged to tenants.
	Downtime sim.Time

	// Completed is host requests finished fleet-wide.
	Completed int64
	// AggBandwidthMBps is fleet host payload throughput over the run.
	AggBandwidthMBps float64
	// AvgUtil is host bandwidth over fleet peak bandwidth for the run;
	// MinUtil/MaxUtil are the spread of per-device mean utilization.
	AvgUtil float64
	MinUtil float64
	MaxUtil float64

	// TypeCounts tallies the clusterer's workload-type labels across
	// traced tenants (Config.TypeModel set); empty otherwise.
	TypeCounts []TypeCount

	// Tiers is the per-class roll-up of a hybrid rack (Config.Classes
	// set); empty otherwise, and every tier field below stays zero.
	Tiers []TierStats
	// Cross-tier migration ledger: Started splits by direction and
	// PromotesStarted+DemotesStarted = Promotes + Demotes +
	// TierMovesInFlight. Cross-tier moves are also ordinary migrations,
	// so they count in MigrationsStarted/Completed too.
	PromotesStarted   int
	DemotesStarted    int
	Promotes          int
	Demotes           int
	TierMovesInFlight int
	// CrossTierBytes is payload bytes completed promote/demote copies
	// wrote to their destinations.
	CrossTierBytes int64
	// LsTenants counts latency-class tenants alive with served I/O;
	// LsWorstP99Ms/LsMeanP99Ms summarize their whole-run P99 tail on
	// their current device, in milliseconds.
	LsTenants    int
	LsWorstP99Ms float64
	LsMeanP99Ms  float64

	PerDevice []DeviceStats
}

// TierStats is one device class's slice of the roll-up.
type TierStats struct {
	Name      string
	Devices   int
	SlotsUsed int
	Slots     int
	// MeanUtil is the class's mean per-device utilization over the run.
	MeanUtil float64
}

// TypeCount is one workload-type label with the number of tenants the
// clusterer assigned to it.
type TypeCount struct {
	Label string
	Count int
}

// sortTypeCounts orders labels lexicographically for stable rendering.
func sortTypeCounts(tc []TypeCount) {
	sort.Slice(tc, func(i, j int) bool { return tc[i].Label < tc[j].Label })
}

// Balanced reports whether the tenant and migration ledgers close: every
// arrival is accounted for exactly once, every placement is still alive,
// and every started migration either completed or is in flight.
func (s Stats) Balanced() bool {
	return s.Arrived == s.Running+s.Migrating+s.Queued+s.Rejected+s.Departed &&
		s.Placed == s.Running+s.Migrating+s.Departed &&
		s.MigrationsStarted == s.MigrationsCompleted+s.MigrationsInFlight &&
		s.PromotesStarted+s.DemotesStarted == s.Promotes+s.Demotes+s.TierMovesInFlight &&
		s.PromotesStarted+s.DemotesStarted <= s.MigrationsStarted
}

// Render prints the roll-up as the deterministic fleet table used by
// FigureFleet and the determinism tests.
func (s Stats) Render(w io.Writer) {
	fmt.Fprintf(w, "devices=%d epochs=%d\n", s.Devices, s.Epochs)
	fmt.Fprintf(w, "tenants: arrived=%d placed=%d running=%d migrating=%d queued=%d rejected=%d departed=%d\n",
		s.Arrived, s.Placed, s.Running, s.Migrating, s.Queued, s.Rejected, s.Departed)
	fmt.Fprintf(w, "migrations: started=%d completed=%d inflight=%d downtime=%.1fms\n",
		s.MigrationsStarted, s.MigrationsCompleted, s.MigrationsInFlight, float64(s.Downtime)/1e6)
	if len(s.TypeCounts) > 0 {
		fmt.Fprintf(w, "types:")
		for _, tc := range s.TypeCounts {
			fmt.Fprintf(w, " %s=%d", tc.Label, tc.Count)
		}
		fmt.Fprintf(w, "\n")
	}
	if len(s.Tiers) > 0 {
		fmt.Fprintf(w, "tiers:")
		for _, ts := range s.Tiers {
			fmt.Fprintf(w, " %s[dev=%d slots=%d/%d util=%.1f%%]",
				ts.Name, ts.Devices, ts.SlotsUsed, ts.Slots, ts.MeanUtil*100)
		}
		fmt.Fprintf(w, " promotes=%d demotes=%d inflight=%d xbytes=%.1fMB\n",
			s.Promotes, s.Demotes, s.TierMovesInFlight, float64(s.CrossTierBytes)/1e6)
		fmt.Fprintf(w, "taillat: ls tenants=%d worstP99=%.2fms meanP99=%.2fms\n",
			s.LsTenants, s.LsWorstP99Ms, s.LsMeanP99Ms)
	}
	fmt.Fprintf(w, "fleet: completed=%d aggBW=%.1fMB/s avgUtil=%.1f%% devUtil min/max=%.1f%%/%.1f%%\n",
		s.Completed, s.AggBandwidthMBps, s.AvgUtil*100, s.MinUtil*100, s.MaxUtil*100)
	if !s.Balanced() {
		fmt.Fprintf(w, "!! ledger imbalance: arrived=%d running=%d migrating=%d queued=%d rejected=%d departed=%d started=%d done=%d inflight=%d\n",
			s.Arrived, s.Running, s.Migrating, s.Queued, s.Rejected, s.Departed,
			s.MigrationsStarted, s.MigrationsCompleted, s.MigrationsInFlight)
	}
}

// fleetMetrics is the fleetio_fleet_* series catalogue, refreshed by the
// control plane at every epoch boundary (single-threaded, so plain Sets).
type fleetMetrics struct {
	devices, running, queued   *obs.Metric
	rejected, placed, departed *obs.Metric
	migStarted, migDone        *obs.Metric
	migDowntime                *obs.Metric
	bandwidth                  *obs.Metric
	utilMean, utilMin, utilMax *obs.Metric
	simTime, epochs            *obs.Metric
	// Barrier health of the persistent shard-worker runtime: cumulative
	// wall time the control plane spent waiting at the epoch barrier, and
	// the last epoch's straggler gap (last minus first worker arrival).
	// Both stay 0 when shards advance inline (Workers == 1).
	barrierWait, straggler *obs.Metric
	// tier holds the fleetio_tier_* series; nil on homogeneous racks.
	tier *tierMetrics
}

func newFleetMetrics(reg *obs.Registry) *fleetMetrics {
	return &fleetMetrics{
		devices:     reg.Gauge("fleetio_fleet_devices", "Device shards in the fleet."),
		running:     reg.Gauge("fleetio_fleet_tenants_running", "Tenants currently serving I/O."),
		queued:      reg.Gauge("fleetio_fleet_tenants_queued", "Tenants waiting for a device slot."),
		rejected:    reg.Counter("fleetio_fleet_tenants_rejected_total", "Tenants turned away by fleet admission."),
		departed:    reg.Counter("fleetio_fleet_tenants_departed_total", "Tenants whose sessions ended and drained out (cohort mode)."),
		placed:      reg.Counter("fleetio_fleet_placements_total", "Tenant placements performed."),
		migStarted:  reg.Counter("fleetio_fleet_migrations_started_total", "Cold migrations started."),
		migDone:     reg.Counter("fleetio_fleet_migrations_completed_total", "Cold migrations completed."),
		migDowntime: reg.Counter("fleetio_fleet_migration_downtime_seconds", "Total drain+copy downtime charged to tenants."),
		bandwidth:   reg.Gauge("fleetio_fleet_bandwidth_bytes_per_second", "Fleet device throughput over the last epoch."),
		utilMean:    reg.Gauge("fleetio_fleet_util_mean", "Mean per-device utilization over the last epoch."),
		utilMin:     reg.Gauge("fleetio_fleet_util_min", "Coolest device's utilization over the last epoch."),
		utilMax:     reg.Gauge("fleetio_fleet_util_max", "Hottest device's utilization over the last epoch."),
		simTime:     reg.Gauge("fleetio_fleet_sim_time_seconds", "Fleet-wide virtual clock."),
		epochs:      reg.Counter("fleetio_fleet_epochs_total", "Synchronization epochs completed."),
		barrierWait: reg.Counter("fleetio_fleet_barrier_wait_ns", "Cumulative wall time the control plane waited at the epoch barrier."),
		straggler:   reg.Gauge("fleetio_fleet_barrier_straggler_ns", "Last epoch's gap between the first and last shard worker arriving at the barrier."),
	}
}

// publishMetrics refreshes the fleetio_fleet_* series from control-plane
// state. Called only on the control-plane thread.
func (f *Fleet) publishMetrics(now sim.Time) {
	m := f.metrics
	m.devices.Set(float64(len(f.shards)))
	var running, migrating int
	for _, tn := range f.tenants[:f.nextArr] {
		switch tn.State {
		case StateRunning, StateLeaving:
			running++
		case StateDraining, StateCopying:
			migrating++
		}
	}
	m.running.Set(float64(running + migrating))
	m.queued.Set(float64(len(f.queue)))
	m.rejected.Set(float64(f.rejected))
	m.departed.Set(float64(f.departed))
	m.placed.Set(float64(f.placed))
	m.migStarted.Set(float64(f.migStarted))
	m.migDone.Set(float64(f.migDone))
	m.migDowntime.Set(float64(f.migDowntime) / 1e9)
	var sum, min, max float64
	min, max = 1e18, -1e18
	for _, sh := range f.shards {
		u := sh.epochUtil
		sum += u
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	n := float64(len(f.shards))
	m.utilMean.Set(sum / n)
	m.utilMin.Set(min)
	m.utilMax.Set(max)
	// Per-device utilizations times one device's peak bandwidth sum to
	// the fleet's throughput over the epoch on a homogeneous rack; hybrid
	// racks weight each shard by its own class peak. The homogeneous
	// multiply keeps its float operation order (tier-off byte identity).
	// A degenerate peak (0 × Inf = NaN) publishes as 0 instead.
	var bw float64
	if f.tiered() {
		for _, sh := range f.shards {
			bw += sh.epochUtil * sh.peakBandwidth()
		}
	} else {
		bw = sum * f.shards[0].peakBandwidth()
	}
	if math.IsNaN(bw) || math.IsInf(bw, 0) {
		bw = 0
	}
	m.bandwidth.Set(bw)
	m.simTime.Set(float64(now) / 1e9)
	m.epochs.Set(float64(f.epochs))
	if m.tier != nil {
		f.publishTierMetrics()
	}
}
