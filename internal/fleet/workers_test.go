package fleet

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestPartitionShardsCoversContiguously(t *testing.T) {
	for d := 1; d <= 40; d++ {
		for n := 1; n <= d; n++ {
			parts := partitionShards(d, n)
			if len(parts) != n {
				t.Fatalf("d=%d n=%d: %d parts", d, n, len(parts))
			}
			next := 0
			for w, pt := range parts {
				if pt[0] != next {
					t.Fatalf("d=%d n=%d worker %d: range starts at %d, want %d (gap or overlap)", d, n, w, pt[0], next)
				}
				if size := pt[1] - pt[0]; size < d/n || size > d/n+1 {
					t.Fatalf("d=%d n=%d worker %d: unbalanced range size %d", d, n, w, size)
				}
				next = pt[1]
			}
			if next != d {
				t.Fatalf("d=%d n=%d: ranges cover [0,%d), want [0,%d)", d, n, next, d)
			}
		}
	}
}

// TestBarrierStressManyEpochs hammers the sense-reversing barrier: a tiny
// quantum forces hundreds of release/gather cycles across a full worker
// complement (oversubscribed on small hosts, which also exercises the
// condvar parking fallback). Run under -race by check.sh.
func TestBarrierStressManyEpochs(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 8
	cfg.Workers = 8
	cfg.Quantum = 2 * sim.Millisecond
	cfg.Duration = 600 * sim.Millisecond
	st := New(cfg).Run()
	if st.Epochs != 300 {
		t.Fatalf("ran %d epochs, want 300", st.Epochs)
	}
	if !st.Balanced() {
		t.Fatalf("ledger imbalance under barrier stress: %+v", st)
	}
}

// TestBarrierStressPinned repeats the stress with OS-thread pinning, which
// must not change behavior (or output — see TestPinByteIdentical).
func TestBarrierStressPinned(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 4
	cfg.Workers = 4
	cfg.Pin = true
	cfg.Quantum = 2 * sim.Millisecond
	cfg.Duration = 400 * sim.Millisecond
	st := New(cfg).Run()
	if st.Epochs != 200 || !st.Balanced() {
		t.Fatalf("pinned stress: epochs=%d balanced=%v", st.Epochs, st.Balanced())
	}
}

// TestWorkerPoolCleanShutdown proves Run leaks no goroutines: the pool is
// created at Run start and joined before Run returns, repeatedly.
func TestWorkerPoolCleanShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		cfg := testConfig()
		cfg.Workers = 6
		cfg.Duration = 500 * sim.Millisecond
		cfg.Pin = i == 2 // pinned workers must unwind their threads too
		New(cfg).Run()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after three runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPinByteIdentical pins workers to OS threads and requires the exact
// output of the unpinned run: pinning is a scheduling hint, never a
// semantic change.
func TestPinByteIdentical(t *testing.T) {
	base := testConfig()
	base.Workers = 4
	want := render(New(base).Run())
	pinned := base
	pinned.Pin = true
	if got := render(New(pinned).Run()); got != want {
		t.Fatalf("Pin changed output:\n%s\nvs unpinned:\n%s", got, want)
	}
}

// TestEpochLoopZeroSteadyStateAllocs pins the epoch loop — barrier,
// parallel shard advance + load refresh, sequential control plane — at
// zero allocations once the rack has settled (all arrivals resolved, no
// migrations in flight). Covers both the inline path and the persistent
// pool.
func TestEpochLoopZeroSteadyStateAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := testConfig()
		cfg.Workers = workers
		cfg.Migration = false
		cfg.Tenants = 8 // exactly the rack's slot capacity: no queue churn
		cfg.ArrivalEvery = 10 * sim.Millisecond
		cfg.Duration = 1000 * sim.Second // headroom; epochs are stepped manually
		f := New(cfg)
		f.start()
		for i := 0; i < 60; i++ {
			f.step() // settle: place everyone, warm the parking paths
		}
		// The op/request free lists and FTL block-page scratch grow to
		// their high-water marks over the first few hundred epochs; allow
		// a bounded number of extra settle rounds, then require a clean
		// zero. Genuine per-epoch churn never converges and fails here.
		allocs := -1.0
		for round := 0; round < 6 && allocs != 0; round++ {
			allocs = testing.AllocsPerRun(30, func() { f.step() })
			for i := 0; i < 200; i++ {
				f.step()
			}
		}
		f.stopWorkers()
		if allocs != 0 {
			t.Errorf("workers=%d: epoch loop still allocates %.1f allocs/op after settling, want 0", workers, allocs)
		}
	}
}

func TestUtilOverGuards(t *testing.T) {
	cases := []struct {
		delta int64
		denom float64
		want  float64
	}{
		{1 << 20, 2, 1 << 19},     // normal ratio
		{1 << 20, 0, 0},           // zero peak: would be +Inf
		{0, 0, 0},                 // zero/zero: would be NaN
		{1 << 20, math.Inf(1), 0}, // Inf peak (unvalidated BusNsPerKB=0)
		{1 << 20, math.NaN(), 0},  // poisoned peak
		{1 << 20, -5, 0},          // negative denominator
		{-4096, 2, -2048},         // negative delta stays finite
	}
	for _, c := range cases {
		got := utilOver(c.delta, c.denom)
		if got != c.want || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("utilOver(%d, %v) = %v, want %v", c.delta, c.denom, got, c.want)
		}
	}
}

// TestBarrierMetricsPublished checks the barrier-health series appear and
// that a pooled run accumulates barrier wait time.
func TestBarrierMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Workers = 4
	cfg.Obs = reg
	st := New(cfg).Run()
	if st.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, n := range []string{"fleetio_fleet_barrier_wait_ns", "fleetio_fleet_barrier_straggler_ns"} {
		if !names[n] {
			t.Errorf("metric %s not registered", n)
		}
	}
}
