package fleet

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// cohortConfig is a small rack in cohort mode: short sessions so several
// tenants depart mid-run and their slots recycle to queued arrivals.
func cohortConfig() Config {
	cfg := testConfig()
	cfg.Duration = 3 * sim.Second
	cfg.Lifetime = 800 * sim.Millisecond
	return cfg
}

func TestCohortDeparturesFreeSlots(t *testing.T) {
	st := New(cohortConfig()).Run()
	if st.Departed == 0 {
		t.Fatalf("no tenant departed in cohort mode: %+v", st)
	}
	if !st.Balanced() {
		t.Fatalf("ledger imbalance with departures: %+v", st)
	}
	// The explicit five-term ledger, not just Balanced(): every arrival is
	// accounted for exactly once even as slots churn.
	if st.Arrived != st.Running+st.Migrating+st.Queued+st.Rejected+st.Departed {
		t.Fatalf("arrived=%d != running=%d+migrating=%d+queued=%d+rejected=%d+departed=%d",
			st.Arrived, st.Running, st.Migrating, st.Queued, st.Rejected, st.Departed)
	}
	if st.Placed != st.Running+st.Migrating+st.Departed {
		t.Fatalf("placed=%d != running=%d+migrating=%d+departed=%d",
			st.Placed, st.Running, st.Migrating, st.Departed)
	}
}

func TestCohortSlotsRecycle(t *testing.T) {
	// With everyone departing quickly, placements must exceed the rack's
	// slot capacity: freed slots get reused by later arrivals.
	cfg := cohortConfig()
	cfg.Migration = false
	cfg.Lifetime = 300 * sim.Millisecond
	cfg.Tenants = 24
	st := New(cfg).Run()
	capacity := cfg.Devices * cfg.withDefaults().SlotsPerDevice
	if st.Placed <= capacity {
		t.Fatalf("placed %d <= capacity %d: slots never recycled (departed=%d)",
			st.Placed, capacity, st.Departed)
	}
	if !st.Balanced() {
		t.Fatalf("ledger imbalance: %+v", st)
	}
}

func TestCohortDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := cohortConfig()
		cfg.Workers = workers
		got := render(New(cfg).Run())
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

func TestCohortDepartedStateInvariants(t *testing.T) {
	f := New(cohortConfig())
	f.Run()
	for _, tn := range f.Tenants() {
		if tn.State != StateDeparted {
			continue
		}
		if tn.Device != -1 || tn.vssd != nil || tn.gen != nil {
			t.Fatalf("departed tenant %d still bound: dev=%d", tn.ID, tn.Device)
		}
	}
	// Slot accounting closes: each shard's slotsUsed matches its residents
	// plus reserved migration destinations (a migrating tenant stays in
	// the source's resident list until cutover, while its destination
	// slot is already reserved).
	for _, sh := range f.Shards() {
		reserved := 0
		for _, m := range f.migs {
			if m.dst == sh.id {
				reserved++
			}
		}
		if sh.slotsUsed != len(sh.resident)+reserved {
			t.Fatalf("dev %d: slotsUsed=%d residents=%d reserved=%d",
				sh.id, sh.slotsUsed, len(sh.resident), reserved)
		}
	}
}

func TestFleetTypeCounts(t *testing.T) {
	// Train a tiny model on the fleet's own workload cycle and check the
	// fleet's traffic classification produces labels for traced tenants.
	names := DefaultWorkloadCycle()
	pageSize := DefaultDeviceConfig().PageSize
	ds := cluster.BuildDataset(names, 4, cluster.WindowSize/10, pageSize, 7)
	model := cluster.Train(ds, 3, 8)

	cfg := testConfig()
	cfg.TypeModel = model
	st := New(cfg).Run()
	if len(st.TypeCounts) == 0 {
		t.Fatalf("no workload types classified: %+v", st)
	}
	total := 0
	for i, tc := range st.TypeCounts {
		if tc.Count <= 0 || tc.Label == "" {
			t.Fatalf("bad type count %+v", tc)
		}
		if i > 0 && st.TypeCounts[i-1].Label >= tc.Label {
			t.Fatalf("type counts not sorted: %+v", st.TypeCounts)
		}
		total += tc.Count
	}
	if total > st.Placed {
		t.Fatalf("classified %d tenants but only %d placed", total, st.Placed)
	}
	// The cycle mixes open-loop services with closed-loop batch jobs, so
	// the model must see at least two distinct traffic types.
	if len(st.TypeCounts) < 2 {
		t.Fatalf("only one traffic type observed: %+v", st.TypeCounts)
	}
}

func TestCohortZeroLifetimeUnchanged(t *testing.T) {
	// Lifetime=0 must be byte-identical to the pre-cohort behavior: no
	// extra RNG draws, no departures.
	st := New(testConfig()).Run()
	if st.Departed != 0 {
		t.Fatalf("departures with Lifetime=0: %+v", st)
	}
}
