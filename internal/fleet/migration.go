package fleet

import (
	"repro/internal/sim"
	"repro/internal/vssd"
)

// migration tracks one in-flight cold migration through its three phases:
// drain (source generator stopped, waiting for queue+inflight to empty),
// copy (mapped pages read on the source and written on the destination as
// real simulated I/O), and cutover (trim the source, free its slot,
// restart the generator on the destination). Phase transitions happen
// only at epoch boundaries on the control-plane thread; the copiers run
// inside their shards' engines between barriers.
type migration struct {
	tenant   *Tenant
	src, dst int // device ids; dst slot is reserved at start
	srcVSSD  *vssd.VSSD
	dstVSSD  *vssd.VSSD
	started  sim.Time

	// tierMove classifies the migration on a hybrid rack: +1 promote
	// (into a lower tier index, i.e. the fast tier), -1 demote, 0 within
	// one tier. copyPages is the clamped page count both copiers move,
	// recorded for the cross-tier byte ledger.
	tierMove  int8
	copyPages int

	srcCopy *copier
	dstCopy *copier
}

// copierConcurrency is the closed-loop depth of one migration copier; two
// requests keep the stream pipelined without monopolizing the device.
const copierConcurrency = 2

// copierChunkPages is the request size of the copy stream — large
// sequential transfers, like a real migration engine would issue.
const copierChunkPages = 16

// copier drives one side of a migration copy as a closed-loop sequential
// request stream against a vSSD, entirely inside that vSSD's shard engine.
// done flips on the last completion; the control plane polls it at epoch
// boundaries.
type copier struct {
	v        *vssd.VSSD
	write    bool
	next     int // next LPN to issue
	total    int // pages to move
	inflight int
	done     bool
	onDone   func(*vssd.Request, sim.Time)
}

// newCopier starts the stream. A zero-page copy completes immediately.
func newCopier(v *vssd.VSSD, write bool, totalPages int) *copier {
	c := &copier{v: v, write: write, total: totalPages}
	c.onDone = func(_ *vssd.Request, _ sim.Time) {
		c.inflight--
		c.pump()
	}
	if c.total <= 0 {
		c.done = true
		return c
	}
	for i := 0; i < copierConcurrency && c.next < c.total; i++ {
		c.issue()
	}
	return c
}

// pump issues the next chunk or marks the stream done.
func (c *copier) pump() {
	if c.next < c.total {
		c.issue()
		return
	}
	if c.inflight == 0 {
		c.done = true
	}
}

func (c *copier) issue() {
	n := copierChunkPages
	if c.next+n > c.total {
		n = c.total - c.next
	}
	r := c.v.AcquireRequest()
	r.Write = c.write
	r.LPN = c.next
	r.Pages = n
	r.OnComplete = c.onDone
	c.next += n
	c.inflight++
	c.v.Submit(r)
}

// maybeMigrate starts at most one migration per epoch: the busiest
// migratable tenant moves from the hottest device to the coolest device
// with a free slot, when the utilization gap justifies the disruption.
func (f *Fleet) maybeMigrate(now sim.Time) {
	if f.migStarted-f.migDone >= f.cfg.MaxMigrations {
		return
	}
	hot, cool := -1, -1
	for dev := range f.shards {
		if f.pickVictim(dev, now) != nil && (hot < 0 || f.shards[dev].epochUtil > f.shards[hot].epochUtil) {
			hot = dev
		}
		if f.hasSlot(dev) && (cool < 0 || f.shards[dev].epochUtil < f.shards[cool].epochUtil) {
			cool = dev
		}
	}
	if hot < 0 || cool < 0 || hot == cool {
		return
	}
	if f.shards[hot].epochUtil-f.shards[cool].epochUtil < f.cfg.MigrateGap {
		return
	}
	f.startMigration(f.pickVictim(hot, now), cool, now)
}

// pickVictim returns the hot device's busiest running tenant that has
// settled long enough to be worth moving, or nil.
func (f *Fleet) pickVictim(dev int, now sim.Time) *Tenant {
	var best *Tenant
	var bestDelta int64 = -1
	for _, tn := range f.shards[dev].resident {
		if tn.State != StateRunning || tn.Device != dev {
			continue
		}
		if now-tn.placedAt < f.cfg.MigrateAfter {
			continue
		}
		if tn.epochBytes > bestDelta {
			best, bestDelta = tn, tn.epochBytes
		}
	}
	return best
}

// startMigration reserves the destination slot and begins the drain.
// Any migration that crosses a tier boundary — a tier policy's move or
// plain load balancing on a hybrid rack — enters the promote/demote
// ledger.
func (f *Fleet) startMigration(tn *Tenant, dst int, now sim.Time) {
	f.shards[dst].slotsUsed++
	m := &migration{tenant: tn, src: tn.Device, dst: dst, srcVSSD: tn.vssd, started: now}
	if st, dt := f.shards[m.src].tier, f.shards[dst].tier; dt < st {
		m.tierMove = 1
		f.promoStarted++
	} else if dt > st {
		m.tierMove = -1
		f.demoStarted++
	}
	tn.State = StateDraining
	tn.mig = m
	tn.gen.Stop()
	f.migs = append(f.migs, m)
	f.migStarted++
}

// stepMigrations advances every in-flight migration one epoch: drained
// sources start their copy, finished copies cut over. Completed
// migrations are compacted out of the slice in order.
func (f *Fleet) stepMigrations(now sim.Time) {
	live := f.migs[:0]
	for _, m := range f.migs {
		switch m.tenant.State {
		case StateDraining:
			if m.srcVSSD.QueueLen() == 0 && m.srcVSSD.Inflight() == 0 {
				f.beginCopy(m)
			}
			live = append(live, m)
		case StateCopying:
			if m.srcCopy.done && m.dstCopy.done {
				f.cutOver(m, now)
			} else {
				live = append(live, m)
			}
		}
	}
	f.migs = live
}

// beginCopy creates the destination vSSD and launches both copy streams.
// The read stream covers the source's mapped page count starting at LPN 0
// (unmapped holes read as zero-fill, like any sparse image copy); the
// write stream programs the same number of pages on the destination,
// which doubles as the migrated tenant's prefill.
func (f *Fleet) beginCopy(m *migration) {
	tn := m.tenant
	tn.State = StateCopying
	tn.Device = m.dst
	tn.Migrations++ // addTenantVSSD skips prefill for a migration target
	pages := int(m.srcVSSD.Tenant().MappedPages())
	m.dstVSSD = f.shards[m.dst].addTenantVSSD(tn, f.cfg)
	if lim := m.dstVSSD.Tenant().LogicalPages(); pages > lim {
		pages = lim
	}
	m.copyPages = pages
	m.srcCopy = newCopier(m.srcVSSD, false, pages)
	m.dstCopy = newCopier(m.dstVSSD, true, pages)
}

// cutOver finishes a migration: the source mapping is trimmed (its blocks
// become GC-reclaimable), the source slot frees, the tenant's generator
// restarts against the destination vSSD with its own RNG stream intact,
// and the drain+copy window is charged to the tenant as downtime.
func (f *Fleet) cutOver(m *migration, now sim.Time) {
	tn := m.tenant
	src := f.shards[m.src]
	st := m.srcVSSD.Tenant()
	for lpn := 0; lpn < st.LogicalPages(); lpn++ {
		st.Trim(lpn)
	}
	src.slotsUsed--
	for i, r := range src.resident {
		if r == tn {
			src.resident = append(src.resident[:i], src.resident[i+1:]...)
			break
		}
	}
	tn.vssd = m.dstVSSD
	tn.lastBytes = m.dstVSSD.TotalBytesMoved()
	// The destination's latency history so far is the bulk copy stream,
	// not tenant traffic; reset it so post-migration P99 (the tiered
	// tail-latency roll-up) measures the new placement only.
	m.dstVSSD.TotalHist().Reset()
	tn.Downtime += now - m.started
	tn.State = StateRunning
	tn.placedAt = now
	tn.mig = nil
	f.shards[m.dst].resident = append(f.shards[m.dst].resident, tn)
	tn.gen = workloadGenerator(f.shards[m.dst], tn)
	tn.gen.Start()
	f.migDone++
	f.migDowntime += now - m.started
	if m.tierMove != 0 {
		if m.tierMove > 0 {
			f.promotes++
		} else {
			f.demotes++
		}
		f.xTierBytes += int64(m.copyPages) * int64(f.shards[m.dst].fc.PageSize)
	}
}
