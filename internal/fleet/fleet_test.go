package fleet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// testConfig is a small rack that still exercises queueing, rejection,
// and (with Migration on) at least one cold migration.
func testConfig() Config {
	return Config{
		Devices:   4,
		Seed:      1,
		Duration:  2 * sim.Second,
		Placement: PlaceLeastLoaded,
		Migration: true,
	}
}

// render pins every Stats field, plus per-device detail, for byte
// comparison across worker counts.
func render(s Stats) string {
	var b strings.Builder
	s.Render(&b)
	for _, d := range s.PerDevice {
		fmt.Fprintf(&b, "dev %d tenants=%d util=%.4f bytes=%d completed=%d\n",
			d.Device, d.Tenants, d.MeanUtil, d.BytesMoved, d.Completed)
	}
	return b.String()
}

func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		got := render(New(cfg).Run())
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

func TestFleetLedgerBalances(t *testing.T) {
	for _, kind := range Placements() {
		cfg := testConfig()
		cfg.Placement = kind
		st := New(cfg).Run()
		if !st.Balanced() {
			t.Errorf("%v: ledger imbalance: %+v", kind, st)
		}
		if st.Arrived != cfg.withDefaults().Tenants {
			t.Errorf("%v: arrived %d of %d tenants", kind, st.Arrived, cfg.withDefaults().Tenants)
		}
		if st.Placed == 0 {
			t.Errorf("%v: nothing placed", kind)
		}
		if st.Completed == 0 {
			t.Errorf("%v: no I/O completed", kind)
		}
	}
}

func TestFleetAdmissionSaturates(t *testing.T) {
	cfg := testConfig()
	cfg.Migration = false
	// Far more tenants than the rack holds: the queue must fill and the
	// overflow must be rejected, never silently dropped.
	cfg.Tenants = cfg.Devices*2*4 + 3
	st := New(cfg).Run()
	if st.Rejected == 0 {
		t.Fatalf("oversubscribed rack rejected nothing: %+v", st)
	}
	if st.Queued == 0 {
		t.Fatalf("oversubscribed rack queued nothing: %+v", st)
	}
	if !st.Balanced() {
		t.Fatalf("ledger imbalance: %+v", st)
	}
	slots := cfg.Devices * 2 // SlotsPerDevice default
	if st.Running+st.Migrating > slots {
		t.Fatalf("running %d tenants on %d slots", st.Running+st.Migrating, slots)
	}
}

// newMigrationFleet builds a rack engineered to need migration: a heavy
// closed-loop batch job lands next to light services, so one device runs
// hot while another stays cool with a free slot.
func newMigrationFleet(seed int64) *Fleet {
	return New(Config{
		Devices:        3,
		Seed:           seed,
		Duration:       3 * sim.Second,
		Placement:      PlaceRoundRobin,
		Migration:      true,
		Workloads:      []string{"TeraSort", "VDI-Web", "MLPrep", "VDI-Web", "VDI-Web", "VDI-Web"},
		SlotsPerDevice: 3,
		Tenants:        6,
		MigrateAfter:   300 * sim.Millisecond,
		MigrateGap:     0.10,
	})
}

func TestFleetMigrationCompletes(t *testing.T) {
	fl := newMigrationFleet(1)
	st := fl.Run()
	if st.MigrationsCompleted == 0 {
		t.Fatalf("no migration completed: %+v", st)
	}
	if st.Downtime <= 0 {
		t.Fatalf("completed migration charged no downtime: %+v", st)
	}
	if !st.Balanced() {
		t.Fatalf("ledger imbalance after migration: %+v", st)
	}
	var migrated *Tenant
	for _, tn := range fl.Tenants() {
		if tn.Migrations > 0 {
			migrated = tn
			break
		}
	}
	if migrated == nil {
		t.Fatal("no tenant records a completed migration")
	}
	if migrated.Downtime <= 0 {
		t.Fatal("migrated tenant has zero downtime")
	}
	if migrated.State == StateRunning && migrated.vssd == nil {
		t.Fatal("running migrated tenant has no vSSD")
	}
}

func TestFleetMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Obs = reg
	st := New(cfg).Run()
	if st.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	have := map[string]bool{}
	for _, n := range reg.Names() {
		have[n] = true
	}
	for _, n := range []string{
		"fleetio_fleet_devices", "fleetio_fleet_tenants_running",
		"fleetio_fleet_placements_total", "fleetio_fleet_util_max",
		"fleetio_fleet_epochs_total",
	} {
		if !have[n] {
			t.Errorf("metric %s not registered (have %v)", n, reg.Names())
		}
	}
}

func TestPlacementParseAndStrings(t *testing.T) {
	for _, kind := range Placements() {
		got, err := ParsePlacement(kind.String())
		if err != nil || got != kind {
			t.Fatalf("ParsePlacement(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := ParsePlacement("bogus"); err == nil {
		t.Fatal("ParsePlacement accepted bogus")
	}
}
