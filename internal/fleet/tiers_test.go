package fleet

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// tierTestConfig is a small hybrid rack with enough churn and
// oversubscription for tier moves to fire within a short run.
func tierTestConfig(tp TierPolicyKind) Config {
	return Config{
		Seed:        1,
		Duration:    3 * sim.Second,
		Classes:     DefaultTierClasses(2, 4),
		TierPolicy:  tp,
		Lifetime:    1500 * sim.Millisecond,
		Tenants:     25,
		PrefillFrac: -1,
	}
}

func TestWithDefaultsSentinels(t *testing.T) {
	cases := []struct {
		name        string
		maxMig      int
		prefill     float64
		wantMax     int
		wantPrefill float64
	}{
		{"zero picks defaults", 0, 0, 2, 0.35}, // 8 devices → 8/8+1
		{"negative disables", -1, -1, 0, 0},
		{"explicit values stick", 3, 0.5, 3, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Devices: 8, Duration: sim.Second,
				MaxMigrations: tc.maxMig, PrefillFrac: tc.prefill}.withDefaults()
			if cfg.MaxMigrations != tc.wantMax {
				t.Errorf("MaxMigrations = %d, want %d", cfg.MaxMigrations, tc.wantMax)
			}
			if cfg.PrefillFrac != tc.wantPrefill {
				t.Errorf("PrefillFrac = %v, want %v", cfg.PrefillFrac, tc.wantPrefill)
			}
		})
	}
}

func TestMigrationFreeFleet(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMigrations = -1 // Migration stays on, but no move may ever start
	st := New(cfg).Run()
	if st.MigrationsStarted != 0 {
		t.Errorf("MaxMigrations=-1 started %d migrations", st.MigrationsStarted)
	}
	if !st.Balanced() {
		t.Errorf("ledger imbalance: %+v", st)
	}
}

func TestColdFleetRuns(t *testing.T) {
	cfg := testConfig()
	cfg.PrefillFrac = -1
	st := New(cfg).Run()
	if st.Placed == 0 || st.Completed == 0 {
		t.Errorf("cold fleet did no work: placed=%d completed=%d", st.Placed, st.Completed)
	}
}

func TestTierClassResolution(t *testing.T) {
	cfg := Config{Duration: sim.Second, Classes: DefaultTierClasses(2, 6)}.withDefaults()
	if cfg.Devices != 8 {
		t.Fatalf("Devices = %d, want class sum 8", cfg.Devices)
	}
	if cfg.TierLowWater != 0.60 || cfg.TierHighWater != 0.95 {
		t.Errorf("watermarks = %v/%v, want 0.60/0.95", cfg.TierLowWater, cfg.TierHighWater)
	}
	if cfg.TierSLO != 2*sim.Millisecond {
		t.Errorf("TierSLO = %v, want 2ms", cfg.TierSLO)
	}
	fc, tier := cfg.shardClass(1)
	if tier != 0 || fc.BlocksPerChip != 16 {
		t.Errorf("device 1: tier=%d blocks=%d, want fast tier 0 with 16 blocks", tier, fc.BlocksPerChip)
	}
	fc, tier = cfg.shardClass(7)
	if tier != 1 || fc.BlocksPerChip != 64 {
		t.Errorf("device 7: tier=%d blocks=%d, want dense tier 1 with 64 blocks", tier, fc.BlocksPerChip)
	}

	defer func() {
		if recover() == nil {
			t.Error("Devices/class-sum mismatch did not panic")
		}
	}()
	Config{Devices: 5, Duration: sim.Second, Classes: DefaultTierClasses(2, 6)}.withDefaults()
}

func TestTierClassSliceNotMutated(t *testing.T) {
	classes := []DeviceClass{{Devices: 1}, {Devices: 2}}
	Config{Duration: sim.Second, Classes: classes}.withDefaults()
	if classes[0].Name != "" || classes[0].Flash.Channels != 0 {
		t.Errorf("withDefaults mutated the caller's class slice: %+v", classes[0])
	}
}

func TestTierStaticPinPlacement(t *testing.T) {
	// Plenty of room in both tiers: every latency-class tenant must land
	// in the fast tier, every bandwidth-class tenant in the dense tier.
	cfg := tierTestConfig(TierStatic)
	cfg.Lifetime = 0
	cfg.Tenants = 4 // fast tier: 2 dev × 2 slots; dense: 8 slots
	f := New(cfg)
	f.Run()
	_, fh := f.fastRange()
	for _, tn := range f.Tenants() {
		if tn.State != StateRunning {
			continue
		}
		fast := tn.Device < fh
		if lat := tn.class == workload.Latency; lat != fast {
			t.Errorf("tenant %d (%s, latency=%v) on device %d (fast=%v)",
				tn.ID, tn.Workload, lat, tn.Device, fast)
		}
	}
}

func TestTierPoliciesMoveAndBalance(t *testing.T) {
	for _, tp := range []TierPolicyKind{TierWatermark, TierLearned} {
		t.Run(tp.String(), func(t *testing.T) {
			st := New(tierTestConfig(tp)).Run()
			if !st.Balanced() {
				t.Errorf("ledger imbalance: %+v", st)
			}
			if st.PromotesStarted+st.DemotesStarted == 0 {
				t.Errorf("%s started no tier moves", tp)
			}
			if st.Promotes+st.Demotes > 0 && st.CrossTierBytes == 0 {
				t.Errorf("completed tier moves but CrossTierBytes = 0")
			}
			if got := st.PromotesStarted + st.DemotesStarted; got > st.MigrationsStarted {
				t.Errorf("tier moves %d exceed migrations %d", got, st.MigrationsStarted)
			}
		})
	}
}

func TestTierFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, tp := range TierPolicies() {
		var want string
		for _, workers := range []int{1, 2, 4} {
			cfg := tierTestConfig(tp)
			cfg.Workers = workers
			got := render(New(cfg).Run())
			if workers == 1 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: workers=%d diverged from workers=1:\n%s\nvs\n%s", tp, workers, got, want)
			}
		}
	}
}

func TestTierStatsRendered(t *testing.T) {
	st := New(tierTestConfig(TierWatermark)).Run()
	var b strings.Builder
	st.Render(&b)
	out := b.String()
	for _, want := range []string{"tiers:", "fast[", "dense[", "promotes=", "taillat:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stats missing %q:\n%s", want, out)
		}
	}
}

func TestTierParseAndStrings(t *testing.T) {
	for _, tp := range TierPolicies() {
		got, err := ParseTierPolicy(tp.String())
		if err != nil || got != tp {
			t.Errorf("ParseTierPolicy(%q) = %v, %v", tp.String(), got, err)
		}
	}
	if _, err := ParseTierPolicy("nope"); err == nil {
		t.Error("ParseTierPolicy accepted garbage")
	}
}
