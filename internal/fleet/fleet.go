// Package fleet implements the rack-scale layer of the FleetIO
// reproduction: N flash devices, each a full engine shard (its own
// sim.Engine driving the flash/FTL/gSB/vSSD stack), coordinated under one
// fleet-wide virtual clock by barrier synchronization, with a control
// plane on top that places arriving tenants onto devices, admits or
// rejects them when the rack is saturated, and cold-migrates tenants off
// contended devices.
//
// # Shard model and clock coordination
//
// Each device shard is an independent deterministic simulation. The fleet
// advances all shards in lock-step epochs of Config.Quantum virtual time:
// shards fan out over a bounded worker pool, each runs its engine to the
// epoch boundary, and only after the barrier does the (sequential,
// deterministically ordered) control plane read shard state and mutate it
// — placing tenants, starting drains, cutting migrations over. No shard
// ever observes another mid-epoch, so cross-device behavior is a pure
// function of the seed: a fleet run is byte-identical at any worker
// count. This is bounded-lag synchronization with the lag bound equal to
// one quantum — the tightest cross-device interaction granularity.
//
// # Migration protocol
//
// Migration is cold: drain (stop the tenant's generator, wait for its
// queue and inflight pages to empty), copy (the mapped pages are read
// from the source device and written to the destination as real
// simulated I/O through the normal vSSD datapath, contending with the
// tenants already there), then cut over (trim the source mapping, free
// its slot, restart the generator against the destination vSSD). The
// whole drain+copy window is downtime charged to the tenant.
package fleet

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
	"repro/internal/workload"
)

// Config sizes and seeds a fleet run. The zero value of most fields picks
// a sensible default (see the field comments); Devices and Duration are
// required.
type Config struct {
	// Devices is the number of flash-device shards (required, >= 1 —
	// unless Classes is set, in which case it may be left 0 and is derived
	// as the class sum).
	Devices int
	// Seed derives every stream in the fleet (per-shard, per-tenant, and
	// control) via sim.RNG.Stream, so runs are seed-deterministic.
	Seed int64
	// Flash is the per-device geometry; zero value → DefaultDeviceConfig.
	// Ignored when Classes is set (each class carries its own geometry).
	Flash flash.Config

	// Classes, when set, makes the rack hybrid: each entry contributes
	// Devices shards with its own flash geometry, assigned class-contiguous
	// device ids (class 0 first). Class 0 is the fast tier by convention.
	// Unset (the default), the rack is homogeneous on Flash and every
	// tier-* field below is inert — that path is byte-identical to a
	// pre-tiering fleet.
	Classes []DeviceClass
	// TierPolicy selects the promote/demote driver on a hybrid rack.
	TierPolicy TierPolicyKind
	// TierLowWater/TierHighWater are the watermark policy's fast-tier
	// occupancy thresholds (0 → 0.60 / 0.95).
	TierLowWater  float64
	TierHighWater float64
	// TierSLO is the latency SLO stamped on latency-class tenants of a
	// hybrid rack (0 → 2 ms; negative → none). Metric-only on the
	// baseline policies; under TierLearned it also feeds each agent's
	// SLO-violation state and reward.
	TierSLO sim.Time
	// Window is the per-device decision window (0 → 100 ms).
	Window sim.Time
	// Quantum is the epoch length — the granularity of cross-device
	// actions and the shard lag bound (0 → 100 ms).
	Quantum sim.Time
	// Duration is the total simulated time (required, > 0).
	Duration sim.Time

	// Tenants is how many tenants arrive over the run (0 → 2×slots+spill).
	Tenants int
	// ArrivalEvery spaces tenant arrivals (0 → spread over 60% of the run).
	ArrivalEvery sim.Time
	// Workloads is the arrival profile cycle (empty → DefaultWorkloadCycle).
	Workloads []string
	// Placement selects the device-assignment baseline.
	Placement PlacementKind
	// SlotsPerDevice is the fleet-admission capacity of one device (0 → 2).
	SlotsPerDevice int
	// QueueLimit bounds the fleet-wide pending queue; arrivals beyond it
	// are rejected (0 → Devices/4+1).
	QueueLimit int

	// Migration enables cold vSSD migration off contended devices.
	Migration bool
	// MigrateGap is the minimum per-epoch utilization gap between the
	// hottest and coolest device before a migration starts (0 → 0.20).
	MigrateGap float64
	// MigrateAfter holds migrations back until the fleet has settled
	// (0 → 4 quanta).
	MigrateAfter sim.Time
	// MaxMigrations bounds concurrently in-flight migrations, including
	// tier promotes/demotes (0 → Devices/8+1; negative → no migrations of
	// any kind may start, the migration-free fleet).
	MaxMigrations int

	// Lifetime, when > 0, gives each placed tenant an exponentially
	// distributed session length (mean Lifetime) drawn from its private
	// stream: the cohort-churn mode, where tenants depart mid-run and
	// release their slots back to admission. 0 disables departures.
	Lifetime sim.Time
	// TypeModel, when non-nil, attaches a trace recorder to every tenant
	// and classifies each tenant's observed traffic at Collect time into
	// Stats.TypeCounts (the clusterer's workload-type view of the fleet).
	TypeModel *cluster.Model

	// PrefillFrac warms each placed tenant's logical space (0 → 0.35;
	// negative → no prefill, the cold-start fleet tiered scenarios use).
	PrefillFrac float64
	// Workers sizes the persistent shard-worker pool (0 → GOMAXPROCS,
	// 1 → inline sequential, capped at Devices). The pool is created once
	// at Run start; each worker owns a static contiguous slice of shards
	// for the whole run. Results are byte-identical at any setting.
	Workers int
	// Pin locks each persistent shard worker to its OS thread
	// (runtime.LockOSThread) for the whole run, so the Go scheduler never
	// migrates a worker — and with it, its shards' cache-hot engine state
	// — between threads. No effect when the pool is not used (Workers 1,
	// or a single device).
	Pin bool
	// Obs, when non-nil, receives the fleetio_fleet_* metric roll-up,
	// refreshed at every epoch boundary.
	Obs *obs.Registry
}

// DefaultDeviceConfig is the per-shard flash geometry: a quarter-size
// device (8 channels, 2 chips each) so racks of tens to hundreds of
// devices stay fast while keeping the full channel/chip/GC dynamics.
func DefaultDeviceConfig() flash.Config {
	cfg := flash.DefaultConfig()
	cfg.Channels = 8
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 32
	cfg.PagesPerBlock = 64
	return cfg
}

// DefaultWorkloadCycle mixes light open-loop services with heavy
// closed-loop batch jobs so device loads diverge enough for migration to
// have work to do.
func DefaultWorkloadCycle() []string {
	return []string{"VDI-Web", "TeraSort", "YCSB", "MLPrep"}
}

// withDefaults resolves every zero field.
func (c Config) withDefaults() Config {
	if len(c.Classes) > 0 {
		// Copy before mutating: callers share class slices across runs
		// (FigureTiers builds one per policy from the same literal).
		classes := make([]DeviceClass, len(c.Classes))
		copy(classes, c.Classes)
		sum := 0
		for i := range classes {
			if classes[i].Devices <= 0 {
				panic(fmt.Sprintf("fleet: Classes[%d].Devices must be >= 1", i))
			}
			if classes[i].Flash.Channels == 0 {
				classes[i].Flash = DefaultDeviceConfig()
			}
			if classes[i].Name == "" {
				classes[i].Name = fmt.Sprintf("class%d", i)
			}
			sum += classes[i].Devices
		}
		if c.Devices != 0 && c.Devices != sum {
			panic(fmt.Sprintf("fleet: Config.Devices=%d but Classes sum to %d", c.Devices, sum))
		}
		c.Devices = sum
		c.Classes = classes
		if c.TierLowWater == 0 {
			c.TierLowWater = 0.60
		}
		if c.TierHighWater == 0 {
			c.TierHighWater = 0.95
		}
		if c.TierSLO == 0 {
			c.TierSLO = 2 * sim.Millisecond
		} else if c.TierSLO < 0 {
			c.TierSLO = 0
		}
	}
	if c.Devices <= 0 {
		panic("fleet: Config.Devices must be >= 1")
	}
	if c.Duration <= 0 {
		panic("fleet: Config.Duration must be > 0")
	}
	if c.Flash.Channels == 0 {
		c.Flash = DefaultDeviceConfig()
	}
	if c.Window <= 0 {
		c.Window = 100 * sim.Millisecond
	}
	if c.Quantum <= 0 {
		c.Quantum = 100 * sim.Millisecond
	}
	if c.SlotsPerDevice <= 0 {
		c.SlotsPerDevice = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = c.Devices/4 + 1
	}
	if c.Tenants <= 0 {
		// Oversubscribe the rack so admission has queueing and rejection
		// work: capacity + half a device-count of spill.
		c.Tenants = c.Devices*c.SlotsPerDevice + c.Devices/2 + 1
	}
	if c.ArrivalEvery <= 0 {
		span := c.Duration * 6 / 10
		c.ArrivalEvery = span / sim.Time(c.Tenants)
		if c.ArrivalEvery <= 0 {
			c.ArrivalEvery = 1
		}
	}
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultWorkloadCycle()
	}
	if c.MigrateGap <= 0 {
		c.MigrateGap = 0.20
	}
	if c.MigrateAfter <= 0 {
		c.MigrateAfter = 4 * c.Quantum
	}
	// Zero means "unset, pick the default"; a negative sentinel means
	// "explicitly disabled". Folding both into <= 0 made cold (no-prefill)
	// and migration-free fleets impossible to request.
	if c.MaxMigrations == 0 {
		c.MaxMigrations = c.Devices/8 + 1
	} else if c.MaxMigrations < 0 {
		c.MaxMigrations = 0
	}
	if c.PrefillFrac == 0 {
		c.PrefillFrac = 0.35
	} else if c.PrefillFrac < 0 {
		c.PrefillFrac = 0
	}
	return c
}

// TenantState tracks where a tenant is in its lifecycle.
type TenantState uint8

// Tenant lifecycle states.
const (
	// StateQueued: admitted to the fleet queue, waiting for a device slot.
	StateQueued TenantState = iota
	// StateRunning: placed and serving I/O on its device.
	StateRunning
	// StateDraining: migration started; waiting for inflight I/O to empty.
	StateDraining
	// StateCopying: drained; mapped pages copying to the destination.
	StateCopying
	// StateRejected: turned away — the rack and its queue were full.
	StateRejected
	// StateLeaving: session ended; generator stopped, draining inflight
	// I/O before the slot frees.
	StateLeaving
	// StateDeparted: drained and gone; slot released, mapping trimmed.
	StateDeparted
)

func (s TenantState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateCopying:
		return "copying"
	case StateRejected:
		return "rejected"
	case StateLeaving:
		return "leaving"
	case StateDeparted:
		return "departed"
	default:
		return fmt.Sprintf("TenantState(%d)", uint8(s))
	}
}

// Tenant is one fleet tenant: a workload bound to (at most) one device at
// a time, possibly rebound by migration.
type Tenant struct {
	ID       int
	Workload string
	State    TenantState
	// Device is the current (or destination, while migrating) device;
	// -1 while queued or rejected.
	Device int
	// Migrations counts completed migrations of this tenant.
	Migrations int
	// Downtime is the total virtual time spent drained or copying.
	Downtime sim.Time

	arrival  sim.Time
	placedAt sim.Time
	// class is the workload's latency/bandwidth class, resolved once at
	// construction (tier placement and the tail-latency roll-up read it).
	class workload.Class
	// pageSize/logicalPages snapshot the tenant's device geometry at
	// placement, for classification after the tenant departs or on racks
	// where classes differ per device.
	pageSize     int
	logicalPages int64
	// departAt ends the tenant's session when Config.Lifetime is set
	// (0 = stays for the whole run).
	departAt sim.Time
	rng      *sim.RNG
	gen      *workload.Generator
	vssd     *vssd.VSSD
	// rec captures the tenant's recent traffic for workload-type
	// classification when Config.TypeModel is set. It survives migration:
	// the tenant's access stream is continuous across devices.
	rec *trace.Recorder
	// lastBytes is the TotalBytesMoved snapshot at the last epoch;
	// epochBytes is the delta over the last epoch (the migration victim
	// signal).
	lastBytes  int64
	epochBytes int64

	mig *migration // non-nil while draining/copying
}

// Fleet is a rack of device shards plus the control plane state.
type Fleet struct {
	cfg     Config
	shards  []*Shard
	tenants []*Tenant
	queue   []int // tenant IDs waiting for a slot, FIFO

	arrivals []sim.Time // arrival time per tenant ID
	nextArr  int
	rrNext   int // round-robin cursor
	ctrl     *sim.RNG

	migs []*migration

	now    sim.Time
	epochs int

	// pool is the persistent shard-worker runtime, alive between start
	// and stopWorkers; nil when shards advance inline (Workers == 1 or a
	// single device).
	pool *shardWorkers

	// counters feeding Stats
	placed, rejected    int
	departed            int
	migStarted, migDone int
	migDowntime         sim.Time
	// Cross-tier migration ledger (hybrid racks): started/completed
	// promotes (into the fast tier) and demotes (out of it), and the
	// payload bytes their completed copies wrote.
	promoStarted, demoStarted int
	promotes, demotes         int
	xTierBytes                int64
	metrics                   *fleetMetrics
}

// New builds the fleet: every shard's engine, platform, and runner, the
// arrival schedule, and (when cfg.Obs is set) the metric roll-up. No
// virtual time elapses until Run.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	if err := cfg.Flash.Validate(); err != nil {
		panic(err)
	}
	for _, cl := range cfg.Classes {
		if err := cl.Flash.Validate(); err != nil {
			panic(err)
		}
	}
	base := sim.NewRNG(cfg.Seed)
	f := &Fleet{cfg: cfg, ctrl: base.Stream(-1)}
	f.shards = make([]*Shard, cfg.Devices)
	for i := range f.shards {
		fc, tier := cfg.shardClass(i)
		f.shards[i] = newShard(i, cfg, fc, tier, base.Stream(int64(i)))
	}
	f.arrivals = make([]sim.Time, cfg.Tenants)
	f.tenants = make([]*Tenant, cfg.Tenants)
	for i := range f.tenants {
		f.arrivals[i] = sim.Time(i+1) * cfg.ArrivalEvery
		name := cfg.Workloads[i%len(cfg.Workloads)]
		f.tenants[i] = &Tenant{
			ID:       i,
			Workload: name,
			State:    StateQueued,
			Device:   -1,
			arrival:  f.arrivals[i],
			class:    workload.ByName(name).Class,
			rng:      base.Stream(int64(1<<20 + i)),
		}
	}
	if cfg.Obs != nil {
		f.metrics = newFleetMetrics(cfg.Obs)
		if f.tiered() {
			f.metrics.tier = newTierMetrics(cfg.Obs, cfg.Classes)
		}
	}
	return f
}

// Config returns the resolved configuration (defaults filled in).
func (f *Fleet) Config() Config { return f.cfg }

// Shards returns the device shards in id order.
func (f *Fleet) Shards() []*Shard { return f.shards }

// Tenants returns every tenant in arrival order.
func (f *Fleet) Tenants() []*Tenant { return f.tenants }

// Now returns the fleet-wide virtual clock (the last epoch boundary).
func (f *Fleet) Now() sim.Time { return f.now }

// Run advances the whole fleet to cfg.Duration in quantum-sized epochs
// and returns the final roll-up. Each epoch the persistent shard workers
// run their static shard ranges to the barrier (Config.Workers sizes the
// pool, created once here), then the control plane executes sequentially;
// the result is byte-identical at any worker count. The pool is torn down
// before Run returns — no goroutine outlives it.
func (f *Fleet) Run() Stats {
	f.start()
	for f.now < f.cfg.Duration {
		f.step()
	}
	st := f.Collect()
	f.stopWorkers()
	return st
}

// start begins every shard's decision runner and brings up the persistent
// worker pool when more than one worker is useful.
func (f *Fleet) start() {
	for _, sh := range f.shards {
		sh.runner.Start()
	}
	n := f.cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(f.shards) {
		n = len(f.shards)
	}
	if n > 1 && f.pool == nil {
		f.pool = newShardWorkers(f, n, f.cfg.Pin)
	}
}

// step runs one epoch: shards advance to the next quantum boundary in the
// parallel phase, then the sequential control plane acts at the barrier.
func (f *Fleet) step() {
	t := f.now + f.cfg.Quantum
	if t > f.cfg.Duration {
		t = f.cfg.Duration
	}
	f.advanceTo(t)
	f.controlPlane(t)
}

// stopWorkers joins and releases the persistent pool (no-op when inline).
func (f *Fleet) stopWorkers() {
	if f.pool != nil {
		f.pool.stop()
		f.pool = nil
	}
}

// advanceTo runs every shard's engine to the epoch boundary t and
// refreshes each shard's load signals, through the worker pool when one
// is up and inline otherwise. Every field the parallel phase touches is
// owned by exactly one shard, so the static partition cannot change any
// shard's event order or any float's operation order.
func (f *Fleet) advanceTo(t sim.Time) {
	if f.pool != nil {
		f.pool.runEpoch(t)
	} else {
		f.epochShards(0, len(f.shards), t)
	}
	f.now = t
	f.epochs++
}

// controlPlane is the sequential cross-device step at an epoch boundary:
// advance migrations, place queued tenants, take new arrivals, start new
// migrations, and publish metrics — in that fixed order, so the run is
// deterministic. (The per-device load refresh happens in the parallel
// phase, before the barrier: see epochShards.)
func (f *Fleet) controlPlane(now sim.Time) {
	f.stepMigrations(now)
	if f.cfg.Lifetime > 0 {
		f.stepDepartures(now)
	}
	// Tier moves go before the admission queue retries: a slot a departure
	// just freed can host a promote before a queued arrival claims it —
	// otherwise an oversubscribed rack starves the tier policy forever.
	if f.tiered() && now >= f.cfg.MigrateAfter {
		f.stepTiers(now)
	}

	// Queued tenants retry before new arrivals (FIFO fairness).
	remaining := f.queue[:0]
	for _, id := range f.queue {
		if !f.tryPlace(f.tenants[id], now) {
			remaining = append(remaining, id)
		}
	}
	f.queue = remaining

	for f.nextArr < len(f.arrivals) && f.arrivals[f.nextArr] <= now {
		tn := f.tenants[f.nextArr]
		f.nextArr++
		if f.tryPlace(tn, now) {
			continue
		}
		if len(f.queue) < f.cfg.QueueLimit {
			f.queue = append(f.queue, tn.ID)
		} else {
			tn.State = StateRejected
			f.rejected++
		}
	}

	if f.cfg.Migration && now >= f.cfg.MigrateAfter {
		f.maybeMigrate(now)
	}
	if f.metrics != nil {
		f.publishMetrics(now)
	}
}

// epochShards is the parallel phase of one epoch for shards [lo, hi):
// advance each shard's engine to the boundary t, then refresh its load
// signals — device utilization over the epoch and each resident tenant's
// byte delta (the migration victim signal). Every field it writes is
// owned by the shard, so the static worker partition makes it race-free
// and the per-shard float sequences identical at any worker count.
func (f *Fleet) epochShards(lo, hi int, t sim.Time) {
	for i := lo; i < hi; i++ {
		sh := f.shards[i]
		sh.eng.RunUntil(t)
		total := sh.plat.TotalBytes()
		denom := sh.peakBandwidth() * float64(f.cfg.Quantum) / 1e9
		sh.epochUtil = utilOver(total-sh.lastBytes, denom)
		sh.utilSum += sh.epochUtil
		sh.lastBytes = total
		for _, tn := range sh.resident {
			if tn.vssd != nil {
				cur := tn.vssd.TotalBytesMoved()
				tn.epochBytes = cur - tn.lastBytes
				tn.lastBytes = cur
			}
		}
	}
}

// utilOver guards the utilization ratio against a degenerate denominator:
// a zero (or NaN/Inf-poisoned) peak-bandwidth × time product would make
// the ratio ±Inf or NaN and poison every downstream consumer — the
// migration hot/cool ordering, the min/max spread, the bandwidth gauge —
// so such a device reads as idle instead.
func utilOver(deltaBytes int64, denom float64) float64 {
	if !(denom > 0) || math.IsInf(denom, 1) {
		return 0
	}
	return float64(deltaBytes) / denom
}

// tryPlace asks the placement policy for a device with a free slot.
func (f *Fleet) tryPlace(tn *Tenant, now sim.Time) bool {
	dev, ok := f.place(tn)
	if !ok {
		return false
	}
	sh := f.shards[dev]
	sh.slotsUsed++
	tn.Device = dev
	tn.State = StateRunning
	tn.placedAt = now
	// Session length and recorder are drawn/created only when the cohort
	// features are on, so legacy configs take zero extra RNG draws.
	if f.cfg.Lifetime > 0 {
		tn.departAt = now + tn.rng.ExpDuration(f.cfg.Lifetime)
	}
	if f.cfg.TypeModel != nil && tn.rec == nil {
		tn.rec = trace.NewRecorder(cluster.WindowSize)
	}
	tn.vssd = sh.addTenantVSSD(tn, f.cfg)
	tn.lastBytes = 0
	tn.gen = workloadGenerator(sh, tn)
	tn.gen.Start()
	sh.resident = append(sh.resident, tn)
	f.placed++
	return true
}

// workloadGenerator binds the tenant's profile and private RNG stream to
// its current vSSD. The stream object survives migration (the stopped
// source generator never draws again), so a tenant's access sequence is
// one continuous deterministic stream across devices.
func workloadGenerator(sh *Shard, tn *Tenant) *workload.Generator {
	g := workload.NewGenerator(sh.eng, tn.vssd, workload.ByName(tn.Workload), tn.rng)
	if tn.rec != nil {
		g.Record(tn.rec)
	}
	return g
}

// stepDepartures retires tenants whose sessions ended: a running tenant
// past its departure time stops generating (StateLeaving) and, once its
// queue and inflight are empty, releases its slot and trims its mapping —
// the same drain discipline migration uses, so a departure never abandons
// in-flight I/O. Migrating tenants defer their departure until after
// cutover (pickVictim only takes StateRunning, so a leaving tenant is
// never chosen as a migration victim).
func (f *Fleet) stepDepartures(now sim.Time) {
	for _, sh := range f.shards {
		for i := 0; i < len(sh.resident); i++ {
			tn := sh.resident[i]
			switch tn.State {
			case StateRunning:
				if tn.departAt > 0 && now >= tn.departAt {
					tn.State = StateLeaving
					tn.gen.Stop()
				}
			case StateLeaving:
				if tn.vssd.QueueLen() == 0 && tn.vssd.Inflight() == 0 {
					f.depart(sh, tn, i)
					i--
				}
			}
		}
	}
}

// depart finalizes one drained departure: trim the mapping so its blocks
// become GC-reclaimable, free the admission slot, and drop the tenant
// from the shard's resident set.
func (f *Fleet) depart(sh *Shard, tn *Tenant, i int) {
	st := tn.vssd.Tenant()
	for lpn := 0; lpn < st.LogicalPages(); lpn++ {
		st.Trim(lpn)
	}
	sh.slotsUsed--
	sh.resident = append(sh.resident[:i], sh.resident[i+1:]...)
	tn.State = StateDeparted
	tn.Device = -1
	tn.vssd = nil
	tn.gen = nil
	f.departed++
}

// Collect assembles the final Stats roll-up. It can be called after Run
// (or mid-run from the control-plane thread).
func (f *Fleet) Collect() Stats {
	s := Stats{
		Devices:             len(f.shards),
		Epochs:              f.epochs,
		Arrived:             f.nextArr,
		Placed:              f.placed,
		Queued:              len(f.queue),
		Rejected:            f.rejected,
		MigrationsStarted:   f.migStarted,
		MigrationsCompleted: f.migDone,
		MigrationsInFlight:  f.migStarted - f.migDone,
		Downtime:            f.migDowntime,
		Departed:            f.departed,
	}
	for _, tn := range f.tenants[:f.nextArr] {
		switch tn.State {
		case StateRunning, StateLeaving:
			// A leaving tenant still holds its slot until drained.
			s.Running++
		case StateDraining, StateCopying:
			s.Migrating++
		}
	}
	if f.cfg.TypeModel != nil {
		s.TypeCounts = f.classifyTenants()
	}
	s.PerDevice = make([]DeviceStats, len(f.shards))
	if f.pool != nil {
		f.pool.runCollect(s.PerDevice)
	} else {
		f.collectShards(0, len(f.shards), s.PerDevice)
	}
	// The cross-device merge stays sequential in shard-id order (and the
	// sums are integers), so the roll-up is byte-identical at any worker
	// count.
	var hostBytes int64
	for i := range s.PerDevice {
		hostBytes += s.PerDevice[i].BytesMoved
		s.Completed += s.PerDevice[i].Completed
	}
	if f.now > 0 {
		secs := float64(f.now) / 1e9
		s.AggBandwidthMBps = float64(hostBytes) / secs / 1e6
		// Hybrid racks sum per-shard peaks; the homogeneous formula stays
		// the single multiply it always was, keeping its float operation
		// order (and so the tier-off byte identity) untouched.
		var peak float64
		if f.tiered() {
			for _, sh := range f.shards {
				peak += sh.peakBandwidth()
			}
		} else {
			peak = f.shards[0].peakBandwidth() * float64(len(f.shards))
		}
		s.AvgUtil = utilOver(hostBytes, peak*secs)
	}
	if f.tiered() {
		f.collectTiers(&s)
	}
	s.MinUtil, s.MaxUtil = 1e18, -1e18
	for _, ds := range s.PerDevice {
		if ds.MeanUtil < s.MinUtil {
			s.MinUtil = ds.MeanUtil
		}
		if ds.MeanUtil > s.MaxUtil {
			s.MaxUtil = ds.MeanUtil
		}
	}
	if len(s.PerDevice) == 0 {
		s.MinUtil, s.MaxUtil = 0, 0
	}
	return s
}

// collectShards fills the per-device roll-up for shards [lo, hi): the
// embarrassingly parallel half of Collect, fanned over the worker pool.
// Each entry is written by exactly one worker; the cross-device merge in
// Collect stays sequential in shard-id order.
func (f *Fleet) collectShards(lo, hi int, per []DeviceStats) {
	for i := lo; i < hi; i++ {
		sh := f.shards[i]
		ds := DeviceStats{
			Device:  i,
			Tenants: sh.slotsUsed,
		}
		for _, v := range sh.plat.VSSDs() {
			ds.BytesMoved += v.TotalBytesMoved()
			ds.Completed += v.Completed()
		}
		if f.epochs > 0 {
			ds.MeanUtil = sh.utilSum / float64(f.epochs)
		}
		per[i] = ds
	}
}

// classifyTenants runs every traced tenant's recent window through the
// type model and tallies the resulting cluster labels (sorted by label
// for deterministic rendering). Tenants with fewer than 100 recorded
// requests are skipped — the same floor core.FleetIO.retype uses.
func (f *Fleet) classifyTenants() []TypeCount {
	counts := map[string]int{}
	for _, tn := range f.tenants[:f.nextArr] {
		if tn.rec == nil || tn.rec.Len() < 100 {
			continue
		}
		// Classify against the geometry snapshotted at the tenant's last
		// placement (identical to the rack geometry on homogeneous fleets;
		// the tenant's own class geometry on hybrid ones).
		c, known := f.cfg.TypeModel.ClassifyTrace(tn.rec.Records(), tn.pageSize, tn.logicalPages)
		counts[f.cfg.TypeModel.Label(c, known)]++
	}
	out := make([]TypeCount, 0, len(counts))
	for label, n := range counts {
		out = append(out, TypeCount{Label: label, Count: n})
	}
	sortTypeCounts(out)
	return out
}

// Shard is one device: a full single-SSD simulation owned by the fleet.
type Shard struct {
	id   int
	eng  *sim.Engine
	plat *vssd.Platform

	runner *core.Runner
	rng    *sim.RNG

	// tier is the device-class index (always 0 on homogeneous racks); fc
	// the class geometry the shard was built with.
	tier int
	fc   flash.Config
	// fio is the shard's deployed agent stack under TierLearned (nil
	// otherwise): per-vSSD PPO agents with the placement head, training
	// online. The control plane reads tier hints from it at epoch
	// barriers.
	fio *core.FleetIO

	// slotsUsed counts occupied admission slots (running tenants plus
	// reserved migration destinations).
	slotsUsed int
	resident  []*Tenant

	// Epoch-hot fields, written by the shard's owning worker every epoch
	// (epochShards). The pads keep the group on its own cache line, away
	// from the control-plane-written fields above: shards are separately
	// heap-allocated, so this is what prevents a worker's per-epoch
	// stores from contending with anything else in the struct.
	_         [cacheLine]byte
	lastBytes int64
	epochUtil float64
	utilSum   float64
	_         [cacheLine - 24]byte
}

// newShard builds one device shard on its own engine, with the class
// geometry fc (== cfg.Flash on homogeneous racks). Under TierLearned the
// shard's decision runner deploys the FleetIO agent stack instead of the
// static placeholder policy.
func newShard(id int, cfg Config, fc flash.Config, tier int, rng *sim.RNG) *Shard {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash = fc
	plat := vssd.NewPlatform(eng, pc)
	sh := &Shard{id: id, eng: eng, plat: plat, rng: rng, tier: tier, fc: fc}
	var pol core.Policy = core.StaticPolicy{PolicyName: "fleet-device"}
	if len(cfg.Classes) > 0 && cfg.TierPolicy == TierLearned {
		// The shard RNG is otherwise never drawn from, so seeding the agent
		// stack off it costs the non-learned paths nothing.
		sh.fio = core.NewFleetIO(plat, core.FleetIOConfig{
			Train:         true,
			Seed:          rng.Int63(),
			PlacementHead: true,
			TierOccState:  true,
		})
		pol = sh.fio
	}
	sh.runner = &core.Runner{
		Plat:   plat,
		Policy: pol,
		Window: cfg.Window,
	}
	return sh
}

// ID returns the shard's device index.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private engine.
func (s *Shard) Engine() *sim.Engine { return s.eng }

// Platform returns the shard's device platform.
func (s *Shard) Platform() *vssd.Platform { return s.plat }

// EpochUtil returns the device utilization over the last epoch.
func (s *Shard) EpochUtil() float64 { return s.epochUtil }

// SlotsUsed returns the occupied admission slots.
func (s *Shard) SlotsUsed() int { return s.slotsUsed }

// peakBandwidth is the device's aggregate channel bandwidth in bytes/s.
func (s *Shard) peakBandwidth() float64 {
	cfg := s.plat.FlashConfig()
	return cfg.ChannelBandwidth() * float64(cfg.Channels)
}

// slotLogicalPagesFor is one admission slot's logical capacity on a
// device with geometry fc: the non-overprovisioned space divided by the
// slot count, with one slot of headroom so migration copies and dead
// pre-trim data cannot wedge GC. On a hybrid rack a fast-tier slot is
// smaller than a dense-tier slot — a promote clamps its copy to the
// destination's capacity, like any migration.
func slotLogicalPagesFor(fc flash.Config, slotsPerDevice int) int {
	total := fc.TotalBlocks() * fc.PagesPerBlock
	return int(float64(total) * 0.8 / float64(slotsPerDevice+1))
}

// slotLogicalPages is slotLogicalPagesFor on the homogeneous geometry.
func slotLogicalPages(cfg Config) int {
	return slotLogicalPagesFor(cfg.Flash, cfg.SlotsPerDevice)
}

// addTenantVSSD creates the tenant's vSSD on this shard (software-isolated
// across all channels — fleet admission slots, not channel partitions, are
// the capacity unit) and best-effort prefills it. Prefill maps pages
// directly, with no simulated I/O, exactly like the single-device harness;
// migrated tenants skip it because the copy writes are their prefill.
func (s *Shard) addTenantVSSD(tn *Tenant, cfg Config) *vssd.VSSD {
	prof := workload.ByName(tn.Workload)
	chans := make([]int, s.fc.Channels)
	for i := range chans {
		chans[i] = i
	}
	v := s.plat.AddVSSD(vssd.Config{
		Name:             fmt.Sprintf("t%d-%s-m%d", tn.ID, tn.Workload, tn.Migrations),
		Isolation:        vssd.SoftwareIsolated,
		Channels:         chans,
		LogicalPages:     slotLogicalPagesFor(s.fc, cfg.SlotsPerDevice),
		MaxInflightPages: prof.MaxInflightPages,
	})
	tn.pageSize = s.fc.PageSize
	tn.logicalPages = int64(v.Tenant().LogicalPages())
	if len(cfg.Classes) > 0 {
		if cfg.TierSLO > 0 && tn.class == workload.Latency {
			v.SetSLO(cfg.TierSLO)
		}
		if s.fio != nil {
			// The platform only ever appends vSSDs, so syncing here keeps
			// agent i == vSSD i before the next decision window fires.
			s.fio.SyncAgents()
			// α follows the workload class, mirroring the paper's per-type
			// reward: latency-class tenants carry the isolation term (and
			// emit's SLO-escalation guardrail), bandwidth-class tenants get
			// α=0, which also caps their priority at medium.
			alpha := 0.0
			if tn.class == workload.Latency {
				alpha = core.AlphaLC1
			}
			s.fio.SetAlpha(v.ID(), alpha)
		}
	}
	if tn.Migrations == 0 {
		prefill(v, cfg.PrefillFrac, tn.rng)
	}
	return v
}

// prefill maps frac of the vSSD's logical space without simulated I/O.
// Unlike ftl.Tenant.Prefill it never drains the engine (the shard may
// already be mid-run with live generators), so it stops early instead of
// stalling when allocation fails.
func prefill(v *vssd.VSSD, frac float64, rng *sim.RNG) {
	t := v.Tenant()
	n := int(float64(t.LogicalPages()) * frac)
	for lpn := 0; lpn < n; lpn++ {
		if _, ok := t.AllocatePage(lpn, false); !ok {
			return
		}
	}
	if n <= 0 {
		return
	}
	for i := 0; i < n/5; i++ {
		if _, ok := t.AllocatePage(rng.Intn(n), false); !ok {
			return
		}
	}
}
