package fleet

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// cacheLine is the padding unit for the barrier's hot words and per-worker
// slots. 64 bytes is the line size of every amd64/arm64 part we run on;
// slots pad to two lines because adjacent-line prefetchers pull pairs.
const cacheLine = 64

// Worker tasks. The control plane writes task before a release; the
// release's atomic store publishes it to every worker.
const (
	// taskAdvance: run owned shards to target and refresh their load.
	taskAdvance = iota
	// taskCollect: fill the per-device Stats roll-up for owned shards.
	taskCollect
	// taskStop: exit the worker loop (pool shutdown).
	taskStop
)

// spinBudget is how many release/gather checks a waiter burns before
// parking on the condvar. It applies only when the host has more CPUs than
// workers — when spinning cannot steal cycles from the workers being
// waited on. Oversubscribed hosts (including GOMAXPROCS <= workers) park
// immediately: there, a spinning waiter occupies the very core a straggler
// needs.
const spinBudget = 4096

// workerSlot is one worker's per-epoch state: its static shard range and
// its barrier-arrival stamp. Padded to a cache-line pair so one worker's
// epoch writes never invalidate a line another worker is reading.
type workerSlot struct {
	lo, hi   int   // static shard range [lo, hi), fixed for the whole run
	arriveNS int64 // barrier-arrival stamp (metrics runs only)
	_        [2*cacheLine - 24]byte
}

// shardWorkers is the persistent shard-worker runtime behind Fleet.Run:
// one long-lived goroutine per worker, created once at run start, each
// owning a static contiguous slice of shards for the whole run (cache
// locality — a shard's engine state never migrates between workers), all
// synchronized with the control plane by a low-overhead epoch barrier.
//
// The barrier is sense-reversing with a monotonic sequence number as the
// sense word: workers wait for seq to pass the value they last saw, so
// the same word flips meaning every epoch and needs no reset phase. The
// release direction (control plane -> workers) is the seq bump; the
// gather direction (workers -> control plane) is a padded countdown.
// Both directions spin with bounded backoff and fall back to a condvar
// park for oversubscribed hosts, where spinning would steal the cycles
// the stragglers need.
type shardWorkers struct {
	f   *Fleet
	n   int
	pin bool

	// seq is the release word and the barrier's sense: bumped once per
	// epoch, it both publishes the epoch inputs below (the atomic store
	// is the happens-before edge) and releases every waiting worker.
	seq atomic.Uint64
	_   [cacheLine - 8]byte
	// pending is the gather word: workers not yet arrived this epoch.
	pending atomic.Int64
	_       [cacheLine - 8]byte

	// Epoch inputs, written by the control plane strictly before the seq
	// bump and read by workers strictly after observing it.
	task    int
	target  sim.Time
	collect []DeviceStats
	stamp   bool // stamp arrival times this epoch (metrics enabled)

	spin int       // release/gather spin budget (0 on oversubscribed hosts)
	base time.Time // arrival-stamp epoch reference

	// Parking fallback. A waiter that exhausts its spin budget parks on
	// the condvar; the signalling side takes the lock only to check for
	// sleepers, so the uncontended (pure-spin) epoch never syscalls.
	mu       sync.Mutex
	cond     *sync.Cond
	sleepers int

	cmu       sync.Mutex
	ccond     *sync.Cond
	ctlParked bool

	wg    sync.WaitGroup
	slots []workerSlot
}

// partitionShards splits d shards over n workers into contiguous,
// deterministic, near-equal ranges: worker w owns [w*q+min(w,r), ...+q+1)
// where q, r = d/n, d%n. Static for the whole run — no work stealing —
// so each shard's cache-hot engine state stays with one worker.
func partitionShards(d, n int) [][2]int {
	parts := make([][2]int, n)
	q, r := d/n, d%n
	lo := 0
	for w := range parts {
		hi := lo + q
		if w < r {
			hi++
		}
		parts[w] = [2]int{lo, hi}
		lo = hi
	}
	return parts
}

// newShardWorkers starts the pool: n goroutines, each bound to its static
// shard range, parked at the barrier until the first release.
func newShardWorkers(f *Fleet, n int, pin bool) *shardWorkers {
	p := &shardWorkers{f: f, n: n, pin: pin, base: time.Now()}
	p.cond = sync.NewCond(&p.mu)
	p.ccond = sync.NewCond(&p.cmu)
	if runtime.GOMAXPROCS(0) > n {
		p.spin = spinBudget
	}
	p.slots = make([]workerSlot, n)
	for w, pt := range partitionShards(len(f.shards), n) {
		p.slots[w].lo, p.slots[w].hi = pt[0], pt[1]
	}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// worker is one pool goroutine. With pin set it locks itself to its OS
// thread for the whole run, so the Go scheduler cannot migrate it and the
// OS scheduler sees one long-running thread per worker to keep core-affine.
// The pprof label makes per-worker time visible on the /debug/pprof
// endpoints (profile and goroutine dumps group by shard-worker-N).
func (p *shardWorkers) worker(w int) {
	defer p.wg.Done()
	if p.pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	labels := pprof.Labels("shard-worker", fmt.Sprintf("shard-worker-%d", w))
	pprof.Do(context.Background(), labels, func(context.Context) {
		p.loop(w)
	})
}

// loop waits at the barrier, runs the released task over the worker's
// static shard range, and arrives. Everything a task touches is owned by
// the worker's shards (or a disjoint slice index), so task bodies run
// lock-free.
func (p *shardWorkers) loop(w int) {
	s := &p.slots[w]
	for seen := uint64(1); ; seen++ {
		p.awaitSeq(seen)
		switch p.task {
		case taskAdvance:
			p.f.epochShards(s.lo, s.hi, p.target)
		case taskCollect:
			p.f.collectShards(s.lo, s.hi, p.collect)
		case taskStop:
			return
		}
		if p.stamp {
			s.arriveNS = int64(time.Since(p.base))
		}
		p.arrive()
	}
}

// awaitSeq blocks until the release word reaches want: bounded spin with
// periodic yields, then a condvar park re-checked under the lock (no lost
// wakeup: release broadcasts only after taking the same lock).
func (p *shardWorkers) awaitSeq(want uint64) {
	for i := 0; i < p.spin; i++ {
		if p.seq.Load() >= want {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	if p.seq.Load() >= want {
		return
	}
	p.mu.Lock()
	for p.seq.Load() < want {
		p.sleepers++
		p.cond.Wait()
		p.sleepers--
	}
	p.mu.Unlock()
}

// arrive signals the gather side. The last worker to arrive wakes the
// control plane iff it parked; a stale signal from a straggling previous
// epoch is harmless because the control plane re-checks pending.
func (p *shardWorkers) arrive() {
	if p.pending.Add(-1) == 0 {
		p.cmu.Lock()
		if p.ctlParked {
			p.ccond.Signal()
		}
		p.cmu.Unlock()
	}
}

// release publishes the epoch inputs and opens the barrier. The pending
// reset and the plain-field writes are ordered before the seq bump, whose
// atomic store is the happens-before edge workers synchronize on.
func (p *shardWorkers) release(task int, target sim.Time) {
	p.task = task
	p.target = target
	p.stamp = task == taskAdvance && p.f.metrics != nil
	p.pending.Store(int64(p.n))
	p.seq.Add(1)
	p.mu.Lock()
	if p.sleepers > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// await blocks the control plane until every worker arrived: same bounded
// spin + park discipline as awaitSeq, mirrored.
func (p *shardWorkers) await() {
	for i := 0; i < p.spin; i++ {
		if p.pending.Load() == 0 {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	p.cmu.Lock()
	p.ctlParked = true
	for p.pending.Load() != 0 {
		p.ccond.Wait()
	}
	p.ctlParked = false
	p.cmu.Unlock()
}

// runEpoch advances every shard to target through the pool and records
// barrier health when metrics are on: total control-plane wait time and
// the straggler gap (last minus first worker arrival), the two numbers
// that show epoch imbalance on /metrics.
func (p *shardWorkers) runEpoch(target sim.Time) {
	p.release(taskAdvance, target)
	m := p.f.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	p.await()
	if m != nil {
		m.barrierWait.Add(float64(time.Since(t0)))
		first, last := p.slots[0].arriveNS, p.slots[0].arriveNS
		for i := 1; i < p.n; i++ {
			ns := p.slots[i].arriveNS
			if ns < first {
				first = ns
			}
			if ns > last {
				last = ns
			}
		}
		m.straggler.Set(float64(last - first))
	}
}

// runCollect fans the per-device Stats fill out over the pool. dst is
// indexed by shard id, so workers write disjoint entries.
func (p *shardWorkers) runCollect(dst []DeviceStats) {
	p.collect = dst
	p.release(taskCollect, 0)
	p.await()
	p.collect = nil
}

// stop releases a final taskStop epoch and joins every worker. After stop
// returns no pool goroutine survives.
func (p *shardWorkers) stop() {
	p.release(taskStop, 0)
	p.wg.Wait()
}
