package fleet

import "fmt"

// PlacementKind selects the tenant-to-device assignment baseline.
type PlacementKind uint8

// Placement baselines. All of them respect fleet admission: a device with
// no free slot is never chosen, and when no device has room the tenant is
// queued or rejected by the control plane.
const (
	// PlaceLeastLoaded picks the device with the fewest occupied slots,
	// breaking ties by last-epoch utilization, then by device id.
	PlaceLeastLoaded PlacementKind = iota
	// PlaceRoundRobin cycles through devices, skipping full ones.
	PlaceRoundRobin
	// PlaceHash maps the tenant id to a device by a seeded hash, probing
	// linearly past full devices.
	PlaceHash
)

func (k PlacementKind) String() string {
	switch k {
	case PlaceLeastLoaded:
		return "least-loaded"
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceHash:
		return "hash"
	default:
		return fmt.Sprintf("PlacementKind(%d)", uint8(k))
	}
}

// ParsePlacement maps a flag value to a PlacementKind.
func ParsePlacement(s string) (PlacementKind, error) {
	switch s {
	case "least", "least-loaded", "ll":
		return PlaceLeastLoaded, nil
	case "rr", "round-robin", "roundrobin":
		return PlaceRoundRobin, nil
	case "hash":
		return PlaceHash, nil
	}
	return 0, fmt.Errorf("fleet: unknown placement %q (want least-loaded, round-robin, or hash)", s)
}

// Placements lists every baseline, in comparison order.
func Placements() []PlacementKind {
	return []PlacementKind{PlaceRoundRobin, PlaceHash, PlaceLeastLoaded}
}

// place picks a device with a free slot for the tenant, or reports that
// the rack is full. It runs on the control-plane thread at an epoch
// boundary, so shard load fields are stable. Hybrid racks route through
// the tier-aware path instead (Config.Placement is ignored there).
func (f *Fleet) place(tn *Tenant) (int, bool) {
	if f.tiered() {
		return f.placeTiered(tn)
	}
	n := len(f.shards)
	switch f.cfg.Placement {
	case PlaceRoundRobin:
		for probe := 0; probe < n; probe++ {
			dev := (f.rrNext + probe) % n
			if f.hasSlot(dev) {
				f.rrNext = (dev + 1) % n
				return dev, true
			}
		}
		return 0, false
	case PlaceHash:
		h := hash64(uint64(tn.ID), uint64(f.cfg.Seed))
		for probe := 0; probe < n; probe++ {
			dev := int((h + uint64(probe)) % uint64(n))
			if f.hasSlot(dev) {
				return dev, true
			}
		}
		return 0, false
	default: // PlaceLeastLoaded
		best, ok := -1, false
		for dev := 0; dev < n; dev++ {
			if !f.hasSlot(dev) {
				continue
			}
			if !ok || f.lessLoaded(dev, best) {
				best, ok = dev, true
			}
		}
		return best, ok
	}
}

// hasSlot reports whether the device has a free admission slot.
func (f *Fleet) hasSlot(dev int) bool {
	return f.shards[dev].slotsUsed < f.cfg.SlotsPerDevice
}

// lessLoaded orders devices for least-loaded placement: fewest occupied
// slots, then lowest last-epoch utilization, then lowest id (the id
// tie-break keeps the choice deterministic).
func (f *Fleet) lessLoaded(a, b int) bool {
	sa, sb := f.shards[a], f.shards[b]
	if sa.slotsUsed != sb.slotsUsed {
		return sa.slotsUsed < sb.slotsUsed
	}
	if sa.epochUtil != sb.epochUtil {
		return sa.epochUtil < sb.epochUtil
	}
	return a < b
}

// hash64 is a SplitMix64-style scramble of (x, salt).
func hash64(x, salt uint64) uint64 {
	z := x + (salt+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
