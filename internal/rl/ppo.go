// Package rl implements Proximal Policy Optimization (PPO-clip) with
// generalized advantage estimation for FleetIO's agents (§3.8: PPO with
// γ=0.9, lr=1e-4, hidden [50,50], batch 32). The policy is multi-discrete:
// one categorical head per action dimension (Harvest, Make_Harvestable,
// Set_Priority), sampled independently with a joint log-probability.
package rl

import (
	"math"

	"repro/internal/nn"
	"repro/internal/sim"
)

// Config holds PPO hyperparameters; DefaultConfig mirrors Table 3.
type Config struct {
	Gamma       float64 // discount factor
	Lambda      float64 // GAE smoothing
	ClipEps     float64 // PPO clip range
	LR          float64 // Adam learning rate
	Epochs      int     // optimization passes per Train call
	MiniBatch   int     // minibatch size
	EntropyCoef float64
	ValueCoef   float64
}

// DefaultConfig returns the paper's hyperparameters (Table 3) with
// standard values for the knobs the paper does not report.
func DefaultConfig() Config {
	return Config{
		Gamma:       0.9,
		Lambda:      0.95,
		ClipEps:     0.2,
		LR:          1e-4,
		Epochs:      4,
		MiniBatch:   32,
		EntropyCoef: 0.01,
		ValueCoef:   0.5,
	}
}

// Transition is one (state, action, reward) step collected from the
// environment.
type Transition struct {
	State   []float64
	Actions []int
	LogProb float64
	Value   float64
	Reward  float64
	Done    bool
}

// Buffer accumulates transitions between Train calls.
type Buffer struct {
	steps []Transition
}

// Add appends a transition.
func (b *Buffer) Add(t Transition) { b.steps = append(b.steps, t) }

// Len returns the number of buffered transitions.
func (b *Buffer) Len() int { return len(b.steps) }

// Reset clears the buffer.
func (b *Buffer) Reset() { b.steps = b.steps[:0] }

// Steps exposes the buffered transitions (not a copy).
func (b *Buffer) Steps() []Transition { return b.steps }

// Append copies every transition of other into b, leaving other untouched.
func (b *Buffer) Append(other *Buffer) {
	b.steps = append(b.steps, other.steps...)
}

// MarkDone marks the final buffered transition as episode-terminal so GAE
// does not bootstrap across the boundary when buffers are merged.
func (b *Buffer) MarkDone() {
	if n := len(b.steps); n > 0 {
		b.steps[n-1].Done = true
	}
}

// MeanReward returns the average per-transition reward (0 when empty) —
// the episode score the trainer's eval gate compares.
func (b *Buffer) MeanReward() float64 {
	if len(b.steps) == 0 {
		return 0
	}
	sum := 0.0
	for i := range b.steps {
		sum += b.steps[i].Reward
	}
	return sum / float64(len(b.steps))
}

// Merge concatenates rollout buffers (e.g. one per agent or per parallel
// episode) into a fresh buffer, in argument order so merged training data
// is deterministic regardless of collection scheduling.
func Merge(bufs ...*Buffer) *Buffer {
	out := &Buffer{}
	for _, b := range bufs {
		if b != nil {
			out.Append(b)
		}
	}
	return out
}

// TrainStats summarizes one Train call.
type TrainStats struct {
	Steps       int
	PolicyLoss  float64
	ValueLoss   float64
	Entropy     float64
	MeanAdv     float64
	MeanReturn  float64
	ClipVisited float64 // fraction of samples with zeroed (clipped) gradient
	ApproxKL    float64 // mean(old logπ − new logπ) over optimized samples
}

// PPO is the learner: a policy/value network plus its optimizer.
type PPO struct {
	Net *nn.ActorCritic
	cfg Config
	opt *nn.Adam
	rng *sim.RNG

	// Reusable per-head scratch (softmax probabilities, logit gradients,
	// greedy actions), lazily sized from the network's head widths so the
	// per-window inference and the training inner loop allocate nothing
	// in steady state. Scratch is consumed before the next call, mirroring
	// the Forward cache contract in internal/nn.
	probs   [][]float64
	dLogits [][]float64
	greedy  []int
}

// scratchFor sizes the per-head scratch to match the forward logits.
func (p *PPO) scratchFor(logits [][]float64) {
	if len(p.probs) == len(logits) {
		return
	}
	p.probs = make([][]float64, len(logits))
	p.dLogits = make([][]float64, len(logits))
	for k, ls := range logits {
		p.probs[k] = make([]float64, len(ls))
		p.dLogits[k] = make([]float64, len(ls))
	}
	p.greedy = make([]int, len(logits))
}

// New builds a PPO learner around the network.
func New(net *nn.ActorCritic, cfg Config, rng *sim.RNG) *PPO {
	return &PPO{Net: net, cfg: cfg, opt: nn.NewAdam(cfg.LR), rng: rng}
}

// Config returns the hyperparameters.
func (p *PPO) Config() Config { return p.cfg }

// Act samples one action per head and returns the joint log-probability
// and the value estimate. The returned actions slice is freshly allocated
// (transitions retain it across training).
func (p *PPO) Act(state []float64) (actions []int, logProb, value float64) {
	logits, v, _ := p.Net.Forward(state)
	p.scratchFor(logits)
	actions = make([]int, len(logits))
	logProb = 0
	for k, ls := range logits {
		probs := p.probs[k]
		nn.Softmax(ls, probs)
		a := nn.SampleCategorical(p.rng, probs)
		actions[k] = a
		logProb += math.Log(math.Max(probs[a], 1e-12))
	}
	return actions, logProb, v
}

// ActGreedy returns the argmax action per head (deployment mode). The
// returned slice is reused by the next ActGreedy call on this learner so
// the per-window inference is allocation-free; copy it to retain it.
func (p *PPO) ActGreedy(state []float64) []int {
	logits, _, _ := p.Net.Forward(state)
	p.scratchFor(logits)
	actions := p.greedy
	for k, ls := range logits {
		actions[k] = nn.Argmax(ls)
	}
	return actions
}

// ActGreedyEval returns the argmax action per head together with its joint
// log-probability under the stochastic policy and the value estimate, so
// greedy deployments can still record trainable transitions. The returned
// actions slice is freshly allocated.
func (p *PPO) ActGreedyEval(state []float64) (actions []int, logProb, value float64) {
	logits, v, _ := p.Net.Forward(state)
	p.scratchFor(logits)
	actions = make([]int, len(logits))
	for k, ls := range logits {
		a := nn.Argmax(ls)
		actions[k] = a
		probs := p.probs[k]
		nn.Softmax(ls, probs)
		logProb += math.Log(math.Max(probs[a], 1e-12))
	}
	return actions, logProb, v
}

// Value returns the critic's estimate for a state.
func (p *PPO) Value(state []float64) float64 {
	_, v, _ := p.Net.Forward(state)
	return v
}

// Train runs PPO on the buffered transitions. lastValue bootstraps the
// return of the final transition when the episode did not terminate. The
// buffer is consumed (reset) afterwards.
func (p *PPO) Train(buf *Buffer, lastValue float64) TrainStats {
	n := buf.Len()
	stats := TrainStats{Steps: n}
	if n == 0 {
		return stats
	}
	steps := buf.steps

	// GAE advantages and returns, computed backwards.
	adv := make([]float64, n)
	ret := make([]float64, n)
	next := lastValue
	gae := 0.0
	for i := n - 1; i >= 0; i-- {
		t := &steps[i]
		mask := 1.0
		if t.Done {
			mask = 0
		}
		delta := t.Reward + p.cfg.Gamma*next*mask - t.Value
		gae = delta + p.cfg.Gamma*p.cfg.Lambda*mask*gae
		adv[i] = gae
		ret[i] = adv[i] + t.Value
		next = t.Value
	}
	// Normalize advantages.
	mean, sd := meanStd(adv)
	for i := range adv {
		if sd > 1e-8 {
			adv[i] = (adv[i] - mean) / sd
		} else {
			adv[i] -= mean
		}
		stats.MeanReturn += ret[i]
	}
	stats.MeanAdv = mean
	stats.MeanReturn /= float64(n)

	mb := p.cfg.MiniBatch
	if mb <= 0 || mb > n {
		mb = n
	}
	var polLoss, valLoss, entSum, klSum float64
	var clipped, visited float64
	for epoch := 0; epoch < p.cfg.Epochs; epoch++ {
		order := p.rng.Perm(n)
		for start := 0; start < n; start += mb {
			end := start + mb
			if end > n {
				end = n
			}
			p.Net.ZeroGrad()
			for _, oi := range order[start:end] {
				t := &steps[oi]
				logits, v, cache := p.Net.Forward(t.State)
				p.scratchFor(logits)

				// New joint log-prob and per-head distributions.
				newLP := 0.0
				probs := p.probs
				for k, ls := range logits {
					nn.Softmax(ls, probs[k])
					newLP += math.Log(math.Max(probs[k][t.Actions[k]], 1e-12))
				}
				klSum += t.LogProb - newLP
				ratio := math.Exp(newLP - t.LogProb)
				a := adv[oi]
				unclipped := ratio * a
				lo, hi := 1-p.cfg.ClipEps, 1+p.cfg.ClipEps
				cr := math.Min(math.Max(ratio, lo), hi)
				clippedSurr := cr * a

				// d(policy loss)/d(new log-prob): -A*ratio when the
				// unclipped surrogate is active, 0 otherwise.
				var dLP float64
				if unclipped <= clippedSurr {
					dLP = -a * ratio
				} else {
					clipped++
				}
				visited++
				polLoss += -math.Min(unclipped, clippedSurr)

				dLogits := p.dLogits
				for k, pr := range probs {
					dl := dLogits[k]
					h := nn.Entropy(pr)
					entSum += h
					for j := range pr {
						// Policy gradient through the categorical head.
						onehot := 0.0
						if j == t.Actions[k] {
							onehot = 1
						}
						dl[j] = dLP * (onehot - pr[j])
						// Entropy bonus: loss -= c*H ⇒ grad += c * dH/dl.
						// dH/dl_j = -p_j (log p_j + H).
						dl[j] += p.cfg.EntropyCoef * pr[j] * (math.Log(math.Max(pr[j], 1e-12)) + h)
					}
				}
				vErr := v - ret[oi]
				valLoss += 0.5 * vErr * vErr
				p.Net.Backward(cache, dLogits, p.cfg.ValueCoef*vErr)
			}
			p.opt.Step(p.Net.Layers(), float64(end-start))
		}
	}
	total := float64(n * p.cfg.Epochs)
	stats.PolicyLoss = polLoss / total
	stats.ValueLoss = valLoss / total
	stats.Entropy = entSum / (total * float64(len(p.Net.Heads)))
	stats.ApproxKL = klSum / total
	if visited > 0 {
		stats.ClipVisited = clipped / visited
	}
	buf.Reset()
	return stats
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}
