// Package rl implements Proximal Policy Optimization (PPO-clip) with
// generalized advantage estimation for FleetIO's agents (§3.8: PPO with
// γ=0.9, lr=1e-4, hidden [50,50], batch 32). The policy is multi-discrete:
// one categorical head per action dimension (Harvest, Make_Harvestable,
// Set_Priority), sampled independently with a joint log-probability.
//
// Train runs each minibatch through one batched forward/backward pair and
// ActBatch serves many agents in one matrix pass; both are bit-identical
// to the per-sample path, which Config.ScalarKernels keeps selectable as
// the oracle (see docs/PERFORMANCE.md "Batched RL kernels").
package rl

import (
	"math"

	"repro/internal/nn"
	"repro/internal/sim"
)

// Config holds PPO hyperparameters; DefaultConfig mirrors Table 3.
type Config struct {
	Gamma       float64 // discount factor
	Lambda      float64 // GAE smoothing
	ClipEps     float64 // PPO clip range
	LR          float64 // Adam learning rate
	Epochs      int     // optimization passes per Train call
	MiniBatch   int     // minibatch size
	EntropyCoef float64
	ValueCoef   float64

	// ScalarKernels forces Train's per-sample scalar inner loop instead of
	// the batched nn kernels. The two paths are bit-identical by
	// construction (see internal/nn/batch.go); the flag exists so tests and
	// the CI gate can prove it on full runs, and as an escape hatch.
	ScalarKernels bool
}

// DefaultConfig returns the paper's hyperparameters (Table 3) with
// standard values for the knobs the paper does not report.
func DefaultConfig() Config {
	return Config{
		Gamma:       0.9,
		Lambda:      0.95,
		ClipEps:     0.2,
		LR:          1e-4,
		Epochs:      4,
		MiniBatch:   32,
		EntropyCoef: 0.01,
		ValueCoef:   0.5,
	}
}

// Transition is one (state, action, reward) step collected from the
// environment.
type Transition struct {
	State   []float64
	Actions []int
	LogProb float64
	Value   float64
	Reward  float64
	Done    bool
}

// Buffer accumulates transitions between Train calls.
type Buffer struct {
	steps []Transition
}

// Add appends a transition.
func (b *Buffer) Add(t Transition) { b.steps = append(b.steps, t) }

// Len returns the number of buffered transitions.
func (b *Buffer) Len() int { return len(b.steps) }

// Reset clears the buffer.
func (b *Buffer) Reset() { b.steps = b.steps[:0] }

// Steps exposes the buffered transitions (not a copy).
func (b *Buffer) Steps() []Transition { return b.steps }

// Append copies every transition of other into b, leaving other untouched.
func (b *Buffer) Append(other *Buffer) {
	b.steps = append(b.steps, other.steps...)
}

// MarkDone marks the final buffered transition as episode-terminal so GAE
// does not bootstrap across the boundary when buffers are merged.
func (b *Buffer) MarkDone() {
	if n := len(b.steps); n > 0 {
		b.steps[n-1].Done = true
	}
}

// MeanReward returns the average per-transition reward (0 when empty) —
// the episode score the trainer's eval gate compares.
func (b *Buffer) MeanReward() float64 {
	if len(b.steps) == 0 {
		return 0
	}
	sum := 0.0
	for i := range b.steps {
		sum += b.steps[i].Reward
	}
	return sum / float64(len(b.steps))
}

// Merge concatenates rollout buffers (e.g. one per agent or per parallel
// episode) into a fresh buffer, in argument order so merged training data
// is deterministic regardless of collection scheduling.
func Merge(bufs ...*Buffer) *Buffer {
	out := &Buffer{}
	for _, b := range bufs {
		if b != nil {
			out.Append(b)
		}
	}
	return out
}

// TrainStats summarizes one Train call.
type TrainStats struct {
	Steps       int
	PolicyLoss  float64
	ValueLoss   float64
	Entropy     float64
	MeanAdv     float64
	MeanReturn  float64
	ClipVisited float64 // fraction of samples with zeroed (clipped) gradient
	ApproxKL    float64 // mean(old logπ − new logπ) over optimized samples
}

// PPO is the learner: a policy/value network plus its optimizer.
type PPO struct {
	Net *nn.ActorCritic
	cfg Config
	opt *nn.Adam
	rng *sim.RNG

	// Reusable per-head scratch (softmax probabilities, logit gradients,
	// greedy actions), lazily sized from the network's head widths so the
	// per-window inference and the training inner loop allocate nothing
	// in steady state. Scratch is consumed before the next call, mirroring
	// the Forward cache contract in internal/nn.
	probs   [][]float64
	dLogits [][]float64
	greedy  []int

	// Batched scratch: row-major minibatch matrices for Train and the
	// ActBatch family, grown to the largest batch seen (trainCap) so steady
	// state allocates nothing. advS/retS/orderS persist the GAE buffers
	// across Train calls for the same reason.
	trainCap  int
	xsB       []float64
	probsB    [][]float64
	dLogitsB  [][]float64
	dValsB    []float64
	logProbsB []float64
	valsB     []float64
	actsB     [][]int
	actsBack  []int
	advS      []float64
	retS      []float64
	orderS    []int
}

// batchScratch sizes the batched minibatch scratch for b rows.
func (p *PPO) batchScratch(b int) {
	if b <= p.trainCap {
		return
	}
	heads := p.Net.Heads
	p.xsB = make([]float64, b*p.Net.L1.In)
	p.probsB = make([][]float64, len(heads))
	p.dLogitsB = make([][]float64, len(heads))
	for k, hd := range heads {
		p.probsB[k] = make([]float64, b*hd.Out)
		p.dLogitsB[k] = make([]float64, b*hd.Out)
	}
	p.dValsB = make([]float64, b)
	p.logProbsB = make([]float64, b)
	p.valsB = make([]float64, b)
	p.actsBack = make([]int, b*len(heads))
	p.actsB = make([][]int, b)
	for r := range p.actsB {
		p.actsB[r] = p.actsBack[r*len(heads) : (r+1)*len(heads)]
	}
	p.trainCap = b
}

// scratchFor sizes the per-head scratch to match the forward logits.
func (p *PPO) scratchFor(logits [][]float64) {
	if len(p.probs) == len(logits) {
		return
	}
	p.probs = make([][]float64, len(logits))
	p.dLogits = make([][]float64, len(logits))
	for k, ls := range logits {
		p.probs[k] = make([]float64, len(ls))
		p.dLogits[k] = make([]float64, len(ls))
	}
	p.greedy = make([]int, len(logits))
}

// New builds a PPO learner around the network.
func New(net *nn.ActorCritic, cfg Config, rng *sim.RNG) *PPO {
	return &PPO{Net: net, cfg: cfg, opt: nn.NewAdam(cfg.LR), rng: rng}
}

// Config returns the hyperparameters.
func (p *PPO) Config() Config { return p.cfg }

// Act samples one action per head and returns the joint log-probability
// and the value estimate. The returned actions slice is freshly allocated
// (transitions retain it across training).
func (p *PPO) Act(state []float64) (actions []int, logProb, value float64) {
	logits, v, _ := p.Net.Forward(state)
	p.scratchFor(logits)
	actions = make([]int, len(logits))
	logProb = 0
	for k, ls := range logits {
		probs := p.probs[k]
		nn.Softmax(ls, probs)
		a := nn.SampleCategorical(p.rng, probs)
		actions[k] = a
		logProb += math.Log(math.Max(probs[a], 1e-12))
	}
	return actions, logProb, v
}

// ActGreedy returns the argmax action per head (deployment mode). The
// returned slice is reused by the next ActGreedy call on this learner so
// the per-window inference is allocation-free; copy it to retain it.
func (p *PPO) ActGreedy(state []float64) []int {
	logits, _, _ := p.Net.Forward(state)
	p.scratchFor(logits)
	actions := p.greedy
	for k, ls := range logits {
		actions[k] = nn.Argmax(ls)
	}
	return actions
}

// ActGreedyEval returns the argmax action per head together with its joint
// log-probability under the stochastic policy and the value estimate, so
// greedy deployments can still record trainable transitions. The returned
// actions slice is freshly allocated.
func (p *PPO) ActGreedyEval(state []float64) (actions []int, logProb, value float64) {
	logits, v, _ := p.Net.Forward(state)
	p.scratchFor(logits)
	actions = make([]int, len(logits))
	for k, ls := range logits {
		a := nn.Argmax(ls)
		actions[k] = a
		probs := p.probs[k]
		nn.Softmax(ls, probs)
		logProb += math.Log(math.Max(probs[a], 1e-12))
	}
	return actions, logProb, v
}

// Value returns the critic's estimate for a state.
func (p *PPO) Value(state []float64) float64 {
	_, v, _ := p.Net.Forward(state)
	return v
}

// ActBatch is Act over b states stacked row-major in states (b×In). It is
// bit-identical to calling Act on each row in ascending order: the forward
// pass is batched, and the categorical sampling consumes the shared RNG in
// the same (row, head) order the scalar loop would. Each actions row is
// freshly allocated (transitions retain them); logProbs and values are
// scratch reused by the next batched call.
func (p *PPO) ActBatch(states []float64, b int) (actions [][]int, logProbs, values []float64) {
	p.batchScratch(b)
	logits, vals, _ := p.Net.ForwardBatch(states, b)
	actions = make([][]int, b)
	for r := 0; r < b; r++ {
		acts := make([]int, len(logits))
		lp := 0.0
		for k, ls := range logits {
			w := p.Net.Heads[k].Out
			pr := p.probsB[k][r*w : (r+1)*w]
			nn.Softmax(ls[r*w:(r+1)*w], pr)
			a := nn.SampleCategorical(p.rng, pr)
			acts[k] = a
			lp += math.Log(math.Max(pr[a], 1e-12))
		}
		actions[r] = acts
		p.logProbsB[r] = lp
	}
	copy(p.valsB[:b], vals)
	return actions, p.logProbsB[:b], p.valsB[:b]
}

// ActGreedyBatch is ActGreedy over b stacked states. The returned rows are
// views into scratch reused by the next batched call.
func (p *PPO) ActGreedyBatch(states []float64, b int) [][]int {
	p.batchScratch(b)
	logits, _, _ := p.Net.ForwardBatch(states, b)
	for r := 0; r < b; r++ {
		for k, ls := range logits {
			w := p.Net.Heads[k].Out
			p.actsB[r][k] = nn.Argmax(ls[r*w : (r+1)*w])
		}
	}
	return p.actsB[:b]
}

// ActGreedyEvalBatch is ActGreedyEval over b stacked states, bit-identical
// to the scalar calls in row order. Actions rows are freshly allocated;
// logProbs and values are reused scratch.
func (p *PPO) ActGreedyEvalBatch(states []float64, b int) (actions [][]int, logProbs, values []float64) {
	p.batchScratch(b)
	logits, vals, _ := p.Net.ForwardBatch(states, b)
	actions = make([][]int, b)
	for r := 0; r < b; r++ {
		acts := make([]int, len(logits))
		lp := 0.0
		for k, ls := range logits {
			w := p.Net.Heads[k].Out
			row := ls[r*w : (r+1)*w]
			a := nn.Argmax(row)
			acts[k] = a
			pr := p.probsB[k][r*w : (r+1)*w]
			nn.Softmax(row, pr)
			lp += math.Log(math.Max(pr[a], 1e-12))
		}
		actions[r] = acts
		p.logProbsB[r] = lp
	}
	copy(p.valsB[:b], vals)
	return actions, p.logProbsB[:b], p.valsB[:b]
}

// Train runs PPO on the buffered transitions. lastValue bootstraps the
// return of the final transition when the episode did not terminate. The
// buffer is consumed (reset) afterwards.
//
// Unless cfg.ScalarKernels is set, each minibatch makes one ForwardBatch /
// BackwardBatch pair instead of per-sample network calls. The two inner
// loops are bit-identical: batched rows follow the shuffled sample order,
// every per-sample scalar computation (softmax, surrogate, entropy, loss
// accumulation) runs in that same order, and the batched kernels reproduce
// the scalar kernels' operation sequence exactly (internal/nn/batch.go).
func (p *PPO) Train(buf *Buffer, lastValue float64) TrainStats {
	n := buf.Len()
	stats := TrainStats{Steps: n}
	if n == 0 {
		return stats
	}
	steps := buf.steps

	// GAE advantages and returns, computed backwards (persistent scratch —
	// Train runs every few windows for the lifetime of a deployment).
	if cap(p.advS) < n {
		p.advS = make([]float64, n)
		p.retS = make([]float64, n)
		p.orderS = make([]int, n)
	}
	adv, ret, order := p.advS[:n], p.retS[:n], p.orderS[:n]
	next := lastValue
	gae := 0.0
	for i := n - 1; i >= 0; i-- {
		t := &steps[i]
		mask := 1.0
		if t.Done {
			mask = 0
		}
		delta := t.Reward + p.cfg.Gamma*next*mask - t.Value
		gae = delta + p.cfg.Gamma*p.cfg.Lambda*mask*gae
		adv[i] = gae
		ret[i] = adv[i] + t.Value
		next = t.Value
	}
	// Normalize advantages.
	mean, sd := meanStd(adv)
	for i := range adv {
		if sd > 1e-8 {
			adv[i] = (adv[i] - mean) / sd
		} else {
			adv[i] -= mean
		}
		stats.MeanReturn += ret[i]
	}
	stats.MeanAdv = mean
	stats.MeanReturn /= float64(n)

	mb := p.cfg.MiniBatch
	if mb <= 0 || mb > n {
		mb = n
	}
	var polLoss, valLoss, entSum, klSum float64
	var clipped, visited float64
	for epoch := 0; epoch < p.cfg.Epochs; epoch++ {
		p.rng.PermInto(order)
		for start := 0; start < n; start += mb {
			end := start + mb
			if end > n {
				end = n
			}
			p.Net.ZeroGrad()
			if p.cfg.ScalarKernels {
				for _, oi := range order[start:end] {
					t := &steps[oi]
					logits, v, cache := p.Net.Forward(t.State)
					p.scratchFor(logits)

					// New joint log-prob and per-head distributions.
					newLP := 0.0
					probs := p.probs
					for k, ls := range logits {
						nn.Softmax(ls, probs[k])
						newLP += math.Log(math.Max(probs[k][t.Actions[k]], 1e-12))
					}
					klSum += t.LogProb - newLP
					ratio := math.Exp(newLP - t.LogProb)
					a := adv[oi]
					unclipped := ratio * a
					lo, hi := 1-p.cfg.ClipEps, 1+p.cfg.ClipEps
					cr := math.Min(math.Max(ratio, lo), hi)
					clippedSurr := cr * a

					// d(policy loss)/d(new log-prob): -A*ratio when the
					// unclipped surrogate is active, 0 otherwise.
					var dLP float64
					if unclipped <= clippedSurr {
						dLP = -a * ratio
					} else {
						clipped++
					}
					visited++
					polLoss += -math.Min(unclipped, clippedSurr)

					dLogits := p.dLogits
					for k, pr := range probs {
						dl := dLogits[k]
						h := nn.Entropy(pr)
						entSum += h
						for j := range pr {
							// Policy gradient through the categorical head.
							onehot := 0.0
							if j == t.Actions[k] {
								onehot = 1
							}
							dl[j] = dLP * (onehot - pr[j])
							// Entropy bonus: loss -= c*H ⇒ grad += c * dH/dl.
							// dH/dl_j = -p_j (log p_j + H).
							dl[j] += p.cfg.EntropyCoef * pr[j] * (math.Log(math.Max(pr[j], 1e-12)) + h)
						}
					}
					vErr := v - ret[oi]
					valLoss += 0.5 * vErr * vErr
					p.Net.Backward(cache, dLogits, p.cfg.ValueCoef*vErr)
				}
			} else {
				// Batched path: gather the shuffled minibatch into one
				// matrix, run the network once, then do the per-sample
				// scalar math row by row — same order, same operations.
				b := end - start
				p.batchScratch(b)
				in := p.Net.L1.In
				xs := p.xsB[:b*in]
				for r, oi := range order[start:end] {
					copy(xs[r*in:(r+1)*in], steps[oi].State)
				}
				logits, vals, cache := p.Net.ForwardBatch(xs, b)
				for k := range logits {
					w := p.Net.Heads[k].Out
					nn.SoftmaxBatch(logits[k], p.probsB[k], b, w)
				}
				for r := 0; r < b; r++ {
					oi := order[start+r]
					t := &steps[oi]
					newLP := 0.0
					for k := range logits {
						w := p.Net.Heads[k].Out
						newLP += math.Log(math.Max(p.probsB[k][r*w+t.Actions[k]], 1e-12))
					}
					klSum += t.LogProb - newLP
					ratio := math.Exp(newLP - t.LogProb)
					a := adv[oi]
					unclipped := ratio * a
					lo, hi := 1-p.cfg.ClipEps, 1+p.cfg.ClipEps
					cr := math.Min(math.Max(ratio, lo), hi)
					clippedSurr := cr * a
					var dLP float64
					if unclipped <= clippedSurr {
						dLP = -a * ratio
					} else {
						clipped++
					}
					visited++
					polLoss += -math.Min(unclipped, clippedSurr)
					for k := range logits {
						w := p.Net.Heads[k].Out
						pr := p.probsB[k][r*w : (r+1)*w]
						dl := p.dLogitsB[k][r*w : (r+1)*w]
						h := nn.Entropy(pr)
						entSum += h
						for j := range pr {
							onehot := 0.0
							if j == t.Actions[k] {
								onehot = 1
							}
							dl[j] = dLP * (onehot - pr[j])
							dl[j] += p.cfg.EntropyCoef * pr[j] * (math.Log(math.Max(pr[j], 1e-12)) + h)
						}
					}
					vErr := vals[r] - ret[oi]
					valLoss += 0.5 * vErr * vErr
					p.dValsB[r] = p.cfg.ValueCoef * vErr
				}
				p.Net.BackwardBatch(cache, p.dLogitsB, p.dValsB[:b])
			}
			p.opt.Step(p.Net.Layers(), float64(end-start))
		}
	}
	total := float64(n * p.cfg.Epochs)
	stats.PolicyLoss = polLoss / total
	stats.ValueLoss = valLoss / total
	stats.Entropy = entSum / (total * float64(len(p.Net.Heads)))
	stats.ApproxKL = klSum / total
	if visited > 0 {
		stats.ClipVisited = clipped / visited
	}
	buf.Reset()
	return stats
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}
