package rl

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/nn"
	"repro/internal/sim"
)

func newPPO(headSizes []int, stateDim int, seed int64) *PPO {
	rng := sim.NewRNG(seed)
	net := nn.NewActorCritic(stateDim, 16, headSizes, rng)
	cfg := DefaultConfig()
	cfg.LR = 3e-3 // faster for tiny test problems
	return New(net, cfg, rng)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Gamma != 0.9 {
		t.Fatalf("gamma = %v, want 0.9 (Table 3)", cfg.Gamma)
	}
	if cfg.LR != 1e-4 {
		t.Fatalf("lr = %v, want 1e-4 (Table 3)", cfg.LR)
	}
	if cfg.MiniBatch != 32 {
		t.Fatalf("batch = %v, want 32 (Table 3)", cfg.MiniBatch)
	}
}

func TestActShapesAndLogProb(t *testing.T) {
	p := newPPO([]int{4, 3, 2}, 5, 1)
	state := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	actions, lp, _ := p.Act(state)
	if len(actions) != 3 {
		t.Fatalf("actions = %v", actions)
	}
	for k, hs := range []int{4, 3, 2} {
		if actions[k] < 0 || actions[k] >= hs {
			t.Fatalf("head %d action %d out of range", k, actions[k])
		}
	}
	if lp >= 0 {
		t.Fatalf("joint log-prob = %v, must be negative", lp)
	}
	// Joint log-prob of a 3-head uniform-ish policy must be ≤ per-head.
	if lp > math.Log(1.0/2.0) {
		t.Fatalf("log-prob %v implausibly high for 4*3*2 action space", lp)
	}
}

func TestActGreedyDeterministic(t *testing.T) {
	p := newPPO([]int{4, 3}, 4, 2)
	state := []float64{1, 2, 3, 4}
	a1 := p.ActGreedy(state)
	a2 := p.ActGreedy(state)
	for k := range a1 {
		if a1[k] != a2[k] {
			t.Fatal("greedy action not deterministic")
		}
	}
}

func TestGAEComputation(t *testing.T) {
	// Hand-checkable case: single transition, done, reward 1, value 0.
	p := newPPO([]int{2}, 2, 3)
	var buf Buffer
	state := []float64{0, 0}
	buf.Add(Transition{State: state, Actions: []int{0}, LogProb: math.Log(0.5), Value: 0, Reward: 1, Done: true})
	st := p.Train(&buf, 0)
	if st.Steps != 1 {
		t.Fatalf("steps = %d", st.Steps)
	}
	// advantage = reward - value = 1; return = 1.
	if math.Abs(st.MeanReturn-1) > 1e-9 {
		t.Fatalf("mean return = %v, want 1", st.MeanReturn)
	}
	if buf.Len() != 0 {
		t.Fatal("buffer must be consumed")
	}
}

func TestTrainEmptyBuffer(t *testing.T) {
	p := newPPO([]int{2}, 2, 4)
	var buf Buffer
	st := p.Train(&buf, 0)
	if st.Steps != 0 {
		t.Fatal("empty train must be a no-op")
	}
}

// A one-step bandit: action 1 of head 0 yields reward 1, action 0 yields
// 0. PPO must learn to prefer action 1.
func TestPPOLearnsBandit(t *testing.T) {
	p := newPPO([]int{2}, 2, 5)
	state := []float64{1, 0}
	for iter := 0; iter < 60; iter++ {
		var buf Buffer
		for i := 0; i < 64; i++ {
			a, lp, v := p.Act(state)
			r := 0.0
			if a[0] == 1 {
				r = 1
			}
			buf.Add(Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: r, Done: true})
		}
		p.Train(&buf, 0)
	}
	wins := 0
	for i := 0; i < 100; i++ {
		a, _, _ := p.Act(state)
		if a[0] == 1 {
			wins++
		}
	}
	if wins < 80 {
		t.Fatalf("bandit not learned: %d/100 optimal actions", wins)
	}
}

// Multi-head bandit: reward only when head0=2 AND head1=0. Checks that the
// joint log-prob machinery trains all heads.
func TestPPOLearnsJointBandit(t *testing.T) {
	p := newPPO([]int{3, 2}, 2, 6)
	state := []float64{0.5, -0.5}
	for iter := 0; iter < 120; iter++ {
		var buf Buffer
		for i := 0; i < 64; i++ {
			a, lp, v := p.Act(state)
			r := 0.0
			if a[0] == 2 && a[1] == 0 {
				r = 1
			}
			buf.Add(Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: r, Done: true})
		}
		p.Train(&buf, 0)
	}
	wins := 0
	for i := 0; i < 100; i++ {
		a, _, _ := p.Act(state)
		if a[0] == 2 && a[1] == 0 {
			wins++
		}
	}
	if wins < 70 {
		t.Fatalf("joint bandit not learned: %d/100", wins)
	}
}

// Contextual bandit: optimal action depends on the state. Checks the
// network actually conditions on input.
func TestPPOLearnsContextual(t *testing.T) {
	p := newPPO([]int{2}, 2, 7)
	states := [][]float64{{1, 0}, {0, 1}}
	best := []int{0, 1}
	for iter := 0; iter < 150; iter++ {
		var buf Buffer
		for i := 0; i < 64; i++ {
			s := states[i%2]
			a, lp, v := p.Act(s)
			r := 0.0
			if a[0] == best[i%2] {
				r = 1
			}
			buf.Add(Transition{State: s, Actions: a, LogProb: lp, Value: v, Reward: r, Done: true})
		}
		p.Train(&buf, 0)
	}
	for ctx := 0; ctx < 2; ctx++ {
		wins := 0
		for i := 0; i < 100; i++ {
			a, _, _ := p.Act(states[ctx])
			if a[0] == best[ctx] {
				wins++
			}
		}
		if wins < 70 {
			t.Fatalf("context %d not learned: %d/100", ctx, wins)
		}
	}
}

func TestValueLearnsReturns(t *testing.T) {
	// Constant reward 1 with γ=0.9 and non-terminal steps → value ≈ 10.
	p := newPPO([]int{2}, 2, 8)
	state := []float64{1, 1}
	for iter := 0; iter < 150; iter++ {
		var buf Buffer
		for i := 0; i < 64; i++ {
			a, lp, v := p.Act(state)
			buf.Add(Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: 1, Done: false})
		}
		p.Train(&buf, p.Value(state))
	}
	v := p.Value(state)
	if v < 5 || v > 15 {
		t.Fatalf("value = %v, want ≈ 10 for discounted constant reward", v)
	}
}

func TestBufferMergeAndMarkDone(t *testing.T) {
	mk := func(rewards ...float64) *Buffer {
		b := &Buffer{}
		for _, r := range rewards {
			b.Add(Transition{Reward: r})
		}
		return b
	}
	a := mk(1, 2)
	a.MarkDone()
	b := mk(3)
	b.MarkDone()
	m := Merge(a, nil, b, mk())
	if m.Len() != 3 {
		t.Fatalf("merged %d transitions, want 3", m.Len())
	}
	steps := m.Steps()
	if !steps[1].Done || !steps[2].Done || steps[0].Done {
		t.Fatalf("episode boundaries wrong after merge: %+v", steps)
	}
	if got := m.MeanReward(); got != 2 {
		t.Fatalf("mean reward %v, want 2", got)
	}
	if got := (&Buffer{}).MeanReward(); got != 0 {
		t.Fatalf("empty mean reward %v", got)
	}
	// Merge copies: training (which resets the merged buffer) must not
	// clear the sources.
	m.Reset()
	if a.Len() != 2 || b.Len() != 1 {
		t.Fatal("Merge aliased its sources")
	}
	(&Buffer{}).MarkDone() // must not panic on empty
}

func TestTrainReportsApproxKL(t *testing.T) {
	p := newPPO([]int{3}, 2, 6)
	var buf Buffer
	state := []float64{0.5, -0.5}
	for i := 0; i < 48; i++ {
		a, lp, v := p.Act(state)
		buf.Add(Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: float64(i % 2)})
	}
	st := p.Train(&buf, 0)
	if math.IsNaN(st.ApproxKL) || math.IsInf(st.ApproxKL, 0) {
		t.Fatalf("ApproxKL = %v", st.ApproxKL)
	}
	if st.ApproxKL == 0 {
		t.Fatal("ApproxKL stayed exactly zero across 4 epochs of updates")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty meanStd must be 0,0")
	}
}

// TestTrainBatchedMatchesScalar pins the batched Train inner loop against
// the scalar one bit for bit: two learners with identical networks, RNG
// streams, and buffers must produce identical parameters and statistics —
// including on a buffer size that leaves a ragged final minibatch.
func TestTrainBatchedMatchesScalar(t *testing.T) {
	for _, n := range []int{48, 50, 32, 7} {
		build := func(scalar bool) (*PPO, *Buffer) {
			rng := sim.NewRNG(41)
			net := nn.NewActorCritic(6, 16, []int{4, 3}, rng)
			cfg := DefaultConfig()
			cfg.LR = 3e-3
			cfg.ScalarKernels = scalar
			p := New(net, cfg, rng)
			var buf Buffer
			state := make([]float64, 6)
			for i := 0; i < n; i++ {
				for j := range state {
					state[j] = rng.NormFloat64()
				}
				s := append([]float64(nil), state...)
				a, lp, v := p.Act(s)
				buf.Add(Transition{State: s, Actions: a, LogProb: lp, Value: v,
					Reward: rng.Float64(), Done: i%17 == 16})
			}
			return p, &buf
		}
		ps, bs := build(true)
		pb, bb := build(false)
		sts := ps.Train(bs, 0.3)
		stb := pb.Train(bb, 0.3)
		if sts != stb {
			t.Fatalf("n=%d: stats diverge:\nscalar  %+v\nbatched %+v", n, sts, stb)
		}
		sp, bp := ps.Net.Params(), pb.Net.Params()
		for i := range sp {
			if sp[i] != bp[i] {
				t.Fatalf("n=%d: param %d diverges: %v != %v", n, i, sp[i], bp[i])
			}
		}
		// A second Train round exercises the weight-transpose invalidation
		// after optimizer steps.
		_, bs = build(true)
		_, bb = build(false)
		bs.steps, bb.steps = bs.steps[:n], bb.steps[:n]
		if sts, stb := ps.Train(bs, -0.1), pb.Train(bb, -0.1); sts != stb {
			t.Fatalf("n=%d round 2: stats diverge", n)
		}
		sp, bp = ps.Net.Params(), pb.Net.Params()
		for i := range sp {
			if sp[i] != bp[i] {
				t.Fatalf("n=%d round 2: param %d diverges", n, i)
			}
		}
	}
}

// TestActBatchMatchesScalar pins the ActBatch family against per-state
// scalar calls: same actions, log-probs, values, and — for the sampling
// path — the same RNG stream consumption.
func TestActBatchMatchesScalar(t *testing.T) {
	const b, dim = 5, 6
	mk := func() *PPO { return newPPO([]int{4, 3, 2}, dim, 13) }
	ps, pb := mk(), mk()
	states := make([]float64, b*dim)
	rng := sim.NewRNG(99)
	for round := 0; round < 4; round++ {
		for i := range states {
			states[i] = rng.NormFloat64()
		}
		// Sampling path: both learners share the seed and have consumed
		// their RNGs identically so far, so the batched call must draw the
		// exact same actions as b scalar calls in row order.
		sa, sl, sv := pb.ActBatch(states, b)
		for r := 0; r < b; r++ {
			wantA, wantLP, wantV := ps.Act(states[r*dim : (r+1)*dim])
			for k := range wantA {
				if sa[r][k] != wantA[k] {
					t.Fatalf("sample round %d row %d head %d: action %d != %d", round, r, k, sa[r][k], wantA[k])
				}
			}
			if sl[r] != wantLP || sv[r] != wantV {
				t.Fatalf("sample round %d row %d: lp/v (%v,%v) != (%v,%v)", round, r, sl[r], sv[r], wantLP, wantV)
			}
		}
		// Greedy-with-eval path.
		gotA, gotLP, gotV := pb.ActGreedyEvalBatch(states, b)
		for r := 0; r < b; r++ {
			wantA, wantLP, wantV := ps.ActGreedyEval(states[r*dim : (r+1)*dim])
			for k := range wantA {
				if gotA[r][k] != wantA[k] {
					t.Fatalf("round %d row %d head %d: action %d != %d", round, r, k, gotA[r][k], wantA[k])
				}
			}
			if gotLP[r] != wantLP || gotV[r] != wantV {
				t.Fatalf("round %d row %d: lp/v (%v,%v) != (%v,%v)", round, r, gotLP[r], gotV[r], wantLP, wantV)
			}
		}
		// Greedy path.
		gg := pb.ActGreedyBatch(states, b)
		for r := 0; r < b; r++ {
			want := ps.ActGreedy(states[r*dim : (r+1)*dim])
			for k := range want {
				if gg[r][k] != want[k] {
					t.Fatalf("greedy round %d row %d head %d: %d != %d", round, r, k, gg[r][k], want[k])
				}
			}
		}
	}
}

// TestTrainZeroSteadyStateAllocs guards the batched Train path's
// zero-allocation contract: after the first call sizes the scratch, a
// Train over a same-sized buffer must not allocate at all. Measured with
// ReadMemStats rather than testing.AllocsPerRun because refilling the
// consumed buffer between runs allocates by design.
func TestTrainZeroSteadyStateAllocs(t *testing.T) {
	p := newPPO([]int{5, 5, 3}, 60, 1)
	state := make([]float64, 60)
	fill := func(buf *Buffer) {
		for j := 0; j < 32; j++ {
			a, lp, v := p.Act(state)
			buf.Add(Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: 0.5})
		}
	}
	var buf Buffer
	fill(&buf)
	p.Train(&buf, 0) // size all scratch
	for trial := 0; trial < 3; trial++ {
		fill(&buf)
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		p.Train(&buf, 0)
		runtime.ReadMemStats(&m1)
		if n := m1.Mallocs - m0.Mallocs; n != 0 {
			t.Fatalf("trial %d: steady-state Train made %d allocations (%d bytes)",
				trial, n, m1.TotalAlloc-m0.TotalAlloc)
		}
	}
}

// TestActBatchSteadyStateAllocs pins the batched inference paths: greedy
// batch acting reuses all scratch; the sampling/eval variants allocate
// exactly the per-row action slices that transitions retain.
func TestActBatchSteadyStateAllocs(t *testing.T) {
	p := newPPO([]int{5, 5, 3}, 60, 1)
	const b = 4
	states := make([]float64, b*60)
	p.ActGreedyBatch(states, b)
	if n := testing.AllocsPerRun(50, func() { p.ActGreedyBatch(states, b) }); n != 0 {
		t.Fatalf("ActGreedyBatch allocates %v per run", n)
	}
	// b actions slices (retained by callers) are the only allowed allocs.
	if n := testing.AllocsPerRun(50, func() { p.ActBatch(states, b) }); n > b+1 {
		t.Fatalf("ActBatch allocates %v per run, want <= %d", n, b+1)
	}
}
