package rl

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/sim"
)

// benchLearner builds a FleetIO-sized PPO learner plus a 128-transition
// rollout. Train drains its buffer, so benchmarks keep the transitions and
// refill between iterations (128 struct copies — noise next to an update).
func benchLearner(scalar bool) (*PPO, []Transition) {
	const stateDim = 110 // DefaultHistoryWindows * StatesPerWindow
	rng := sim.NewRNG(7)
	net := nn.NewActorCritic(stateDim, 50, []int{5, 5, 3}, rng)
	cfg := DefaultConfig()
	cfg.ScalarKernels = scalar
	p := New(net, cfg, rng)
	steps := make([]Transition, 0, 128)
	for i := 0; i < cap(steps); i++ {
		state := make([]float64, stateDim)
		for j := range state {
			state[j] = rng.Float64()
		}
		a, lp, v := p.Act(state)
		steps = append(steps, Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: rng.Float64()})
	}
	return p, steps
}

func benchTrain(b *testing.B, scalar bool) {
	p, steps := benchLearner(scalar)
	var buf Buffer
	refill := func() {
		for _, t := range steps {
			buf.Add(t)
		}
	}
	refill()
	p.Train(&buf, 0) // size scratch outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refill()
		p.Train(&buf, 0)
	}
}

// BenchmarkTrainBatch measures a full PPO update (GAE + Epochs passes of
// minibatched forward/backward) through the batched matrix kernels.
func BenchmarkTrainBatch(b *testing.B) { benchTrain(b, false) }

// BenchmarkTrainScalar is the same update through the original per-sample
// scalar path (Config.ScalarKernels), kept as the batching baseline.
func BenchmarkTrainScalar(b *testing.B) { benchTrain(b, true) }
