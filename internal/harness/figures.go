package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/vssd"
	"repro/internal/workload"
)

// PairGrid runs every evaluation pair under the given policies, reusing
// one calibration per pair. It is the data source for Figures 2, 3, 10,
// 11, 12, 13, and 15. The whole (pair × policy) grid runs as one flat
// job list on the opt.Workers pool.
func PairGrid(kinds []PolicyKind, opt Options) map[string][]Result {
	mixes := EvalPairs()
	rows := compareAll(mixes, kinds, opt)
	out := make(map[string][]Result, len(mixes))
	for i, mix := range mixes {
		out[mix.Label] = rows[i]
	}
	return out
}

func find(results []Result, policy string) Result {
	for _, r := range results {
		if r.Policy == policy {
			return r
		}
	}
	panic("harness: policy missing from results: " + policy)
}

// Figure2 prints the §2.2 utilization study: average and P95 SSD bandwidth
// utilization under hardware vs software isolation for the six pairs.
func Figure2(w io.Writer, grid map[string][]Result) {
	fmt.Fprintln(w, "Figure 2: SSD bandwidth utilization, hardware vs software isolation")
	fmt.Fprintf(w, "%-22s %14s %14s %14s %14s\n", "pair", "HW avg%", "HW p95%", "SW avg%", "SW p95%")
	var ratios []float64
	for _, mix := range EvalPairs() {
		rs := grid[mix.Label]
		hw, sw := find(rs, "Hardware Isolation"), find(rs, "Software Isolation")
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %14.1f %14.1f\n", mix.Label,
			hw.AvgUtil*100, hw.P95Util*100, sw.AvgUtil*100, sw.P95Util*100)
		if hw.AvgUtil > 0 {
			ratios = append(ratios, sw.AvgUtil/hw.AvgUtil)
		}
	}
	fmt.Fprintf(w, "software/hardware avg-util ratio: max %.2fx, mean %.2fx (paper: up to 1.52x, 1.39x avg)\n\n",
		maxF(ratios), meanF(ratios))
}

// Figure3 prints the §2.2 per-tenant study: normalized BI bandwidth (a)
// and normalized LS P99 (b) under software isolation relative to hardware.
func Figure3(w io.Writer, grid map[string][]Result) {
	fmt.Fprintln(w, "Figure 3a: bandwidth of the bandwidth-intensive workload (normalized to hardware isolation)")
	fmt.Fprintf(w, "%-22s %14s %14s %10s\n", "pair", "HW MB/s", "SW MB/s", "SW/HW")
	var bwr, latr []float64
	for _, mix := range EvalPairs() {
		rs := grid[mix.Label]
		hw, sw := find(rs, "Hardware Isolation"), find(rs, "Software Isolation")
		r := sw.BandwidthTenant() / hw.BandwidthTenant()
		bwr = append(bwr, r)
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %9.2fx\n", mix.Label,
			hw.BandwidthTenant(), sw.BandwidthTenant(), r)
	}
	fmt.Fprintf(w, "(paper: up to 1.84x, 1.64x avg)\n\n")
	fmt.Fprintln(w, "Figure 3b: P99 latency of the latency-sensitive workload (normalized to hardware isolation)")
	fmt.Fprintf(w, "%-22s %14s %14s %10s\n", "pair", "HW P99 ms", "SW P99 ms", "SW/HW")
	for _, mix := range EvalPairs() {
		rs := grid[mix.Label]
		hw, sw := find(rs, "Hardware Isolation"), find(rs, "Software Isolation")
		r := sw.LatencyTenantP99() / hw.LatencyTenantP99()
		latr = append(latr, r)
		fmt.Fprintf(w, "%-22s %14.2f %14.2f %9.2fx\n", mix.Label,
			hw.LatencyTenantP99(), sw.LatencyTenantP99(), r)
	}
	fmt.Fprintf(w, "(paper: up to 2.02x higher tail latency)\n\n")
}

// Figure6 trains the workload-type clusters, prints the PCA scatter data,
// cluster membership, and the train/test accuracy (paper: 98.4%).
func Figure6(w io.Writer) {
	ds := cluster.BuildDataset(workload.Names(), 8, 2000, 16<<10, 42)
	train, test := ds.Split(0.7)
	m, _ := TypeModel()
	acc := m.Accuracy(test)
	_ = train
	fmt.Fprintln(w, "Figure 6: workload clustering (k-means on 4 trace features, PCA projection)")
	for c, wls := range m.ClusterWorkloads {
		fmt.Fprintf(w, "  cluster %d: %v\n", c, wls)
	}
	// PCA coordinates of the full dataset for plotting.
	raw := make([][]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		raw[i] = s.Features
	}
	scaled, _, _ := cluster.Standardize(raw)
	proj, _ := cluster.PCA2(scaled, sim.NewRNG(5))
	centroid := map[string][2]float64{}
	count := map[string]int{}
	for i, p := range proj {
		wl := ds.Samples[i].Workload
		c := centroid[wl]
		c[0] += p[0]
		c[1] += p[1]
		centroid[wl] = c
		count[wl]++
	}
	fmt.Fprintf(w, "%-16s %10s %10s\n", "workload", "factor1", "factor2")
	for _, wl := range workload.Names() {
		c := centroid[wl]
		n := float64(count[wl])
		fmt.Fprintf(w, "%-16s %10.2f %10.2f\n", wl, c[0]/n, c[1]/n)
	}
	fmt.Fprintf(w, "test clustering accuracy: %.1f%% (paper: 98.4%%)\n\n", acc*100)
}

// Figures10to13 prints the main evaluation: the utilization/latency
// tradeoff (Fig 10), per-pair utilization (Fig 11), normalized P99
// (Fig 12), and normalized BI bandwidth (Fig 13) for all five policies.
func Figures10to13(w io.Writer, grid map[string][]Result) {
	pols := AllPolicies()
	fmt.Fprintln(w, "Figure 10: utilization improvement (x, vs Hardware Isolation) vs normalized P99 (y)")
	fmt.Fprintf(w, "%-22s", "pair")
	for _, p := range pols {
		fmt.Fprintf(w, " %26s", p.String())
	}
	fmt.Fprintln(w)
	for _, mix := range EvalPairs() {
		rs := grid[mix.Label]
		hw := find(rs, "Hardware Isolation")
		fmt.Fprintf(w, "%-22s", mix.Label)
		for _, p := range pols {
			r := find(rs, p.String())
			fmt.Fprintf(w, "   (%5.2fx util, %5.2fx P99)",
				r.AvgUtil/hw.AvgUtil, r.LatencyTenantP99()/hw.LatencyTenantP99())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: FleetIO ≥1.30x util over HW and ≤1.2x of HW P99; SW/Adaptive 1.76-2.03x P99)")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Figure 11: SSD bandwidth utilization (%)")
	printMetric(w, grid, pols, func(r Result) float64 { return r.AvgUtil * 100 }, "%14.1f")
	fmt.Fprintln(w, "Figure 12: P99 latency of the latency-sensitive workload (ms)")
	printMetric(w, grid, pols, func(r Result) float64 { return r.LatencyTenantP99() }, "%14.2f")
	fmt.Fprintln(w, "Figure 13: bandwidth of the bandwidth-intensive workload (MB/s)")
	printMetric(w, grid, pols, func(r Result) float64 { return r.BandwidthTenant() }, "%14.1f")
}

func printMetric(w io.Writer, grid map[string][]Result, pols []PolicyKind,
	metric func(Result) float64, cellFmt string) {
	fmt.Fprintf(w, "%-22s", "pair")
	for _, p := range pols {
		fmt.Fprintf(w, " %14s", shorten(p.String()))
	}
	fmt.Fprintln(w)
	for _, mix := range EvalPairs() {
		rs := grid[mix.Label]
		fmt.Fprintf(w, "%-22s", mix.Label)
		for _, p := range pols {
			fmt.Fprintf(w, " "+cellFmt, metric(find(rs, p.String())))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func shorten(s string) string {
	switch s {
	case "Hardware Isolation":
		return "HardwareIso"
	case "Software Isolation":
		return "SoftwareIso"
	case "FleetIO-Unified-Global":
		return "FIO-UnifGlob"
	case "FleetIO-Customized-Local":
		return "FIO-CustLoc"
	default:
		return s
	}
}

// Figure14 prints the scalability study over the Table 5 mixes.
func Figure14(w io.Writer, opt Options) {
	pols := AllPolicies()
	mixes := Table5Mixes()
	rows := compareAll(mixes, pols, opt)
	fmt.Fprintln(w, "Figure 14: scalability over Table 5 mixes (2/4/8 vSSDs)")
	fmt.Fprintf(w, "%-8s %-7s", "mix", "vSSDs")
	for _, p := range pols {
		fmt.Fprintf(w, " %14s", shorten(p.String()))
	}
	fmt.Fprintln(w, "   (util%% | LS P99 norm | BI BW norm)")
	for i, mix := range mixes {
		rs := rows[i]
		hw := find(rs, "Hardware Isolation")
		fmt.Fprintf(w, "%-8s %-7d", mix.Label, len(mix.Workloads))
		for _, p := range pols {
			r := find(rs, p.String())
			fmt.Fprintf(w, "  %5.1f|%4.2f|%4.2f",
				r.AvgUtil*100,
				r.LatencyTenantP99()/hw.LatencyTenantP99(),
				r.BandwidthTenant()/hw.BandwidthTenant())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: FleetIO 1.33x/1.18x util over HW at 4/8 vSSDs, ≤1.1x HW P99, ≥1.25x BI BW)")
	fmt.Fprintln(w)
}

// Figure15 prints the reward-function ablation: FleetIO vs Unified-Global
// (one α for all) vs Customized-Local (β=1).
func Figure15(w io.Writer, opt Options) {
	kinds := []PolicyKind{PolHardware, PolFleetIOCustomizedLocal, PolFleetIOUnifiedGlobal, PolFleetIO, PolSoftware}
	mixes := EvalPairs()
	rows := compareAll(mixes, kinds, opt)
	fmt.Fprintln(w, "Figure 15: reward ablation — utilization (%) and LS P99 (ms)")
	fmt.Fprintf(w, "%-22s", "pair")
	for _, p := range kinds {
		fmt.Fprintf(w, " %14s", shorten(p.String()))
	}
	fmt.Fprintln(w)
	for i, mix := range mixes {
		rs := rows[i]
		fmt.Fprintf(w, "%-22s", mix.Label)
		for _, p := range kinds {
			r := find(rs, p.String())
			fmt.Fprintf(w, "  %5.1f%%/%5.2f", r.AvgUtil*100, r.LatencyTenantP99())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: Customized-Local ≈ Hardware Isolation — no harvest incentive without β;")
	fmt.Fprintln(w, " Unified-Global inconsistent across pairs; FleetIO best of both)")
	fmt.Fprintln(w)
}

// Figure16Result holds the mixed-isolation experiment numbers.
type Figure16Result struct {
	Policy  string
	AvgUtil float64
	LSP99Ms float64
	BIMBps  float64
}

// Figure16 runs mix3 with mixed isolation: two VDI-Web on 4-channel
// hardware-isolated vSSDs, two TeraSort sharing an 8-channel
// software-isolated pool.
func Figure16(w io.Writer, opt Options) []Figure16Result {
	fmt.Fprintln(w, "Figure 16: mixed hardware- and software-isolated vSSDs (mix3)")
	kinds := []PolicyKind{PolHardware, PolSoftware, PolFleetIO}
	// One calibration defines the SLOs for all three topologies; the runs
	// themselves are independent and fan out over the worker pool.
	mix := MixSpec{Label: "mix3-mixed", Workloads: []string{"VDI-Web", "VDI-Web", "TeraSort", "TeraSort"}}
	slos := Calibrate(mix, opt)
	results := make([]Result, len(kinds))
	forEach(len(kinds), opt.workers(), func(i int) {
		results[i] = runMixedIsolation(mix, kinds[i], slos, opt)
	})
	var out []Figure16Result
	for i, kind := range kinds {
		res := results[i]
		label := kind.String()
		if kind == PolHardware {
			label = "Mixed Isolation"
		}
		out = append(out, Figure16Result{
			Policy:  label,
			AvgUtil: res.AvgUtil,
			LSP99Ms: res.LatencyTenantP99(),
			BIMBps:  res.BandwidthTenant(),
		})
		fmt.Fprintf(w, "%-18s util=%5.1f%%  LS P99=%6.2fms  BI BW=%7.1f MB/s\n",
			label, res.AvgUtil*100, res.LatencyTenantP99(), res.BandwidthTenant())
	}
	fmt.Fprintln(w, "(paper: FleetIO 1.27x util over Mixed Isolation, ≥94% of Software Isolation's util,")
	fmt.Fprintln(w, " 1.42x BI bandwidth, tail latency within 1.19x of Mixed Isolation)")
	fmt.Fprintln(w)
	return out
}

// runMixedIsolation builds the Figure 16 topology by hand from the given
// calibrated SLOs.
func runMixedIsolation(mix MixSpec, kind PolicyKind, slos []sim.Time, opt Options) Result {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash = opt.flashConfig()
	plat := vssd.NewPlatform(eng, pc)
	totalPages := pc.Flash.TotalBlocks() * pc.Flash.PagesPerBlock
	r := &run{eng: eng, plat: plat, opt: opt}
	rng := sim.NewRNG(opt.Seed)
	sharedPool := chanRange(8, 16)
	for i, name := range mix.Workloads {
		prof := workload.ByName(name)
		cfg := vssd.Config{
			Name:             fmt.Sprintf("%s-%d", name, i),
			SLO:              slos[i],
			MaxInflightPages: prof.MaxInflightPages,
		}
		if prof.Class == workload.Latency {
			cfg.Isolation = vssd.HardwareIsolated
			cfg.Channels = chanRange(i*4, i*4+4)
		} else {
			cfg.Isolation = vssd.SoftwareIsolated
			cfg.Channels = sharedPool
			cfg.LogicalPages = int(float64(totalPages) * 0.8 / 4)
		}
		v := plat.AddVSSD(cfg)
		if err := v.Tenant().Prefill(opt.PrefillFrac, 0.3, rng.Split(int64(100+i))); err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(eng, v, prof, rng.Split(int64(i)))
		r.gens = append(r.gens, gen)
		r.recs = append(r.recs, nil)
	}
	// Software-isolated TeraSorts get a rate limit in every configuration
	// (that is what software isolation means here).
	lim := pc.Flash.ChannelBandwidth() * 8 / 2 * opt.SoftwareShareFactor
	plat.VSSD(2).SetRateLimit(lim, lim/2)
	plat.VSSD(3).SetRateLimit(lim, lim/2)

	switch kind {
	case PolFleetIO:
		tm, alphas := TypeModel()
		f := core.NewFleetIO(plat, core.FleetIOConfig{
			Train: opt.TrainDuringRun, TrainEvery: 10, Seed: opt.Seed,
			Pretrained: opt.Pretrained, TypeModel: tm, AlphaByCluster: alphas,
			ScalarRL: opt.ScalarRL,
		})
		for i, name := range mix.Workloads {
			if c, ok := tm.WorkloadCluster[name]; ok {
				if a, ok2 := alphas[c]; ok2 {
					f.SetAlpha(i, a)
				}
			}
		}
		r.runner = &core.Runner{Plat: plat, Adm: admission.NewController(plat, nil), Policy: f, Window: opt.Window}
	case PolSoftware:
		// Full software isolation: everyone shares everything.
		for i := 0; i < 2; i++ {
			plat.VSSD(i).Tenant().SetChannels(chanRange(0, 16))
		}
		for i := 2; i < 4; i++ {
			plat.VSSD(i).Tenant().SetChannels(chanRange(0, 16))
		}
		baselineRate := pc.Flash.ChannelBandwidth() * 16 / 4 * opt.SoftwareShareFactor
		for i := 0; i < 4; i++ {
			plat.VSSD(i).SetRateLimit(baselineRate, baselineRate/2)
		}
		r.runner = &core.Runner{Plat: plat, Policy: core.StaticPolicy{PolicyName: "Software Isolation"}, Window: opt.Window}
	default:
		r.runner = &core.Runner{Plat: plat, Policy: core.StaticPolicy{PolicyName: "Mixed Isolation"}, Window: opt.Window}
	}
	r.execute()
	return r.collect(mix, kind)
}

// Figure17Row is one robustness comparison.
type Figure17Row struct {
	Label       string
	Pretrained  Result
	Transferred Result
}

// Figure17 evaluates robustness to collocated-workload changes: the model
// keeps serving tenant A while its neighbour switches from B to C halfway;
// the result is compared to a model tuned on A+C from the start.
func Figure17(w io.Writer, opt Options) []Figure17Row {
	cases := []struct {
		label           string
		keep, from, to  string
		keepIsBandwidth bool
	}{
		{"T + (V->Y)", "TeraSort", "VDI-Web", "YCSB", true},
		{"M + (V->Y)", "MLPrep", "VDI-Web", "YCSB", true},
		{"P + (V->Y)", "PageRank", "VDI-Web", "YCSB", true},
		{"V + (T->M)", "VDI-Web", "TeraSort", "MLPrep", false},
		{"V + (M->P)", "VDI-Web", "MLPrep", "PageRank", false},
		{"Y + (P->T)", "YCSB", "PageRank", "TeraSort", false},
	}
	fmt.Fprintln(w, "Figure 17: robustness to collocated workload changes")
	fmt.Fprintf(w, "%-12s %14s %14s %10s (metric: %s)\n", "case", "pretrained", "transfer", "ratio", "BI MB/s or LS P99 ms")
	// Each case is two independent experiments (pretrained run and transfer
	// run); fan all 2×6 of them out as one flat job list, then print in the
	// original case order.
	rows := make([]Figure17Row, len(cases))
	forEach(2*len(cases), opt.workers(), func(j int) {
		c := cases[j/2]
		if j%2 == 0 {
			finalMix := MixSpec{Label: c.label, Workloads: []string{c.keep, c.to}}
			rows[j/2].Pretrained = Compare(finalMix, []PolicyKind{PolFleetIO}, opt)[0]
		} else {
			rows[j/2].Transferred = RunTransfer(c.keep, c.from, c.to, opt)
		}
	})
	for i, c := range cases {
		rows[i].Label = c.label
		pre, tr := rows[i].Pretrained, rows[i].Transferred
		var a, b float64
		if c.keepIsBandwidth {
			a, b = pre.BandwidthTenant(), tr.BandwidthTenant()
		} else {
			a, b = pre.LatencyTenantP99(), tr.LatencyTenantP99()
		}
		fmt.Fprintf(w, "%-12s %14.2f %14.2f %9.2fx\n", c.label, a, b, b/a)
	}
	fmt.Fprintln(w, "(paper: transfer within 5% of pretrained across all combinations)")
	fmt.Fprintln(w)
	return rows
}

// RunTransfer trains FleetIO on keep+from, switches the collocated
// workload to `to` halfway through warmup+measurement, and measures the
// final interval.
func RunTransfer(keep, from, to string, opt Options) Result {
	finalMix := MixSpec{Label: keep + "+" + to, Workloads: []string{keep, to}}
	slos := Calibrate(finalMix, opt)
	initialMix := MixSpec{Label: keep + "+" + from, Workloads: []string{keep, from}}
	r := buildPlatform(initialMix, PolFleetIO, slos, opt)
	r.attachPolicy(PolFleetIO, initialMix)
	// Run the initial combination through warmup plus half the duration,
	// then swap the collocated workload.
	for _, g := range r.gens {
		g.Start()
	}
	r.runner.Start()
	r.eng.RunUntil(r.opt.Warmup)
	r.gens[1].Stop()
	newProf := workload.ByName(to)
	gen := workload.NewGenerator(r.eng, r.plat.VSSD(1), newProf, sim.NewRNG(opt.Seed+999))
	gen.Start()
	r.gens[1] = gen
	// Give the agents a short adjustment, then measure.
	r.eng.RunUntil(r.opt.Warmup + r.opt.Window*4)
	for _, v := range r.plat.VSSDs() {
		v.ResetTotals()
		v.Rotate()
	}
	r.eng.RunUntil(r.opt.Warmup + r.opt.Window*4 + r.opt.Duration)
	for _, g := range r.gens {
		g.Stop()
	}
	return r.collect(finalMix, PolFleetIO)
}

// OverheadReport captures §4.7's overhead table.
type OverheadReport struct {
	InferencePerWindow   time.Duration
	FineTunePer10Windows time.Duration
	GSBCreate            time.Duration
	AdmissionPer1000     time.Duration
	ModelBytes           int
	ModelParams          int
}

// Overheads measures the §4.7 costs on this machine.
func Overheads(w io.Writer) OverheadReport {
	rng := sim.NewRNG(1)
	net := nn.NewActorCritic(core.DefaultHistoryWindows*core.StatesPerWindow, 50,
		[]int{len(core.HarvestLevels), len(core.HarvestLevels), len(core.PriorityLevels)}, rng)
	state := make([]float64, core.DefaultHistoryWindows*core.StatesPerWindow)
	for i := range state {
		state[i] = rng.Float64()
	}
	ppo := rl.New(net, rl.DefaultConfig(), rng)

	// Inference.
	const infIters = 2000
	start := time.Now()
	for i := 0; i < infIters; i++ {
		ppo.ActGreedy(state)
	}
	inf := time.Since(start) / infIters

	// Fine-tune: one PPO update over 10 windows' worth of transitions.
	var buf rl.Buffer
	mkBuf := func() {
		for i := 0; i < 32; i++ {
			a, lp, v := ppo.Act(state)
			buf.Add(rl.Transition{State: state, Actions: a, LogProb: lp, Value: v, Reward: rng.Float64()})
		}
	}
	mkBuf()
	start = time.Now()
	ppo.Train(&buf, 0)
	ft := time.Since(start)

	// gSB creation (metadata only).
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash.BlocksPerChip = 128
	pc.Flash.PagesPerBlock = 64
	plat := vssd.NewPlatform(eng, pc)
	plat.AddVSSD(vssd.Config{Name: "home", Channels: chanRange(0, 8)})
	plat.AddVSSD(vssd.Config{Name: "harv", Channels: chanRange(8, 16)})
	const gsbIters = 500
	start = time.Now()
	for i := 0; i < gsbIters; i++ {
		plat.GSB().SetHarvestable(plat.VSSD(0).Tenant(), 1)
		plat.GSB().SetHarvestable(plat.VSSD(0).Tenant(), 0)
	}
	gsbDur := time.Since(start) / (2 * gsbIters)

	// Admission control batch of 1000 actions.
	adm := admission.NewController(plat, nil)
	bw := pc.Flash.ChannelBandwidth()
	start = time.Now()
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			adm.Submit(vssd.Action{VSSD: 0, Kind: vssd.ActMakeHarvestable, BW: bw})
		} else {
			adm.Submit(vssd.Action{VSSD: 1, Kind: vssd.ActHarvest, BW: bw})
		}
	}
	adm.Flush()
	admDur := time.Since(start)

	enc, _ := net.Encode()
	rep := OverheadReport{
		InferencePerWindow:   inf,
		FineTunePer10Windows: ft,
		GSBCreate:            gsbDur,
		AdmissionPer1000:     admDur,
		ModelBytes:           len(enc),
		ModelParams:          net.NumParams(),
	}
	if w != nil {
		fmt.Fprintln(w, "Section 4.7: overhead sources")
		fmt.Fprintf(w, "  inference per window:        %v (paper: 1.1 ms)\n", rep.InferencePerWindow)
		fmt.Fprintf(w, "  fine-tune per 10 windows:    %v (paper: 51.2 ms)\n", rep.FineTunePer10Windows)
		fmt.Fprintf(w, "  gSB create/reclaim:          %v (paper: <1 us)\n", rep.GSBCreate)
		fmt.Fprintf(w, "  admission, 1000 actions:     %v (paper: 0.8 ms)\n", rep.AdmissionPer1000)
		fmt.Fprintf(w, "  model size:                  %d bytes, %d params (paper: 2.2 MB, ~9K params)\n\n",
			rep.ModelBytes, rep.ModelParams)
	}
	return rep
}

func maxF(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func meanF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
