package harness

import (
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/sim"
)

func fleetTestOptions() Options {
	opt := DefaultOptions()
	opt.Duration = 1500 * sim.Millisecond
	opt.FleetDevices = 8
	return opt
}

// TestFigureFleetDeterministicAcrossWorkers is the fleet determinism
// oracle at the figure level: the whole rendered scenario — every
// placement baseline, every counter and float — must be byte-identical
// whether shards advance sequentially or fan out over the worker pool.
func TestFigureFleetDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		opt := fleetTestOptions()
		opt.Workers = workers
		opt.PinFleetWorkers = workers == 4 // pinning must not change output either
		var b strings.Builder
		FigureFleet(&b, opt)
		if workers == 1 {
			want = b.String()
			continue
		}
		if b.String() != want {
			t.Fatalf("FigureFleet diverged at workers=%d:\n%s\nvs workers=1:\n%s",
				workers, b.String(), want)
		}
	}
	if !strings.Contains(want, "placement=least-loaded") {
		t.Fatalf("FigureFleet missing placement sections:\n%s", want)
	}
}

// TestCohortScenarioDeterministicAcrossWorkers covers the departure path
// (Lifetime > 0) under the shard-worker pool, driving the pool size
// through the FleetWorkers override rather than run-level Workers.
func TestCohortScenarioDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		opt := fleetTestOptions()
		opt.FleetWorkers = workers
		st := CohortScenario(opt)
		var b strings.Builder
		st.Render(&b)
		if workers == 1 {
			if st.Departed == 0 {
				t.Fatalf("cohort scenario saw no departures: %+v", st)
			}
			want = b.String()
			continue
		}
		if b.String() != want {
			t.Fatalf("CohortScenario diverged at fleet-workers=%d:\n%s\nvs 1:\n%s",
				workers, b.String(), want)
		}
	}
}

// TestFleetScenarioLedger checks the roll-up the figure prints actually
// balances: every arrival accounted for, every started migration resolved.
func TestFleetScenarioLedger(t *testing.T) {
	for _, p := range fleet.Placements() {
		st := FleetScenario(p, fleetTestOptions())
		if !st.Balanced() {
			t.Errorf("%v: ledger imbalance: %+v", p, st)
		}
		if st.Devices != 8 {
			t.Errorf("%v: ran %d devices, want 8", p, st.Devices)
		}
		if st.Completed == 0 {
			t.Errorf("%v: no I/O completed", p)
		}
	}
}
