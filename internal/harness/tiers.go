package harness

import (
	"fmt"
	"io"

	"repro/internal/fleet"
)

// DefaultTierDevices sizes FigureTiers' hybrid rack when
// Options.FleetDevices is zero: small enough that the learned policy's
// per-shard agent stacks keep the figure fast, large enough for both
// tiers to hold several tenants.
const DefaultTierDevices = 8

// tierConfig maps harness Options onto a hybrid (tiered) rack: a fast
// SLC-like class on a quarter of the devices, a dense QLC-like class on
// the rest, cohort churn so slots keep freeing (tier moves need
// somewhere to go on an oversubscribed rack), and no load-balancing
// migration — promotes and demotes are the only movers, so the policies
// differ in nothing else.
func tierConfig(tp fleet.TierPolicyKind, opt Options) fleet.Config {
	devices := opt.FleetDevices
	if devices <= 0 {
		devices = DefaultTierDevices
	}
	fast := devices / 4
	if fast < 1 {
		fast = 1
	}
	cfg := fleet.Config{
		Seed:       opt.Seed,
		Window:     opt.Window,
		Duration:   opt.Duration,
		Classes:    fleet.DefaultTierClasses(fast, devices-fast),
		TierPolicy: tp,
		// Churn: mean session of half the run, and oversubscription of 2×
		// rack capacity, so departures keep freeing slots for tier moves.
		Lifetime: opt.Duration / 2,
		Tenants:  devices*2*2 + 1,
		// Tier moves start cold so the copy is cheap and the destination
		// warms from real traffic.
		PrefillFrac: -1,
		Workers:     opt.Workers,
		Pin:         opt.PinFleetWorkers,
	}
	if opt.FleetWorkers > 0 {
		cfg.Workers = opt.FleetWorkers
	}
	if opt.Obs != nil {
		cfg.Obs = opt.Obs.Registry()
	}
	return cfg
}

// TierScenario runs one hybrid rack under the given tier policy and
// returns the fleet roll-up. The run is byte-identical at any
// Options.Workers setting.
func TierScenario(tp fleet.TierPolicyKind, opt Options) fleet.Stats {
	return fleet.New(tierConfig(tp, opt)).Run()
}

// FigureTiers renders the hybrid-rack scenario: the same arrival
// sequence on the same SLC-like/QLC-like rack under each tier policy —
// static-pin, adaptive watermark, and the learned placement head — with
// the latency-class tail summary as the comparison axis (tail latency at
// matched capacity). Output is deterministic for a given seed at any
// worker count.
func FigureTiers(w io.Writer, opt Options) {
	devices := opt.FleetDevices
	if devices <= 0 {
		devices = DefaultTierDevices
	}
	fmt.Fprintf(w, "== Tiers: %d-device hybrid rack (SLC-like/QLC-like), promote/demote policies (seed=%d) ==\n",
		devices, opt.Seed)
	type row struct {
		tp   fleet.TierPolicyKind
		mean float64
	}
	var rows []row
	for _, tp := range fleet.TierPolicies() {
		st := TierScenario(tp, opt)
		fmt.Fprintf(w, "tier-policy=%s\n", tp)
		st.Render(w)
		rows = append(rows, row{tp, st.LsMeanP99Ms})
	}
	fmt.Fprintf(w, "summary: ls meanP99")
	for _, r := range rows {
		fmt.Fprintf(w, " %s=%.2fms", r.tp, r.mean)
	}
	fmt.Fprintf(w, "\n")
}
