package harness

import (
	"fmt"
	"io"

	"repro/internal/fleet"
)

// DefaultFleetDevices sizes FigureFleet's rack when Options.FleetDevices
// is zero.
const DefaultFleetDevices = 64

// fleetConfig maps harness Options onto a rack-scale fleet run: one device
// shard per FleetDevices, migration on, the experiment seed deriving every
// shard and tenant stream, and the shard fan-out bounded by Workers.
func fleetConfig(placement fleet.PlacementKind, opt Options) fleet.Config {
	cfg := fleet.Config{
		Devices:   opt.FleetDevices,
		Seed:      opt.Seed,
		Window:    opt.Window,
		Duration:  opt.Duration,
		Placement: placement,
		Migration: true,
		Workers:   opt.Workers,
		Pin:       opt.PinFleetWorkers,
	}
	if opt.FleetWorkers > 0 {
		cfg.Workers = opt.FleetWorkers
	}
	if cfg.Devices <= 0 {
		cfg.Devices = DefaultFleetDevices
	}
	if opt.Obs != nil {
		cfg.Obs = opt.Obs.Registry()
	}
	return cfg
}

// FleetScenario runs one rack under the given placement baseline and
// returns the fleet roll-up. The run is byte-identical at any
// Options.Workers setting.
func FleetScenario(placement fleet.PlacementKind, opt Options) fleet.Stats {
	return fleet.New(fleetConfig(placement, opt)).Run()
}

// FigureFleet renders the rack-scale scenario: every placement baseline
// over the same arrival sequence, with fleet admission and cold migration
// live, so the placement policies differ only in where tenants land.
// Output is deterministic for a given seed at any worker count.
func FigureFleet(w io.Writer, opt Options) {
	devices := opt.FleetDevices
	if devices <= 0 {
		devices = DefaultFleetDevices
	}
	fmt.Fprintf(w, "== Fleet: %d-device rack, placement baselines under admission + cold migration (seed=%d) ==\n",
		devices, opt.Seed)
	for _, p := range fleet.Placements() {
		st := FleetScenario(p, opt)
		fmt.Fprintf(w, "placement=%s\n", p)
		st.Render(w)
	}
}
