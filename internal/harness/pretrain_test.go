package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/sim"
)

func TestPretrainProducesNet(t *testing.T) {
	pc := DefaultPretrainConfig()
	pc.Episodes = 1
	pc.EpisodeDuration = 4 * sim.Second
	net := Pretrain(pc)
	if net == nil || net.NumParams() < 1000 {
		t.Fatal("pretraining produced no usable network")
	}
}

// Same seed + same worker count ⇒ byte-identical weights, even though the
// two episodes of each round run on concurrent goroutines.
func TestPretrainDeterministicAcrossRuns(t *testing.T) {
	pc := DefaultPretrainConfig()
	pc.Episodes = 2
	pc.Workers = 2
	pc.EpisodeDuration = 2 * sim.Second
	a := Pretrain(pc)
	b := Pretrain(pc)
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("weight %d differs between identical runs: %v != %v", i, pa[i], pb[i])
		}
	}
}

// RunEpisode is the trainer's episode factory: it must produce one rollout
// per collocated tenant, terminal-marked, without mutating the policy net.
func TestRunEpisodeCollectsRollouts(t *testing.T) {
	net := nn.NewActorCritic(core.DefaultHistoryWindows*core.StatesPerWindow, 50,
		[]int{len(core.HarvestLevels), len(core.HarvestLevels), len(core.PriorityLevels)},
		sim.NewRNG(3))
	before := net.Params()
	spec := EpisodeSpec{
		Mix:      MixSpec{Label: "t", Workloads: []string{"TPCE", "BatchAnalytics"}},
		Seed:     5,
		Window:   100 * sim.Millisecond,
		Duration: 2 * sim.Second,
	}
	bufs := RunEpisode(spec, net)
	if len(bufs) != 2 {
		t.Fatalf("%d rollouts for 2 tenants", len(bufs))
	}
	for i, b := range bufs {
		if b.Len() < 10 {
			t.Fatalf("tenant %d collected only %d transitions", i, b.Len())
		}
		if steps := b.Steps(); !steps[len(steps)-1].Done {
			t.Fatalf("tenant %d rollout not terminal-marked", i)
		}
	}
	after := net.Params()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("collection episode mutated the network")
		}
	}
}

// The Figure 10 acceptance check with a pretrained model: FleetIO must
// clearly beat hardware isolation on utilization while staying far below
// software isolation's tail latency.
func TestPretrainedFleetIOHarvests(t *testing.T) {
	if testing.Short() {
		t.Skip("pretraining is expensive")
	}
	opt := WithPretrained(DefaultOptions())
	opt.Window = 200 * sim.Millisecond
	opt.Warmup = 4 * sim.Second
	opt.Duration = 8 * sim.Second
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	hw := RunOne(mix, PolHardware, slos, opt)
	sw := RunOne(mix, PolSoftware, slos, opt)
	fio := RunOne(mix, PolFleetIO, slos, opt)
	t.Logf("util: hw=%.3f fio=%.3f sw=%.3f", hw.AvgUtil, fio.AvgUtil, sw.AvgUtil)
	t.Logf("biBW: hw=%.1f fio=%.1f sw=%.1f MB/s", hw.BandwidthTenant(), fio.BandwidthTenant(), sw.BandwidthTenant())
	t.Logf("P99: hw=%.2f fio=%.2f sw=%.2f ms", hw.LatencyTenantP99(), fio.LatencyTenantP99(), sw.LatencyTenantP99())
	if fio.AvgUtil < 1.10*hw.AvgUtil {
		t.Fatalf("FleetIO util %.3f < 1.10× hardware %.3f", fio.AvgUtil, hw.AvgUtil)
	}
	// The Figure 10 ordering: FleetIO's tail sits between hardware and
	// software isolation, closer to hardware as training matures.
	if fio.LatencyTenantP99() >= sw.LatencyTenantP99() {
		t.Fatalf("FleetIO P99 %.2f not below software %.2f", fio.LatencyTenantP99(), sw.LatencyTenantP99())
	}
	if fio.LatencyTenantP99() > 2.2*hw.LatencyTenantP99() {
		t.Fatalf("FleetIO P99 %.2f too far above hardware %.2f", fio.LatencyTenantP99(), hw.LatencyTenantP99())
	}
}
