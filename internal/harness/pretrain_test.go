package harness

import (
	"testing"

	"repro/internal/sim"
)

func TestPretrainProducesNet(t *testing.T) {
	pc := DefaultPretrainConfig()
	pc.Episodes = 1
	pc.EpisodeDuration = 4 * sim.Second
	net := Pretrain(pc)
	if net == nil || net.NumParams() < 1000 {
		t.Fatal("pretraining produced no usable network")
	}
}

// The Figure 10 acceptance check with a pretrained model: FleetIO must
// clearly beat hardware isolation on utilization while staying far below
// software isolation's tail latency.
func TestPretrainedFleetIOHarvests(t *testing.T) {
	if testing.Short() {
		t.Skip("pretraining is expensive")
	}
	opt := WithPretrained(DefaultOptions())
	opt.Window = 200 * sim.Millisecond
	opt.Warmup = 4 * sim.Second
	opt.Duration = 8 * sim.Second
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	hw := RunOne(mix, PolHardware, slos, opt)
	sw := RunOne(mix, PolSoftware, slos, opt)
	fio := RunOne(mix, PolFleetIO, slos, opt)
	t.Logf("util: hw=%.3f fio=%.3f sw=%.3f", hw.AvgUtil, fio.AvgUtil, sw.AvgUtil)
	t.Logf("biBW: hw=%.1f fio=%.1f sw=%.1f MB/s", hw.BandwidthTenant(), fio.BandwidthTenant(), sw.BandwidthTenant())
	t.Logf("P99: hw=%.2f fio=%.2f sw=%.2f ms", hw.LatencyTenantP99(), fio.LatencyTenantP99(), sw.LatencyTenantP99())
	if fio.AvgUtil < 1.10*hw.AvgUtil {
		t.Fatalf("FleetIO util %.3f < 1.10× hardware %.3f", fio.AvgUtil, hw.AvgUtil)
	}
	// The Figure 10 ordering: FleetIO's tail sits between hardware and
	// software isolation, closer to hardware as training matures.
	if fio.LatencyTenantP99() >= sw.LatencyTenantP99() {
		t.Fatalf("FleetIO P99 %.2f not below software %.2f", fio.LatencyTenantP99(), sw.LatencyTenantP99())
	}
	if fio.LatencyTenantP99() > 2.2*hw.LatencyTenantP99() {
		t.Fatalf("FleetIO P99 %.2f too far above hardware %.2f", fio.LatencyTenantP99(), hw.LatencyTenantP99())
	}
}
