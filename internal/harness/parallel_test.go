package harness

import (
	"bytes"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Compare must produce identical Result structs at any worker count —
// every run owns its engine, platform, and RNG streams, and results land
// in index-addressed slots.
func TestCompareParallelMatchesSequential(t *testing.T) {
	opt := WithPretrained(fastOptions())
	opt.Duration = 3 * sim.Second
	mix := Pair("YCSB", "TeraSort")
	kinds := []PolicyKind{PolHardware, PolSoftware, PolFleetIO}

	opt.Workers = 1
	seq := Compare(mix, kinds, opt)
	opt.Workers = 4
	par := Compare(mix, kinds, opt)

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Compare diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// compareAll (the figure grids) must match per-mix sequential Compare
// exactly, including row order.
func TestCompareAllMatchesCompare(t *testing.T) {
	opt := fastOptions()
	opt.Duration = 3 * sim.Second
	mixes := []MixSpec{Pair("YCSB", "TeraSort"), Pair("VDI-Web", "PageRank")}
	kinds := []PolicyKind{PolHardware, PolSoftware}

	opt.Workers = 4
	rows := compareAll(mixes, kinds, opt)

	opt.Workers = 1
	for i, mix := range mixes {
		want := Compare(mix, kinds, opt)
		if !reflect.DeepEqual(rows[i], want) {
			t.Fatalf("compareAll row %d (%s) diverged:\ngrid: %+v\nseq:  %+v", i, mix.Label, rows[i], want)
		}
	}
}

// Parallel runs sharing one Observer must be race-clean (run under -race)
// and still produce deterministic results.
func TestCompareParallelWithObserver(t *testing.T) {
	opt := fastOptions()
	opt.Duration = 3 * sim.Second
	opt.Obs = obs.NewObserver()
	opt.Workers = 4
	mix := Pair("YCSB", "TeraSort")
	kinds := []PolicyKind{PolHardware, PolSoftware, PolAdaptive}

	par := Compare(mix, kinds, opt)

	opt.Obs = obs.NewObserver()
	opt.Workers = 1
	seq := Compare(mix, kinds, opt)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("observed parallel Compare diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if opt.Obs.Recorder().Len() == 0 {
		// Static policies record window events; an empty recorder means the
		// observer was never wired through.
		t.Fatal("observer recorded no events")
	}
}

// Figure16's fan-out must print the same bytes at any worker count.
func TestFigure16ParallelDeterministic(t *testing.T) {
	opt := WithPretrained(fastOptions())
	opt.Duration = 3 * sim.Second

	var seq, par bytes.Buffer
	opt.Workers = 1
	resSeq := Figure16(&seq, opt)
	opt.Workers = 4
	resPar := Figure16(&par, opt)

	if !reflect.DeepEqual(resSeq, resPar) {
		t.Fatalf("Figure16 results diverged:\nseq: %+v\npar: %+v", resSeq, resPar)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("Figure16 output diverged:\nseq:\n%s\npar:\n%s", seq.String(), par.String())
	}
}

// forEach must hit every index exactly once for awkward worker/job ratios.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 31} {
			hits := make([]int32, n)
			forEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}
