package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunOneObserved drives a full FleetIO run with an attached Observer
// and checks that the whole pipeline lights up: decision events from the
// policy, gSB and GC events from the device stack, and populated
// time-series gauges from the sampler.
func TestRunOneObserved(t *testing.T) {
	opt := fastOptions()
	opt.TrainDuringRun = false // deterministic greedy actions are enough
	opt.Obs = obs.NewObserver()
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	res := RunOne(mix, PolFleetIO, slos, opt)
	if len(res.Tenants) != 2 {
		t.Fatalf("got %d tenants", len(res.Tenants))
	}

	rec := opt.Obs.Recorder()
	if rec.Len() == 0 {
		t.Fatal("observed run recorded no events")
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	// Every window must produce the three decision kinds plus a reward
	// per agent; the admission controller admits the harvest actions.
	for _, k := range []obs.EventKind{
		obs.KindHarvest, obs.KindMakeHarvestable, obs.KindSetPriority,
		obs.KindReward, obs.KindAdmissionAdmit,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded (histogram: %v)", k, kinds)
		}
	}
	// The prefilled device under sustained writes must collect garbage.
	if kinds[obs.KindGCRun] == 0 {
		t.Errorf("no gc_run events recorded")
	}
	for _, e := range rec.Events() {
		if e.At < 0 || e.Seq == 0 {
			t.Fatalf("unstamped event %+v", e)
		}
	}

	reg := opt.Obs.Registry()
	names := strings.Join(reg.Names(), "\n")
	for _, want := range []string{
		"fleetio_vssd_bandwidth_bytes_per_second",
		"fleetio_vssd_iops",
		"fleetio_vssd_p99_seconds",
		"fleetio_vssd_queue_depth",
		"fleetio_ftl_gc_runs_total",
		"fleetio_gsb_created_total",
		"fleetio_admission_admitted_total",
		"fleetio_obs_samples_total",
		"fleetio_sim_time_seconds",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("registry missing %s", want)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `fleetio_vssd_iops{vssd="0",name="YCSB-0"}`) {
		t.Errorf("per-vSSD labelled series missing:\n%s", out[:min(len(out), 600)])
	}
	if reg.Gauge("fleetio_obs_samples_total", "").Value() == 0 {
		t.Error("sampler never ticked")
	}
	if reg.Gauge("fleetio_sim_time_seconds", "").Value() == 0 {
		t.Error("virtual clock gauge never set")
	}
}

// TestCalibrateUnobserved pins the contract that calibration runs leave
// no residue in the caller's observer.
func TestCalibrateUnobserved(t *testing.T) {
	opt := fastOptions()
	opt.Duration = 2 * opt.Window
	opt.Warmup = 2 * opt.Window
	opt.Obs = obs.NewObserver()
	Calibrate(Pair("YCSB", "TeraSort"), opt)
	if n := opt.Obs.Recorder().Len(); n != 0 {
		t.Fatalf("calibration leaked %d events into the observer", n)
	}
	if n := len(opt.Obs.Registry().Names()); n != 0 {
		t.Fatalf("calibration registered %d metric families", n)
	}
}
