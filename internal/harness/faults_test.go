package harness

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func faultTestOptions() Options {
	opt := DefaultOptions()
	opt.Window = 250 * sim.Millisecond
	opt.Warmup = 1 * sim.Second
	opt.Duration = 2 * sim.Second
	opt.BlocksPerChip = 32
	return opt
}

// TestFaultScenarioDeterministic pins the tentpole contract: the same seed
// produces byte-identical fault-scenario output at any worker count.
func TestFaultScenarioDeterministic(t *testing.T) {
	mixes := []MixSpec{Pair("VDI-Web", "TeraSort")}
	render := func(workers int) string {
		opt := faultTestOptions()
		opt.Workers = workers
		var b bytes.Buffer
		FigureFaults(&b, mixes, opt)
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("fault scenario output differs between 1 and 4 workers:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", seq, par)
	}
	if par != render(4) {
		t.Fatal("fault scenario output not reproducible across repeated runs")
	}
}

// TestFaultRecoveryInvariant runs a heavy-fault scenario and checks that
// every injected failure is visibly recovered: each program fail is
// remapped exactly once and resolved by exactly one retry/skip, and each
// erase fail retires its block.
func TestFaultRecoveryInvariant(t *testing.T) {
	opt := faultTestOptions()
	heavy := fault.Heavy()
	opt.Faults = &heavy
	opt.ErrorRateState = true
	mix := Pair("VDI-Web", "TeraSort")
	slos := Calibrate(mix, opt)
	res, st := RunOneWithFaults(mix, PolFleetIO, slos, opt)

	if st.Device.ProgramFails == 0 {
		t.Fatal("heavy fault profile injected no program failures")
	}
	if !st.Balanced() {
		t.Fatalf("recovery imbalance: injected=%d remapped=%d recovered=%d (writeRetries=%d gcRetry=%d gcSkip=%d)",
			st.Device.ProgramFails, st.Remapped, st.Recovered(),
			st.WriteRetries, st.GCRetryPrograms, st.GCRetrySkips)
	}
	if st.Retired < st.Device.EraseFails {
		t.Fatalf("retired blocks %d < injected erase fails %d", st.Retired, st.Device.EraseFails)
	}
	for _, tr := range res.Tenants {
		if tr.Completed == 0 {
			t.Fatalf("tenant %s completed no requests under faults", tr.Workload)
		}
	}
}

// TestFaultsDisabledMatchesBaseline pins the zero-cost contract at the
// harness level: a nil fault config produces the exact same Result as the
// plain entry point, with an all-zero fault ledger.
func TestFaultsDisabledMatchesBaseline(t *testing.T) {
	opt := faultTestOptions()
	mix := Pair("VDI-Web", "TeraSort")
	slos := Calibrate(mix, opt)
	base := RunOne(mix, PolFleetIO, slos, opt)
	res, st := RunOneWithFaults(mix, PolFleetIO, slos, opt)
	if st != (FaultRunStats{}) {
		t.Fatalf("fault ledger non-zero without an injector: %+v", st)
	}
	if renderResults([]Result{base}) != renderResults([]Result{res}) {
		t.Fatalf("fault-free RunOneWithFaults diverged from RunOne:\n%s\nvs\n%s",
			renderResults([]Result{base}), renderResults([]Result{res}))
	}
}
