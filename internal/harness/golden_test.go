package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// renderResults prints every field of every Result with %v (shortest exact
// float representation), so two renderings are byte-identical iff the
// simulations produced bit-identical numbers.
func renderResults(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "mix=%s policy=%s avgUtil=%v p95Util=%v\n", r.Mix, r.Policy, r.AvgUtil, r.P95Util)
		for _, tr := range r.Tenants {
			fmt.Fprintf(&b, "  tenant=%s class=%v bw=%v mean=%v p95=%v p99=%v p999=%v vio=%v slo=%v done=%v\n",
				tr.Workload, tr.Class, tr.BandwidthMBps, tr.MeanMs, tr.P95Ms,
				tr.P99Ms, tr.P999Ms, tr.VioRate, tr.SLOMs, tr.Completed)
		}
	}
	return b.String()
}

// TestCompareGolden pins the simulation output bit-for-bit: the same mix
// and policies must reproduce the checked-in golden rendering at every
// worker count. The golden file was generated before the pooled-Op /
// closure-free datapath landed, so it is the oracle that the
// allocation-free rewrite did not change a single simulated number.
// Regenerate (only for an intentional model change) with:
//
//	go test ./internal/harness/ -run TestCompareGolden -update
func TestCompareGolden(t *testing.T) {
	opt := fastOptions()
	opt.Duration = 3 * sim.Second
	mix := Pair("YCSB", "TeraSort")
	kinds := []PolicyKind{PolHardware, PolSoftware, PolFleetIO}

	golden := filepath.Join("testdata", "compare_golden.txt")
	var renders []string
	for _, workers := range []int{1, 2, 4} {
		opt.Workers = workers
		renders = append(renders, renderResults(Compare(mix, kinds, opt)))
	}
	for i, r := range renders[1:] {
		if r != renders[0] {
			t.Fatalf("workers=%d rendering diverged from workers=1:\n%s\nvs\n%s",
				[]int{2, 4}[i], r, renders[0])
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(renders[0]), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if renders[0] != string(want) {
		t.Fatalf("Compare output diverged from the pre-pooling golden:\ngot:\n%s\nwant:\n%s", renders[0], want)
	}
}
