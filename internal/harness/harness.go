// Package harness assembles full FleetIO experiments: it builds a platform
// per (mix, policy) pair, calibrates SLOs from hardware-isolated runs (the
// paper sets each vSSD's SLO to its hardware-isolated P99), warms the
// device up so GC is live, drives the workloads, and reports the
// utilization/bandwidth/latency numbers behind every figure in §4.
package harness

import (
	"fmt"
	"sync"

	"repro/internal/admission"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vssd"
	"repro/internal/workload"
)

// PolicyKind enumerates the §4.1 comparison policies.
type PolicyKind uint8

// Comparison policies.
const (
	PolHardware PolicyKind = iota
	PolSSDKeeper
	PolAdaptive
	PolSoftware
	PolFleetIO
	PolFleetIOUnifiedGlobal
	PolFleetIOCustomizedLocal
)

func (p PolicyKind) String() string {
	switch p {
	case PolHardware:
		return "Hardware Isolation"
	case PolSSDKeeper:
		return "SSDKeeper"
	case PolAdaptive:
		return "Adaptive"
	case PolSoftware:
		return "Software Isolation"
	case PolFleetIO:
		return "FleetIO"
	case PolFleetIOUnifiedGlobal:
		return "FleetIO-Unified-Global"
	case PolFleetIOCustomizedLocal:
		return "FleetIO-Customized-Local"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(p))
	}
}

// AllPolicies is the Figure 10–13 lineup.
func AllPolicies() []PolicyKind {
	return []PolicyKind{PolHardware, PolSSDKeeper, PolAdaptive, PolSoftware, PolFleetIO}
}

// Options scales an experiment. The defaults (via DefaultOptions) are
// tuned so a full figure regenerates in seconds while preserving the
// paper's relative behavior; pass bigger durations for tighter numbers.
type Options struct {
	Seed int64
	// Window is the RL decision window (paper: 2 s; scaled runs use less).
	Window sim.Time
	// Warmup is simulated before measurement starts (training + steady
	// state).
	Warmup sim.Time
	// Duration is the measured interval.
	Duration sim.Time
	// Channels, ChipsPerChannel, BlocksPerChip, PagesPerBlock shrink the
	// device for speed; zero keeps DefaultConfig values.
	Channels      int
	BlocksPerChip int
	// PrefillFrac warms the FTL (paper: ≥50% of free blocks consumed).
	PrefillFrac float64
	// Pretrained seeds FleetIO agents.
	Pretrained *nn.ActorCritic
	// TrainDuringRun keeps PPO fine-tuning online.
	TrainDuringRun bool
	// SoftwareShareFactor is the token-bucket slack for Software Isolation.
	SoftwareShareFactor float64
	// Obs, when non-nil, attaches decision tracing and time-series
	// telemetry to the measured run (calibration runs stay unobserved).
	Obs *obs.Observer
	// Workers bounds how many independent simulations Compare, PairGrid,
	// and the figure sweeps run concurrently (each on its own engine).
	// 0 means GOMAXPROCS; 1 forces sequential execution. Results are
	// byte-identical at any setting.
	Workers int
	// Faults, when non-nil and enabled, installs a NAND fault injector on
	// each measured run's device. Calibration runs stay fault-free so the
	// SLOs keep their clean-hardware definition; the measured run is then
	// judged against them under injected failures. A zero Config.Seed
	// derives the injector stream from Options.Seed, so fault scenarios
	// are per-seed deterministic.
	Faults *fault.Config
	// ErrorRateState widens the FleetIO RL state with the per-tenant
	// write-retry rate (core.StatesPerWindowExt). It changes the network
	// input width, so it is skipped when a Pretrained network (built at
	// the base width) is supplied.
	ErrorRateState bool
	// FleetDevices sizes the rack for FleetScenario/FigureFleet
	// (0 → DefaultFleetDevices). Single-device experiments ignore it.
	FleetDevices int
	// FleetWorkers sizes a fleet run's persistent shard-worker pool
	// independently of Workers (0 → Workers; then 0 → GOMAXPROCS,
	// 1 → inline sequential). Lets the shard fan-out differ from the
	// run-level fan-out when both are in play. Byte-identical at any
	// setting.
	FleetWorkers int
	// PinFleetWorkers locks each persistent shard worker to its OS
	// thread (runtime.LockOSThread) for the whole fleet run — a
	// scheduling hint for core affinity, never a semantic change.
	PinFleetWorkers bool
	// WorkloadShape overlays a temporal arrival shape (diurnal, bursty,
	// replay) on every tenant of the measured run. Calibration always
	// runs steady so the SLOs keep their §3.3.1 nominal-shape definition.
	WorkloadShape workload.Shape
	// ReplayRecords, when non-empty, is the trace replayed by
	// ShapeReplay tenants (each tenant replays the same records); empty
	// means each tenant replays a trace synthesized from its own profile.
	ReplayRecords []trace.Record
	// ScalarRL forces FleetIO's original scalar (per-agent, per-sample)
	// RL kernels instead of the batched matrix kernels. Both paths are
	// bit-identical by construction; the flag exists so CI can prove it
	// by diffing whole figure runs (see check.sh).
	ScalarRL bool
}

// DefaultOptions returns fast, deterministic settings for tests/benches.
func DefaultOptions() Options {
	return Options{
		Seed:                1,
		Window:              250 * sim.Millisecond,
		Warmup:              3 * sim.Second,
		Duration:            8 * sim.Second,
		Channels:            16,
		BlocksPerChip:       48,
		PrefillFrac:         0.55,
		TrainDuringRun:      true,
		SoftwareShareFactor: 0.9,
	}
}

func (o Options) flashConfig() flash.Config {
	cfg := flash.DefaultConfig()
	if o.Channels > 0 {
		cfg.Channels = o.Channels
	}
	cfg.ChipsPerChannel = 4
	if o.BlocksPerChip > 0 {
		cfg.BlocksPerChip = o.BlocksPerChip
	}
	cfg.PagesPerBlock = 64
	return cfg
}

// MixSpec is a set of collocated workloads sharing one SSD.
type MixSpec struct {
	Label     string
	Workloads []string
}

// Pair builds the two-tenant mixes of Figures 2/3/10–13.
func Pair(ls, bi string) MixSpec {
	return MixSpec{Label: ls + "+" + bi, Workloads: []string{ls, bi}}
}

// Table5Mixes returns the scalability mixes (Table 5).
func Table5Mixes() []MixSpec {
	return []MixSpec{
		{Label: "mix1", Workloads: []string{"VDI-Web", "TeraSort"}},
		{Label: "mix2", Workloads: []string{"YCSB", "PageRank"}},
		{Label: "mix3", Workloads: []string{"VDI-Web", "VDI-Web", "TeraSort", "TeraSort"}},
		{Label: "mix4", Workloads: []string{"VDI-Web", "YCSB", "TeraSort", "PageRank"}},
		{Label: "mix5", Workloads: []string{"VDI-Web", "VDI-Web", "VDI-Web", "VDI-Web",
			"TeraSort", "TeraSort", "PageRank", "MLPrep"}},
	}
}

// EvalPairs returns the six two-tenant pairs of §4.2.
func EvalPairs() []MixSpec {
	var out []MixSpec
	for _, ls := range workload.EvaluationLatency() {
		for _, bi := range workload.EvaluationBandwidth() {
			out = append(out, Pair(ls, bi))
		}
	}
	return out
}

// TenantResult is one vSSD's measured outcome.
type TenantResult struct {
	Workload      string
	Class         workload.Class
	BandwidthMBps float64
	MeanMs        float64
	P95Ms         float64
	P99Ms         float64
	P999Ms        float64
	VioRate       float64
	SLOMs         float64
	Completed     int64
}

// Result is one (mix, policy) run.
type Result struct {
	Mix     string
	Policy  string
	AvgUtil float64 // mean SSD bandwidth utilization over the run
	P95Util float64 // 95th percentile of per-window utilization
	Tenants []TenantResult
}

// BandwidthTenant returns the mean bandwidth (MB/s) of the
// bandwidth-intensive tenants.
func (r Result) BandwidthTenant() float64 {
	var sum float64
	var n int
	for _, t := range r.Tenants {
		if t.Class == workload.Bandwidth {
			sum += t.BandwidthMBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// LatencyTenantP99 returns the mean P99 (ms) of the latency-sensitive
// tenants.
func (r Result) LatencyTenantP99() float64 {
	var sum float64
	var n int
	for _, t := range r.Tenants {
		if t.Class == workload.Latency {
			sum += t.P99Ms
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// typeModelOnce caches the shared workload-type model (deterministic).
var (
	typeModelOnce sync.Once
	typeModel     *cluster.Model
	alphaByClust  map[int]float64
)

// TypeModel returns the workload-type classifier trained on all nine
// profiles plus the §3.8 α mapping for its clusters.
func TypeModel() (*cluster.Model, map[int]float64) {
	typeModelOnce.Do(func() {
		ds := cluster.BuildDataset(workload.Names(), 8, 2000, 16<<10, 42)
		// k-means is seed-sensitive; retry until the three anchor workloads
		// (one per paper cluster: LC-1, LC-2, BI) land in distinct clusters.
		for seed := int64(7); ; seed++ {
			m := cluster.Train(ds, 3, seed)
			vdi := m.WorkloadCluster["VDI-Web"]
			ycsb := m.WorkloadCluster["YCSB"]
			bi := m.WorkloadCluster["TeraSort"]
			if vdi != ycsb && vdi != bi && ycsb != bi {
				typeModel = m
				break
			}
			if seed > 57 {
				typeModel = m // give up after 50 tries; keep the last model
				break
			}
		}
		alphaByClust = map[int]float64{
			typeModel.WorkloadCluster["VDI-Web"]:  core.AlphaLC1,
			typeModel.WorkloadCluster["YCSB"]:     core.AlphaLC2,
			typeModel.WorkloadCluster["TeraSort"]: core.AlphaBI,
		}
	})
	return typeModel, alphaByClust
}

// run is one fully built experiment instance.
type run struct {
	eng    *sim.Engine
	plat   *vssd.Platform
	gens   []*workload.Generator
	recs   []*trace.Recorder
	runner *core.Runner
	utils  []float64 // per-window utilization during measurement
	opt    Options
}

// buildPlatform creates the platform and vSSDs for the mix under the given
// sharing style. slos may be nil (calibration run).
func buildPlatform(mix MixSpec, kind PolicyKind, slos []sim.Time, opt Options) *run {
	eng := sim.NewEngine()
	pc := vssd.DefaultPlatformConfig()
	pc.Flash = opt.flashConfig()
	plat := vssd.NewPlatform(eng, pc)
	if opt.Obs != nil {
		plat.SetObserver(opt.Obs.Recorder())
	}
	if opt.Faults != nil && opt.Faults.Enabled() {
		fc := *opt.Faults
		if fc.Seed == 0 {
			fc.Seed = opt.Seed
		}
		plat.Device().SetFaultInjector(fault.NewInjector(fc))
	}
	nT := len(mix.Workloads)
	nCh := pc.Flash.Channels
	if nCh%nT != 0 {
		panic(fmt.Sprintf("harness: %d channels not divisible by %d tenants", nCh, nT))
	}
	share := nCh / nT
	totalPages := pc.Flash.TotalBlocks() * pc.Flash.PagesPerBlock
	r := &run{eng: eng, plat: plat, opt: opt}
	rng := sim.NewRNG(opt.Seed)
	for i, name := range mix.Workloads {
		prof := workload.ByName(name)
		if opt.WorkloadShape != workload.ShapeSteady {
			// The shaped profile keeps its name and request mix, so SLO
			// seeding and result collection still key by workload.
			prof = workload.ApplyShape(prof, opt.WorkloadShape, shapeSeed(opt.Seed, i), opt.ReplayRecords)
		}
		cfg := vssd.Config{
			Name:             fmt.Sprintf("%s-%d", name, i),
			MaxInflightPages: prof.MaxInflightPages,
		}
		if kind == PolSoftware {
			cfg.Isolation = vssd.SoftwareIsolated
			cfg.Channels = chanRange(0, nCh)
			cfg.LogicalPages = int(float64(totalPages) * 0.8 / float64(nT))
		} else {
			cfg.Isolation = vssd.HardwareIsolated
			cfg.Channels = chanRange(i*share, (i+1)*share)
		}
		if slos != nil {
			cfg.SLO = slos[i]
		}
		v := plat.AddVSSD(cfg)
		if err := v.Tenant().Prefill(opt.PrefillFrac, 0.3, rng.Split(int64(100+i))); err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(eng, v, prof, rng.Split(int64(i)))
		rec := trace.NewRecorder(cluster.WindowSize)
		gen.Record(rec)
		r.gens = append(r.gens, gen)
		r.recs = append(r.recs, rec)
	}
	return r
}

// shapeSeed derives tenant i's trace-synthesis seed from the experiment
// seed through the sim.RNG.Stream split (a SplitMix64-style scramble of
// (seed, stream id), the same collision-free derivation the fleet uses
// for its shard and tenant streams). The old linear form
// opt.Seed*1000+int64(i) collided across experiments: seed S tenant 1000
// and seed S+1 tenant 0 synthesized identical traces.
func shapeSeed(seed int64, i int) int64 {
	return sim.NewRNG(seed).Stream(int64(i)).Int63()
}

func chanRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

// attachPolicy wires the policy and its runner to the platform.
func (r *run) attachPolicy(kind PolicyKind, mix MixSpec) {
	cfg := r.plat.FlashConfig()
	var pol core.Policy
	var adm *admission.Controller
	switch kind {
	case PolHardware:
		pol = baseline.HardwareIsolation()
	case PolSoftware:
		baseline.ConfigureSoftwareIsolation(r.plat, r.opt.SoftwareShareFactor)
		pol = baseline.SoftwareIsolation()
	case PolAdaptive:
		pol = &baseline.Adaptive{TotalChannels: cfg.Channels}
	case PolSSDKeeper:
		pol = baseline.NewSSDKeeper(cfg.Channels, cfg.ChannelBandwidth(), r.opt.Seed)
	case PolFleetIO, PolFleetIOUnifiedGlobal, PolFleetIOCustomizedLocal:
		tm, alphas := TypeModel()
		mode := core.ModeFull
		if kind == PolFleetIOUnifiedGlobal {
			mode = core.ModeUnifiedGlobal
		}
		if kind == PolFleetIOCustomizedLocal {
			mode = core.ModeCustomizedLocal
		}
		pretrained := r.opt.Pretrained
		if mode != core.ModeFull && pretrained != nil {
			// The Figure 15 ablation variants deploy models pretrained
			// under their own reward function — the reward shapes behavior
			// during training, not at inference.
			pretrained = PretrainedModelFor(mode)
		}
		f := core.NewFleetIO(r.plat, core.FleetIOConfig{
			Mode:           mode,
			Train:          r.opt.TrainDuringRun,
			TrainEvery:     10,
			TypeEvery:      5,
			Seed:           r.opt.Seed,
			Pretrained:     pretrained,
			TypeModel:      tm,
			AlphaByCluster: alphas,
			ErrorRateState: r.opt.ErrorRateState && pretrained == nil,
			ScalarRL:       r.opt.ScalarRL,
			Obs:            r.plat.Observer(),
		})
		for i, rec := range r.recs {
			f.SetRecorder(i, rec)
		}
		// Seed per-type α immediately from the known workload names so
		// short runs behave like converged typing; live re-typing keeps it
		// fresh.
		for i, name := range mix.Workloads {
			if c, ok := tm.WorkloadCluster[name]; ok {
				if a, ok2 := alphas[c]; ok2 {
					f.SetAlpha(i, a)
				}
			}
		}
		pol = f
		adm = admission.NewController(r.plat, nil)
		adm.Obs = r.plat.Observer()
	default:
		panic("harness: unknown policy kind")
	}
	r.runner = &core.Runner{Plat: r.plat, Adm: adm, Policy: pol, Window: r.opt.Window}
}

// execute runs warmup then measurement, collecting per-window utilization.
func (r *run) execute() {
	peak := r.plat.FlashConfig().ChannelBandwidth() * float64(r.plat.FlashConfig().Channels)
	measuring := false
	r.runner.OnWindow = func(_ sim.Time, snaps []vssd.WindowSnapshot) {
		if !measuring {
			return
		}
		var bytes int64
		var dur sim.Time
		for _, s := range snaps {
			bytes += s.Window.Bytes()
			if s.Duration > dur {
				dur = s.Duration
			}
		}
		if dur > 0 {
			r.utils = append(r.utils, float64(bytes)/(peak*float64(dur)/1e9))
		}
	}
	smp := r.startObserving()
	for _, g := range r.gens {
		g.Start()
	}
	r.runner.Start()
	r.eng.RunUntil(r.opt.Warmup)
	// Reset run-level metrics at the measurement boundary.
	for _, v := range r.plat.VSSDs() {
		v.ResetTotals()
		v.Rotate()
	}
	measuring = true
	r.eng.RunUntil(r.opt.Warmup + r.opt.Duration)
	for _, g := range r.gens {
		g.Stop()
	}
	smp.Stop()
}

// collect assembles the Result.
func (r *run) collect(mix MixSpec, kind PolicyKind) Result {
	res := Result{Mix: mix.Label, Policy: kind.String()}
	peak := r.plat.FlashConfig().ChannelBandwidth() * float64(r.plat.FlashConfig().Channels)
	var totalBytes int64
	for i, v := range r.plat.VSSDs() {
		prof := workload.ByName(mix.Workloads[i])
		h := v.TotalHist()
		tr := TenantResult{
			Workload:      prof.Name,
			Class:         prof.Class,
			BandwidthMBps: float64(v.TotalBytesMoved()) / (float64(r.opt.Duration) / 1e9) / 1e6,
			MeanMs:        h.Mean() / 1e6,
			P95Ms:         float64(h.P95()) / 1e6,
			P99Ms:         float64(h.P99()) / 1e6,
			P999Ms:        float64(h.P999()) / 1e6,
			SLOMs:         float64(v.SLO()) / 1e6,
			Completed:     v.Completed(),
		}
		if h.Count() > 0 && v.SLO() > 0 {
			tr.VioRate = float64(h.CountAbove(v.SLO())) / float64(h.Count())
		}
		totalBytes += v.TotalBytesMoved()
		res.Tenants = append(res.Tenants, tr)
	}
	res.AvgUtil = float64(totalBytes) / (peak * float64(r.opt.Duration) / 1e9)
	if len(r.utils) > 0 {
		sorted := append([]float64(nil), r.utils...)
		insertionSort(sorted)
		idx := int(0.95 * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		res.P95Util = sorted[idx]
	}
	return res
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Calibrate runs the mix hardware-isolated without SLOs and returns each
// tenant's measured P99 — the SLO definition of §3.3.1.
func Calibrate(mix MixSpec, opt Options) []sim.Time {
	// Calibration defines the SLOs; observing it would pollute the trace
	// and telemetry of the measured run that follows, injecting faults
	// into it would bake retry tails into the SLO itself, and shaping it
	// would redefine the SLO per shape instead of per workload (§3.3.1
	// measures the nominal hardware-isolated P99).
	opt.Obs = nil
	opt.Faults = nil
	opt.WorkloadShape = workload.ShapeSteady
	opt.ReplayRecords = nil
	r := buildPlatform(mix, PolHardware, nil, opt)
	r.attachPolicy(PolHardware, mix)
	r.execute()
	slos := make([]sim.Time, len(mix.Workloads))
	for i, v := range r.plat.VSSDs() {
		slos[i] = v.TotalHist().P99()
		if slos[i] <= 0 {
			slos[i] = 2 * sim.Millisecond
		}
	}
	return slos
}

// RunOne executes a single (mix, policy) experiment with the given SLOs.
func RunOne(mix MixSpec, kind PolicyKind, slos []sim.Time, opt Options) Result {
	r := buildPlatform(mix, kind, slos, opt)
	r.attachPolicy(kind, mix)
	r.execute()
	return r.collect(mix, kind)
}

// Compare calibrates the mix once and runs every requested policy. The
// per-policy runs are independent deterministic simulations, so they fan
// out over opt.Workers goroutines; results are returned in kinds order
// and are identical to a sequential loop.
func Compare(mix MixSpec, kinds []PolicyKind, opt Options) []Result {
	slos := Calibrate(mix, opt)
	out := make([]Result, len(kinds))
	forEach(len(kinds), opt.workers(), func(i int) {
		out[i] = RunOne(mix, kinds[i], slos, opt)
	})
	return out
}
