package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func tinyOptions() Options {
	o := DefaultOptions()
	o.Window = 200 * sim.Millisecond
	o.Warmup = 1 * sim.Second
	o.Duration = 2 * sim.Second
	o.BlocksPerChip = 32
	return o
}

func TestFigure6Output(t *testing.T) {
	var buf bytes.Buffer
	Figure6(&buf)
	out := buf.String()
	for _, want := range []string{"cluster", "TeraSort", "YCSB", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2And3Formatting(t *testing.T) {
	opt := tinyOptions()
	grid := map[string][]Result{}
	for _, mix := range EvalPairs() {
		grid[mix.Label] = Compare(mix, []PolicyKind{PolHardware, PolSoftware}, opt)
	}
	var buf bytes.Buffer
	Figure2(&buf, grid)
	Figure3(&buf, grid)
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "Figure 3a") || !strings.Contains(out, "Figure 3b") {
		t.Fatalf("missing figure headers:\n%s", out)
	}
	if !strings.Contains(out, "YCSB+TeraSort") {
		t.Fatal("missing pair rows")
	}
}

func TestFigure16MixedIsolation(t *testing.T) {
	opt := tinyOptions()
	var buf bytes.Buffer
	rows := Figure16(&buf, opt)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	labels := []string{"Mixed Isolation", "Software Isolation", "FleetIO"}
	for i, r := range rows {
		if r.Policy != labels[i] {
			t.Fatalf("row %d = %q", i, r.Policy)
		}
		if r.AvgUtil <= 0 || r.BIMBps <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestRunTransferMeasuresFinalMix(t *testing.T) {
	opt := tinyOptions()
	res := RunTransfer("TeraSort", "VDI-Web", "YCSB", opt)
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	if res.Tenants[0].Workload != "TeraSort" || res.Tenants[1].Workload != "YCSB" {
		t.Fatalf("final mix wrong: %s + %s", res.Tenants[0].Workload, res.Tenants[1].Workload)
	}
	for _, tr := range res.Tenants {
		if tr.Completed == 0 {
			t.Fatalf("%s idle after the swap", tr.Workload)
		}
	}
}

func TestOverheadsReport(t *testing.T) {
	var buf bytes.Buffer
	rep := Overheads(&buf)
	if rep.InferencePerWindow <= 0 || rep.FineTunePer10Windows <= 0 ||
		rep.GSBCreate <= 0 || rep.AdmissionPer1000 <= 0 {
		t.Fatalf("degenerate overheads: %+v", rep)
	}
	if rep.ModelParams < 4000 || rep.ModelParams > 12000 {
		t.Fatalf("model params = %d, want the paper's ~9K regime", rep.ModelParams)
	}
	if rep.ModelBytes <= 0 {
		t.Fatal("model bytes missing")
	}
	if !strings.Contains(buf.String(), "overhead") {
		t.Fatal("report text missing")
	}
}
