package harness

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func fastOptions() Options {
	o := DefaultOptions()
	o.Window = 200 * sim.Millisecond
	o.Warmup = 2 * sim.Second
	o.Duration = 4 * sim.Second
	o.BlocksPerChip = 32
	return o
}

func TestPolicyKindStrings(t *testing.T) {
	want := map[PolicyKind]string{
		PolHardware: "Hardware Isolation", PolSSDKeeper: "SSDKeeper",
		PolAdaptive: "Adaptive", PolSoftware: "Software Isolation",
		PolFleetIO: "FleetIO", PolFleetIOUnifiedGlobal: "FleetIO-Unified-Global",
		PolFleetIOCustomizedLocal: "FleetIO-Customized-Local",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestEvalPairsAndMixes(t *testing.T) {
	pairs := EvalPairs()
	if len(pairs) != 6 {
		t.Fatalf("eval pairs = %d, want 6", len(pairs))
	}
	mixes := Table5Mixes()
	if len(mixes) != 5 {
		t.Fatalf("mixes = %d", len(mixes))
	}
	sizes := []int{2, 2, 4, 4, 8}
	for i, m := range mixes {
		if len(m.Workloads) != sizes[i] {
			t.Fatalf("%s has %d workloads, want %d", m.Label, len(m.Workloads), sizes[i])
		}
	}
}

func TestCalibrateProducesSLOs(t *testing.T) {
	opt := fastOptions()
	slos := Calibrate(Pair("YCSB", "TeraSort"), opt)
	if len(slos) != 2 {
		t.Fatalf("slos = %v", slos)
	}
	for i, s := range slos {
		if s < 100*sim.Microsecond || s > 500*sim.Millisecond {
			t.Fatalf("SLO[%d] = %v implausible", i, s)
		}
	}
}

// The §2.2 motivation shape: software isolation wins utilization and
// bandwidth, hardware isolation wins tail latency.
func TestHardwareVsSoftwareShape(t *testing.T) {
	opt := fastOptions()
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	hw := RunOne(mix, PolHardware, slos, opt)
	sw := RunOne(mix, PolSoftware, slos, opt)

	if sw.AvgUtil <= hw.AvgUtil {
		t.Fatalf("software util %.3f must exceed hardware %.3f", sw.AvgUtil, hw.AvgUtil)
	}
	if sw.BandwidthTenant() <= hw.BandwidthTenant() {
		t.Fatalf("software BI bandwidth %.1f must exceed hardware %.1f",
			sw.BandwidthTenant(), hw.BandwidthTenant())
	}
	if sw.LatencyTenantP99() <= hw.LatencyTenantP99() {
		t.Fatalf("software P99 %.2fms must exceed hardware %.2fms",
			sw.LatencyTenantP99(), hw.LatencyTenantP99())
	}
	// Sanity on magnitudes.
	if hw.AvgUtil <= 0.05 || hw.AvgUtil > 1.0 {
		t.Fatalf("hardware util = %.3f out of plausible range", hw.AvgUtil)
	}
	for _, tr := range hw.Tenants {
		if tr.Completed == 0 {
			t.Fatalf("%s completed nothing", tr.Workload)
		}
	}
}

// The headline Figure 10 shape: FleetIO lands between the extremes —
// utilization well above hardware isolation, tail latency well below
// software isolation.
func TestFleetIOTradeoffShape(t *testing.T) {
	opt := WithPretrained(fastOptions())
	opt.Warmup = 4 * sim.Second // extra online fine-tuning time
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	hw := RunOne(mix, PolHardware, slos, opt)
	sw := RunOne(mix, PolSoftware, slos, opt)
	fio := RunOne(mix, PolFleetIO, slos, opt)

	if fio.AvgUtil <= hw.AvgUtil {
		t.Fatalf("FleetIO util %.3f must beat hardware %.3f", fio.AvgUtil, hw.AvgUtil)
	}
	if fio.LatencyTenantP99() >= sw.LatencyTenantP99() {
		t.Fatalf("FleetIO P99 %.2fms must beat software %.2fms",
			fio.LatencyTenantP99(), sw.LatencyTenantP99())
	}
	t.Logf("util: hw=%.3f fio=%.3f sw=%.3f | P99: hw=%.2f fio=%.2f sw=%.2f",
		hw.AvgUtil, fio.AvgUtil, sw.AvgUtil,
		hw.LatencyTenantP99(), fio.LatencyTenantP99(), sw.LatencyTenantP99())
}

func TestTypeModelAlphaMapping(t *testing.T) {
	tm, alphas := TypeModel()
	if tm == nil || len(alphas) == 0 {
		t.Fatal("type model missing")
	}
	// The three paper clusters map to the three §3.8 α values.
	seen := map[float64]bool{}
	for _, a := range alphas {
		seen[a] = true
	}
	if len(alphas) != 3 {
		t.Fatalf("alpha map = %v, want 3 clusters", alphas)
	}
	_ = workload.Names()
}

func TestAdaptiveAndSSDKeeperRun(t *testing.T) {
	opt := fastOptions()
	opt.Duration = 3 * sim.Second
	mix := Pair("VDI-Web", "PageRank")
	slos := Calibrate(mix, opt)
	for _, k := range []PolicyKind{PolAdaptive, PolSSDKeeper} {
		res := RunOne(mix, k, slos, opt)
		if res.AvgUtil <= 0 {
			t.Fatalf("%s produced zero utilization", k)
		}
		for _, tr := range res.Tenants {
			if tr.Completed == 0 {
				t.Fatalf("%s: %s completed nothing", k, tr.Workload)
			}
		}
	}
}
