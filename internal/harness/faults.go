package harness

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
)

// FaultLevel pairs a scenario label with an injector configuration.
type FaultLevel struct {
	Name string
	// Cfg is nil for the fault-free baseline level.
	Cfg *fault.Config
}

// FaultLevels is the off/light/heavy ladder the fault scenario sweeps.
func FaultLevels() []FaultLevel {
	light := fault.Light()
	heavy := fault.Heavy()
	return []FaultLevel{
		{Name: "off"},
		{Name: "light", Cfg: &light},
		{Name: "heavy", Cfg: &heavy},
	}
}

// FaultRunStats is the fault-recovery ledger of one measured run: what the
// device injected and what the FTL/vSSD layers did about it.
type FaultRunStats struct {
	Device          flash.FaultStats
	Retired         int64
	Remapped        int64
	GCRetryPrograms int64
	GCRetrySkips    int64
	WriteRetries    int64
}

// Recovered is the number of injected program failures resolved by a
// recovery action. A healthy run satisfies
// Device.ProgramFails == Remapped == Recovered().
func (s FaultRunStats) Recovered() int64 {
	return s.WriteRetries + s.GCRetryPrograms + s.GCRetrySkips
}

// Balanced reports whether every injected program failure was remapped and
// recovered exactly once — the invariant the fault-injection error paths
// are built around.
func (s FaultRunStats) Balanced() bool {
	return s.Device.ProgramFails == s.Remapped && s.Device.ProgramFails == s.Recovered()
}

// RunOneWithFaults is RunOne plus the run's fault-recovery ledger, read
// off the platform after the measured interval.
func RunOneWithFaults(mix MixSpec, kind PolicyKind, slos []sim.Time, opt Options) (Result, FaultRunStats) {
	r := buildPlatform(mix, kind, slos, opt)
	r.attachPolicy(kind, mix)
	r.execute()
	res := r.collect(mix, kind)
	// Settle the ledger before reading it: a program that failed right at
	// the stop boundary may not have completed its retry yet, and a GC
	// re-program can be waiting out a 1 ms allocation backoff. The Result
	// was collected first, so the measured figures are untouched.
	r.eng.RunUntil(opt.Warmup + opt.Duration + 50*sim.Millisecond)
	fst := r.plat.FTL().Stats()
	st := FaultRunStats{
		Device:          r.plat.Device().FaultStats(),
		Retired:         fst.Retired,
		Remapped:        fst.Remapped,
		GCRetryPrograms: fst.GCRetryPrograms,
		GCRetrySkips:    fst.GCRetrySkips,
	}
	for _, v := range r.plat.VSSDs() {
		st.WriteRetries += v.TotalRetries()
	}
	return res, st
}

// FaultScenarioResult is one fault level's outcome within a scenario.
type FaultScenarioResult struct {
	Level  string
	Result Result
	Stats  FaultRunStats
}

// FaultScenario runs the mix under FleetIO at every fault level, against
// SLOs calibrated fault-free, and returns the per-level outcomes. The
// levels are independent deterministic simulations and fan out over
// opt.Workers goroutines; results come back in level order regardless of
// worker count.
func FaultScenario(mix MixSpec, opt Options) []FaultScenarioResult {
	slos := Calibrate(mix, opt)
	levels := FaultLevels()
	out := make([]FaultScenarioResult, len(levels))
	forEach(len(levels), opt.workers(), func(i int) {
		o := opt
		o.Faults = levels[i].Cfg
		o.ErrorRateState = o.Faults != nil && o.Faults.Enabled()
		res, st := RunOneWithFaults(mix, PolFleetIO, slos, o)
		out[i] = FaultScenarioResult{Level: levels[i].Name, Result: res, Stats: st}
	})
	return out
}

// FigureFaults renders the fault scenario for every mix: SLO preservation
// under injected NAND failures, with the injected/recovered ledger per
// level. Output is deterministic for a given seed at any worker count.
func FigureFaults(w io.Writer, mixes []MixSpec, opt Options) {
	fmt.Fprintf(w, "== Fault scenarios: SLO preservation under injected NAND failures (seed=%d) ==\n", opt.Seed)
	for _, mix := range mixes {
		rows := FaultScenario(mix, opt)
		fmt.Fprintf(w, "%s (%v)\n", mix.Label, mix.Workloads)
		fmt.Fprintf(w, "  %-6s %9s %9s %10s %10s %9s %9s %9s %9s\n",
			"level", "util%", "maxVio%", "pfail", "efail", "retired", "remap", "retries", "gcRetry")
		for _, row := range rows {
			maxVio := 0.0
			for _, tr := range row.Result.Tenants {
				if tr.VioRate > maxVio {
					maxVio = tr.VioRate
				}
			}
			st := row.Stats
			fmt.Fprintf(w, "  %-6s %9.2f %9.3f %10d %10d %9d %9d %9d %9d\n",
				row.Level, row.Result.AvgUtil*100, maxVio*100,
				st.Device.ProgramFails, st.Device.EraseFails,
				st.Retired, st.Remapped, st.WriteRetries,
				st.GCRetryPrograms+st.GCRetrySkips)
			if !st.Balanced() {
				fmt.Fprintf(w, "  !! recovery imbalance: injected=%d remapped=%d recovered=%d\n",
					st.Device.ProgramFails, st.Remapped, st.Recovered())
			}
		}
	}
}
