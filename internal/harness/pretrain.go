package harness

import (
	"sync"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/vssd"
	"repro/internal/workload"
)

// PretrainConfig scales the offline pretraining loop (§3.8: the paper
// pre-trains PPO on held-out workloads — LiveMaps, TPCE, SearchEngine,
// Batch Analytics — using a simulator to parallelize collection; here the
// same discrete-event simulator plays that role).
type PretrainConfig struct {
	Seed int64
	// Episodes is the number of simulated collocations to train over.
	Episodes int
	// EpisodeDuration is the virtual time per episode.
	EpisodeDuration sim.Time
	// Window is the decision window during pretraining (smaller than
	// deployment for more transitions per simulated second).
	Window sim.Time
	// LR is the pretraining learning rate (deployment fine-tuning uses the
	// paper's 1e-4; pretraining converges faster at 1e-3).
	LR float64
}

// DefaultPretrainConfig returns a budget that pretrains in tens of CPU
// seconds; cmd/fleettrain uses larger budgets.
func DefaultPretrainConfig() PretrainConfig {
	return PretrainConfig{
		Seed:            11,
		Episodes:        6,
		EpisodeDuration: 20 * sim.Second,
		Window:          100 * sim.Millisecond,
		LR:              1e-3,
	}
}

// pretrainMixes pairs the held-out workloads the way deployment collocates
// latency- and bandwidth-oriented tenants.
func pretrainMixes() []MixSpec {
	return []MixSpec{
		{Label: "pre1", Workloads: []string{"TPCE", "BatchAnalytics"}},
		{Label: "pre2", Workloads: []string{"LiveMaps", "BatchAnalytics"}},
		{Label: "pre3", Workloads: []string{"SearchEngine", "BatchAnalytics"}},
	}
}

// Pretrain trains one shared FleetIO network across episodes of held-out
// workload mixes and returns it.
func Pretrain(pc PretrainConfig) *nn.ActorCritic {
	return PretrainMode(pc, core.ModeFull)
}

// PretrainMode pretrains under a specific reward variant (Figure 15's
// ablation pretrains each mode separately, since the reward differences
// shape behavior during training, not at deployment).
func PretrainMode(pc PretrainConfig, mode core.Mode) *nn.ActorCritic {
	_ = workload.PretrainingSet() // the mixes below draw from this set
	var net *nn.ActorCritic
	mixes := pretrainMixes()
	rcfg := rl.DefaultConfig()
	rcfg.LR = pc.LR
	for ep := 0; ep < pc.Episodes; ep++ {
		mix := mixes[ep%len(mixes)]
		opt := DefaultOptions()
		opt.Seed = pc.Seed + int64(ep)
		opt.Window = pc.Window
		slos := pretrainSLOs(mix, opt)
		r := buildPlatform(mix, PolFleetIO, slos, opt)
		tm, alphas := TypeModel()
		f := core.NewFleetIO(r.plat, core.FleetIOConfig{
			Mode:           mode,
			Train:          true,
			TrainEvery:     5,
			Seed:           opt.Seed,
			Pretrained:     net,
			ShareModel:     true,
			TypeModel:      tm,
			AlphaByCluster: alphas,
			RL:             rcfg,
		})
		for i, rec := range r.recs {
			f.SetRecorder(i, rec)
		}
		for i, name := range mix.Workloads {
			if c, ok := tm.WorkloadCluster[name]; ok {
				if a, ok2 := alphas[c]; ok2 {
					f.SetAlpha(i, a)
				}
			}
		}
		adm := admission.NewController(r.plat, nil)
		r.runner = &core.Runner{Plat: r.plat, Adm: adm, Policy: f, Window: opt.Window}
		for _, g := range r.gens {
			g.Start()
		}
		r.runner.Start()
		r.eng.RunUntil(pc.EpisodeDuration)
		for _, g := range r.gens {
			g.Stop()
		}
		net = f.Net(0)
	}
	return net
}

// pretrainSLOs calibrates quickly with a short hardware-isolated run.
func pretrainSLOs(mix MixSpec, opt Options) []sim.Time {
	o := opt
	o.Warmup = sim.Second
	o.Duration = 2 * sim.Second
	return Calibrate(mix, o)
}

var (
	pretrainOnce  sync.Once
	pretrainedNet *nn.ActorCritic
	modeNetsMu    sync.Mutex
	modeNets      = map[core.Mode]*nn.ActorCritic{}
	// InjectedModel, when set before the first PretrainedModel call, is
	// used instead of running pretraining (cmd binaries load a model file).
	InjectedModel *nn.ActorCritic
	injectMu      sync.Mutex
)

// SetInjectedModel installs a pre-built model (e.g. loaded from
// cmd/fleettrain's output) for all subsequent PretrainedModel calls.
func SetInjectedModel(net *nn.ActorCritic) {
	injectMu.Lock()
	defer injectMu.Unlock()
	InjectedModel = net
}

// PretrainedModel returns the process-wide pretrained network, training it
// on first use unless a model was injected.
func PretrainedModel() *nn.ActorCritic {
	pretrainOnce.Do(func() {
		injectMu.Lock()
		inj := InjectedModel
		injectMu.Unlock()
		if inj != nil {
			pretrainedNet = inj
			return
		}
		pretrainedNet = Pretrain(DefaultPretrainConfig())
	})
	return pretrainedNet
}

// WithPretrained returns a copy of opt seeded with the process-wide
// pretrained model.
func WithPretrained(opt Options) Options {
	opt.Pretrained = PretrainedModel()
	return opt
}

var _ = vssd.HardwareIsolated // reserved for future mixed-isolation pretraining

// PretrainedModelFor returns (training once per process per mode) the
// network pretrained under the given reward variant. ModeFull aliases
// PretrainedModel.
func PretrainedModelFor(mode core.Mode) *nn.ActorCritic {
	if mode == core.ModeFull {
		return PretrainedModel()
	}
	modeNetsMu.Lock()
	defer modeNetsMu.Unlock()
	if net, ok := modeNets[mode]; ok {
		return net
	}
	net := PretrainMode(DefaultPretrainConfig(), mode)
	modeNets[mode] = net
	return net
}
