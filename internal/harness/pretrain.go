package harness

import (
	"sync"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/trainer"
	"repro/internal/vssd"
	"repro/internal/workload"
)

// PretrainConfig scales the offline pretraining loop (§3.8: the paper
// pre-trains PPO on held-out workloads — LiveMaps, TPCE, SearchEngine,
// Batch Analytics — using a simulator to parallelize collection; here the
// internal/trainer worker pool plays Ray's role over the same
// discrete-event simulator).
type PretrainConfig struct {
	Seed int64
	// Episodes is the number of simulated collocations to train over.
	Episodes int
	// EpisodeDuration is the virtual time per episode.
	EpisodeDuration sim.Time
	// Window is the decision window during pretraining (smaller than
	// deployment for more transitions per simulated second).
	Window sim.Time
	// LR is the pretraining learning rate (deployment fine-tuning uses the
	// paper's 1e-4; pretraining converges faster at 1e-3).
	LR float64
	// Workers is the number of concurrent collection workers (0 → 1).
	Workers int

	// CheckpointDir enables atomic snapshot/resume when non-empty.
	CheckpointDir string
	// CheckpointEvery is the round period of snapshots (default 1).
	CheckpointEvery int
	// Resume restarts from the newest readable checkpoint.
	Resume bool
	// MetricsPath appends per-round JSONL training telemetry.
	MetricsPath string
	// EvalEvery gates a held-out greedy eval episode every EvalEvery
	// rounds for best-model selection (0 disables).
	EvalEvery int
	// Logf receives per-round progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Obs, when non-nil, exports the trainer's per-round gauges for a
	// live /metrics endpoint (cmd/fleettrain -http).
	Obs *obs.Registry
}

// DefaultPretrainConfig returns a budget that pretrains in tens of CPU
// seconds; cmd/fleettrain uses larger budgets.
func DefaultPretrainConfig() PretrainConfig {
	return PretrainConfig{
		Seed:            11,
		Episodes:        6,
		EpisodeDuration: 20 * sim.Second,
		Window:          100 * sim.Millisecond,
		LR:              1e-3,
		Workers:         2,
	}
}

// pretrainMixes pairs the held-out workloads the way deployment collocates
// latency- and bandwidth-oriented tenants.
func pretrainMixes() []MixSpec {
	return []MixSpec{
		{Label: "pre1", Workloads: []string{"TPCE", "BatchAnalytics"}},
		{Label: "pre2", Workloads: []string{"LiveMaps", "BatchAnalytics"}},
		{Label: "pre3", Workloads: []string{"SearchEngine", "BatchAnalytics"}},
	}
}

// Pretrain trains one shared FleetIO network across episodes of held-out
// workload mixes and returns it.
func Pretrain(pc PretrainConfig) *nn.ActorCritic {
	return PretrainMode(pc, core.ModeFull)
}

// PretrainMode pretrains under a specific reward variant (Figure 15's
// ablation pretrains each mode separately, since the reward differences
// shape behavior during training, not at deployment).
func PretrainMode(pc PretrainConfig, mode core.Mode) *nn.ActorCritic {
	res, err := PretrainRun(pc, mode)
	if err != nil {
		// Without checkpoint/metrics paths Run cannot fail at runtime;
		// reaching here means a misconfigured call, which matches the
		// seed's panic-on-bad-config convention elsewhere in the harness.
		panic(err)
	}
	return res.Final
}

// PretrainRun is the full-fat pretraining entry point: it fans episode
// collection out across pc.Workers goroutines (each owning its own
// sim.Engine and platform), runs synchronous PPO updates on one shared
// network between rounds, and exposes checkpointing, eval-gated best-model
// selection, and JSONL telemetry to callers like cmd/fleettrain.
func PretrainRun(pc PretrainConfig, mode core.Mode) (*trainer.Result, error) {
	_ = workload.PretrainingSet() // the mixes below draw from this set
	mixes := pretrainMixes()
	rcfg := rl.DefaultConfig()
	rcfg.LR = pc.LR
	spec := func(mix MixSpec, seed int64, greedy bool) EpisodeSpec {
		return EpisodeSpec{
			Mix:      mix,
			Mode:     mode,
			Seed:     seed,
			Window:   pc.Window,
			Duration: pc.EpisodeDuration,
			RL:       rcfg,
			Greedy:   greedy,
		}
	}
	return trainer.Run(trainer.Config{
		Seed:     pc.Seed,
		Workers:  pc.Workers,
		Episodes: pc.Episodes,
		RL:       rcfg,
		NewNet: func(rng *sim.RNG) *nn.ActorCritic {
			dim := core.DefaultHistoryWindows * core.StatesPerWindow
			heads := []int{len(core.HarvestLevels), len(core.HarvestLevels), len(core.PriorityLevels)}
			return nn.NewActorCritic(dim, 50, heads, rng)
		},
		Collect: func(ep int, seed int64, net *nn.ActorCritic) *rl.Buffer {
			mix := mixes[ep%len(mixes)]
			return rl.Merge(RunEpisode(spec(mix, seed, false), net)...)
		},
		Eval: func(seed int64, net *nn.ActorCritic) float64 {
			// Score on the first held-out mix with greedy actions; the
			// fixed seed makes scores comparable across rounds.
			return rl.Merge(RunEpisode(spec(mixes[0], seed, true), net)...).MeanReward()
		},
		EvalEvery:       pc.EvalEvery,
		CheckpointDir:   pc.CheckpointDir,
		CheckpointEvery: pc.CheckpointEvery,
		Resume:          pc.Resume,
		MetricsPath:     pc.MetricsPath,
		Logf:            pc.Logf,
		Obs:             pc.Obs,
	})
}

var (
	pretrainOnce  sync.Once
	pretrainedNet *nn.ActorCritic
	modeNetsMu    sync.Mutex
	modeNets      = map[core.Mode]*nn.ActorCritic{}
	// injectedModel, when set before the first PretrainedModel call, is
	// used instead of running pretraining (cmd binaries load a model file).
	// Access only under injectMu, via SetInjectedModel.
	injectedModel *nn.ActorCritic
	injectMu      sync.Mutex
)

// SetInjectedModel installs a pre-built model (e.g. loaded from
// cmd/fleettrain's output) for all subsequent PretrainedModel calls.
func SetInjectedModel(net *nn.ActorCritic) {
	injectMu.Lock()
	defer injectMu.Unlock()
	injectedModel = net
}

// PretrainedModel returns the process-wide pretrained network, training it
// on first use unless a model was injected.
func PretrainedModel() *nn.ActorCritic {
	pretrainOnce.Do(func() {
		injectMu.Lock()
		inj := injectedModel
		injectMu.Unlock()
		if inj != nil {
			pretrainedNet = inj
			return
		}
		pretrainedNet = Pretrain(DefaultPretrainConfig())
	})
	return pretrainedNet
}

// WithPretrained returns a copy of opt seeded with the process-wide
// pretrained model.
func WithPretrained(opt Options) Options {
	opt.Pretrained = PretrainedModel()
	return opt
}

var _ = vssd.HardwareIsolated // reserved for future mixed-isolation pretraining

// PretrainedModelFor returns (training once per process per mode) the
// network pretrained under the given reward variant. ModeFull aliases
// PretrainedModel.
func PretrainedModelFor(mode core.Mode) *nn.ActorCritic {
	if mode == core.ModeFull {
		return PretrainedModel()
	}
	modeNetsMu.Lock()
	defer modeNetsMu.Unlock()
	if net, ok := modeNets[mode]; ok {
		return net
	}
	net := PretrainMode(DefaultPretrainConfig(), mode)
	modeNets[mode] = net
	return net
}
