package harness

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestShapeSeedNoCrossExperimentCollision is the regression test for the
// trace-synthesis seed derivation. The old linear form seed*1000+i
// collided across experiments — seed 1 tenant 1000 and seed 2 tenant 0
// both derived 2000, so sweeps with >1000 tenants (or any seed pair
// exactly 1000 tenants apart) replayed identical synthetic traces. The
// Stream split must keep every (seed, tenant) pair distinct.
func TestShapeSeedNoCrossExperimentCollision(t *testing.T) {
	if shapeSeed(1, 1000) == shapeSeed(2, 0) {
		t.Fatal("shapeSeed(1,1000) == shapeSeed(2,0): old linear-collision regressed")
	}
	seen := make(map[int64][2]int64, 8*256)
	for seed := int64(1); seed <= 8; seed++ {
		for i := 0; i < 256; i++ {
			s := shapeSeed(seed, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("shapeSeed(%d,%d) collides with shapeSeed(%d,%d) = %d",
					seed, i, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{seed, int64(i)}
		}
	}
}

// TestShapeSeedDeterministic pins the derivation itself: the same
// (seed, tenant) pair must always yield the same synthesis seed, or
// shaped runs stop being reproducible.
func TestShapeSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for i := 0; i < 16; i++ {
			if a, b := shapeSeed(seed, i), shapeSeed(seed, i); a != b {
				t.Fatalf("shapeSeed(%d,%d) unstable: %d vs %d", seed, i, a, b)
			}
		}
	}
}

// TestShapedRunDeterministic runs the same bursty-shaped experiment twice
// end to end: per-tenant results must match exactly, so the per-tenant
// synthesis seeds (and everything downstream) are reproducible.
func TestShapedRunDeterministic(t *testing.T) {
	opt := workloadTestOptions()
	opt.WorkloadShape = workload.ShapeBursty
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	a := RunOne(mix, PolSoftware, slos, opt)
	b := RunOne(mix, PolSoftware, slos, opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical shaped runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}
