package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// workers resolves Options.Workers: 0 means one worker per logical CPU.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0,n) on at most workers goroutines.
// Each RunOne owns its engine, platform, and RNG streams and is a pure
// function of its arguments, so callers fan experiments out here and write
// results into index-addressed slots — output order (and therefore every
// figure byte) is identical to a sequential loop regardless of
// scheduling. With one worker, or one job, it runs inline.
func forEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// compareAll calibrates every mix once (concurrently) and then runs the
// full (mix × policy) grid on the worker pool as one flat job list, so a
// slow mix cannot idle workers that could already be running the next
// mix's policies. Row i holds mixes[i]'s results in kinds order —
// byte-identical to calling Compare per mix sequentially.
func compareAll(mixes []MixSpec, kinds []PolicyKind, opt Options) [][]Result {
	w := opt.workers()
	slos := make([][]sim.Time, len(mixes))
	forEach(len(mixes), w, func(i int) {
		slos[i] = Calibrate(mixes[i], opt)
	})
	rows := make([][]Result, len(mixes))
	for i := range rows {
		rows[i] = make([]Result, len(kinds))
	}
	forEach(len(mixes)*len(kinds), w, func(j int) {
		m, k := j/len(kinds), j%len(kinds)
		rows[m][k] = RunOne(mixes[m], kinds[k], slos[m], opt)
	})
	return rows
}
