package harness

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func workloadTestOptions() Options {
	opt := DefaultOptions()
	opt.Window = 250 * sim.Millisecond
	opt.Warmup = 1 * sim.Second
	opt.Duration = 2 * sim.Second
	opt.BlocksPerChip = 32
	return opt
}

// TestWorkloadScenarioDeterministic pins the tentpole contract: the same
// seed produces byte-identical workload-scenario output (shape ladder and
// cohort rack both) at any worker count.
func TestWorkloadScenarioDeterministic(t *testing.T) {
	mixes := []MixSpec{Pair("YCSB", "TeraSort")}
	render := func(workers int) string {
		opt := workloadTestOptions()
		opt.Workers = workers
		var b bytes.Buffer
		FigureWorkloads(&b, mixes, opt)
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("workload scenario output differs between 1 and 4 workers:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", seq, par)
	}
	if par != render(4) {
		t.Fatal("workload scenario output not reproducible across repeated runs")
	}
}

// TestWorkloadScenarioTypesDistinct checks the clustering contract of the
// issue (temporal shapes still produce workload-type labels, and a
// two-class mix classifies into at least two distinct types) and that the
// ladder is not a no-op (each shaped level's traffic differs from steady).
// One scenario run covers both: a full ladder is 5 simulations.
func TestWorkloadScenarioTypesDistinct(t *testing.T) {
	rows := WorkloadScenario(Pair("YCSB", "TeraSort"), workloadTestOptions())
	if len(rows) != len(WorkloadLevels()) {
		t.Fatalf("got %d levels", len(rows))
	}
	for _, row := range rows {
		if len(row.TypeLabels) != 2 {
			t.Fatalf("%s: %d type labels", row.Level, len(row.TypeLabels))
		}
		labeled := 0
		distinct := map[string]bool{}
		for _, l := range row.TypeLabels {
			if l != "n/a" {
				labeled++
				distinct[l] = true
			}
		}
		if labeled == 0 {
			t.Fatalf("%s: no tenant produced enough trace to classify", row.Level)
		}
		if row.Level == "steady" && len(distinct) < 2 {
			t.Fatalf("steady level classified both tenants identically: %v", row.TypeLabels)
		}
		if row.Result.Tenants[0].Completed == 0 || row.Result.Tenants[1].Completed == 0 {
			t.Fatalf("%s: a tenant completed nothing", row.Level)
		}
	}

	byLevel := map[string]Result{}
	for _, row := range rows {
		byLevel[row.Level] = row.Result
	}
	steady := byLevel["steady"]
	for _, level := range []string{"diurnal", "bursty", "replay"} {
		r := byLevel[level]
		same := true
		for i := range r.Tenants {
			if r.Tenants[i].Completed != steady.Tenants[i].Completed {
				same = false
			}
		}
		if same {
			t.Fatalf("%s level completed identical request counts to steady", level)
		}
	}
}

// TestCohortScenarioChurns checks the cohort rack departs tenants, keeps
// its ledger balanced, and classifies live traffic.
func TestCohortScenarioChurns(t *testing.T) {
	opt := workloadTestOptions()
	opt.Duration = 3 * sim.Second
	st := CohortScenario(opt)
	if st.Departed == 0 {
		t.Fatalf("cohort rack departed nobody: %+v", st)
	}
	if !st.Balanced() {
		t.Fatalf("cohort ledger imbalance: %+v", st)
	}
	if len(st.TypeCounts) == 0 {
		t.Fatalf("cohort rack classified no traffic: %+v", st)
	}
}

// TestReplayRecordsDriveAllTenants pins replay-from-file: with explicit
// records every tenant replays the same trace, so per-tenant completions
// converge regardless of profile.
func TestReplayRecordsDriveAllTenants(t *testing.T) {
	opt := workloadTestOptions()
	opt.ReplayRecords = workload.ByName("VDI-Web").SynthesizeTrace(20000, 1<<20, sim.NewRNG(9))
	opt.WorkloadShape = workload.ShapeReplay
	mix := Pair("YCSB", "TeraSort")
	slos := Calibrate(mix, opt)
	res, _ := RunOneWithTypes(mix, PolFleetIO, slos, opt)
	if res.Tenants[0].Completed == 0 || res.Tenants[1].Completed == 0 {
		t.Fatalf("replay tenants idle: %+v", res.Tenants)
	}
	// Same trace, same timestamps → identical issue counts; completions
	// may differ by inflight tail only.
	d := res.Tenants[0].Completed - res.Tenants[1].Completed
	if d < -50 || d > 50 {
		t.Fatalf("shared-trace tenants diverged: %d vs %d",
			res.Tenants[0].Completed, res.Tenants[1].Completed)
	}
}
