package harness

import (
	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sim"
)

// EpisodeSpec describes one self-contained pretraining episode: which mix
// to collocate, under which reward variant, for how long, acting with
// which policy flavor. Each episode owns a private sim.Engine + platform,
// so any number of them can run concurrently (the trainer's worker pool
// relies on this).
type EpisodeSpec struct {
	Mix      MixSpec
	Mode     core.Mode
	Seed     int64
	Window   sim.Time
	Duration sim.Time
	// RL holds PPO hyperparameters for action sampling (zero value →
	// rl.DefaultConfig); no learning happens inside the episode.
	RL rl.Config
	// Greedy selects argmax actions (held-out evaluation) instead of
	// sampling the stochastic policy (collection).
	Greedy bool
	// ScalarRL forces the scalar RL kernels (see Options.ScalarRL).
	ScalarRL bool
}

// pretrainSLOs calibrates quickly with a short hardware-isolated run.
func pretrainSLOs(mix MixSpec, opt Options) []sim.Time {
	o := opt
	o.Warmup = sim.Second
	o.Duration = 2 * sim.Second
	return Calibrate(mix, o)
}

// RunEpisode is the episode factory behind both sequential calibration-era
// pretraining and the parallel trainer: it builds a fresh platform for the
// spec, drives a collection-only FleetIO sharing net (the network is read,
// never trained — updates belong to the trainer's learner), and returns
// one rollout buffer per agent with the final transition marked terminal.
func RunEpisode(spec EpisodeSpec, net *nn.ActorCritic) []*rl.Buffer {
	opt := DefaultOptions()
	opt.Seed = spec.Seed
	opt.Window = spec.Window
	rcfg := spec.RL
	if rcfg.Gamma == 0 {
		rcfg = rl.DefaultConfig()
	}
	slos := pretrainSLOs(spec.Mix, opt)
	r := buildPlatform(spec.Mix, PolFleetIO, slos, opt)
	tm, alphas := TypeModel()
	f := core.NewFleetIO(r.plat, core.FleetIOConfig{
		Mode:  spec.Mode,
		Train: true,
		// Collection only: keep the in-episode PPO trigger out of reach
		// so every transition survives for the external learner.
		TrainEvery:     1 << 30,
		Seed:           spec.Seed,
		Pretrained:     net,
		ShareModel:     true,
		GreedyCollect:  spec.Greedy,
		TypeModel:      tm,
		AlphaByCluster: alphas,
		RL:             rcfg,
		ScalarRL:       spec.ScalarRL,
	})
	for i, rec := range r.recs {
		f.SetRecorder(i, rec)
	}
	for i, name := range spec.Mix.Workloads {
		if c, ok := tm.WorkloadCluster[name]; ok {
			if a, ok2 := alphas[c]; ok2 {
				f.SetAlpha(i, a)
			}
		}
	}
	adm := admission.NewController(r.plat, nil)
	r.runner = &core.Runner{Plat: r.plat, Adm: adm, Policy: f, Window: opt.Window}
	for _, g := range r.gens {
		g.Start()
	}
	r.runner.Start()
	r.eng.RunUntil(spec.Duration)
	for _, g := range r.gens {
		g.Stop()
	}
	return f.DrainRollouts()
}
