package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// WorkloadLevel is one rung of the temporal-realism ladder: a named
// arrival shape overlaid on every tenant of the mix.
type WorkloadLevel struct {
	Name  string
	Shape workload.Shape
}

// WorkloadLevels is the steady/diurnal/bursty/replay ladder the workload
// scenario sweeps — the temporal analogue of FaultLevels.
func WorkloadLevels() []WorkloadLevel {
	out := make([]WorkloadLevel, 0, len(workload.Shapes()))
	for _, s := range workload.Shapes() {
		out = append(out, WorkloadLevel{Name: s.String(), Shape: s})
	}
	return out
}

// WorkloadScenarioResult is one shape level's outcome within a scenario.
type WorkloadScenarioResult struct {
	Level  string
	Result Result
	// TypeLabels is the clusterer's per-tenant workload-type label for
	// the measured run ("n/a" for tenants with too little trace).
	TypeLabels []string
}

// RunOneWithTypes is RunOne plus the clusterer's view of each tenant's
// measured traffic: after the run, every tenant's recorded window is
// classified by the shared type model, the same path core.FleetIO.retype
// uses online. Tenants with fewer than 100 recorded requests label "n/a".
func RunOneWithTypes(mix MixSpec, kind PolicyKind, slos []sim.Time, opt Options) (Result, []string) {
	r := buildPlatform(mix, kind, slos, opt)
	r.attachPolicy(kind, mix)
	r.execute()
	res := r.collect(mix, kind)
	tm, _ := TypeModel()
	pageSize := r.plat.FlashConfig().PageSize
	labels := make([]string, len(r.recs))
	for i, rec := range r.recs {
		if rec.Len() < 100 {
			labels[i] = "n/a"
			continue
		}
		logical := int64(r.plat.VSSD(i).Tenant().LogicalPages())
		c, known := tm.ClassifyTrace(rec.Records(), pageSize, logical)
		labels[i] = tm.Label(c, known)
	}
	return res, labels
}

// WorkloadScenario runs the mix under FleetIO at every temporal shape,
// against SLOs calibrated on the steady shape, and returns the per-level
// outcomes. The levels are independent deterministic simulations and fan
// out over opt.Workers goroutines; results come back in ladder order
// regardless of worker count.
func WorkloadScenario(mix MixSpec, opt Options) []WorkloadScenarioResult {
	slos := Calibrate(mix, opt)
	levels := WorkloadLevels()
	out := make([]WorkloadScenarioResult, len(levels))
	forEach(len(levels), opt.workers(), func(i int) {
		o := opt
		o.WorkloadShape = levels[i].Shape
		res, labels := RunOneWithTypes(mix, PolFleetIO, slos, o)
		out[i] = WorkloadScenarioResult{Level: levels[i].Name, Result: res, TypeLabels: labels}
	})
	return out
}

// DefaultCohortDevices sizes the cohort-churn rack; smaller than the
// placement rack because every epoch also classifies tenant traffic.
const DefaultCohortDevices = 8

// CohortScenario runs a rack in cohort mode: tenants arrive on the fleet
// admission path, live an exponential session (mean Duration/3, so slots
// turn over several times), depart, and free their slots — with every
// traced tenant classified by the shared workload-type model.
func CohortScenario(opt Options) fleet.Stats {
	cfg := fleetConfig(fleet.PlaceLeastLoaded, opt)
	if opt.FleetDevices <= 0 {
		cfg.Devices = DefaultCohortDevices
	}
	cfg.Lifetime = opt.Duration / 3
	if cfg.Lifetime <= 0 {
		cfg.Lifetime = sim.Second
	}
	tm, _ := TypeModel()
	cfg.TypeModel = tm
	return fleet.New(cfg).Run()
}

// FigureWorkloads renders the temporal-realism scenario: every mix swept
// over the steady/diurnal/bursty/replay ladder under FleetIO (with the
// clusterer's workload-type labels per tenant), then one cohort-churn
// rack with arrivals, departures, and live traffic typing. Output is
// deterministic for a given seed at any worker count.
func FigureWorkloads(w io.Writer, mixes []MixSpec, opt Options) {
	fmt.Fprintf(w, "== Workload scenarios: temporal shapes, trace replay, and cohort churn (seed=%d) ==\n", opt.Seed)
	for _, mix := range mixes {
		rows := WorkloadScenario(mix, opt)
		fmt.Fprintf(w, "%s (%v)\n", mix.Label, mix.Workloads)
		fmt.Fprintf(w, "  %-8s %9s %9s %12s %12s  %s\n",
			"shape", "util%", "maxVio%", "BI MB/s", "LS p99 ms", "types")
		for _, row := range rows {
			maxVio := 0.0
			for _, tr := range row.Result.Tenants {
				if tr.VioRate > maxVio {
					maxVio = tr.VioRate
				}
			}
			fmt.Fprintf(w, "  %-8s %9.2f %9.3f %12.1f %12.3f  %s\n",
				row.Level, row.Result.AvgUtil*100, maxVio*100,
				row.Result.BandwidthTenant(), row.Result.LatencyTenantP99(),
				strings.Join(row.TypeLabels, ","))
		}
	}
	devices := opt.FleetDevices
	if devices <= 0 {
		devices = DefaultCohortDevices
	}
	fmt.Fprintf(w, "cohort churn: %d-device rack, exponential sessions, live traffic typing\n", devices)
	st := CohortScenario(opt)
	st.Render(w)
}
