package harness

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/sim"
)

// startObserving registers the run's telemetry probes on the observer's
// registry and starts the virtual-time sampler. It returns the started
// sampler (nil when telemetry is off); execute stops it so the engine's
// event queue can drain after measurement.
//
// The probes are the metric catalogue documented in docs/OBSERVABILITY.md:
// per-vSSD bandwidth/IOPS/P99/queue depth, device GC and write-amp
// activity, gSB lifecycle counts, and admission verdicts.
func (r *run) startObserving() *obs.Sampler {
	o := r.opt.Obs
	if o == nil || o.Reg == nil {
		return nil
	}
	reg := o.Reg
	s := obs.NewSampler()

	simTime := reg.Gauge("fleetio_sim_time_seconds", "Virtual time of the current run.")
	samples := reg.Counter("fleetio_obs_samples_total", "Telemetry sample rounds taken.")

	// Device-wide FTL and gSB series (cumulative model stats exported as
	// counters by setting the running totals).
	ftlm := r.plat.FTL()
	gsbm := r.plat.GSB()
	hostProg := reg.Counter("fleetio_ftl_host_programs_total", "Host page programs.")
	gcProg := reg.Counter("fleetio_ftl_gc_programs_total", "GC page-migration programs.")
	erases := reg.Counter("fleetio_ftl_erases_total", "Block erases.")
	gcRuns := reg.Counter("fleetio_ftl_gc_runs_total", "GC victim collections started.")
	writeAmp := reg.Gauge("fleetio_ftl_write_amplification", "(host+GC programs)/host programs.")
	gsbCreated := reg.Counter("fleetio_gsb_created_total", "Ghost superblocks created.")
	gsbHarvests := reg.Counter("fleetio_gsb_harvested_total", "Ghost superblock harvests.")
	gsbReclaimed := reg.Counter("fleetio_gsb_reclaimed_total", "Ghost superblocks fully reclaimed.")
	gsbCreateFail := reg.Counter("fleetio_gsb_create_failures_total", "Make_Harvestable calls that found no lendable channel.")
	gsbMisses := reg.Counter("fleetio_gsb_harvest_misses_total", "Harvest calls that found no compatible gSB.")

	// Fault-injection series, registered only when the run injects faults
	// so fault-free runs export the exact catalogue they always did.
	dev := r.plat.Device()
	var fProgFail, fEraseFail, fReadRetry, fRetryRounds, fTimeouts *obs.Metric
	var fRetired, fRemapped, fGCRetry, fGCSkip, fWriteRetry *obs.Metric
	if r.opt.Faults != nil && r.opt.Faults.Enabled() {
		fProgFail = reg.Counter("fleetio_fault_program_fails_total", "Injected NAND program failures.")
		fEraseFail = reg.Counter("fleetio_fault_erase_fails_total", "Injected NAND erase failures.")
		fReadRetry = reg.Counter("fleetio_fault_read_retry_ops_total", "Reads that needed at least one retry round.")
		fRetryRounds = reg.Counter("fleetio_fault_read_retry_rounds_total", "Total read-retry rounds added.")
		fTimeouts = reg.Counter("fleetio_fault_chip_timeouts_total", "Transient chip timeouts injected on reads.")
		fRetired = reg.Counter("fleetio_fault_retired_blocks_total", "Blocks permanently retired after failures.")
		fRemapped = reg.Counter("fleetio_fault_remapped_pages_total", "Failed program slots remapped by the FTL.")
		fGCRetry = reg.Counter("fleetio_fault_gc_retry_programs_total", "GC migrations re-programmed after a failure.")
		fGCSkip = reg.Counter("fleetio_fault_gc_retry_skips_total", "Failed GC migrations superseded by host writes.")
		fWriteRetry = reg.Counter("fleetio_fault_write_retries_total", "Host page writes re-dispatched after a program failure.")
	}

	var admAdmitted, admFiltered, admBatches *obs.Metric
	if r.runner != nil && r.runner.Adm != nil {
		admAdmitted = reg.Counter("fleetio_admission_admitted_total", "Harvest-related actions admitted.")
		admFiltered = reg.Counter("fleetio_admission_filtered_total", "Harvest-related actions rejected by provider policy.")
		admBatches = reg.Counter("fleetio_admission_batches_total", "Admission batches flushed.")
	}

	// Per-vSSD series, labelled by id and configured name.
	type vssdGauges struct {
		bw, iops, p99, queue, inflight, prio, harvested, free, inGC *obs.Metric
		requests, bytes                                             *obs.Metric
		prevBytes, prevCompleted                                    int64
	}
	vgs := make([]*vssdGauges, len(r.plat.VSSDs()))
	for i, v := range r.plat.VSSDs() {
		l := []string{"vssd", strconv.Itoa(i), "name", v.Name()}
		vgs[i] = &vssdGauges{
			bw:        reg.Gauge("fleetio_vssd_bandwidth_bytes_per_second", "Host payload bandwidth over the last sample period.", l...),
			iops:      reg.Gauge("fleetio_vssd_iops", "Completed host requests per second over the last sample period.", l...),
			p99:       reg.Gauge("fleetio_vssd_p99_seconds", "Run-level P99 request latency.", l...),
			queue:     reg.Gauge("fleetio_vssd_queue_depth", "Requests waiting for dispatch.", l...),
			inflight:  reg.Gauge("fleetio_vssd_inflight_pages", "Dispatched-but-incomplete page ops.", l...),
			prio:      reg.Gauge("fleetio_vssd_priority", "Current I/O priority level (1=low..3=high).", l...),
			harvested: reg.Gauge("fleetio_vssd_harvested_channels", "Channels currently harvested via gSBs.", l...),
			free:      reg.Gauge("fleetio_vssd_free_block_fraction", "Free-block fraction across the vSSD's channels.", l...),
			inGC:      reg.Gauge("fleetio_vssd_in_gc", "1 while the vSSD's tenant is collecting.", l...),
			requests:  reg.Counter("fleetio_vssd_requests_total", "Completed host requests.", l...),
			bytes:     reg.Counter("fleetio_vssd_bytes_total", "Host payload bytes completed.", l...),
		}
	}

	// Per-generator workload series: arrival-process state (issue count,
	// composed rate factor, replay progress), labelled like the vssd
	// series. Steady profiles report a constant factor and zero wraps.
	type genGauges struct {
		issued, rate, wraps *obs.Metric
	}
	ggs := make([]*genGauges, len(r.gens))
	for i := range r.gens {
		v := r.plat.VSSDs()[i]
		l := []string{"vssd", strconv.Itoa(i), "name", v.Name()}
		ggs[i] = &genGauges{
			issued: reg.Counter("fleetio_workload_issued_total", "Requests issued by the workload generator.", l...),
			rate:   reg.Gauge("fleetio_workload_rate_factor", "Composed arrival-rate multiplier (phase x diurnal x burst).", l...),
			wraps:  reg.Counter("fleetio_workload_replay_wraps_total", "Times a looped trace replay restarted.", l...),
		}
	}

	var lastAt sim.Time
	s.AddProbe(func(now sim.Time) {
		dt := float64(now-lastAt) / 1e9
		lastAt = now
		simTime.Set(float64(now) / 1e9)
		samples.Add(1)

		fst := ftlm.Stats()
		hostProg.Set(float64(fst.HostPrograms))
		gcProg.Set(float64(fst.GCPrograms))
		erases.Set(float64(fst.Erases))
		gcRuns.Set(float64(fst.GCRuns))
		writeAmp.Set(fst.WriteAmplification())

		gst := gsbm.Stats()
		gsbCreated.Set(float64(gst.Created))
		gsbHarvests.Set(float64(gst.Harvested))
		gsbReclaimed.Set(float64(gst.Reclaimed))
		gsbCreateFail.Set(float64(gst.CreateFailures))
		gsbMisses.Set(float64(gst.HarvestMisses))

		if fProgFail != nil {
			dfs := dev.FaultStats()
			fProgFail.Set(float64(dfs.ProgramFails))
			fEraseFail.Set(float64(dfs.EraseFails))
			fReadRetry.Set(float64(dfs.ReadRetryOps))
			fRetryRounds.Set(float64(dfs.RetryRounds))
			fTimeouts.Set(float64(dfs.ChipTimeouts))
			fRetired.Set(float64(fst.Retired))
			fRemapped.Set(float64(fst.Remapped))
			fGCRetry.Set(float64(fst.GCRetryPrograms))
			fGCSkip.Set(float64(fst.GCRetrySkips))
			var retries int64
			for _, v := range r.plat.VSSDs() {
				retries += v.TotalRetries()
			}
			fWriteRetry.Set(float64(retries))
		}

		for i, g := range r.gens {
			ggs[i].issued.Set(float64(g.Issued()))
			ggs[i].rate.Set(g.RateFactor())
			ggs[i].wraps.Set(float64(g.ReplayWraps()))
		}

		if admAdmitted != nil {
			ast := r.runner.Adm.Stats()
			admAdmitted.Set(float64(ast.Admitted))
			admFiltered.Set(float64(ast.Filtered))
			admBatches.Set(float64(ast.Batches))
		}

		for i, v := range r.plat.VSSDs() {
			g := vgs[i]
			curBytes := v.TotalBytesMoved()
			curCompleted := v.Completed()
			db := curBytes - g.prevBytes
			dc := curCompleted - g.prevCompleted
			// ResetTotals at the measurement boundary rewinds the
			// cumulative counters; restart the deltas from zero.
			if db < 0 {
				db = curBytes
			}
			if dc < 0 {
				dc = curCompleted
			}
			g.prevBytes = curBytes
			g.prevCompleted = curCompleted
			if dt > 0 {
				g.bw.Set(float64(db) / dt)
				g.iops.Set(float64(dc) / dt)
			}
			g.requests.Add(float64(dc))
			g.bytes.Add(float64(db))
			g.p99.Set(float64(v.TotalHist().P99()) / 1e9)
			g.queue.Set(float64(v.QueueLen()))
			g.inflight.Set(float64(v.Inflight()))
			g.prio.Set(float64(v.Priority()))
			g.harvested.Set(float64(gsbm.HarvestedChannels(i)))
			g.free.Set(ftlm.FreeFraction(v.Tenant().Channels()))
			if v.Tenant().InGC() {
				g.inGC.Set(1)
			} else {
				g.inGC.Set(0)
			}
		}
	})

	s.Start(r.eng, o.SamplePeriod)
	return s
}
