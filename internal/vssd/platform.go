package vssd

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/gsb"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PlatformConfig holds device-wide knobs.
type PlatformConfig struct {
	Flash flash.Config
	// Overprovision is the fraction of raw capacity withheld from logical
	// space (Table 3: 20%).
	Overprovision float64
	// GCThreshold is the lazy-GC free-block fraction (Table 3 text: 20%).
	GCThreshold float64
}

// DefaultPlatformConfig mirrors the paper's Table 3.
func DefaultPlatformConfig() PlatformConfig {
	return PlatformConfig{
		Flash:         flash.DefaultConfig(),
		Overprovision: 0.20,
		GCThreshold:   0.20,
	}
}

// Platform is one shared SSD with its collocated vSSDs — the unit every
// experiment runs against.
type Platform struct {
	eng  *sim.Engine
	dev  *flash.Device
	ftlm *ftl.Manager
	gsbm *gsb.Manager
	cfg  flash.Config

	vssds []*VSSD

	overprovision float64
	opsSubmitted  int64

	// rec receives decision events from the whole device stack; nil (the
	// default) disables tracing at the cost of one nil check per site.
	rec *obs.Recorder
}

// NewPlatform builds the device, FTL, and gSB manager on the engine.
func NewPlatform(eng *sim.Engine, pc PlatformConfig) *Platform {
	dev := flash.NewDevice(eng, pc.Flash)
	ftlm := ftl.NewManager(eng, dev)
	if pc.GCThreshold > 0 {
		ftlm.GCThreshold = pc.GCThreshold
	}
	p := &Platform{
		eng:  eng,
		dev:  dev,
		ftlm: ftlm,
		cfg:  pc.Flash,
	}
	p.gsbm = gsb.NewManager(ftlm, pc.Flash.Channels, pc.Flash.ChannelBandwidth())
	ftlm.Submit = p.submit
	p.overprovision = pc.Overprovision
	return p
}

// Engine returns the simulation engine.
func (p *Platform) Engine() *sim.Engine { return p.eng }

// SetObserver attaches a decision-event recorder to the platform and its
// FTL and gSB managers. The platform keeps a view bound to its own
// engine's clock (shared storage, per-run timestamps), so concurrent runs
// can feed one recorder without reading each other's virtual time.
// Passing nil detaches tracing everywhere.
func (p *Platform) SetObserver(rec *obs.Recorder) {
	rec = rec.Bind(p.eng.Now)
	p.rec = rec
	p.ftlm.SetObserver(rec)
	p.gsbm.SetObserver(rec)
}

// Observer returns the attached recorder (nil when tracing is off).
func (p *Platform) Observer() *obs.Recorder { return p.rec }

// Device returns the flash device.
func (p *Platform) Device() *flash.Device { return p.dev }

// FTL returns the FTL manager.
func (p *Platform) FTL() *ftl.Manager { return p.ftlm }

// GSB returns the ghost-superblock manager.
func (p *Platform) GSB() *gsb.Manager { return p.gsbm }

// FlashConfig returns the device geometry.
func (p *Platform) FlashConfig() flash.Config { return p.cfg }

// VSSDs returns the platform's vSSDs in creation order.
func (p *Platform) VSSDs() []*VSSD { return p.vssds }

// VSSD returns the vSSD with the given id.
func (p *Platform) VSSD(id int) *VSSD { return p.vssds[id] }

// submit is the single funnel for flash ops (host and GC), keeping a
// global op count for overhead accounting.
func (p *Platform) submit(op *flash.Op) {
	p.opsSubmitted++
	p.dev.Submit(op)
}

// OpsSubmitted returns the total flash commands issued so far.
func (p *Platform) OpsSubmitted() int64 { return p.opsSubmitted }

// AddVSSD creates a vSSD owning (or sharing) the configured channels.
func (p *Platform) AddVSSD(cfg Config) *VSSD {
	id := len(p.vssds)
	logical := cfg.LogicalPages
	if logical <= 0 {
		blocks := len(cfg.Channels) * p.cfg.ChipsPerChannel * p.cfg.BlocksPerChip
		logical = int(float64(blocks*p.cfg.PagesPerBlock) * (1 - p.overprovision))
		if cfg.Isolation == SoftwareIsolated {
			// Shared channels: assume an equal logical split is configured
			// by the caller; default to a half share to stay safe.
			logical /= 2
		}
	}
	if logical <= 0 {
		panic("vssd: zero logical capacity")
	}
	tenant := ftl.NewTenant(p.ftlm, id, cfg.Channels, logical)
	v := &VSSD{
		id:       id,
		cfg:      cfg,
		plat:     p,
		tenant:   tenant,
		priority: ftl.PriorityMed,
		slo:      cfg.SLO,
	}
	if cfg.RateLimitBps > 0 && cfg.BurstBytes <= 0 {
		v.cfg.BurstBytes = cfg.RateLimitBps
	}
	v.tokens = v.cfg.BurstBytes
	p.vssds = append(p.vssds, v)
	return v
}

// ActionKind enumerates the RL/baseline actions the platform can execute.
type ActionKind uint8

// Action kinds: the paper's three RL actions (Table 2) plus the channel
// repartitioning used by the SSDKeeper/Adaptive baselines and rate-limit
// tuning used by Software Isolation.
const (
	ActHarvest ActionKind = iota
	ActMakeHarvestable
	ActSetPriority
	ActSetChannels
	ActSetRateLimit
)

func (k ActionKind) String() string {
	switch k {
	case ActHarvest:
		return "Harvest"
	case ActMakeHarvestable:
		return "Make_Harvestable"
	case ActSetPriority:
		return "Set_Priority"
	case ActSetChannels:
		return "Set_Channels"
	case ActSetRateLimit:
		return "Set_RateLimit"
	default:
		return fmt.Sprintf("ActionKind(%d)", uint8(k))
	}
}

// Action is one decision issued by a policy for one vSSD.
type Action struct {
	VSSD int
	Kind ActionKind
	// BW is the gsb_bw operand of Harvest/Make_Harvestable, or the rate of
	// SetRateLimit, in bytes/s.
	BW float64
	// Level is the Set_Priority operand.
	Level int
	// Channels is the Set_Channels operand.
	Channels []int
}

// Apply executes one action immediately. (The admission controller batches
// and filters harvest-related actions before calling this — §3.5.)
func (p *Platform) Apply(a Action) {
	v := p.vssds[a.VSSD]
	switch a.Kind {
	case ActSetPriority:
		v.SetPriority(a.Level)
	case ActMakeHarvestable:
		p.gsbm.SetHarvestable(v.tenant, p.gsbm.ChannelsFor(a.BW))
	case ActHarvest:
		p.applyHarvestTarget(v, p.gsbm.ChannelsFor(a.BW))
	case ActSetChannels:
		v.tenant.SetChannels(a.Channels)
	case ActSetRateLimit:
		v.SetRateLimit(a.BW, 0)
	default:
		panic(fmt.Sprintf("vssd: unknown action %v", a.Kind))
	}
}

// applyHarvestTarget moves the vSSD's harvested-channel count toward the
// target: harvesting more gSBs on a deficit, releasing its widest gSBs on
// a surplus.
func (p *Platform) applyHarvestTarget(v *VSSD, target int) {
	cur := p.gsbm.HarvestedChannels(v.id)
	if target > cur {
		deficit := target - cur
		for deficit > 0 {
			g := p.gsbm.HarvestFor(v.tenant, deficit)
			if g == nil {
				break
			}
			deficit -= g.NChls
		}
		return
	}
	if target < cur {
		surplus := cur - target
		for _, g := range p.gsbm.HarvestedBy(v.id) {
			if surplus <= 0 {
				break
			}
			if g.Reclaiming {
				continue
			}
			if g.NChls <= surplus {
				p.gsbm.Release(g)
				surplus -= g.NChls
			}
		}
	}
}

// Utilization computes the SSD bandwidth utilization over [from, to):
// payload bytes moved by all channels divided by the device's peak
// aggregate bandwidth for that interval. Callers snapshot TotalBytes
// before and after.
func (p *Platform) Utilization(bytesMoved int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	peak := p.cfg.ChannelBandwidth() * float64(p.cfg.Channels)
	return float64(bytesMoved) / (peak * float64(dur) / 1e9)
}

// TotalBytes returns the payload bytes moved by the device so far.
func (p *Platform) TotalBytes() int64 {
	var total int64
	for ch := 0; ch < p.cfg.Channels; ch++ {
		st := p.dev.Stats(ch)
		total += st.BytesRead + st.BytesWritten
	}
	return total
}

// HostBytes returns payload bytes from completed host requests only
// (excluding GC traffic), summed over all vSSDs since creation.
func (p *Platform) HostBytes() int64 {
	var total int64
	for _, v := range p.vssds {
		total += v.totalBytes
	}
	return total
}
