package vssd

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/sim"
)

func testPlatform(channels int) (*sim.Engine, *Platform) {
	eng := sim.NewEngine()
	pc := DefaultPlatformConfig()
	pc.Flash.Channels = channels
	pc.Flash.ChipsPerChannel = 2
	pc.Flash.BlocksPerChip = 64
	pc.Flash.PagesPerBlock = 16
	return eng, NewPlatform(eng, pc)
}

func chanRange(lo, hi int) []int {
	var out []int
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

func TestAddVSSDDerivesCapacity(t *testing.T) {
	_, p := testPlatform(4)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	// 2 channels * 2 chips * 64 blocks * 16 pages * 0.8 OP
	raw := 2 * 2 * 64 * 16
	want := int(float64(raw) * 0.8)
	if v.Tenant().LogicalPages() != want {
		t.Fatalf("logical pages = %d, want %d", v.Tenant().LogicalPages(), want)
	}
	if v.Priority() != ftl.PriorityMed {
		t.Fatalf("default priority = %d", v.Priority())
	}
}

func TestWriteReadRequestRoundTrip(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	var wrDone, rdDone sim.Time
	v.Submit(&Request{Write: true, LPN: 0, Pages: 4,
		OnComplete: func(_ *Request, at sim.Time) { wrDone = at }})
	eng.Run()
	if wrDone == 0 {
		t.Fatal("write never completed")
	}
	v.Submit(&Request{Write: false, LPN: 0, Pages: 4,
		OnComplete: func(_ *Request, at sim.Time) { rdDone = at }})
	eng.Run()
	if rdDone <= wrDone {
		t.Fatal("read must complete after submission")
	}
	if v.Completed() != 2 {
		t.Fatalf("completed = %d", v.Completed())
	}
}

func TestUnmappedReadIsFast(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	start := eng.Now()
	var done sim.Time
	v.Submit(&Request{Write: false, LPN: 100, Pages: 1,
		OnComplete: func(_ *Request, at sim.Time) { done = at }})
	eng.Run()
	if done-start > 50*sim.Microsecond {
		t.Fatalf("unmapped read took %d ns; should be a fast zero-fill", done-start)
	}
}

func TestWindowRotation(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	v.Submit(&Request{Write: true, LPN: 0, Pages: 2})
	eng.Run()
	snap := v.Rotate()
	if snap.Window.Writes != 1 {
		t.Fatalf("window writes = %d", snap.Window.Writes)
	}
	if snap.Window.Bytes() != int64(2*p.FlashConfig().PageSize) {
		t.Fatalf("window bytes = %d", snap.Window.Bytes())
	}
	if snap.OwnedChannels != 2 {
		t.Fatalf("owned channels = %d", snap.OwnedChannels)
	}
	// The next window starts empty.
	snap2 := v.Rotate()
	if snap2.Window.Requests() != 0 {
		t.Fatal("rotation did not reset the window")
	}
}

func TestSLOViolationTracking(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2), SLO: 1}) // 1ns: everything violates
	v.Submit(&Request{Write: true, LPN: 0, Pages: 1})
	eng.Run()
	snap := v.Rotate()
	if snap.Window.SLOViolations != 1 {
		t.Fatalf("violations = %d", snap.Window.SLOViolations)
	}
	v.SetSLO(sim.Second) // generous: nothing violates
	v.Submit(&Request{Write: true, LPN: 1, Pages: 1})
	eng.Run()
	snap = v.Rotate()
	if snap.Window.SLOViolations != 0 {
		t.Fatalf("violations = %d with generous SLO", snap.Window.SLOViolations)
	}
}

func TestTokenBucketThrottles(t *testing.T) {
	eng, p := testPlatform(2)
	pageSize := p.FlashConfig().PageSize
	// Rate = 100 pages/s; each request is 1 page.
	rate := float64(100 * pageSize)
	v := p.AddVSSD(Config{
		Name: "a", Channels: chanRange(0, 2),
		RateLimitBps: rate, BurstBytes: float64(pageSize),
	})
	const n = 20
	var last sim.Time
	for i := 0; i < n; i++ {
		v.Submit(&Request{Write: true, LPN: i, Pages: 1,
			OnComplete: func(_ *Request, at sim.Time) { last = at }})
	}
	eng.Run()
	// 20 single-page requests at 100 pages/s must take ~190ms+.
	if last < 150*sim.Millisecond {
		t.Fatalf("rate limiter too permissive: finished at %dms", last/sim.Millisecond)
	}
}

func TestNoRateLimitIsFast(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	var last sim.Time
	for i := 0; i < 20; i++ {
		v.Submit(&Request{Write: true, LPN: i, Pages: 1,
			OnComplete: func(_ *Request, at sim.Time) { last = at }})
	}
	eng.Run()
	if last > 50*sim.Millisecond {
		t.Fatalf("unthrottled writes took %dms", last/sim.Millisecond)
	}
}

func TestPriorityActionChangesServiceOrder(t *testing.T) {
	eng, p := testPlatform(1)
	a := p.AddVSSD(Config{Name: "a", Channels: []int{0}, LogicalPages: 1024})
	b := p.AddVSSD(Config{Name: "b", Channels: []int{0}, LogicalPages: 1024})
	p.Apply(Action{VSSD: 1, Kind: ActSetPriority, Level: ftl.PriorityHigh})
	if b.Priority() != ftl.PriorityHigh {
		t.Fatal("priority not applied")
	}
	// Saturate with a's traffic, then submit b's read: with high priority it
	// should finish earlier than a same-submitted low-priority one would.
	var aLast, bDone sim.Time
	for i := 0; i < 64; i++ {
		a.Submit(&Request{Write: true, LPN: i, Pages: 1,
			OnComplete: func(_ *Request, at sim.Time) { aLast = at }})
	}
	b.Submit(&Request{Write: true, LPN: 0, Pages: 1,
		OnComplete: func(_ *Request, at sim.Time) { bDone = at }})
	eng.Run()
	if bDone >= aLast {
		t.Fatalf("high-priority request finished last: b=%d a=%d", bDone, aLast)
	}
}

func TestHarvestActionGrowsWriteFootprint(t *testing.T) {
	eng, p := testPlatform(4)
	ls := p.AddVSSD(Config{Name: "ls", Channels: chanRange(0, 2)})
	bi := p.AddVSSD(Config{Name: "bi", Channels: chanRange(2, 4)})
	chanBW := p.FlashConfig().ChannelBandwidth()
	// LS makes 1 channel harvestable; BI harvests it.
	p.Apply(Action{VSSD: ls.ID(), Kind: ActMakeHarvestable, BW: chanBW})
	if p.GSB().HarvestableChannels(ls.ID()) != 1 {
		t.Fatalf("harvestable = %d", p.GSB().HarvestableChannels(ls.ID()))
	}
	p.Apply(Action{VSSD: bi.ID(), Kind: ActHarvest, BW: chanBW})
	if got := p.GSB().HarvestedChannels(bi.ID()); got != 1 {
		t.Fatalf("harvested channels = %d", got)
	}
	// BI's writes now reach 3 channels.
	if got := len(bi.Tenant().WriteChannels()); got != 3 {
		t.Fatalf("write channels = %d, want 3", got)
	}
	// Releasing: target 0 harvested.
	p.Apply(Action{VSSD: bi.ID(), Kind: ActHarvest, BW: 0})
	if got := p.GSB().HarvestedChannels(bi.ID()); got != 0 {
		t.Fatalf("harvested channels after release = %d", got)
	}
	eng.Run()
}

func TestSetChannelsAction(t *testing.T) {
	_, p := testPlatform(4)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2), LogicalPages: 512})
	p.Apply(Action{VSSD: 0, Kind: ActSetChannels, Channels: chanRange(0, 4)})
	if got := len(v.Tenant().Channels()); got != 4 {
		t.Fatalf("channels = %d", got)
	}
}

func TestSetRateLimitAction(t *testing.T) {
	_, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	p.Apply(Action{VSSD: 0, Kind: ActSetRateLimit, BW: 1e6})
	if v.cfg.RateLimitBps != 1e6 {
		t.Fatal("rate limit not applied")
	}
}

func TestUtilizationMath(t *testing.T) {
	_, p := testPlatform(2)
	peak := p.FlashConfig().ChannelBandwidth() * 2
	// Moving peak bytes for one second = 100% utilization.
	got := p.Utilization(int64(peak), sim.Second)
	if got < 0.999 || got > 1.001 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
	if p.Utilization(100, 0) != 0 {
		t.Fatal("zero duration must give 0")
	}
}

func TestClosedLoopThroughputScalesWithChannels(t *testing.T) {
	// The core premise of harvesting: more channels, more bandwidth.
	run := func(nch int) float64 {
		eng, p := testPlatform(4)
		v := p.AddVSSD(Config{Name: "bi", Channels: chanRange(0, nch), LogicalPages: 4096,
			MaxInflightPages: 64})
		var issue func()
		lpn := 0
		issue = func() {
			v.Submit(&Request{Write: true, LPN: lpn % 4000, Pages: 8,
				OnComplete: func(_ *Request, _ sim.Time) { issue() }})
			lpn += 8
		}
		for i := 0; i < 8; i++ {
			issue()
		}
		const dur = 2 * sim.Second
		eng.RunUntil(dur)
		snap := v.Rotate()
		return snap.Window.Bandwidth(dur)
	}
	bw1, bw4 := run(1), run(4)
	if bw4 < 2.5*bw1 {
		t.Fatalf("4-channel bandwidth %.1f MB/s not ≫ 1-channel %.1f MB/s", bw4/1e6, bw1/1e6)
	}
}

func TestGCRunsUnderChurnWithoutDataLoss(t *testing.T) {
	// A prefilled, churning vSSD must drive GC (erases, migrations) while
	// every write keeps completing and reading back.
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	if err := v.Tenant().Prefill(0.85, 0.5, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	lpn := 0
	var issue func()
	issue = func() {
		v.Submit(&Request{Write: true, LPN: lpn % 1024, Pages: 4,
			OnComplete: func(_ *Request, _ sim.Time) { issue() }})
		lpn += 4
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	eng.RunUntil(3 * sim.Second)
	st := p.FTL().Stats()
	if st.Erases == 0 {
		t.Fatal("no GC ran under sustained churn on a prefilled device")
	}
	if st.WriteAmplification() <= 1.0 {
		t.Fatalf("WA = %v, expected migrations", st.WriteAmplification())
	}
	if v.Completed() == 0 {
		t.Fatal("writes stalled")
	}
	// Everything written recently is still mapped.
	for l := 0; l < 64; l++ {
		if _, ok := v.Tenant().Lookup(l); !ok {
			t.Fatalf("LPN %d lost", l)
		}
	}
}

func TestDoubleSubmitPanics(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	r := &Request{Write: true, LPN: 0, Pages: 1}
	v.Submit(r)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("double submit must panic")
		}
	}()
	v.Submit(r)
}

func TestRequestBytes(t *testing.T) {
	r := &Request{Pages: 3}
	if r.Bytes(4096) != 12288 {
		t.Fatalf("bytes = %d", r.Bytes(4096))
	}
}

func TestIsolationString(t *testing.T) {
	if HardwareIsolated.String() != "hardware" || SoftwareIsolated.String() != "software" {
		t.Fatal("isolation strings wrong")
	}
}

func TestActionKindString(t *testing.T) {
	kinds := []ActionKind{ActHarvest, ActMakeHarvestable, ActSetPriority, ActSetChannels, ActSetRateLimit}
	want := []string{"Harvest", "Make_Harvestable", "Set_Priority", "Set_Channels", "Set_RateLimit"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d = %q", i, k.String())
		}
	}
}

var _ = flash.OpRead // silence potential unused import if assertions change
