package vssd

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
)

func TestPriorityClamping(t *testing.T) {
	_, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	v.SetPriority(99)
	if v.Priority() != ftl.PriorityHigh {
		t.Fatalf("priority = %d, want clamped to high", v.Priority())
	}
	v.SetPriority(-5)
	if v.Priority() != ftl.PriorityLow {
		t.Fatalf("priority = %d, want clamped to low", v.Priority())
	}
}

func TestZeroPageRequestPanics(t *testing.T) {
	_, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page request must panic")
		}
	}()
	v.Submit(&Request{Write: true, LPN: 0, Pages: 0})
}

func TestLPNWrapAround(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2), LogicalPages: 100})
	done := false
	// A request starting near the end of the logical space wraps rather
	// than faulting.
	v.Submit(&Request{Write: true, LPN: 98, Pages: 6,
		OnComplete: func(*Request, sim.Time) { done = true }})
	eng.Run()
	if !done {
		t.Fatal("wrapping request never completed")
	}
}

func TestResetTotalsKeepsWindow(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	v.Submit(&Request{Write: true, LPN: 0, Pages: 1})
	eng.Run()
	v.ResetTotals()
	if v.Completed() != 0 || v.TotalBytesMoved() != 0 || v.TotalHist().Count() != 0 {
		t.Fatal("totals not cleared")
	}
	// The decision window is independent of run totals.
	snap := v.Rotate()
	if snap.Window.Writes != 1 {
		t.Fatal("window lost by ResetTotals")
	}
}

func TestOpsSubmittedCountsGCAndHost(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	if err := v.Tenant().Prefill(0.8, 0.6, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	before := p.OpsSubmitted()
	for i := 0; i < 50; i++ {
		v.Submit(&Request{Write: true, LPN: i % 64, Pages: 2})
	}
	eng.Run()
	host := int64(100) // 50 requests × 2 pages
	if got := p.OpsSubmitted() - before; got < host {
		t.Fatalf("ops submitted %d < host pages %d", got, host)
	}
}

func TestMultipleVSSDsShareDeviceSafely(t *testing.T) {
	eng, p := testPlatform(4)
	a := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2)})
	b := p.AddVSSD(Config{Name: "b", Channels: chanRange(2, 4)})
	for i := 0; i < 100; i++ {
		a.Submit(&Request{Write: true, LPN: i % 512, Pages: 1})
		b.Submit(&Request{Write: i%2 == 0, LPN: i % 512, Pages: 2})
	}
	eng.Run()
	if a.Completed() != 100 || b.Completed() != 100 {
		t.Fatalf("completions %d/%d", a.Completed(), b.Completed())
	}
	// Hardware isolation: every page of a lives on channels 0-1.
	for lpn := 0; lpn < 100; lpn++ {
		if ppa, ok := a.Tenant().Lookup(lpn % 512); ok && ppa.Channel > 1 {
			t.Fatalf("tenant a's data leaked to channel %d", ppa.Channel)
		}
	}
}

func TestWindowSnapshotSLOFields(t *testing.T) {
	eng, p := testPlatform(2)
	v := p.AddVSSD(Config{Name: "a", Channels: chanRange(0, 2), SLO: 5 * sim.Millisecond})
	v.Submit(&Request{Write: false, LPN: 0, Pages: 1})
	eng.Run()
	snap := v.Rotate()
	if snap.SLO != 5*sim.Millisecond {
		t.Fatalf("snapshot SLO = %v", snap.SLO)
	}
	if snap.VSSD != 0 {
		t.Fatalf("snapshot vssd id = %d", snap.VSSD)
	}
}
