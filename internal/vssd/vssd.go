// Package vssd implements the virtual SSD layer of the FleetIO
// reproduction: per-tenant request queues, the software-isolation machinery
// (token-bucket rate limiting and stride scheduling), priority scheduling
// (the Set_Priority action), and the Platform that wires workloads, the
// flash device, the FTL, and the ghost-superblock manager together.
package vssd

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Isolation selects how a vSSD shares flash channels.
type Isolation uint8

// Isolation modes (§2.1).
const (
	// HardwareIsolated vSSDs own their channels exclusively.
	HardwareIsolated Isolation = iota
	// SoftwareIsolated vSSDs share channels, throttled by a token bucket
	// and ordered by stride scheduling.
	SoftwareIsolated
)

func (i Isolation) String() string {
	if i == HardwareIsolated {
		return "hardware"
	}
	return "software"
}

// Request is one host I/O: a contiguous run of logical pages, read or
// written, against one vSSD. OnComplete (optional) fires when the last
// page finishes, letting closed-loop workloads chain their next request.
//
// Requests obtained from VSSD.AcquireRequest are recycled onto the vSSD's
// free list as soon as OnComplete returns; neither the submitter nor the
// OnComplete callback may retain the pointer past that point. Directly
// constructed requests (&Request{...}, e.g. through the public fleetio
// API) are never recycled and stay safe to hold.
type Request struct {
	VSSD    int
	Write   bool
	LPN     int
	Pages   int
	Arrival sim.Time

	OnComplete func(r *Request, finished sim.Time)

	remaining     int
	firstDispatch sim.Time
	enqueued      bool
	owner         *VSSD
	pooled        bool     // from AcquireRequest: recycle on completion
	released      bool     // on the free list; Submit panics
	nextFree      *Request // free-list link
}

// Bytes returns the payload size of the request.
func (r *Request) Bytes(pageSize int) int64 { return int64(r.Pages) * int64(pageSize) }

// Config holds the per-vSSD policy knobs.
type Config struct {
	Name      string
	Isolation Isolation
	// Channels initially owned (hardware-isolated) or shared (software).
	Channels []int
	// LogicalPages is the tenant's logical capacity; 0 derives it from the
	// owned channels and the platform overprovision ratio.
	LogicalPages int
	// SLO is the per-request latency objective; violations feed the RL
	// state and reward. 0 disables violation tracking until calibrated.
	SLO sim.Time
	// RateLimitBps enables token-bucket throttling (software isolation).
	RateLimitBps float64
	// BurstBytes is the bucket depth; 0 defaults to one second of rate.
	BurstBytes float64
	// Tickets sets the stride-scheduling share (default 100).
	Tickets int
	// MaxInflightPages caps the page ops a vSSD keeps dispatched (host
	// queue depth). 0 defaults to 4 per owned channel.
	MaxInflightPages int
}

// strideConst is the stride numerator (Waldspurger's stride1).
const strideConst = 1 << 20

// VSSD is one virtual SSD instance.
type VSSD struct {
	id     int
	cfg    Config
	plat   *Platform
	tenant *ftl.Tenant

	priority int

	// queue is head-indexed: queue[qhead:] holds the waiting requests.
	// Popping advances qhead instead of re-slicing so the backing array is
	// reused; Submit compacts before growing.
	queue    []*Request
	qhead    int
	freeReqs *Request // recycled Request free list
	inflight int

	tokens     float64
	lastRefill sim.Time
	pumpArmed  bool

	pass   float64
	stride float64

	window       metrics.Window
	windowAt     sim.Time
	totalHist    metrics.Histogram
	completed    int64
	totalBytes   int64
	totalRetries int64

	slo sim.Time
}

// ID returns the platform-assigned index of the vSSD.
func (v *VSSD) ID() int { return v.id }

// Name returns the configured display name.
func (v *VSSD) Name() string { return v.cfg.Name }

// Tenant exposes the underlying FTL tenant.
func (v *VSSD) Tenant() *ftl.Tenant { return v.tenant }

// Priority returns the current I/O priority level.
func (v *VSSD) Priority() int { return v.priority }

// SetPriority applies the Set_Priority(level) action. Levels outside
// [PriorityLow, PriorityHigh] are clamped.
func (v *VSSD) SetPriority(level int) {
	if level < ftl.PriorityLow {
		level = ftl.PriorityLow
	}
	if level > ftl.PriorityHigh {
		level = ftl.PriorityHigh
	}
	v.priority = level
}

// SLO returns the current latency objective.
func (v *VSSD) SLO() sim.Time { return v.slo }

// SetSLO installs a latency objective (used after calibration runs).
func (v *VSSD) SetSLO(slo sim.Time) { v.slo = slo }

// SetRateLimit reconfigures the token bucket (0 disables throttling).
func (v *VSSD) SetRateLimit(bps, burst float64) {
	v.cfg.RateLimitBps = bps
	if burst <= 0 {
		burst = bps
	}
	v.cfg.BurstBytes = burst
	if v.tokens > burst {
		v.tokens = burst
	}
}

// QueueLen returns the number of requests waiting for dispatch.
func (v *VSSD) QueueLen() int { return len(v.queue) - v.qhead }

// Inflight returns dispatched-but-incomplete page ops.
func (v *VSSD) Inflight() int { return v.inflight }

// Completed returns the total requests finished since creation.
func (v *VSSD) Completed() int64 { return v.completed }

// TotalHist returns the whole-run latency histogram.
func (v *VSSD) TotalHist() *metrics.Histogram { return &v.totalHist }

// TotalBytesMoved returns the payload bytes of completed host requests
// since creation (or the last ResetTotals).
func (v *VSSD) TotalBytesMoved() int64 { return v.totalBytes }

// TotalRetries returns the host page writes re-dispatched after an
// injected program failure since creation. Unlike the other run totals it
// survives ResetTotals: the device and FTL fault ledgers are cumulative
// over the whole run, and the recovery identity
// (flash.FaultStats.ProgramFails == ftl.Stats.Remapped == retries+GC
// recoveries) only balances against a counter with the same lifetime.
func (v *VSSD) TotalRetries() int64 { return v.totalRetries }

// ResetTotals clears the run-level counters (histogram, completion count,
// byte totals) at a measurement boundary; in-flight requests keep
// completing into the fresh counters.
func (v *VSSD) ResetTotals() {
	v.totalHist.Reset()
	v.completed = 0
	v.totalBytes = 0
}

// AcquireRequest returns a zeroed Request from the vSSD's free list
// (allocating only when the list is empty). Pooled requests are recycled
// automatically after OnComplete; see the Request ownership contract.
func (v *VSSD) AcquireRequest() *Request {
	r := v.freeReqs
	if r == nil {
		return &Request{pooled: true}
	}
	v.freeReqs = r.nextFree
	*r = Request{pooled: true}
	return r
}

// releaseRequest recycles a completed pooled request.
func (v *VSSD) releaseRequest(r *Request) {
	r.OnComplete = nil
	r.owner = nil
	r.released = true
	r.nextFree = v.freeReqs
	v.freeReqs = r
}

// Submit enqueues a request and pumps the dispatch loop.
func (v *VSSD) Submit(r *Request) {
	if r.Pages <= 0 {
		panic(fmt.Sprintf("vssd: request with %d pages", r.Pages))
	}
	if r.released {
		panic("vssd: Submit of a released Request (use-after-release)")
	}
	if r.enqueued {
		panic("vssd: request submitted twice")
	}
	r.enqueued = true
	r.VSSD = v.id
	r.owner = v
	r.Arrival = v.plat.eng.Now()
	r.remaining = r.Pages
	if v.qhead > 0 && len(v.queue) == cap(v.queue) {
		// Compact the consumed head instead of growing the array.
		n := copy(v.queue, v.queue[v.qhead:])
		for i := n; i < len(v.queue); i++ {
			v.queue[i] = nil
		}
		v.queue = v.queue[:n]
		v.qhead = 0
	}
	v.queue = append(v.queue, r)
	v.pump()
}

// refillTokens advances the token bucket to now.
func (v *VSSD) refillTokens() {
	now := v.plat.eng.Now()
	if v.cfg.RateLimitBps <= 0 {
		v.lastRefill = now
		return
	}
	dt := float64(now-v.lastRefill) / 1e9
	v.tokens += dt * v.cfg.RateLimitBps
	if v.tokens > v.cfg.BurstBytes {
		v.tokens = v.cfg.BurstBytes
	}
	v.lastRefill = now
}

// pump admits queued requests while the inflight budget and token bucket
// allow, splitting each admitted request into per-page flash ops.
func (v *VSSD) pump() {
	v.refillTokens()
	pageSize := v.plat.cfg.PageSize
	for v.qhead < len(v.queue) && v.inflight < v.maxInflight() {
		r := v.queue[v.qhead]
		if v.cfg.RateLimitBps > 0 {
			need := float64(r.Bytes(pageSize))
			if v.tokens < need {
				v.armPump(need)
				return
			}
			v.tokens -= need
		}
		v.queue[v.qhead] = nil
		v.qhead++
		v.dispatch(r)
	}
	if v.qhead == len(v.queue) {
		v.queue = v.queue[:0]
		v.qhead = 0
	}
}

// armPump schedules a future pump for when the bucket will hold `need`
// bytes of tokens.
func (v *VSSD) armPump(need float64) {
	if v.pumpArmed {
		return
	}
	wait := sim.Time((need - v.tokens) / v.cfg.RateLimitBps * 1e9)
	if wait < sim.Microsecond {
		wait = sim.Microsecond
	}
	v.pumpArmed = true
	v.plat.eng.ScheduleEvent(wait, pumpEvent, sim.EventArg{P: v})
}

// pumpEvent re-runs the dispatch loop after a token-bucket wait.
func pumpEvent(arg sim.EventArg, _ sim.Time) {
	v := arg.P.(*VSSD)
	v.pumpArmed = false
	v.pump()
}

func (v *VSSD) maxInflight() int {
	if v.cfg.MaxInflightPages > 0 {
		return v.cfg.MaxInflightPages
	}
	n := 4 * len(v.tenant.Channels())
	if n < 8 {
		n = 8
	}
	return n
}

// dispatch splits r into page ops and submits them to the device.
func (v *VSSD) dispatch(r *Request) {
	now := v.plat.eng.Now()
	if r.firstDispatch == 0 {
		r.firstDispatch = now
	}
	for i := 0; i < r.Pages; i++ {
		lpn := r.LPN + i
		if lpn >= v.tenant.LogicalPages() {
			lpn %= v.tenant.LogicalPages()
		}
		if r.Write {
			v.dispatchWrite(r, lpn)
		} else {
			v.dispatchRead(r, lpn)
		}
	}
}

// requestPageDone is the flash.OpDone for host page ops: ctx carries the
// *Request (the op itself is already recycled). A failed program is
// re-dispatched: the FTL has already repaired the mapping and retired the
// bad block (OnFault runs first), so the retry allocates a healthy page.
// The request's arrival and first-dispatch stamps are preserved, so the
// retry latency lands in the same latency/queue-delay/SLO accounting as
// any other slowdown.
func requestPageDone(ctx any, ctxI int64, at sim.Time, status flash.OpStatus) {
	r := ctx.(*Request)
	if status == flash.StatusProgramFail {
		r.owner.retryFailedWrite(r, int(ctxI))
		return
	}
	r.owner.pageDone(r, at)
}

// retryWrite re-attempts a write dispatch after an allocation stall.
func retryWrite(arg sim.EventArg, _ sim.Time) {
	r := arg.P.(*Request)
	r.owner.dispatchWrite(r, int(arg.I))
}

// zeroFillDone completes a zero-fill read after its constant service time.
func zeroFillDone(arg sim.EventArg, now sim.Time) {
	r := arg.P.(*Request)
	r.owner.pageDone(r, now)
}

func (v *VSSD) dispatchWrite(r *Request, lpn int) {
	ppa, ok := v.tenant.AllocatePage(lpn, false)
	if !ok {
		// Out of space right now: let GC make progress and retry.
		v.plat.eng.ScheduleEvent(sim.Millisecond, retryWrite, sim.EventArg{P: r, I: int64(lpn)})
		return
	}
	v.inflight++
	v.tenant.RecordHostProgram()
	v.stride = strideConst / float64(v.tickets())
	v.pass += v.stride
	op := v.plat.dev.AcquireOp()
	op.Kind = flash.OpProgram
	op.Addr = ppa
	op.Tenant = v.id
	op.Priority = v.priority
	op.Pass = v.pass
	op.Done = requestPageDone
	op.Ctx = r
	op.CtxI = int64(lpn) // for the program-fail retry path
	v.plat.submit(op)
}

// retryFailedWrite re-dispatches one page of r after an injected program
// failure. The page count stays outstanding (remaining is untouched), so
// the request completes only when the retried page finally lands.
func (v *VSSD) retryFailedWrite(r *Request, lpn int) {
	v.inflight--
	v.window.Retries++
	v.totalRetries++
	v.dispatchWrite(r, lpn)
}

func (v *VSSD) dispatchRead(r *Request, lpn int) {
	ppa, ok := v.tenant.Lookup(lpn)
	if !ok {
		// Reading never-written data: served from the mapping table with
		// no flash access (a zero-fill read), modelled as a short constant.
		v.inflight++
		v.plat.eng.ScheduleEvent(5*sim.Microsecond, zeroFillDone, sim.EventArg{P: r})
		return
	}
	v.inflight++
	v.stride = strideConst / float64(v.tickets())
	v.pass += v.stride
	op := v.plat.dev.AcquireOp()
	op.Kind = flash.OpRead
	op.Addr = ppa
	op.Tenant = v.id
	op.Priority = v.priority
	op.Pass = v.pass
	op.Done = requestPageDone
	op.Ctx = r
	v.plat.submit(op)
}

func (v *VSSD) tickets() int {
	if v.cfg.Tickets > 0 {
		return v.cfg.Tickets
	}
	return 100
}

// pageDone accounts a finished page op and completes the request when all
// its pages are in.
func (v *VSSD) pageDone(r *Request, at sim.Time) {
	v.inflight--
	r.remaining--
	if r.remaining == 0 {
		lat := at - r.Arrival
		qd := r.firstDispatch - r.Arrival
		if v.slo > 0 && lat > v.slo {
			v.plat.rec.SLOViolation(v.id, lat, v.slo)
		}
		v.window.Complete(r.Write, r.Bytes(v.plat.cfg.PageSize), lat, qd, v.slo)
		v.totalHist.Add(lat)
		v.completed++
		v.totalBytes += r.Bytes(v.plat.cfg.PageSize)
		if r.OnComplete != nil {
			r.OnComplete(r, at)
		}
		if r.pooled {
			v.releaseRequest(r)
		}
	}
	v.pump()
}

// WindowSnapshot captures one decision window of a vSSD: the completed-I/O
// counters plus the instantaneous state the RL agent needs (Table 1).
type WindowSnapshot struct {
	VSSD     int
	Start    sim.Time
	Duration sim.Time
	Window   metrics.Window

	QueueLen          int
	InflightPages     int
	AvailCapacity     int64 // bytes of unmapped logical space
	InGC              bool
	Priority          int
	OwnedChannels     int
	HarvestedChannels int
	SLO               sim.Time
}

// Rotate returns the finished window and starts a new one.
func (v *VSSD) Rotate() WindowSnapshot {
	now := v.plat.eng.Now()
	snap := WindowSnapshot{
		VSSD:          v.id,
		Start:         v.windowAt,
		Duration:      now - v.windowAt,
		Window:        v.window,
		QueueLen:      v.QueueLen(),
		InflightPages: v.inflight,
		AvailCapacity: (int64(v.tenant.LogicalPages()) - v.tenant.MappedPages()) * int64(v.plat.cfg.PageSize),
		InGC:          v.tenant.InGC(),
		Priority:      v.priority,
		OwnedChannels: len(v.tenant.Channels()),
		SLO:           v.slo,
	}
	if v.plat.gsbm != nil {
		snap.HarvestedChannels = v.plat.gsbm.HarvestedChannels(v.id)
	}
	v.window.Reset()
	v.windowAt = now
	return snap
}
